//! `versa-cluster` — a one-shot cluster coordinator.
//!
//! Listens for `--expect` worker processes (`versa-worker`), then runs
//! a native tiled matmul across local and remote workers, verifies the
//! computed `C` against a serial recompute, and shuts the cluster down
//! cleanly (gossiping the learned profile to the workers on the way
//! out):
//!
//! ```text
//! versa-cluster --listen 127.0.0.1:7070 --expect 2
//! versa-cluster --listen 127.0.0.1:0 --addr-file /tmp/coord.addr \
//!               --variant wide --n 1024 --bs 256 --expect 2
//! ```
//!
//! Exit status is the CI gate: 0 only when the run completed AND the
//! result verified below `1e-9` absolute error. The CI `cluster-smoke`
//! job runs this against two loopback `versa-worker` processes for both
//! the hybrid and mm-wide version sets.

use versa::cluster_cli::{self, CoordinatorOpts, MAX_ERROR};

fn usage() -> ! {
    eprintln!(
        "usage: versa-cluster [--listen HOST:PORT] [--expect N] [--smp N] [--gpus N]\n\
         \x20                  [--scheduler ver|locver] [--variant gpu|hybrid|wide]\n\
         \x20                  [--n ELEMS] [--bs TILE] [--seed N] [--addr-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = CoordinatorOpts::default();
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => opts.listen = value(&mut it),
            "--expect" => opts.expect = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--smp" => opts.smp = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--gpus" => opts.gpus = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--scheduler" => {
                opts.scheduler = match value(&mut it).as_str() {
                    "ver" => versa::prelude::SchedulerKind::versioning(),
                    "locver" => versa::prelude::SchedulerKind::locality_versioning(),
                    other => {
                        eprintln!("cluster coordination needs a versioning scheduler, not {other:?}");
                        usage()
                    }
                }
            }
            "--variant" => {
                opts.variant =
                    cluster_cli::parse_variant(&value(&mut it)).unwrap_or_else(|| usage())
            }
            "--n" => opts.config.n = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--bs" => opts.config.bs = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--addr-file" => opts.addr_file = Some(value(&mut it).into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if opts.config.n % opts.config.bs != 0 {
        eprintln!("--bs {} must divide --n {}", opts.config.bs, opts.config.n);
        usage();
    }

    let outcome = cluster_cli::run_coordinator(&opts).unwrap_or_else(|e| {
        eprintln!("versa-cluster: {e}");
        std::process::exit(1);
    });

    println!(
        "versa-cluster: matmul ({}) {}x{} over {} node(s) done in {:.1} ms — \
         {} tasks, max |error| {:.3e}",
        opts.variant.label(),
        opts.config.n,
        opts.config.n,
        outcome.joins.len(),
        outcome.run_wall.as_secs_f64() * 1e3,
        outcome.report.tasks_executed,
        outcome.max_error,
    );
    if !outcome.report.failures.is_clean() {
        println!(
            "versa-cluster: survived {} failure(s), {} retried",
            outcome.report.failures.events.len(),
            outcome.report.failures.retries,
        );
    }
    if !outcome.verified() {
        eprintln!(
            "versa-cluster: FAILED verification (completed: {}, max error {:.3e} vs bound {MAX_ERROR:.0e})",
            outcome.report.completed, outcome.max_error
        );
        std::process::exit(1);
    }
}
