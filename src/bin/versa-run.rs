//! `versa-run` — command-line driver for the simulated applications.
//!
//! Run any paper application, variant, and scheduler on a custom
//! simulated platform without writing code:
//!
//! ```text
//! versa-run --app matmul   --variant hybrid --scheduler ver --smp 8 --gpus 2
//! versa-run --app cholesky --variant gpu    --scheduler aff --smp 4 --gpus 2 --n 16384 --bs 1024
//! versa-run --app pbpi     --variant smp    --scheduler dep --generations 50
//! versa-run --app matmul --scheduler ver --trace --gpu-mem 2000000000
//! versa-run --app matmul --scheduler ver --trace-out matmul.vtrace
//! ```
//!
//! Prints the run report (makespan, GFLOP/s where defined, transfer
//! volumes, per-version execution counts) and, with `--trace`, a
//! per-worker utilization table. `--trace-out PATH` additionally writes
//! the raw event trace in the `vtrace` text format for `versa-analyze`.
//!
//! Cluster mode (matmul only, native engine — see DESIGN.md §7):
//!
//! ```text
//! versa-run --app matmul --listen 127.0.0.1:7070 --expect 2   # coordinator
//! versa-run --app matmul --connect 127.0.0.1:7070             # remote worker
//! ```
//!
//! `--listen` runs the same coordinator as `versa-cluster`; `--connect`
//! the same worker as `versa-worker`. The dedicated binaries carry the
//! full flag set (`--addr-file`, `--hints-cache`, …).

use versa::apps::{cholesky, matmul, pbpi};
use versa::cluster_cli;
use versa::prelude::*;
use versa::trace::TraceAnalysis;

#[derive(Debug)]
struct Args {
    app: String,
    variant: String,
    scheduler: String,
    smp: usize,
    gpus: usize,
    n: Option<usize>,
    bs: Option<usize>,
    generations: Option<usize>,
    lambda: Option<u64>,
    gpu_mem: Option<u64>,
    trace: bool,
    trace_out: Option<String>,
    no_prefetch: bool,
    seed: Option<u64>,
    listen: Option<String>,
    connect: Option<String>,
    expect: usize,
}

impl Args {
    fn usage() -> ! {
        eprintln!(
            "usage: versa-run [--app matmul|cholesky|pbpi] [--variant gpu|hybrid|smp]\n\
             \x20               [--scheduler bf|dep|aff|ver|locver] [--smp N] [--gpus N]\n\
             \x20               [--n ELEMS] [--bs TILE] [--generations N] [--lambda N]\n\
             \x20               [--gpu-mem BYTES] [--seed N] [--trace] [--trace-out PATH]\n\
             \x20               [--no-prefetch]\n\
             \x20               [--listen HOST:PORT --expect N | --connect HOST:PORT]  (matmul cluster mode)"
        );
        std::process::exit(2);
    }

    fn parse() -> Args {
        let mut args = Args {
            app: "matmul".into(),
            variant: "hybrid".into(),
            scheduler: "ver".into(),
            smp: 4,
            gpus: 2,
            n: None,
            bs: None,
            generations: None,
            lambda: None,
            gpu_mem: None,
            trace: false,
            trace_out: None,
            no_prefetch: false,
            seed: None,
            listen: None,
            connect: None,
            expect: 2,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = |it: &mut dyn Iterator<Item = String>| {
                it.next().unwrap_or_else(|| Args::usage())
            };
            match flag.as_str() {
                "--app" => args.app = value(&mut it),
                "--variant" => args.variant = value(&mut it),
                "--scheduler" => args.scheduler = value(&mut it),
                "--smp" => args.smp = value(&mut it).parse().unwrap_or_else(|_| Args::usage()),
                "--gpus" => args.gpus = value(&mut it).parse().unwrap_or_else(|_| Args::usage()),
                "--n" => args.n = Some(value(&mut it).parse().unwrap_or_else(|_| Args::usage())),
                "--bs" => args.bs = Some(value(&mut it).parse().unwrap_or_else(|_| Args::usage())),
                "--generations" => {
                    args.generations =
                        Some(value(&mut it).parse().unwrap_or_else(|_| Args::usage()))
                }
                "--lambda" => {
                    args.lambda = Some(value(&mut it).parse().unwrap_or_else(|_| Args::usage()))
                }
                "--gpu-mem" => {
                    args.gpu_mem = Some(value(&mut it).parse().unwrap_or_else(|_| Args::usage()))
                }
                "--seed" => {
                    args.seed = Some(value(&mut it).parse().unwrap_or_else(|_| Args::usage()))
                }
                "--listen" => args.listen = Some(value(&mut it)),
                "--connect" => args.connect = Some(value(&mut it)),
                "--expect" => {
                    args.expect = value(&mut it).parse().unwrap_or_else(|_| Args::usage())
                }
                "--trace" => args.trace = true,
                "--trace-out" => args.trace_out = Some(value(&mut it)),
                "--no-prefetch" => args.no_prefetch = true,
                "--help" | "-h" => Args::usage(),
                other => {
                    eprintln!("unknown flag {other:?}");
                    Args::usage()
                }
            }
        }
        args
    }

    fn scheduler_kind(&self) -> SchedulerKind {
        let mut kind = match self.scheduler.as_str() {
            "bf" => SchedulerKind::BreadthFirst,
            "dep" => SchedulerKind::DepAware,
            "aff" => SchedulerKind::Affinity,
            "ver" => SchedulerKind::versioning(),
            "locver" => SchedulerKind::locality_versioning(),
            other => {
                eprintln!("unknown scheduler {other:?}");
                Args::usage()
            }
        };
        if let (Some(lambda), SchedulerKind::Versioning(cfg)) = (self.lambda, &mut kind) {
            cfg.lambda = lambda;
        }
        kind
    }

    fn platform(&self) -> PlatformConfig {
        let mut p = PlatformConfig::minotauro(self.smp, self.gpus);
        p.gpu_mem_capacity = self.gpu_mem;
        if let Some(seed) = self.seed {
            p.seed = seed;
        }
        p
    }

    fn runtime_config(&self) -> RuntimeConfig {
        let mut rc = RuntimeConfig::with_scheduler(self.scheduler_kind());
        rc.tracing.enabled = self.trace || self.trace_out.is_some();
        rc.prefetch = !self.no_prefetch;
        rc
    }
}

fn finish(report: &RunReport, rt: &Runtime, flops: Option<f64>, trace_out: Option<&str>) {
    println!("{}", report.summary(rt.templates()));
    if let Some(f) = flops {
        println!("performance: {:.1} GFLOP/s", report.gflops(f));
    }
    if let Some(trace) = &report.trace {
        let a = TraceAnalysis::new(trace);
        println!("\nper-worker utilization:\n{}", a.utilization_table());
        if let Some(path) = trace_out {
            std::fs::write(path, trace.to_text()).unwrap_or_else(|e| {
                eprintln!("cannot write trace to {path}: {e}");
                std::process::exit(1);
            });
            println!("\ntrace written to {path} (inspect with versa-analyze)");
        }
    }
    if let Some(table) = &report.profile_table {
        println!("\nlearned profile (paper Table I):\n{table}");
    }
}

/// Matmul cluster mode: `--listen` becomes a `versa-cluster`
/// coordinator, `--connect` a `versa-worker` process. Exits.
fn run_cluster_mode(args: &Args) -> ! {
    if args.app != "matmul" {
        eprintln!("cluster mode runs the native engine, which only matmul drives here");
        Args::usage();
    }
    let variant = cluster_cli::parse_variant(&args.variant).unwrap_or_else(|| {
        eprintln!("cluster matmul has variants gpu|hybrid|wide, not {:?}", args.variant);
        Args::usage()
    });
    if let Some(connect) = &args.connect {
        let opts = versa::cluster_cli::WorkerOpts {
            connect: connect.clone(),
            workers: args.smp,
            variant,
            bs: args.bs.unwrap_or(256),
            ..Default::default()
        };
        match cluster_cli::run_matmul_worker(&opts) {
            Ok(report) => {
                println!(
                    "served as node {}: {} tasks executed, {} tiles received",
                    report.node_id, report.execs, report.ships
                );
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("versa-run worker: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut opts = versa::cluster_cli::CoordinatorOpts {
        listen: args.listen.clone().expect("cluster mode has --listen or --connect"),
        expect: args.expect,
        smp: args.smp,
        gpus: args.gpus,
        scheduler: args.scheduler_kind(),
        variant,
        ..Default::default()
    };
    if let Some(n) = args.n {
        opts.config.n = n;
    }
    if let Some(bs) = args.bs {
        opts.config.bs = bs;
    }
    if let Some(seed) = args.seed {
        opts.seed = seed;
    }
    match cluster_cli::run_coordinator(&opts) {
        Ok(outcome) if outcome.verified() => {
            println!(
                "cluster matmul ({}) verified: {} tasks over {} node(s), max |error| {:.3e}",
                variant.label(),
                outcome.report.tasks_executed,
                outcome.joins.len(),
                outcome.max_error
            );
            std::process::exit(0);
        }
        Ok(outcome) => {
            eprintln!(
                "cluster matmul FAILED verification (completed: {}, max error {:.3e})",
                outcome.report.completed, outcome.max_error
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("versa-run coordinator: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = Args::parse();
    if args.listen.is_some() && args.connect.is_some() {
        eprintln!("--listen and --connect are mutually exclusive");
        Args::usage();
    }
    if args.listen.is_some() || args.connect.is_some() {
        run_cluster_mode(&args);
    }
    let rc = args.runtime_config();
    let platform = args.platform();

    match args.app.as_str() {
        "matmul" => {
            let mut cfg = matmul::MatmulConfig::paper();
            if let Some(n) = args.n {
                cfg.n = n;
            }
            if let Some(bs) = args.bs {
                cfg.bs = bs;
            }
            let variant = match args.variant.as_str() {
                "gpu" => matmul::MatmulVariant::Gpu,
                "hybrid" => matmul::MatmulVariant::Hybrid,
                other => {
                    eprintln!("matmul has variants gpu|hybrid, not {other:?}");
                    Args::usage()
                }
            };
            println!(
                "matmul {}x{} f64, {}x{} tiles, {} tasks, {} — {} SMP + {} GPU\n",
                cfg.n,
                cfg.n,
                cfg.bs,
                cfg.bs,
                cfg.task_count(),
                variant.label(),
                args.smp,
                args.gpus
            );
            let mut rt = Runtime::simulated(rc, platform);
            let _app = matmul::build(&mut rt, cfg, variant);
            let report = rt.run().expect("run failed");
            finish(&report, &rt, Some(cfg.flops()), args.trace_out.as_deref());
        }
        "cholesky" => {
            let mut cfg = cholesky::CholeskyConfig::paper();
            if let Some(n) = args.n {
                cfg.n = n;
            }
            if let Some(bs) = args.bs {
                cfg.bs = bs;
            }
            let variant = match args.variant.as_str() {
                "smp" => cholesky::CholeskyVariant::PotrfSmp,
                "gpu" => cholesky::CholeskyVariant::PotrfGpu,
                "hybrid" => cholesky::CholeskyVariant::PotrfHybrid,
                other => {
                    eprintln!("cholesky has variants smp|gpu|hybrid, not {other:?}");
                    Args::usage()
                }
            };
            println!(
                "cholesky {}x{} f32, {}x{} tiles, {} — {} SMP + {} GPU\n",
                cfg.n,
                cfg.n,
                cfg.bs,
                cfg.bs,
                variant.label(),
                args.smp,
                args.gpus
            );
            let mut rt = Runtime::simulated(rc, platform);
            let _app = cholesky::build(&mut rt, cfg, variant);
            let report = rt.run().expect("run failed");
            finish(&report, &rt, Some(cfg.flops()), args.trace_out.as_deref());
        }
        "pbpi" => {
            let mut cfg = pbpi::PbpiConfig::paper();
            if let Some(g) = args.generations {
                cfg.generations = g;
            }
            let variant = match args.variant.as_str() {
                "smp" => pbpi::PbpiVariant::Smp,
                "gpu" => pbpi::PbpiVariant::Gpu,
                "hybrid" => pbpi::PbpiVariant::Hybrid,
                other => {
                    eprintln!("pbpi has variants smp|gpu|hybrid, not {other:?}");
                    Args::usage()
                }
            };
            println!(
                "pbpi {} sites x {} generations, {} — {} SMP + {} GPU\n",
                cfg.sites(),
                cfg.generations,
                variant.label(),
                args.smp,
                args.gpus
            );
            let mut rt = Runtime::simulated(rc, platform);
            let _app = pbpi::build(&mut rt, cfg, variant);
            let report = rt.run().expect("run failed");
            finish(&report, &rt, None, args.trace_out.as_deref());
        }
        other => {
            eprintln!("unknown app {other:?}");
            Args::usage()
        }
    }
}
