//! `versa-worker` — a remote worker process for a versa cluster.
//!
//! Dials a coordinator (`versa-cluster` or `versa-run --listen`),
//! advertises its SMP workers, registers the same matmul kernels the
//! coordinator registered, then serves tile shipments and task
//! dispatches until the coordinator shuts the cluster down:
//!
//! ```text
//! versa-worker --connect 127.0.0.1:7070 --name node-a --workers 2
//! versa-worker --connect 127.0.0.1:7070 --variant wide --bs 256 \
//!              --hints-cache /tmp/node-a.hints
//! ```
//!
//! `--variant` and `--bs` must match the coordinator's flags — template
//! names resolve against the worker's own kernel registry, closures
//! never cross the wire. With `--hints-cache`, the coordinator's
//! shutdown gossip is cached to disk and handed back on the next join,
//! warming a fresh coordinator past its learning phase.

use versa::cluster_cli::{self, WorkerOpts};

fn usage() -> ! {
    eprintln!(
        "usage: versa-worker --connect HOST:PORT [--name NAME] [--workers N]\n\
         \x20                 [--variant gpu|hybrid|wide] [--bs TILE]\n\
         \x20                 [--hints-cache PATH] [--addr-file PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = WorkerOpts::default();
    let mut addr_file: Option<String> = None;
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>| it.next().unwrap_or_else(|| usage());
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => opts.connect = value(&mut it),
            "--name" => opts.name = value(&mut it),
            "--workers" => opts.workers = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--variant" => {
                opts.variant =
                    cluster_cli::parse_variant(&value(&mut it)).unwrap_or_else(|| usage())
            }
            "--bs" => opts.bs = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--hints-cache" => opts.hints_cache = Some(value(&mut it).into()),
            "--addr-file" => addr_file = Some(value(&mut it)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    // `--addr-file` reads the address a coordinator wrote with its own
    // `--addr-file` flag — lets scripts start both sides with port 0.
    if let Some(path) = addr_file {
        if !opts.connect.is_empty() {
            eprintln!("--connect and --addr-file are mutually exclusive");
            usage();
        }
        opts.connect = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| {
                eprintln!("cannot read coordinator address from {path}: {e}");
                std::process::exit(1);
            })
            .trim()
            .to_string();
    }
    if opts.connect.is_empty() {
        usage();
    }

    match cluster_cli::run_matmul_worker(&opts) {
        Ok(report) => {
            println!(
                "versa-worker: served as node {} — {} tasks executed, {} tiles received{}",
                report.node_id,
                report.execs,
                report.ships,
                if report.hints_applied > 0 {
                    format!(", joined gossip-warmed ({} hints)", report.hints_applied)
                } else {
                    ", joined cold".to_string()
                }
            );
        }
        Err(e) => {
            eprintln!("versa-worker: {e}");
            std::process::exit(1);
        }
    }
}
