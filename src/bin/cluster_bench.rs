//! `cluster_bench` — distributed-overhead benchmark for versa-net.
//!
//! Runs the mm-wide tiled matmul three ways and writes
//! `BENCH_cluster.json` (override with `--out PATH`):
//!
//! * **single** — one native process, local workers only: the
//!   no-network baseline.
//! * **cluster-cold** — 1 coordinator + 2 loopback `versa-net` workers
//!   joining with empty hint caches: every remote task pays tile
//!   shipment over real TCP, and the scheduler starts cold.
//! * **cluster-warm** — the same cluster, but the workers hand back the
//!   profile gossiped to them at the cold run's shutdown, warming the
//!   fresh coordinator past its learning phase.
//!
//! Per-run join latencies (handshake + gossip + attach) are recorded
//! for the warm-gossip vs cold-join comparison. Every run is gated on
//! the serial-recompute verification — a benchmark that computed the
//! wrong `C` aborts. Regenerate the committed numbers with:
//! `cargo run --release --bin cluster_bench`.

use std::path::PathBuf;
use std::time::Duration;
use versa::apps::matmul::{MatmulConfig, MatmulVariant};
use versa::cluster_cli::{self, CoordinatorOpts, CoordinatorOutcome, WorkerOpts};

const CONFIG: MatmulConfig = MatmulConfig { n: 1024, bs: 256 };
const WORKERS: usize = 2;
const WORKERS_PER_NODE: usize = 2;

fn hints_path(i: usize) -> PathBuf {
    std::env::temp_dir().join(format!("versa-cluster-bench-{}-w{i}.hints", std::process::id()))
}

/// One coordinator + `WORKERS` loopback worker threads.
fn run_cluster(label: &str) -> CoordinatorOutcome {
    let opts = CoordinatorOpts {
        expect: WORKERS,
        variant: MatmulVariant::Wide,
        config: CONFIG,
        addr_file: Some(std::env::temp_dir().join(format!(
            "versa-cluster-bench-{}.addr",
            std::process::id()
        ))),
        ..CoordinatorOpts::default()
    };
    let addr_file = opts.addr_file.clone().unwrap();
    let _ = std::fs::remove_file(&addr_file);

    let workers: Vec<_> = (0..WORKERS)
        .map(|i| {
            let addr_file = addr_file.clone();
            std::thread::spawn(move || {
                // The coordinator binds port 0; wait for the addr file.
                let deadline = std::time::Instant::now() + Duration::from_secs(10);
                let addr = loop {
                    if let Ok(s) = std::fs::read_to_string(&addr_file) {
                        if !s.trim().is_empty() {
                            break s.trim().to_string();
                        }
                    }
                    assert!(std::time::Instant::now() < deadline, "coordinator never bound");
                    std::thread::sleep(Duration::from_millis(5));
                };
                let w = WorkerOpts {
                    connect: addr,
                    name: format!("bench-w{i}"),
                    workers: WORKERS_PER_NODE,
                    variant: MatmulVariant::Wide,
                    bs: CONFIG.bs,
                    hints_cache: Some(hints_path(i)),
                };
                cluster_cli::run_matmul_worker(&w).expect("bench worker must end cleanly")
            })
        })
        .collect();

    let outcome = cluster_cli::run_coordinator(&opts).expect("bench coordinator failed");
    for w in workers {
        w.join().expect("worker thread panicked");
    }
    let _ = std::fs::remove_file(&addr_file);
    assert!(
        outcome.verified(),
        "{label}: verification failed (max error {:.3e})",
        outcome.max_error
    );
    eprintln!(
        "  {label}: {:.1} ms run, joins [{}], {} warm node(s)",
        outcome.run_wall.as_secs_f64() * 1e3,
        fmt_ms(&outcome.join_latencies),
        outcome.joins.iter().filter(|j| j.hints_applied > 0).count(),
    );
    outcome
}

fn fmt_ms(xs: &[Duration]) -> String {
    xs.iter().map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)).collect::<Vec<_>>().join(", ")
}

fn mean_ms(xs: &[Duration]) -> f64 {
    xs.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / xs.len().max(1) as f64
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_cluster.json".to_string())
    };
    for i in 0..WORKERS {
        let _ = std::fs::remove_file(hints_path(i));
    }

    eprintln!("single-process baseline (local workers only):");
    let single = cluster_cli::run_coordinator(&CoordinatorOpts {
        expect: 0,
        variant: MatmulVariant::Wide,
        config: CONFIG,
        ..CoordinatorOpts::default()
    })
    .expect("single-process run failed");
    assert!(single.verified(), "single-process verification failed");
    eprintln!("  single: {:.1} ms run", single.run_wall.as_secs_f64() * 1e3);

    eprintln!("cluster, cold join (empty hint caches):");
    let cold = run_cluster("cluster-cold");
    assert!(
        cold.joins.iter().all(|j| j.hints_applied == 0),
        "first join must be cold"
    );

    eprintln!("cluster, warm join (hint caches from the cold run's shutdown gossip):");
    let warm = run_cluster("cluster-warm");
    assert!(
        warm.joins.iter().all(|j| j.hints_applied > 0),
        "shutdown gossip must warm the rejoin"
    );
    for i in 0..WORKERS {
        let _ = std::fs::remove_file(hints_path(i));
    }

    let json = format!(
        "{{\n  \"bench\": \"cluster_loopback\",\n  \"app\": \"matmul-wide\",\n  \
         \"matrix_n\": {},\n  \"tile_bs\": {},\n  \"remote_nodes\": {},\n  \
         \"workers_per_node\": {},\n  \
         \"single_run_ms\": {:.3},\n  \
         \"cluster_cold_run_ms\": {:.3},\n  \"cluster_warm_run_ms\": {:.3},\n  \
         \"cold_join_ms\": [{}],\n  \"warm_join_ms\": [{}],\n  \
         \"cold_join_mean_ms\": {:.3},\n  \"warm_join_mean_ms\": {:.3},\n  \
         \"warm_hints_applied\": {},\n  \
         \"single_max_error\": {:.3e},\n  \"cluster_max_error\": {:.3e}\n}}\n",
        CONFIG.n,
        CONFIG.bs,
        WORKERS,
        WORKERS_PER_NODE,
        single.run_wall.as_secs_f64() * 1e3,
        cold.run_wall.as_secs_f64() * 1e3,
        warm.run_wall.as_secs_f64() * 1e3,
        fmt_ms(&cold.join_latencies),
        fmt_ms(&warm.join_latencies),
        mean_ms(&cold.join_latencies),
        mean_ms(&warm.join_latencies),
        warm.joins.iter().map(|j| j.hints_applied).sum::<usize>(),
        single.max_error,
        warm.max_error.max(cold.max_error),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
