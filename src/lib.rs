//! # versa — self-adaptive task versioning for heterogeneous environments
//!
//! A production-quality Rust reproduction of *Self-Adaptive OmpSs Tasks in
//! Heterogeneous Environments* (Planas, Badia, Ayguadé, Labarta — IPDPS
//! 2013): an OmpSs-like task runtime in which a task may carry several
//! *implementations* (SMP, GPU, …) and a **versioning scheduler** learns
//! their per-size execution times at run time and assigns every task
//! instance to its *earliest executor*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — task/version model, execution profiles, schedulers.
//! * [`mem`] — memory spaces, coherence directory, transfer accounting.
//! * [`sim`] — deterministic discrete-event simulator of an SMP+GPU node.
//! * [`runtime`] — the task runtime (dependence analysis + engines).
//! * [`net`] — multi-node cluster layer: coordinator, remote workers,
//!   tile shipment, profile gossip (see `DESIGN.md` §7).
//! * [`serve`] — persistent multi-job service over one runtime.
//! * [`trace`] — unified event tracing, invariants, exporters, analysis.
//! * [`kernels`] — pure-Rust BLAS-like and PBPI computational kernels.
//! * [`apps`] — the paper's applications (matmul, Cholesky, PBPI).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use versa_apps as apps;
pub use versa_core as core;
pub use versa_kernels as kernels;
pub use versa_mem as mem;
pub use versa_net as net;
pub use versa_runtime as runtime;
pub use versa_serve as serve;
pub use versa_sim as sim;
pub use versa_trace as trace;

pub mod cluster_cli;

/// Convenient glob import: `use versa::prelude::*;`.
pub mod prelude {
    pub use versa_core::{
        Assignment, DeviceKind, FailureKind, Scheduler, SchedulerKind, TaskInstance, TemplateId,
        VersionId, WorkerId,
    };
    pub use versa_mem::{AccessMode, DataId, MemSpace, Region, TransferStats};
    pub use versa_runtime::{RunError, RunReport, Runtime, RuntimeConfig};
    pub use versa_sim::{FaultPlan, FaultRule, PlatformConfig, SimTime};
}
