//! Shared driver code for the cluster binaries.
//!
//! `versa-cluster`, `versa-worker`, and `versa-run --listen/--connect`
//! all speak the same job: a native-engine tiled matmul whose
//! coordinator accepts remote worker processes before submitting, runs
//! the graph across local + remote workers, verifies the result against
//! a serial recompute, and gossips its learned profile at shutdown.
//! Keeping the driver here (rather than in each `src/bin/*.rs`) means
//! the CLIs, the CI smoke job, and `cluster_bench` cannot drift apart
//! on registration order or verification policy.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use versa_apps::matmul::{self, MatmulConfig, MatmulVariant, NativeMatmulData};
use versa_core::SchedulerKind;
use versa_mem::DataId;
use versa_net::{Cluster, JoinInfo, WorkerConfig, WorkerReport};
use versa_runtime::{NativeConfig, RunReport, Runtime, RuntimeConfig};

/// The result-verification gate shared by the CLIs and CI: a tiled
/// matmul over f64 data recomputed serially must agree to this bound.
pub const MAX_ERROR: f64 = 1e-9;

/// Parse a matmul variant name as the cluster CLIs spell them.
pub fn parse_variant(s: &str) -> Option<MatmulVariant> {
    match s {
        "gpu" => Some(MatmulVariant::Gpu),
        "hybrid" => Some(MatmulVariant::Hybrid),
        "wide" | "mm-wide" => Some(MatmulVariant::Wide),
        _ => None,
    }
}

/// One coordinator-side cluster job.
#[derive(Clone, Debug)]
pub struct CoordinatorOpts {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub listen: String,
    /// Remote worker processes to wait for before submitting.
    pub expect: usize,
    /// Local SMP workers.
    pub smp: usize,
    /// Local (emulated) GPU workers.
    pub gpus: usize,
    /// Scheduler driving placement.
    pub scheduler: SchedulerKind,
    /// Which matmul version set to run.
    pub variant: MatmulVariant,
    /// Problem dimensions.
    pub config: MatmulConfig,
    /// Tile-content seed (workers verify against the same data).
    pub seed: u64,
    /// Write the bound address here once listening (lets scripts start
    /// the coordinator first and scrape the port for the workers).
    pub addr_file: Option<PathBuf>,
    /// Profile hints to warm the scheduler with before the run.
    pub warm_hints: Option<String>,
}

impl Default for CoordinatorOpts {
    fn default() -> CoordinatorOpts {
        CoordinatorOpts {
            listen: "127.0.0.1:0".into(),
            expect: 2,
            smp: 2,
            gpus: 1,
            scheduler: SchedulerKind::versioning(),
            variant: MatmulVariant::Hybrid,
            config: MatmulConfig { n: 1024, bs: 256 },
            seed: 42,
            addr_file: None,
            warm_hints: None,
        }
    }
}

/// What one coordinator job produced — everything a caller gates on.
pub struct CoordinatorOutcome {
    /// The bound listen address.
    pub addr: String,
    /// Per-node join outcomes, in accept order.
    pub joins: Vec<JoinInfo>,
    /// Wall time of each `accept_node` (handshake + gossip + attach).
    pub join_latencies: Vec<Duration>,
    /// The run report.
    pub report: RunReport,
    /// Largest deviation of the computed `C` from a serial recompute.
    pub max_error: f64,
    /// Wall time of the run itself.
    pub run_wall: Duration,
    /// The profile the coordinator learned (gossiped at shutdown).
    pub final_hints: Option<String>,
}

impl CoordinatorOutcome {
    /// The CI gate: run completed and the result verifies.
    pub fn verified(&self) -> bool {
        self.report.completed && self.max_error < MAX_ERROR
    }
}

/// Run one cluster coordinator job to completion: listen, accept
/// `expect` workers, run the matmul across local + remote workers,
/// verify, shut the cluster down cleanly.
pub fn run_coordinator(opts: &CoordinatorOpts) -> Result<CoordinatorOutcome, String> {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(opts.scheduler.clone()),
        NativeConfig::new(opts.smp, opts.gpus),
    );
    if let Some(hints) = &opts.warm_hints {
        rt.load_hints(hints).map_err(|e| format!("bad warm hints: {e:?}"))?;
    }
    let template = matmul::register_native(&mut rt, opts.variant, opts.config.bs);

    let mut cluster =
        Cluster::listen(&opts.listen).map_err(|e| format!("listen on {}: {e}", opts.listen))?;
    let addr = cluster.local_addr().map_err(|e| e.to_string())?.to_string();
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, &addr).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    eprintln!(
        "versa-cluster: listening on {addr}, waiting for {} worker(s), app matmul ({})",
        opts.expect,
        opts.variant.label()
    );

    let mut joins = Vec::with_capacity(opts.expect);
    let mut join_latencies = Vec::with_capacity(opts.expect);
    for _ in 0..opts.expect {
        let t0 = Instant::now();
        let j = cluster.accept_node(&mut rt).map_err(|e| format!("worker handshake: {e}"))?;
        join_latencies.push(t0.elapsed());
        eprintln!(
            "versa-cluster: node {} ({}) joined with {} workers, {}{}",
            j.node_id,
            j.name,
            j.smp_workers,
            if j.hints_applied > 0 { "gossip-warmed" } else { "cold" },
            if j.probation { ", on probation" } else { "" },
        );
        joins.push(j);
    }

    // Real tile data: the verification gate recomputes C serially.
    let nb = opts.config.nb();
    let bs = opts.config.bs;
    let mk = |off: u64, rt: &mut Runtime| -> Vec<DataId> {
        (0..nb * nb)
            .map(|t| {
                let tile =
                    versa_kernels::verify::random_matrix_f64(bs, opts.seed + off + t as u64);
                rt.alloc_from_f64(&tile)
            })
            .collect()
    };
    let a = mk(1000, &mut rt);
    let b = mk(2000, &mut rt);
    let c: Vec<DataId> = (0..nb * nb).map(|_| rt.alloc_from_f64(&vec![0.0; bs * bs])).collect();
    matmul::submit_tasks(&mut rt, template, nb, &a, &b, &c);

    let t_run = Instant::now();
    let report = rt
        .run()
        .map_err(|e| format!("run aborted on {:?} ({:?}): {}", e.task, e.kind, e.message))?;
    let run_wall = t_run.elapsed();

    let mut read_all =
        |ids: &[DataId]| -> Vec<Vec<f64>> { ids.iter().map(|&t| rt.read_f64(t)).collect() };
    let data =
        NativeMatmulData { nb, bs, a: read_all(&a), b: read_all(&b), c: read_all(&c) };
    let max_error = data.max_error();
    let final_hints = rt.save_hints();
    cluster.shutdown(&rt);

    Ok(CoordinatorOutcome {
        addr,
        joins,
        join_latencies,
        report,
        max_error,
        run_wall,
        final_hints,
    })
}

/// How a worker-process CLI joins a cluster.
#[derive(Clone, Debug)]
pub struct WorkerOpts {
    /// Coordinator address to dial.
    pub connect: String,
    /// Self-reported node name (empty = peer address).
    pub name: String,
    /// SMP workers to advertise.
    pub workers: usize,
    /// Must match the coordinator's `--variant` (same version set).
    pub variant: MatmulVariant,
    /// Must match the coordinator's `--bs` (kernels bake the tile dim).
    pub bs: usize,
    /// Cache gossiped hints here across memberships.
    pub hints_cache: Option<PathBuf>,
}

impl Default for WorkerOpts {
    fn default() -> WorkerOpts {
        WorkerOpts {
            connect: String::new(),
            name: String::new(),
            workers: 2,
            variant: MatmulVariant::Hybrid,
            bs: 256,
            hints_cache: None,
        }
    }
}

/// Run a worker process to completion: dial, register the same matmul
/// kernels the coordinator registered, serve until shutdown.
pub fn run_matmul_worker(opts: &WorkerOpts) -> Result<WorkerReport, String> {
    let mut cfg = WorkerConfig::new(opts.connect.clone(), opts.workers);
    cfg.name = opts.name.clone();
    cfg.hints_cache = opts.hints_cache.clone();
    let (variant, bs) = (opts.variant, opts.bs);
    versa_net::run_worker(cfg, move |rt| {
        let _ = matmul::register_native(rt, variant, bs);
    })
    .map_err(|e| format!("worker failed: {e}"))
}
