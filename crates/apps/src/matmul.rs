//! Tiled dense matrix multiplication (paper §V-B1).
//!
//! `C[i][j] += A[i][k] · B[k][j]` over `nb × nb` tiles of `bs × bs`
//! elements; each tile product is one task. Three application versions:
//!
//! * **mm-gpu** — a single CUBLAS (GPU) implementation of the task.
//! * **mm-hyb** — three implementations: CUBLAS (main), hand-coded CUDA,
//!   and CBLAS on the SMP, joined via `implements` so only the versioning
//!   scheduler can exploit them all.
//! * **mm-wide** — five implementations spanning the full kernel-tier
//!   spread: the two GPU versions plus SMP-SIMD (the runtime-dispatched
//!   packed kernel), SMP-CBLAS (the forced-scalar packed kernel) and
//!   SMP-naive. The wider, strictly ordered version space is the
//!   multiversioning setting of Luo et al. — it gives the versioning
//!   scheduler's learning phase real performance gaps to discover.

use crate::calib;
use versa_core::{DeviceKind, SchedulerKind, TemplateId, VersionId};
use versa_kernels::gemm;
use versa_mem::DataId;
use versa_runtime::{NativeConfig, RunReport, Runtime, RuntimeConfig};
use versa_sim::PlatformConfig;

/// Which task versions the application exposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatmulVariant {
    /// `mm-gpu`: only the CUBLAS version.
    Gpu,
    /// `mm-hyb`: CUBLAS + hand-CUDA + CBLAS versions.
    Hybrid,
    /// `mm-wide`: CUBLAS + hand-CUDA + SMP-SIMD + SMP-CBLAS + SMP-naive.
    Wide,
}

impl MatmulVariant {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MatmulVariant::Gpu => "mm-gpu",
            MatmulVariant::Hybrid => "mm-hyb",
            MatmulVariant::Wide => "mm-wide",
        }
    }

    /// Number of task versions the variant registers.
    pub fn version_count(self) -> usize {
        match self {
            MatmulVariant::Gpu => 1,
            MatmulVariant::Hybrid => 3,
            MatmulVariant::Wide => 5,
        }
    }
}

/// Problem dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatmulConfig {
    /// Matrix dimension in elements (square).
    pub n: usize,
    /// Tile dimension in elements (square); must divide `n`.
    pub bs: usize,
}

impl MatmulConfig {
    /// The paper's dimensions: 16384² f64 elements (2 GB per matrix),
    /// 1024² tiles (8 MB) — 16³ = 4096 tasks.
    pub fn paper() -> MatmulConfig {
        MatmulConfig { n: 16384, bs: 1024 }
    }

    /// A reduced size with the same tile-count structure for fast tests.
    pub fn quick() -> MatmulConfig {
        MatmulConfig { n: 4096, bs: 512 }
    }

    /// Tiles per matrix dimension.
    pub fn nb(&self) -> usize {
        assert!(self.bs > 0 && self.n.is_multiple_of(self.bs), "tile size must divide matrix size");
        self.n / self.bs
    }

    /// Bytes of one f64 tile.
    pub fn tile_bytes(&self) -> u64 {
        (self.bs * self.bs * 8) as u64
    }

    /// Useful FLOPs of the whole multiplication (2·n³).
    pub fn flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3)
    }

    /// Number of gemm tasks (nb³).
    pub fn task_count(&self) -> usize {
        self.nb().pow(3)
    }
}

/// Template + tile handles of a built matmul instance.
pub struct MatmulApp {
    /// The `matmul_tile` task version set.
    pub template: TemplateId,
    /// Problem dimensions.
    pub config: MatmulConfig,
    /// `A` tiles, row-major `nb × nb`.
    pub a: Vec<DataId>,
    /// `B` tiles.
    pub b: Vec<DataId>,
    /// `C` tiles.
    pub c: Vec<DataId>,
}

/// Register the `matmul_tile` template (versions per variant) and bind
/// simulation costs. GEMM durations scale as `flops / rate`, with FLOPs
/// recovered from the task's data set size (3 tiles of `bs²` f64 each).
pub fn register(rt: &mut Runtime, variant: MatmulVariant) -> TemplateId {
    let template = match variant {
        MatmulVariant::Gpu => rt
            .template("matmul_tile")
            .main("matmul_tile_cublas", &[DeviceKind::Cuda])
            .register(),
        MatmulVariant::Hybrid => rt
            .template("matmul_tile")
            .main("matmul_tile_cublas", &[DeviceKind::Cuda])
            .version("matmul_tile_cuda", &[DeviceKind::Cuda])
            .version("matmul_tile_cblas", &[DeviceKind::Smp])
            .register(),
        MatmulVariant::Wide => rt
            .template("matmul_tile")
            .main("matmul_tile_cublas", &[DeviceKind::Cuda])
            .version("matmul_tile_cuda", &[DeviceKind::Cuda])
            .version("matmul_tile_simd", &[DeviceKind::Smp])
            .version("matmul_tile_cblas", &[DeviceKind::Smp])
            .version("matmul_tile_naive", &[DeviceKind::Smp])
            .register(),
    };

    let gemm_flops = |data_set_size: u64| {
        // data_set_size = 3 tiles × bs² × 8 bytes → bs² = size / 24.
        let bs2 = data_set_size as f64 / 24.0;
        2.0 * bs2.powf(1.5)
    };
    // Per-version rate table, in VersionId order for the variant.
    let rates: &[f64] = match variant {
        MatmulVariant::Gpu => &[calib::GPU_DGEMM_CUBLAS],
        MatmulVariant::Hybrid => {
            &[calib::GPU_DGEMM_CUBLAS, calib::GPU_DGEMM_CUDA, calib::SMP_DGEMM_CBLAS]
        }
        MatmulVariant::Wide => &[
            calib::GPU_DGEMM_CUBLAS,
            calib::GPU_DGEMM_CUDA,
            calib::SMP_DGEMM_SIMD,
            calib::SMP_DGEMM_CBLAS,
            calib::SMP_DGEMM_NAIVE,
        ],
    };
    for (v, &rate) in rates.iter().enumerate() {
        rt.bind_cost(template, VersionId(v as u16), move |s| {
            calib::duration_at(gemm_flops(s), rate)
        });
    }
    template
}

/// Allocate tiles and submit the `nb³` gemm tasks.
pub fn build(rt: &mut Runtime, config: MatmulConfig, variant: MatmulVariant) -> MatmulApp {
    let template = register(rt, variant);
    let nb = config.nb();
    let bytes = config.tile_bytes();
    let alloc_tiles = |rt: &mut Runtime| (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
    let a: Vec<DataId> = alloc_tiles(rt);
    let b: Vec<DataId> = alloc_tiles(rt);
    let c: Vec<DataId> = alloc_tiles(rt);
    submit_tasks(rt, template, nb, &a, &b, &c);
    MatmulApp { template, config, a, b, c }
}

/// Submit the task graph over existing tiles (used by both engines).
pub fn submit_tasks(
    rt: &mut Runtime,
    template: TemplateId,
    nb: usize,
    a: &[DataId],
    b: &[DataId],
    c: &[DataId],
) {
    for i in 0..nb {
        for j in 0..nb {
            for k in 0..nb {
                rt.task(template)
                    .read(a[i * nb + k])
                    .read(b[k * nb + j])
                    .read_write(c[i * nb + j])
                    .submit();
            }
        }
    }
}

/// One-call simulated run: build, execute, report.
pub fn run_sim(
    config: MatmulConfig,
    variant: MatmulVariant,
    scheduler: SchedulerKind,
    platform: PlatformConfig,
) -> RunReport {
    run_sim_with(RuntimeConfig::with_scheduler(scheduler), config, variant, platform)
}

/// [`run_sim`] with full control over the [`RuntimeConfig`] — for
/// benchmarks and tests that toggle tracing or other runtime knobs.
pub fn run_sim_with(
    runtime_config: RuntimeConfig,
    config: MatmulConfig,
    variant: MatmulVariant,
    platform: PlatformConfig,
) -> RunReport {
    let mut rt = Runtime::simulated(runtime_config, platform);
    let _app = build(&mut rt, config, variant);
    rt.run().expect("run failed")
}

/// Register the matmul template *and* bind its native kernels for
/// `variant` with tile dimension `bs`. Shared by [`run_native_with`]
/// and the cluster binaries (`versa-worker`, `versa-cluster`): a
/// coordinator and its remote workers call this with identical
/// arguments so template *names* resolve to the same kernels on every
/// process — closures never cross the wire.
pub fn register_native(rt: &mut Runtime, variant: MatmulVariant, bs: usize) -> TemplateId {
    let template = register(rt, variant);

    let cublas = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let exec = ctx.exec();
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        gemm::dgemm_parallel_on(exec, reads[0], reads[1], c, bs);
    };
    let blocked = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        gemm::dgemm_blocked(reads[0], reads[1], c, bs);
    };
    let naive = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        gemm::dgemm_naive(reads[0], reads[1], c, bs);
    };
    let packed = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        gemm::dgemm_packed(reads[0], reads[1], c, bs);
    };
    let packed_scalar = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        gemm::dgemm_packed_scalar(reads[0], reads[1], c, bs);
    };
    rt.bind_native(template, VersionId(0), cublas);
    match variant {
        MatmulVariant::Gpu => {}
        MatmulVariant::Hybrid => {
            rt.bind_native(template, VersionId(1), blocked);
            rt.bind_native(template, VersionId(2), naive);
        }
        MatmulVariant::Wide => {
            // V1 hand-CUDA stand-in: dispatched packed, single-lane.
            rt.bind_native(template, VersionId(1), packed);
            // V2 SMP-SIMD: the runtime-dispatched packed kernel.
            rt.bind_native(template, VersionId(2), packed);
            // V3 SMP-CBLAS stand-in: the same core, forced-scalar tier.
            rt.bind_native(template, VersionId(3), packed_scalar);
            // V4 SMP-naive: the deliberately bad triple loop.
            rt.bind_native(template, VersionId(4), naive);
        }
    }
    template
}

/// Native-engine matmul: real f64 tiles, real kernels (parallel-blocked
/// for the emulated GPU versions, naive for the CBLAS stand-in). Returns
/// the report and the computed `C` tiles for verification.
pub fn run_native(
    config: MatmulConfig,
    variant: MatmulVariant,
    scheduler: SchedulerKind,
    native: NativeConfig,
    seed: u64,
) -> (RunReport, NativeMatmulData) {
    run_native_with(RuntimeConfig::with_scheduler(scheduler), config, variant, native, seed)
}

/// [`run_native`] with full control over the [`RuntimeConfig`] — for
/// benchmarks and tests that toggle transfer staging
/// (`async_transfers`, `lookahead_depth`) or other runtime knobs.
pub fn run_native_with(
    runtime_config: RuntimeConfig,
    config: MatmulConfig,
    variant: MatmulVariant,
    native: NativeConfig,
    seed: u64,
) -> (RunReport, NativeMatmulData) {
    let mut rt = Runtime::native(runtime_config, native);
    let template = register_native(&mut rt, variant, config.bs);
    let bs = config.bs;

    let nb = config.nb();
    let mut mk_tiles = |seed_off: u64| -> Vec<DataId> {
        (0..nb * nb)
            .map(|t| {
                let tile =
                    versa_kernels::verify::random_matrix_f64(bs, seed + seed_off + t as u64);
                rt.alloc_from_f64(&tile)
            })
            .collect()
    };
    let a = mk_tiles(1000);
    let b = mk_tiles(2000);
    let c: Vec<DataId> =
        (0..nb * nb).map(|_| rt.alloc_from_f64(&vec![0.0; bs * bs])).collect();

    submit_tasks(&mut rt, template, nb, &a, &b, &c);
    let report = rt.run().expect("run failed");
    let c_tiles = c.iter().map(|&t| rt.read_f64(t)).collect();
    let a_tiles = a.iter().map(|&t| rt.read_f64(t)).collect();
    let b_tiles = b.iter().map(|&t| rt.read_f64(t)).collect();
    (report, NativeMatmulData { nb, bs, a: a_tiles, b: b_tiles, c: c_tiles })
}

/// Tile data read back from a native run, for verification.
pub struct NativeMatmulData {
    /// Tiles per dimension.
    pub nb: usize,
    /// Tile dimension.
    pub bs: usize,
    /// `A` tile contents.
    pub a: Vec<Vec<f64>>,
    /// `B` tile contents.
    pub b: Vec<Vec<f64>>,
    /// Computed `C` tile contents.
    pub c: Vec<Vec<f64>>,
}

impl NativeMatmulData {
    /// Recompute `C` serially with the naive kernel and return the
    /// largest deviation from the runtime's result.
    pub fn max_error(&self) -> f64 {
        let (nb, bs) = (self.nb, self.bs);
        let mut worst = 0.0f64;
        for i in 0..nb {
            for j in 0..nb {
                let mut expect = vec![0.0; bs * bs];
                for k in 0..nb {
                    gemm::dgemm_naive(&self.a[i * nb + k], &self.b[k * nb + j], &mut expect, bs);
                }
                let got = &self.c[i * nb + j];
                let err = versa_kernels::verify::max_abs_diff_f64(&expect, got);
                worst = worst.max(err);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_v() {
        let c = MatmulConfig::paper();
        assert_eq!(c.nb(), 16);
        assert_eq!(c.task_count(), 4096);
        assert_eq!(c.tile_bytes(), 8 * 1024 * 1024, "8 MB tiles");
        // 2 GB per matrix.
        assert_eq!(c.tile_bytes() * (c.nb() * c.nb()) as u64, 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(MatmulVariant::Gpu.label(), "mm-gpu");
        assert_eq!(MatmulVariant::Hybrid.label(), "mm-hyb");
        assert_eq!(MatmulVariant::Wide.label(), "mm-wide");
        assert_eq!(MatmulVariant::Gpu.version_count(), 1);
        assert_eq!(MatmulVariant::Hybrid.version_count(), 3);
        assert_eq!(MatmulVariant::Wide.version_count(), 5);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn tile_must_divide_matrix() {
        let _ = MatmulConfig { n: 100, bs: 33 }.nb();
    }

    #[test]
    fn wide_sim_learns_to_prefer_cublas() {
        let cfg = MatmulConfig { n: 2048, bs: 256 };
        let report = run_sim(
            cfg,
            MatmulVariant::Wide,
            SchedulerKind::versioning(),
            PlatformConfig::minotauro(4, 2),
        );
        assert_eq!(report.tasks_executed, cfg.task_count() as u64);
        // All executions come from the five registered versions…
        let total: u64 = report.version_counts.values().sum();
        assert_eq!(total, report.tasks_executed);
        assert!(report.version_counts.keys().all(|&(_, v)| v.0 < 5));
        // …and once the learning phase is over, CUBLAS dominates.
        let cublas = report
            .version_counts
            .iter()
            .filter(|((_, v), _)| v.0 == 0)
            .map(|(_, &c)| c)
            .sum::<u64>();
        assert!(
            cublas * 2 > report.tasks_executed,
            "cublas ran {cublas}/{} tasks — versioning failed to learn",
            report.tasks_executed
        );
    }

    #[test]
    fn wide_native_run_is_correct() {
        let cfg = MatmulConfig { n: 128, bs: 32 };
        let (report, data) = run_native(
            cfg,
            MatmulVariant::Wide,
            SchedulerKind::versioning(),
            NativeConfig::new(2, 1),
            99,
        );
        assert_eq!(report.tasks_executed, cfg.task_count() as u64);
        assert!(data.max_error() < 1e-9, "native mm-wide error {}", data.max_error());
    }
}
