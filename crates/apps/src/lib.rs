//! # versa-apps — the paper's evaluation applications
//!
//! Task-graph builders for the three applications of the paper's §V,
//! each in the exact application variants the paper compares, runnable
//! on both the simulated MinoTauro node (figure reproduction) and the
//! native engine (end-to-end correctness):
//!
//! * [`matmul`] — tiled dense matrix multiplication (`mm-gpu`, `mm-hyb`).
//! * [`cholesky`] — tiled Cholesky factorization (`potrf-smp`,
//!   `potrf-gpu`, `potrf-hyb`).
//! * [`pbpi`] — Bayesian phylogenetic inference by MCMC (`pbpi-smp`,
//!   `pbpi-gpu`, `pbpi-hyb`).
//! * [`calib`] — the simulated-platform cost calibration (device rates
//!   matched to the ratios the paper reports).
//! * [`jobs`] — the applications as reusable `versa-serve` job
//!   factories (idempotent template registration, verify-and-free
//!   finalizers).

#![warn(missing_docs)]

pub mod calib;
pub mod cholesky;
pub mod jobs;
pub mod matmul;
pub mod pbpi;
