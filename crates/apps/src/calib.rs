//! Cost calibration for the simulated MinoTauro node.
//!
//! The simulator needs a duration model per (kernel, device). These
//! constants are calibrated to the ratios the paper reports, not to
//! absolute hardware truth — the reproduction targets the *shape* of the
//! results:
//!
//! * matmul tile (1024² f64): "SMP task duration is about 60 times the
//!   GPU task duration" (§V-B1) — CUBLAS ≈ 7 ms vs CBLAS ≈ 420 ms, with
//!   the hand-coded CUDA kernel somewhat slower than CUBLAS.
//! * one SMP core < 1% of node peak, one GPU ≈ 45% (§V-B1).
//! * PBPI loops: "the task itself is between three and four times slower
//!   for the SMP versions" (§V-B3).
//!
//! All models are expressed as *rates* (FLOP/s or bytes/s) so that task
//! durations scale correctly when an application is run at non-paper
//! sizes.

use std::time::Duration;

/// Sustained f64 GEMM rate of the emulated GPU running CUBLAS (FLOP/s).
/// 2·1024³ FLOP in ≈ 7 ms.
pub const GPU_DGEMM_CUBLAS: f64 = 306.0e9;

/// Sustained f64 GEMM rate of the hand-coded CUDA kernel (FLOP/s);
/// clearly slower than CUBLAS so the versioning scheduler abandons it
/// after the learning phase (paper Fig. 8).
pub const GPU_DGEMM_CUDA: f64 = 214.0e9;

/// Sustained f64 GEMM rate of one SMP core running CBLAS (FLOP/s);
/// ≈ 60× slower than CUBLAS per tile.
pub const SMP_DGEMM_CBLAS: f64 = 5.1e9;

/// Sustained f64 GEMM rate of one SMP core running the explicit-SIMD
/// packed kernel (the `mm-wide` variant's extra CPU version): ~4× the
/// CBLAS stand-in — mirroring the measured avx512-vs-scalar gap of the
/// native kernels — yet still ~15× off CUBLAS, so a learning scheduler
/// should prefer it over CBLAS without ever preferring it over the GPU.
pub const SMP_DGEMM_SIMD: f64 = 20.4e9;

/// Sustained f64 GEMM rate of one SMP core running the naive triple
/// loop — the deliberately bad version in the `mm-wide` version space;
/// a scheduler that can't learn pays ~190× per task for picking it.
pub const SMP_DGEMM_NAIVE: f64 = 1.6e9;

/// Sustained f32 GEMM rate of the GPU (CUBLAS sgemm).
pub const GPU_SGEMM: f64 = 550.0e9;

/// Sustained f32 SYRK rate of the GPU (CUBLAS ssyrk).
pub const GPU_SSYRK: f64 = 460.0e9;

/// Sustained f32 TRSM rate of the GPU (CUBLAS strsm).
pub const GPU_STRSM: f64 = 380.0e9;

/// Sustained f32 POTRF rate of the GPU (MAGMA spotrf) — much lower than
/// GEMM-class kernels: the panel factorization is poorly suited to GPUs.
pub const GPU_SPOTRF: f64 = 100.0e9;

/// Sustained f32 POTRF rate of one SMP core (reference CBLAS spotrf, no
/// vendor tuning) — slow enough that the GPU stays the earliest executor
/// for potrf even behind a queue of trailing updates (paper Fig. 11).
pub const SMP_SPOTRF: f64 = 2.0e9;

/// PBPI loop-1 (partial propagation) GPU throughput in sites/second.
/// The propagation is dense 4×4 linear algebra — very GPU-friendly, so
/// the versioning scheduler sends loop 1 "most of the times to the GPU"
/// (paper Fig. 14).
pub const GPU_PBPI_LOOP1: f64 = 180.0e6;

/// PBPI loop-1 SMP throughput.
pub const SMP_PBPI_LOOP1: f64 = 36.0e6;

/// PBPI loop-2 (partial combination) GPU throughput in sites/second.
pub const GPU_PBPI_LOOP2: f64 = 160.0e6;

/// PBPI loop-2 SMP throughput (≈ 3.5× slower).
pub const SMP_PBPI_LOOP2: f64 = 46.0e6;

/// PBPI loop-3 (log-likelihood reduction) SMP throughput in
/// sites/second.
pub const SMP_PBPI_LOOP3: f64 = 120.0e6;

/// Duration of `flops` floating-point operations at `rate` FLOP/s (also
/// used for site-rate models).
pub fn duration_at(flops: f64, rate: f64) -> Duration {
    Duration::from_secs_f64(flops / rate)
}

#[cfg(test)]
// The calibration constants are compile-time values; asserting on them is
// the point of these tests (they pin the paper's ratios), so the
// constant-assertion lint does not apply.
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn matmul_tile_ratio_matches_paper() {
        // 2·1024³ FLOP per tile.
        let flops = 2.0 * (1024.0f64).powi(3);
        let gpu = duration_at(flops, GPU_DGEMM_CUBLAS);
        let smp = duration_at(flops, SMP_DGEMM_CBLAS);
        let ratio = smp.as_secs_f64() / gpu.as_secs_f64();
        assert!((55.0..65.0).contains(&ratio), "SMP/GPU ratio {ratio}, paper says ~60");
        assert!((0.006..0.009).contains(&gpu.as_secs_f64()), "CUBLAS tile ≈ 7 ms");
    }

    #[test]
    fn wide_version_space_is_strictly_ordered() {
        // mm-wide relies on an unambiguous quality ordering of its five
        // versions: CUBLAS > CUDA > SMP-SIMD > SMP-CBLAS > SMP-naive.
        assert!(GPU_DGEMM_CUBLAS > GPU_DGEMM_CUDA);
        assert!(GPU_DGEMM_CUDA > SMP_DGEMM_SIMD);
        assert!(SMP_DGEMM_SIMD > SMP_DGEMM_CBLAS);
        assert!(SMP_DGEMM_CBLAS > SMP_DGEMM_NAIVE);
        // SIMD is ~4× CBLAS (the measured avx512/scalar kernel gap).
        let r = SMP_DGEMM_SIMD / SMP_DGEMM_CBLAS;
        assert!((3.0..5.0).contains(&r), "SIMD/CBLAS ratio {r} drifted");
    }

    #[test]
    fn cuda_hand_kernel_is_slower_than_cublas() {
        assert!(GPU_DGEMM_CUDA < GPU_DGEMM_CUBLAS);
        assert!(GPU_DGEMM_CUDA > 0.5 * GPU_DGEMM_CUBLAS, "but same order of magnitude");
    }

    #[test]
    fn potrf_is_the_weak_gpu_kernel() {
        assert!(GPU_SPOTRF < GPU_SGEMM / 5.0);
        assert!(GPU_SPOTRF > SMP_SPOTRF, "GPU potrf still beats one core in compute");
    }

    #[test]
    fn pbpi_smp_gpu_ratio_matches_paper() {
        // Loop 2 carries the paper's quoted "three and four times slower"
        // SMP/GPU ratio; loop 1 is more GPU-friendly (Fig. 14 shows it
        // almost entirely on the GPU).
        let l2 = GPU_PBPI_LOOP2 / SMP_PBPI_LOOP2;
        assert!((3.0..4.0).contains(&l2), "loop2 ratio {l2} out of paper's 3–4×");
        let l1 = GPU_PBPI_LOOP1 / SMP_PBPI_LOOP1;
        assert!(l1 > l2, "loop1 must be more GPU-biased than loop2");
    }

    #[test]
    fn duration_at_is_linear() {
        let d1 = duration_at(1e9, 1e9);
        assert!((d1.as_secs_f64() - 1.0).abs() < 1e-12);
        let d2 = duration_at(2e9, 1e9);
        assert_eq!(d2, d1 * 2);
    }
}
