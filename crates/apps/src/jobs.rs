//! Reusable [`JobSpec`] factories over the paper's applications — the
//! bridge between the one-shot app builders and the `versa-serve`
//! multi-job service.
//!
//! Each factory's build closure registers its templates *idempotently*
//! (looked up by name first), so any number of jobs submitted to one
//! service share a single template — and therefore a single learned
//! execution profile: the cross-job warmth the service exists for. The
//! finish closure reads results back, optionally verifies them against
//! a serial recomputation, and frees every allocation the job made.

use crate::{cholesky, matmul};
use versa_core::VersionId;
use versa_mem::DataId;
use versa_runtime::Runtime;
use versa_serve::{FinishFn, JobSpec};

/// Idempotent template registration + native kernel binding for the
/// hybrid matmul. First registration wins; later jobs reuse it.
fn ensure_matmul_native(rt: &mut Runtime, bs: usize) -> versa_core::TemplateId {
    if let Some(t) = rt.templates().by_name("matmul_tile") {
        return t;
    }
    let template = matmul::register(rt, matmul::MatmulVariant::Hybrid);
    rt.bind_native(template, VersionId(0), move |ctx| {
        let exec = ctx.exec();
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        versa_kernels::gemm::dgemm_parallel_on(exec, reads[0], reads[1], c, bs);
    });
    rt.bind_native(template, VersionId(1), move |ctx| {
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        versa_kernels::gemm::dgemm_blocked(reads[0], reads[1], c, bs);
    });
    rt.bind_native(template, VersionId(2), move |ctx| {
        let (reads, c) = ctx.f64_reads_and_mut(&[0, 1], 2);
        versa_kernels::gemm::dgemm_naive(reads[0], reads[1], c, bs);
    });
    template
}

/// A native hybrid matmul job: random `A`/`B` tiles, `nb³` gemm tasks.
/// With `verify`, the finish closure recomputes `C` serially and fails
/// the job on any deviation — keep dimensions small when verifying.
/// All tiles are freed at completion either way.
///
/// Every job built by this factory must use the same `bs` (the kernels
/// bound at first registration close over it).
pub fn matmul_native_job(config: matmul::MatmulConfig, seed: u64, verify: bool) -> JobSpec {
    let name = format!("matmul-{}x{}", config.n, config.bs);
    JobSpec::new(name, move |rt| {
        let bs = config.bs;
        let nb = config.nb();
        let template = ensure_matmul_native(rt, bs);
        let mut mk = |off: u64| -> Vec<DataId> {
            (0..nb * nb)
                .map(|t| {
                    let tile = versa_kernels::verify::random_matrix_f64(bs, seed + off + t as u64);
                    rt.alloc_from_f64(&tile)
                })
                .collect()
        };
        let a = mk(1_000);
        let b = mk(2_000);
        let c: Vec<DataId> = (0..nb * nb).map(|_| rt.alloc_from_f64(&vec![0.0; bs * bs])).collect();
        matmul::submit_tasks(rt, template, nb, &a, &b, &c);
        let finish: FinishFn = Box::new(move |rt| {
            let result = if verify {
                let read = |ids: &[DataId], rt: &mut Runtime| -> Vec<Vec<f64>> {
                    ids.iter().map(|&t| rt.read_f64(t)).collect()
                };
                let data = matmul::NativeMatmulData {
                    nb,
                    bs,
                    a: read(&a, rt),
                    b: read(&b, rt),
                    c: read(&c, rt),
                };
                let err = data.max_error();
                if err < 1e-9 {
                    Ok(())
                } else {
                    Err(format!("matmul verification failed: max error {err:e}"))
                }
            } else {
                Ok(())
            };
            for id in a.iter().chain(&b).chain(&c) {
                rt.free(*id);
            }
            result
        });
        finish
    })
}

fn ensure_cholesky_native(
    rt: &mut Runtime,
    bs: usize,
) -> (versa_core::TemplateId, versa_core::TemplateId, versa_core::TemplateId, versa_core::TemplateId)
{
    if let (Some(p), Some(t), Some(s), Some(g)) = (
        rt.templates().by_name("potrf"),
        rt.templates().by_name("trsm"),
        rt.templates().by_name("syrk"),
        rt.templates().by_name("gemm"),
    ) {
        return (p, t, s, g);
    }
    let templates = cholesky::register(rt, cholesky::CholeskyVariant::PotrfHybrid);
    let (potrf_t, trsm_t, syrk_t, gemm_t) = templates;
    let potrf_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        versa_kernels::potrf::spotrf(ctx.f32_mut(0), bs).expect("tile not positive definite");
    };
    rt.bind_native(potrf_t, VersionId(0), potrf_kernel);
    rt.bind_native(potrf_t, VersionId(1), potrf_kernel);
    rt.bind_native(trsm_t, VersionId(0), move |ctx| {
        let exec = ctx.exec();
        let (reads, a) = ctx.f32_reads_and_mut(&[0], 1);
        versa_kernels::trsm::strsm_right_lower_trans_par_on(exec, reads[0], a, bs);
    });
    rt.bind_native(syrk_t, VersionId(0), move |ctx| {
        let exec = ctx.exec();
        let (reads, c) = ctx.f32_reads_and_mut(&[0], 1);
        versa_kernels::syrk::ssyrk_lower_par_on(exec, reads[0], c, bs);
    });
    rt.bind_native(gemm_t, VersionId(0), move |ctx| {
        let exec = ctx.exec();
        let (reads, c) = ctx.f32_reads_and_mut(&[0, 1], 2);
        versa_kernels::gemm::sgemm_nt_sub_par_on(exec, reads[0], reads[1], c, bs);
    });
    templates
}

/// A native hybrid Cholesky job over a random SPD matrix. With
/// `verify`, the finish closure checks `L·Lᵀ` against the input. Tiles
/// are freed at completion. As with [`matmul_native_job`], every job
/// from this factory must share one `bs`.
pub fn cholesky_native_job(config: cholesky::CholeskyConfig, seed: u64, verify: bool) -> JobSpec {
    let name = format!("cholesky-{}x{}", config.n, config.bs);
    JobSpec::new(name, move |rt| {
        let (n, bs, nb) = (config.n, config.bs, config.nb());
        let templates = ensure_cholesky_native(rt, bs);
        let full = versa_kernels::verify::spd_matrix_f32(n, seed);
        let tiles: Vec<DataId> = (0..nb * nb)
            .map(|idx| {
                let (ti, tj) = (idx / nb, idx % nb);
                let mut t = vec![0.0f32; bs * bs];
                for r in 0..bs {
                    let src = (ti * bs + r) * n + tj * bs;
                    t[r * bs..r * bs + bs].copy_from_slice(&full[src..src + bs]);
                }
                rt.alloc_from_f32(&t)
            })
            .collect();
        cholesky::submit_tasks(rt, templates, nb, &tiles);
        let finish: FinishFn = Box::new(move |rt| {
            let result = if verify {
                let factor: Vec<Vec<f32>> = tiles.iter().map(|&t| rt.read_f32(t)).collect();
                let data = cholesky::NativeCholeskyData { n, bs, nb, input: full, factor };
                let err = data.max_error();
                let tolerance = 5e-2 * n as f32;
                if err < tolerance {
                    Ok(())
                } else {
                    Err(format!("cholesky verification failed: max error {err}"))
                }
            } else {
                Ok(())
            };
            for id in &tiles {
                rt.free(*id);
            }
            result
        });
        finish
    })
}

/// Idempotent registration of the tiny AXPY template: two SMP versions
/// (a strided and a sequential loop), so the versioning scheduler has a
/// real choice to learn even on a CPU-only service. Both native kernels
/// and simulated cost models are bound, so the factory drives either
/// engine.
fn ensure_tiny_axpy(rt: &mut Runtime) -> versa_core::TemplateId {
    if let Some(t) = rt.templates().by_name("tiny_axpy") {
        return t;
    }
    let template = rt
        .template("tiny_axpy")
        .main("axpy_unrolled", &[versa_core::DeviceKind::Smp])
        .version("axpy_serial", &[versa_core::DeviceKind::Smp])
        .register();
    rt.bind_cost(template, VersionId(0), |_| std::time::Duration::from_micros(2));
    rt.bind_cost(template, VersionId(1), |_| std::time::Duration::from_micros(3));
    rt.bind_native(template, VersionId(0), |ctx| {
        let (reads, y) = ctx.f64_reads_and_mut(&[0], 1);
        let x = reads[0];
        let mut chunks_y = y.chunks_exact_mut(4);
        let mut chunks_x = x.chunks_exact(4);
        for (cy, cx) in chunks_y.by_ref().zip(chunks_x.by_ref()) {
            cy[0] += 2.0 * cx[0];
            cy[1] += 2.0 * cx[1];
            cy[2] += 2.0 * cx[2];
            cy[3] += 2.0 * cx[3];
        }
        for (yi, xi) in chunks_y.into_remainder().iter_mut().zip(chunks_x.remainder()) {
            *yi += 2.0 * *xi;
        }
    });
    rt.bind_native(template, VersionId(1), |ctx| {
        let (reads, y) = ctx.f64_reads_and_mut(&[0], 1);
        for (yi, xi) in y.iter_mut().zip(reads[0]) {
            *yi += 2.0 * *xi;
        }
    });
    template
}

/// A tiny native job — two allocations, a two-task AXPY chain — whose
/// cost is dominated by runtime bookkeeping, not kernel time. This is
/// the unit of the `serve_throughput` bench: pushing many of these
/// through a service measures admission/scheduling/recycling overhead
/// rather than arithmetic. Frees its allocations at completion.
pub fn tiny_axpy_job(elems: usize, seed: u64) -> JobSpec {
    JobSpec::new("tiny-axpy", move |rt| {
        let template = ensure_tiny_axpy(rt);
        let x: Vec<f64> = (0..elems).map(|i| ((seed + i as u64) % 97) as f64).collect();
        let x = rt.alloc_from_f64(&x);
        let y = rt.alloc_from_f64(&vec![1.0; elems]);
        // A dependent chain: the second task waits on the first's inout.
        rt.task(template).read(x).read_write(y).submit();
        rt.task(template).read(x).read_write(y).submit();
        let finish: FinishFn = Box::new(move |rt| {
            rt.free(x);
            rt.free(y);
            Ok(())
        });
        finish
    })
}

/// A simulated hybrid matmul job (cost models, no data contents): the
/// sim-engine counterpart of [`matmul_native_job`], for driving a
/// service on the virtual platform. Frees its tiles at completion.
pub fn matmul_sim_job(config: matmul::MatmulConfig) -> JobSpec {
    let name = format!("matmul-sim-{}x{}", config.n, config.bs);
    JobSpec::new(name, move |rt| {
        let template = rt
            .templates()
            .by_name("matmul_tile")
            .unwrap_or_else(|| matmul::register(rt, matmul::MatmulVariant::Hybrid));
        let nb = config.nb();
        let bytes = config.tile_bytes();
        let mk = |rt: &mut Runtime| -> Vec<DataId> {
            (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect()
        };
        let a = mk(rt);
        let b = mk(rt);
        let c = mk(rt);
        matmul::submit_tasks(rt, template, nb, &a, &b, &c);
        let finish: FinishFn = Box::new(move |rt| {
            for id in a.iter().chain(&b).chain(&c) {
                rt.free(*id);
            }
            Ok(())
        });
        finish
    })
}
