//! PBPI — Bayesian phylogenetic inference by MCMC sampling (paper §V-B3).
//!
//! Each MCMC generation processes the site-pattern arrays through three
//! computational loops; the site arrays are partitioned into chunks and
//! each (loop, chunk) pair is a task:
//!
//! * `update` (SMP) — the MCMC proposal: rewrites the per-chunk input
//!   arrays. Reads the previous generation's log-likelihood, which
//!   serializes generations — this is why "memory transfers cannot be
//!   overlapped properly due to data dependences".
//! * `loop1` — conditional-likelihood propagation (two branch tasks per
//!   chunk). GPU and/or SMP versions per application variant.
//! * `loop2` — partial combination. GPU and/or SMP versions.
//! * `loop3` (SMP only) — per-chunk log-likelihood reduction; its
//!   SMP-only placement forces loop2's output back to host memory every
//!   generation.
//! * `reduce` (SMP) — combines per-chunk log-likelihoods into the
//!   generation's total.

use crate::calib;
use versa_core::{DeviceKind, SchedulerKind, TemplateId, VersionId};
use versa_kernels::pbpi as kern;
use versa_mem::DataId;
use versa_runtime::{NativeConfig, RunReport, Runtime, RuntimeConfig};
use versa_sim::PlatformConfig;

/// Which loop-1/loop-2 implementations the application exposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PbpiVariant {
    /// `pbpi-smp`: SMP versions only — data never leaves the host.
    Smp,
    /// `pbpi-gpu`: GPU versions only for loops 1–2 (loop 3 stays SMP).
    Gpu,
    /// `pbpi-hyb`: both implementations for loops 1–2.
    Hybrid,
}

impl PbpiVariant {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PbpiVariant::Smp => "pbpi-smp",
            PbpiVariant::Gpu => "pbpi-gpu",
            PbpiVariant::Hybrid => "pbpi-hyb",
        }
    }
}

/// Problem dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PbpiConfig {
    /// Number of site chunks (tasks per loop per generation).
    pub chunks: usize,
    /// Sites per chunk; each site carries 4 f64 states.
    pub sites_per_chunk: usize,
    /// MCMC generations.
    pub generations: usize,
}

impl PbpiConfig {
    /// Paper-scale data set: 64 × 65536 sites → 2 MB per chunk array,
    /// ≈ 640 MB live data (the paper's 500 MB class), 100 generations.
    pub fn paper() -> PbpiConfig {
        PbpiConfig { chunks: 64, sites_per_chunk: 65536, generations: 100 }
    }

    /// Reduced size for fast tests.
    pub fn quick() -> PbpiConfig {
        PbpiConfig { chunks: 4, sites_per_chunk: 2048, generations: 3 }
    }

    /// Bytes of one chunk's partial array (4 f64 states per site).
    pub fn chunk_bytes(&self) -> u64 {
        (self.sites_per_chunk * kern::STATES * 8) as u64
    }

    /// Total sites processed per loop per generation.
    pub fn sites(&self) -> usize {
        self.chunks * self.sites_per_chunk
    }

    /// Tasks submitted per generation (2×loop1 + update + loop2 + loop3
    /// per chunk, plus the reduce).
    pub fn tasks_per_generation(&self) -> usize {
        5 * self.chunks + 1
    }
}

/// Templates and data handles of a built PBPI instance.
pub struct PbpiApp {
    /// The MCMC proposal task (SMP).
    pub update: TemplateId,
    /// Loop 1 version set.
    pub loop1: TemplateId,
    /// Loop 2 version set.
    pub loop2: TemplateId,
    /// Loop 3 (SMP-only).
    pub loop3: TemplateId,
    /// The per-generation reduction (SMP).
    pub reduce: TemplateId,
    /// Problem dimensions.
    pub config: PbpiConfig,
    /// Total log-likelihood cell (8 bytes, host-resident).
    pub ll_total: DataId,
}

fn hybrid_template(
    rt: &mut Runtime,
    name: &str,
    variant: PbpiVariant,
) -> TemplateId {
    match variant {
        PbpiVariant::Smp => rt
            .template(name)
            .main(&format!("{name}_smp"), &[DeviceKind::Smp])
            .register(),
        PbpiVariant::Gpu => rt
            .template(name)
            .main(&format!("{name}_cuda"), &[DeviceKind::Cuda])
            .register(),
        PbpiVariant::Hybrid => rt
            .template(name)
            .main(&format!("{name}_cuda"), &[DeviceKind::Cuda])
            .version(&format!("{name}_smp"), &[DeviceKind::Smp])
            .register(),
    }
}

/// Register the five templates and bind simulation costs (site
/// throughputs from [`calib`], with sites recovered from each task's
/// data set size).
pub fn register(rt: &mut Runtime, variant: PbpiVariant) -> (TemplateId, TemplateId, TemplateId, TemplateId, TemplateId) {
    let update = rt
        .template("pbpi_update")
        .main("pbpi_update_smp", &[DeviceKind::Smp])
        .register();
    let loop1 = hybrid_template(rt, "pbpi_loop1", variant);
    let loop2 = hybrid_template(rt, "pbpi_loop2", variant);
    let loop3 = rt
        .template("pbpi_loop3")
        .main("pbpi_loop3_smp", &[DeviceKind::Smp])
        .register();
    let reduce = rt
        .template("pbpi_reduce")
        .main("pbpi_reduce_smp", &[DeviceKind::Smp])
        .register();

    // Sites from data set size: loop1 touches 2 chunk arrays (64 B/site
    // across both), loop2 touches 3 (96 B/site), loop3 one array + the
    // 8-byte output, update the ll cell + 2 arrays.
    let l1_sites = |s: u64| s as f64 / 64.0;
    let l2_sites = |s: u64| s as f64 / 96.0;
    let l3_sites = |s: u64| s as f64 / 32.0;

    rt.bind_cost(update, VersionId(0), move |s| {
        calib::duration_at(s as f64 / 64.0, 500.0e6)
    });
    let (main_rate1, main_rate2) = match variant {
        PbpiVariant::Smp => (calib::SMP_PBPI_LOOP1, calib::SMP_PBPI_LOOP2),
        _ => (calib::GPU_PBPI_LOOP1, calib::GPU_PBPI_LOOP2),
    };
    rt.bind_cost(loop1, VersionId(0), move |s| calib::duration_at(l1_sites(s), main_rate1));
    rt.bind_cost(loop2, VersionId(0), move |s| calib::duration_at(l2_sites(s), main_rate2));
    if variant == PbpiVariant::Hybrid {
        rt.bind_cost(loop1, VersionId(1), move |s| {
            calib::duration_at(l1_sites(s), calib::SMP_PBPI_LOOP1)
        });
        rt.bind_cost(loop2, VersionId(1), move |s| {
            calib::duration_at(l2_sites(s), calib::SMP_PBPI_LOOP2)
        });
    }
    rt.bind_cost(loop3, VersionId(0), move |s| {
        calib::duration_at(l3_sites(s), calib::SMP_PBPI_LOOP3)
    });
    rt.bind_cost(reduce, VersionId(0), |_| std::time::Duration::from_micros(20));

    (update, loop1, loop2, loop3, reduce)
}

/// Allocate chunk arrays and submit all generations' task graphs.
pub fn build(rt: &mut Runtime, config: PbpiConfig, variant: PbpiVariant) -> PbpiApp {
    let (update, loop1, loop2, loop3, reduce) = register(rt, variant);
    let cb = config.chunk_bytes();
    let alloc = |rt: &mut Runtime| -> Vec<DataId> {
        (0..config.chunks).map(|_| rt.alloc_bytes(cb)).collect()
    };
    let tip_l = alloc(rt);
    let tip_r = alloc(rt);
    let part_l = alloc(rt);
    let part_r = alloc(rt);
    let comb = alloc(rt);
    let ll: Vec<DataId> = (0..config.chunks).map(|_| rt.alloc_bytes(8)).collect();
    let ll_total = rt.alloc_bytes(8);

    for _gen in 0..config.generations {
        for c in 0..config.chunks {
            rt.task(update).read(ll_total).write(tip_l[c]).write(tip_r[c]).submit();
        }
        for c in 0..config.chunks {
            rt.task(loop1).read(tip_l[c]).write(part_l[c]).submit();
            rt.task(loop1).read(tip_r[c]).write(part_r[c]).submit();
        }
        for c in 0..config.chunks {
            rt.task(loop2).read(part_l[c]).read(part_r[c]).write(comb[c]).submit();
        }
        for c in 0..config.chunks {
            rt.task(loop3).read(comb[c]).write(ll[c]).submit();
        }
        let mut reducer = rt.task(reduce);
        for &cell in ll.iter().take(config.chunks) {
            reducer = reducer.read(cell);
        }
        reducer.write(ll_total).submit();
    }

    PbpiApp { update, loop1, loop2, loop3, reduce, config, ll_total }
}

/// One-call simulated run.
pub fn run_sim(
    config: PbpiConfig,
    variant: PbpiVariant,
    scheduler: SchedulerKind,
    platform: PlatformConfig,
) -> RunReport {
    let mut rt = Runtime::simulated(RuntimeConfig::with_scheduler(scheduler), platform);
    let _app = build(&mut rt, config, variant);
    rt.run().expect("run failed")
}

/// Native PBPI: real likelihood kernels over real arrays. Returns the
/// report and the final total log-likelihood.
pub fn run_native(
    config: PbpiConfig,
    variant: PbpiVariant,
    scheduler: SchedulerKind,
    native: NativeConfig,
) -> (RunReport, f64) {
    let mut rt = Runtime::native(RuntimeConfig::with_scheduler(scheduler), native);
    let (update, loop1, loop2, loop3, reduce) = register(&mut rt, variant);
    let sites = config.sites_per_chunk;

    // The proposal rewrites the tips with a fixed deterministic pattern
    // (arg0 = ll_total [read], arg1/arg2 = tip chunks [write]).
    let update_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        for arg in 1..=2 {
            let tip = ctx.f64_mut(arg);
            for (i, v) in tip.iter_mut().enumerate() {
                *v = 0.2 + 0.6 * ((i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0);
            }
        }
    };
    // Loop 1: arg0 = tip [read], arg1 = partial [write].
    let loop1_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let p = kern::jukes_cantor(0.1);
        let exec = ctx.exec();
        let (reads, out) = ctx.f64_reads_and_mut(&[0], 1);
        kern::loop1_propagate_on(exec, &p, reads[0], out, sites);
    };
    // Loop 2: arg0/arg1 = partials [read], arg2 = combined [write].
    let loop2_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let exec = ctx.exec();
        let (reads, out) = ctx.f64_reads_and_mut(&[0, 1], 2);
        kern::loop2_combine_on(exec, reads[0], reads[1], out, sites);
    };
    // Loop 3: arg0 = combined [read], arg1 = ll cell [write].
    let loop3_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let ll = kern::loop3_loglik(ctx.f64(0), sites);
        ctx.f64_mut(1)[0] = ll;
    };
    // Reduce: args 0..chunks = ll cells [read], last = total [write].
    let reduce_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let n = ctx.arg_count() - 1;
        let total: f64 = (0..n).map(|i| ctx.f64(i)[0]).sum();
        ctx.f64_mut(n)[0] = total;
    };

    rt.bind_native(update, VersionId(0), update_kernel);
    rt.bind_native(loop1, VersionId(0), loop1_kernel);
    rt.bind_native(loop2, VersionId(0), loop2_kernel);
    if variant == PbpiVariant::Hybrid {
        rt.bind_native(loop1, VersionId(1), loop1_kernel);
        rt.bind_native(loop2, VersionId(1), loop2_kernel);
    }
    rt.bind_native(loop3, VersionId(0), loop3_kernel);
    rt.bind_native(reduce, VersionId(0), reduce_kernel);

    let app = build_with_registered(
        &mut rt,
        config,
        (update, loop1, loop2, loop3, reduce),
    );
    let report = rt.run().expect("run failed");
    let ll_total = rt.read_f64(app.ll_total)[0];
    (report, ll_total)
}

/// The expected total log-likelihood for the deterministic native
/// kernels above, computed serially (for verification).
pub fn native_reference_ll(config: PbpiConfig) -> f64 {
    let sites = config.sites_per_chunk;
    let mut tip = vec![0.0f64; sites * kern::STATES];
    for (i, v) in tip.iter_mut().enumerate() {
        *v = 0.2 + 0.6 * ((i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0);
    }
    let p = kern::jukes_cantor(0.1);
    let mut part = vec![0.0; sites * kern::STATES];
    kern::loop1_propagate(&p, &tip, &mut part, sites, 1);
    let mut comb = vec![0.0; sites * kern::STATES];
    kern::loop2_combine(&part, &part, &mut comb, sites, 1);
    let per_chunk = kern::loop3_loglik(&comb, sites);
    per_chunk * config.chunks as f64
}

/// `build` against already-registered templates (shared by native/sim
/// paths).
fn build_with_registered(
    rt: &mut Runtime,
    config: PbpiConfig,
    (update, loop1, loop2, loop3, reduce): (TemplateId, TemplateId, TemplateId, TemplateId, TemplateId),
) -> PbpiApp {
    let cb = config.chunk_bytes();
    let alloc = |rt: &mut Runtime| -> Vec<DataId> {
        (0..config.chunks).map(|_| rt.alloc_bytes(cb)).collect()
    };
    let tip_l = alloc(rt);
    let tip_r = alloc(rt);
    let part_l = alloc(rt);
    let part_r = alloc(rt);
    let comb = alloc(rt);
    let ll: Vec<DataId> = (0..config.chunks).map(|_| rt.alloc_bytes(8)).collect();
    let ll_total = rt.alloc_bytes(8);

    for _gen in 0..config.generations {
        for c in 0..config.chunks {
            rt.task(update).read(ll_total).write(tip_l[c]).write(tip_r[c]).submit();
        }
        for c in 0..config.chunks {
            rt.task(loop1).read(tip_l[c]).write(part_l[c]).submit();
            rt.task(loop1).read(tip_r[c]).write(part_r[c]).submit();
        }
        for c in 0..config.chunks {
            rt.task(loop2).read(part_l[c]).read(part_r[c]).write(comb[c]).submit();
        }
        for c in 0..config.chunks {
            rt.task(loop3).read(comb[c]).write(ll[c]).submit();
        }
        let mut reducer = rt.task(reduce);
        for &cell in ll.iter().take(config.chunks) {
            reducer = reducer.read(cell);
        }
        reducer.write(ll_total).submit();
    }

    PbpiApp { update, loop1, loop2, loop3, reduce, config, ll_total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_500mb_class() {
        let c = PbpiConfig::paper();
        assert_eq!(c.chunk_bytes(), 2 * 1024 * 1024);
        // 5 live arrays of chunks × 2 MB ≈ 640 MB.
        let live = 5 * c.chunks as u64 * c.chunk_bytes();
        assert!(live > 400 * 1024 * 1024 && live < 800 * 1024 * 1024);
    }

    #[test]
    fn task_budget_per_generation() {
        let c = PbpiConfig::quick();
        assert_eq!(c.tasks_per_generation(), 5 * 4 + 1);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(PbpiVariant::Smp.label(), "pbpi-smp");
        assert_eq!(PbpiVariant::Gpu.label(), "pbpi-gpu");
        assert_eq!(PbpiVariant::Hybrid.label(), "pbpi-hyb");
    }
}
