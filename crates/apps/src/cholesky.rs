//! Tiled Cholesky factorization (paper §V-B2).
//!
//! Right-looking factorization over `nb × nb` tiles of `bs × bs` f32
//! elements with four task types: `potrf`, `trsm`, `syrk`, `gemm`. The
//! paper gives GPU-only implementations for the last three and varies
//! `potrf`:
//!
//! * **potrf-smp** — only the SMP (CBLAS) potrf.
//! * **potrf-gpu** — only the GPU (MAGMA) potrf.
//! * **potrf-hyb** — both, joined via `implements`.
//!
//! `potrf` sits on the critical path ("it acts like a bottleneck"), and
//! with only `nb` potrf instances, the versioning scheduler's learning
//! phase is clearly visible — exactly the paper's point.

use crate::calib;
use versa_core::{DeviceKind, SchedulerKind, TemplateId, VersionId};
use versa_kernels::{gemm, potrf, syrk, trsm};
use versa_mem::DataId;
use versa_runtime::{NativeConfig, RunReport, Runtime, RuntimeConfig};
use versa_sim::PlatformConfig;

/// Which potrf implementations the application exposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CholeskyVariant {
    /// `potrf-smp`: SMP-only potrf (other tasks on GPU).
    PotrfSmp,
    /// `potrf-gpu`: GPU-only potrf.
    PotrfGpu,
    /// `potrf-hyb`: SMP + GPU potrf versions.
    PotrfHybrid,
}

impl CholeskyVariant {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CholeskyVariant::PotrfSmp => "potrf-smp",
            CholeskyVariant::PotrfGpu => "potrf-gpu",
            CholeskyVariant::PotrfHybrid => "potrf-hyb",
        }
    }
}

/// Problem dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CholeskyConfig {
    /// Matrix dimension in f32 elements.
    pub n: usize,
    /// Tile dimension; must divide `n`.
    pub bs: usize,
}

impl CholeskyConfig {
    /// The paper's dimensions: 32768² f32 (4 GB), 2048² tiles (16 MB),
    /// 16×16 tiles → 16 potrf instances.
    pub fn paper() -> CholeskyConfig {
        CholeskyConfig { n: 32768, bs: 2048 }
    }

    /// Reduced size for fast tests (same 16×16 tile structure).
    pub fn quick() -> CholeskyConfig {
        CholeskyConfig { n: 2048, bs: 128 }
    }

    /// Tiles per dimension.
    pub fn nb(&self) -> usize {
        assert!(self.bs > 0 && self.n.is_multiple_of(self.bs), "tile size must divide matrix size");
        self.n / self.bs
    }

    /// Bytes of one f32 tile.
    pub fn tile_bytes(&self) -> u64 {
        (self.bs * self.bs * 4) as u64
    }

    /// Useful FLOPs of the factorization (n³/3).
    pub fn flops(&self) -> f64 {
        (self.n as f64).powi(3) / 3.0
    }
}

/// The four templates of a built Cholesky instance.
pub struct CholeskyApp {
    /// `potrf` version set (the variant-dependent one).
    pub potrf: TemplateId,
    /// `trsm` (GPU-only).
    pub trsm: TemplateId,
    /// `syrk` (GPU-only).
    pub syrk: TemplateId,
    /// `gemm` (GPU-only).
    pub gemm: TemplateId,
    /// Problem dimensions.
    pub config: CholeskyConfig,
    /// Lower-triangle tiles (row-major `nb × nb`; only `j ≤ i` used).
    pub tiles: Vec<DataId>,
}

/// Register the four templates and bind simulation costs.
///
/// Cost models recover the tile dimension from each task's data set size
/// (potrf/syrk/gemm touch 1/2/3 f32 tiles respectively) and charge the
/// kernel's FLOPs at the calibrated device rate.
pub fn register(rt: &mut Runtime, variant: CholeskyVariant) -> (TemplateId, TemplateId, TemplateId, TemplateId) {
    let potrf = match variant {
        CholeskyVariant::PotrfSmp => rt
            .template("potrf")
            .main("potrf_cblas", &[DeviceKind::Smp])
            .register(),
        CholeskyVariant::PotrfGpu => rt
            .template("potrf")
            .main("potrf_magma", &[DeviceKind::Cuda])
            .register(),
        CholeskyVariant::PotrfHybrid => rt
            .template("potrf")
            .main("potrf_magma", &[DeviceKind::Cuda])
            .version("potrf_cblas", &[DeviceKind::Smp])
            .register(),
    };
    let trsm = rt.template("trsm").main("trsm_cublas", &[DeviceKind::Cuda]).register();
    let syrk = rt.template("syrk").main("syrk_cublas", &[DeviceKind::Cuda]).register();
    let gemm = rt.template("gemm").main("gemm_cublas", &[DeviceKind::Cuda]).register();

    // Tile dimension from data set size: k tiles × bs² × 4 bytes.
    let bs_from = |size: u64, tiles: u64| ((size / tiles / 4) as f64).sqrt();
    // potrf touches 1 tile; flops = bs³/3.
    let potrf_flops = move |s: u64| bs_from(s, 1).powi(3) / 3.0;
    // trsm touches 2 tiles; flops = bs³.
    let trsm_flops = move |s: u64| bs_from(s, 2).powi(3);
    // syrk touches 2 tiles; flops = bs³.
    let syrk_flops = move |s: u64| bs_from(s, 2).powi(3);
    // gemm touches 3 tiles; flops = 2·bs³.
    let gemm_flops = move |s: u64| 2.0 * bs_from(s, 3).powi(3);

    match variant {
        CholeskyVariant::PotrfSmp => {
            rt.bind_cost(potrf, VersionId(0), move |s| {
                calib::duration_at(potrf_flops(s), calib::SMP_SPOTRF)
            });
        }
        CholeskyVariant::PotrfGpu => {
            rt.bind_cost(potrf, VersionId(0), move |s| {
                calib::duration_at(potrf_flops(s), calib::GPU_SPOTRF)
            });
        }
        CholeskyVariant::PotrfHybrid => {
            rt.bind_cost(potrf, VersionId(0), move |s| {
                calib::duration_at(potrf_flops(s), calib::GPU_SPOTRF)
            });
            rt.bind_cost(potrf, VersionId(1), move |s| {
                calib::duration_at(potrf_flops(s), calib::SMP_SPOTRF)
            });
        }
    }
    rt.bind_cost(trsm, VersionId(0), move |s| {
        calib::duration_at(trsm_flops(s), calib::GPU_STRSM)
    });
    rt.bind_cost(syrk, VersionId(0), move |s| {
        calib::duration_at(syrk_flops(s), calib::GPU_SSYRK)
    });
    rt.bind_cost(gemm, VersionId(0), move |s| {
        calib::duration_at(gemm_flops(s), calib::GPU_SGEMM)
    });
    (potrf, trsm, syrk, gemm)
}

/// Submit the right-looking tiled factorization over existing tiles.
pub fn submit_tasks(
    rt: &mut Runtime,
    (potrf, trsm, syrk, gemm): (TemplateId, TemplateId, TemplateId, TemplateId),
    nb: usize,
    tiles: &[DataId],
) {
    let t = |i: usize, j: usize| tiles[i * nb + j];
    for k in 0..nb {
        rt.task(potrf).read_write(t(k, k)).submit();
        for i in (k + 1)..nb {
            rt.task(trsm).read(t(k, k)).read_write(t(i, k)).submit();
        }
        for i in (k + 1)..nb {
            rt.task(syrk).read(t(i, k)).read_write(t(i, i)).submit();
            for j in (k + 1)..i {
                rt.task(gemm).read(t(i, k)).read(t(j, k)).read_write(t(i, j)).submit();
            }
        }
    }
}

/// Allocate tiles and submit the factorization graph (simulated data).
pub fn build(rt: &mut Runtime, config: CholeskyConfig, variant: CholeskyVariant) -> CholeskyApp {
    let templates = register(rt, variant);
    let nb = config.nb();
    let bytes = config.tile_bytes();
    let tiles: Vec<DataId> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
    submit_tasks(rt, templates, nb, &tiles);
    CholeskyApp {
        potrf: templates.0,
        trsm: templates.1,
        syrk: templates.2,
        gemm: templates.3,
        config,
        tiles,
    }
}

/// One-call simulated run.
pub fn run_sim(
    config: CholeskyConfig,
    variant: CholeskyVariant,
    scheduler: SchedulerKind,
    platform: PlatformConfig,
) -> RunReport {
    run_sim_with(RuntimeConfig::with_scheduler(scheduler), config, variant, platform)
}

/// [`run_sim`] with full control over the [`RuntimeConfig`] — for
/// benchmarks and tests that toggle tracing or other runtime knobs.
pub fn run_sim_with(
    runtime_config: RuntimeConfig,
    config: CholeskyConfig,
    variant: CholeskyVariant,
    platform: PlatformConfig,
) -> RunReport {
    let mut rt = Runtime::simulated(runtime_config, platform);
    let _app = build(&mut rt, config, variant);
    rt.run().expect("run failed")
}

/// Native-engine Cholesky on a real SPD matrix. Returns the report, the
/// input matrix and the computed factor tiles for verification.
pub fn run_native(
    config: CholeskyConfig,
    variant: CholeskyVariant,
    scheduler: SchedulerKind,
    native: NativeConfig,
    seed: u64,
) -> (RunReport, NativeCholeskyData) {
    run_native_with(RuntimeConfig::with_scheduler(scheduler), config, variant, native, seed)
}

/// [`run_native`] with full control over the [`RuntimeConfig`] — for
/// benchmarks and tests that toggle transfer staging
/// (`async_transfers`, `lookahead_depth`) or other runtime knobs.
pub fn run_native_with(
    runtime_config: RuntimeConfig,
    config: CholeskyConfig,
    variant: CholeskyVariant,
    native: NativeConfig,
    seed: u64,
) -> (RunReport, NativeCholeskyData) {
    let mut rt = Runtime::native(runtime_config, native);
    let templates = register(&mut rt, variant);
    let (potrf_t, trsm_t, syrk_t, gemm_t) = templates;
    let bs = config.bs;
    let n = config.n;
    let nb = config.nb();

    // Kernels. `ctx.exec()` carries the emulated GPU's persistent lane
    // pool; read arguments are borrowed in place (no copies).
    let potrf_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        potrf::spotrf(ctx.f32_mut(0), bs).expect("tile not positive definite");
    };
    let trsm_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let exec = ctx.exec();
        let (reads, a) = ctx.f32_reads_and_mut(&[0], 1);
        trsm::strsm_right_lower_trans_par_on(exec, reads[0], a, bs);
    };
    let syrk_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let exec = ctx.exec();
        let (reads, c) = ctx.f32_reads_and_mut(&[0], 1);
        syrk::ssyrk_lower_par_on(exec, reads[0], c, bs);
    };
    let gemm_kernel = move |ctx: &mut versa_runtime::KernelCtx<'_>| {
        let exec = ctx.exec();
        let (reads, c) = ctx.f32_reads_and_mut(&[0, 1], 2);
        gemm::sgemm_nt_sub_par_on(exec, reads[0], reads[1], c, bs);
    };
    rt.bind_native(potrf_t, VersionId(0), potrf_kernel);
    if variant == CholeskyVariant::PotrfHybrid {
        rt.bind_native(potrf_t, VersionId(1), potrf_kernel);
    }
    rt.bind_native(trsm_t, VersionId(0), trsm_kernel);
    rt.bind_native(syrk_t, VersionId(0), syrk_kernel);
    rt.bind_native(gemm_t, VersionId(0), gemm_kernel);

    // Build a full SPD matrix, cut into tiles.
    let full = versa_kernels::verify::spd_matrix_f32(n, seed);
    let tile_of = |ti: usize, tj: usize| -> Vec<f32> {
        let mut t = vec![0.0f32; bs * bs];
        for r in 0..bs {
            let src = (ti * bs + r) * n + tj * bs;
            t[r * bs..r * bs + bs].copy_from_slice(&full[src..src + bs]);
        }
        t
    };
    let tiles: Vec<DataId> = (0..nb * nb)
        .map(|idx| {
            let t = tile_of(idx / nb, idx % nb);
            rt.alloc_from_f32(&t)
        })
        .collect();

    submit_tasks(&mut rt, templates, nb, &tiles);
    let report = rt.run().expect("run failed");
    let factor: Vec<Vec<f32>> = tiles.iter().map(|&t| rt.read_f32(t)).collect();
    (report, NativeCholeskyData { n, bs, nb, input: full, factor })
}

/// Data read back from a native Cholesky run.
pub struct NativeCholeskyData {
    /// Matrix dimension.
    pub n: usize,
    /// Tile dimension.
    pub bs: usize,
    /// Tiles per dimension.
    pub nb: usize,
    /// The original SPD matrix.
    pub input: Vec<f32>,
    /// Tile contents after factorization (lower triangle holds `L`).
    pub factor: Vec<Vec<f32>>,
}

impl NativeCholeskyData {
    /// Assemble `L` from the tiles (lower triangle only) and return the
    /// largest deviation of `L·Lᵀ` from the input.
    pub fn max_error(&self) -> f32 {
        let (n, bs, nb) = (self.n, self.bs, self.nb);
        let mut l = vec![0.0f32; n * n];
        for ti in 0..nb {
            for tj in 0..=ti {
                let tile = &self.factor[ti * nb + tj];
                for r in 0..bs {
                    for c in 0..bs {
                        let (gi, gj) = (ti * bs + r, tj * bs + c);
                        if gj <= gi {
                            l[gi * n + gj] = tile[r * bs + c];
                        }
                    }
                }
            }
        }
        let mut worst = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                let mut dot = 0.0f64;
                for k in 0..=i.min(j) {
                    dot += l[i * n + k] as f64 * l[j * n + k] as f64;
                }
                worst = worst.max((dot as f32 - self.input[i * n + j]).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_v() {
        let c = CholeskyConfig::paper();
        assert_eq!(c.nb(), 16);
        assert_eq!(c.tile_bytes(), 16 * 1024 * 1024, "16 MB tiles");
        // 4 GB matrix.
        assert_eq!(c.tile_bytes() * (c.nb() * c.nb()) as u64, 4 * 1024 * 1024 * 1024);
    }

    #[test]
    fn task_counts_follow_the_tiled_algorithm() {
        // nb potrf, nb(nb-1)/2 trsm + syrk each, nb(nb-1)(nb-2)/6 gemm.
        let cfg = CholeskyConfig { n: 512, bs: 64 };
        let nb = cfg.nb();
        let mut rt = Runtime::simulated(
            RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
            PlatformConfig::minotauro(1, 1),
        );
        let app = build(&mut rt, cfg, CholeskyVariant::PotrfGpu);
        let expected = nb + nb * (nb - 1) + nb * (nb - 1) * (nb - 2) / 6;
        // Count submitted tasks via the report after running.
        let report = rt.run().expect("run failed");
        assert_eq!(report.tasks_executed as usize, expected);
        assert_eq!(report.version_counts[&(app.potrf, VersionId(0))] as usize, nb);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(CholeskyVariant::PotrfSmp.label(), "potrf-smp");
        assert_eq!(CholeskyVariant::PotrfGpu.label(), "potrf-gpu");
        assert_eq!(CholeskyVariant::PotrfHybrid.label(), "potrf-hyb");
    }
}
