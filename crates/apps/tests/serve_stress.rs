//! Serve-at-scale stress tests: lossless admission under many
//! concurrent clients, fair-queue shares tracking job weights, and
//! bit-identical single-job results with the batched-bid/recycling
//! machinery on or off.

use std::sync::{Arc, Mutex};
use versa_apps::jobs;
use versa_core::{DeviceKind, SchedulerKind, VersionId};
use versa_runtime::{NativeConfig, Runtime, RuntimeConfig};
use versa_serve::{FinishFn, JobClass, JobSpec, RejectReason, ServeConfig, Service, SubmitOutcome};
use versa_sim::PlatformConfig;

fn sim_service(queue_capacity: usize, wave_dispatch: u64) -> Service {
    let rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(4, 0),
    );
    Service::start(rt, ServeConfig { queue_capacity, wave_dispatch, ..ServeConfig::default() })
}

/// Eight clients push a hundred-plus tiny jobs each through a small
/// queue. Every submission must land in exactly one admission bucket,
/// every accepted job must complete, and the service must come back to
/// rest with nothing live — all with graph recycling and batched bids
/// on (the defaults), i.e. the exact configuration the throughput
/// bench's optimized side runs.
#[test]
fn admission_is_lossless_with_eight_concurrent_clients() {
    let service = sim_service(32, 32);
    const CLIENTS: u64 = 8;
    const JOBS: u64 = 128;

    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let client = service.client();
        handles.push(std::thread::spawn(move || {
            let mut rejected = 0u64;
            let mut tickets = Vec::with_capacity(JOBS as usize);
            for j in 0..JOBS {
                loop {
                    match client.submit(jobs::tiny_axpy_job(64, c * JOBS + j)) {
                        SubmitOutcome::Accepted(t) => {
                            tickets.push(t);
                            break;
                        }
                        SubmitOutcome::Rejected(RejectReason::QueueFull) => {
                            rejected += 1;
                            std::thread::yield_now();
                        }
                        other => panic!("unexpected outcome mid-run: {other:?}"),
                    }
                }
            }
            for t in tickets {
                let r = t.wait();
                assert!(r.outcome.is_ok(), "job failed: {:?}", r.outcome);
            }
            rejected
        }));
    }
    let rejected: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let m = service.metrics();
    assert_eq!(m.accepted, CLIENTS * JOBS, "every job was eventually admitted");
    assert_eq!(m.rejected_queue_full, rejected);
    assert_eq!(
        m.submitted,
        m.accepted + m.rejected_queue_full + m.rejected_shutdown + m.shed_deadline,
        "a submission fell off the books: {m:?}"
    );
    assert_eq!(m.completed, m.accepted);
    assert_eq!(m.failed, 0);
    assert_eq!(m.active_jobs, 0);
    assert_eq!(m.live_tasks, 0);
    assert_eq!(m.queue_depth, 0);
    service.shutdown();
}

/// Independent same-cost tasks tagged with a proportional-share weight.
fn wide_job(tpl: versa_core::TemplateId, tasks: usize, weight: u32) -> JobSpec {
    JobSpec::fire_and_forget(format!("wide-w{weight}"), move |rt| {
        for _ in 0..tasks {
            let d = rt.alloc_bytes(1 << 12);
            rt.task(tpl).read_write(d).submit();
        }
    })
    .class(JobClass::normal().with_weight(weight))
}

/// Two equal-length jobs admitted together, weights 3 : 1. Start-time
/// fair queuing gives the heavy job ¾ of every wave until it finishes,
/// so it should complete in ~4T/3B waves while the light job runs to
/// ~2T/B — a span ratio of 1.5. Assert the ordering and that the ratio
/// lands in a tolerance band around the theoretical share split.
#[test]
fn fair_queue_shares_track_job_weights() {
    let rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(4, 0),
    );
    let mut rt = rt;
    let tpl = rt.template("unit").main("unit_smp", &[DeviceKind::Smp]).register();
    rt.bind_cost(tpl, VersionId(0), |_| std::time::Duration::from_millis(1));
    let service =
        Service::start(rt, ServeConfig { wave_dispatch: 8, ..ServeConfig::default() });
    let client = service.client();

    // A blocker occupies the service so the two measured jobs sit in the
    // queue together and are admitted in the same drain.
    let blocker = client.submit(wide_job(tpl, 64, 1)).accepted().expect("queue has room");
    let heavy = client.submit(wide_job(tpl, 240, 3)).accepted().expect("queue has room");
    let light = client.submit(wide_job(tpl, 240, 1)).accepted().expect("queue has room");
    blocker.wait();
    let heavy = heavy.wait();
    let light = light.wait();
    assert!(heavy.outcome.is_ok() && light.outcome.is_ok());

    let start = heavy.admitted_wave.max(light.admitted_wave);
    assert!(
        heavy.admitted_wave.abs_diff(light.admitted_wave) <= 2,
        "jobs were not co-admitted: {} vs {}",
        heavy.admitted_wave,
        light.admitted_wave
    );
    let heavy_span = (heavy.completed_wave - start) as f64;
    let light_span = (light.completed_wave - start) as f64;
    assert!(
        heavy.completed_wave < light.completed_wave,
        "the weight-3 job must finish first: {heavy:?} vs {light:?}"
    );
    let ratio = light_span / heavy_span;
    assert!(
        (1.2..=1.9).contains(&ratio),
        "span ratio {ratio:.2} outside the 3:1-weight tolerance band \
         (heavy {heavy_span} waves, light {light_span} waves)"
    );
    drop(client);
    service.shutdown();
}

/// One deterministic AXPY-chain job on a native service; returns the
/// result buffer as raw bits.
fn axpy_chain_bits(optimized: bool) -> Vec<u64> {
    const ELEMS: usize = 512;
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.batched_bids = optimized;
    let rt = Runtime::native(rc, NativeConfig::new(2, 0));
    let service = Service::start(
        rt,
        ServeConfig { recycle_graph: optimized, ..ServeConfig::default() },
    );
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let spec = JobSpec::new("axpy-chain", move |rt| {
        let tpl = rt.template("axpy_chk").main("axpy_chk_smp", &[DeviceKind::Smp]).register();
        rt.bind_native(tpl, VersionId(0), |ctx| {
            let (reads, y) = ctx.f64_reads_and_mut(&[0], 1);
            for (yi, xi) in y.iter_mut().zip(reads[0]) {
                *yi += 2.0 * *xi;
            }
        });
        let x: Vec<f64> = (0..ELEMS).map(|i| (i % 97) as f64).collect();
        let x = rt.alloc_from_f64(&x);
        let y = rt.alloc_from_f64(&vec![1.0; ELEMS]);
        for _ in 0..3 {
            rt.task(tpl).read(x).read_write(y).submit();
        }
        let finish: FinishFn = Box::new(move |rt| {
            *sink.lock().unwrap() = rt.read_f64(y).iter().map(|v| v.to_bits()).collect();
            rt.free(x);
            rt.free(y);
            Ok(())
        });
        finish
    });
    let report = service.client().submit(spec).accepted().expect("queue has room").wait();
    assert!(report.outcome.is_ok(), "job failed: {:?}", report.outcome);
    service.shutdown();
    let bits = out.lock().unwrap().clone();
    assert_eq!(bits.len(), ELEMS);
    bits
}

/// The serve-at-scale machinery must not perturb numerics: the same
/// single job produces byte-identical results with per-probe bids and
/// no recycling (the legacy configuration) and with batched wave bids
/// plus graph pooling — and both match the serial recomputation.
#[test]
fn single_job_results_are_byte_identical_across_optimizations() {
    let legacy = axpy_chain_bits(false);
    let optimized = axpy_chain_bits(true);
    assert_eq!(legacy, optimized, "optimizations changed result bytes");

    let expected: Vec<u64> =
        (0..legacy.len()).map(|i| (1.0 + 6.0 * ((i % 97) as f64)).to_bits()).collect();
    assert_eq!(legacy, expected, "result deviates from the serial recomputation");
}
