//! Runtime-overhead benches: dependence analysis, scheduler decision
//! cost, and whole-graph drain time with near-zero-cost tasks — the
//! costs a task runtime adds on top of the kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use versa_core::{DeviceKind, SchedulerKind, VersionId};
use versa_runtime::{Runtime, RuntimeConfig};
use versa_sim::PlatformConfig;

/// Submit `tasks` chained inout tasks (worst-case dependence chains) and
/// run them with 1 µs kernels.
fn chain_run(sched: SchedulerKind, tasks: usize) {
    let mut rt =
        Runtime::simulated(RuntimeConfig::with_scheduler(sched), PlatformConfig::minotauro(4, 2));
    let tpl = rt
        .template("t")
        .main("t_gpu", &[DeviceKind::Cuda])
        .version("t_smp", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_micros(1));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_micros(2));
    let data: Vec<_> = (0..16).map(|_| rt.alloc_bytes(1024)).collect();
    for i in 0..tasks {
        rt.task(tpl).read_write(data[i % data.len()]).submit();
    }
    let report = rt.run().expect("run failed");
    assert_eq!(report.tasks_executed as usize, tasks);
}

fn bench_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("submission");
    group.bench_function("independent_10k", |b| {
        b.iter(|| {
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
                PlatformConfig::minotauro(1, 1),
            );
            let tpl = rt.template("t").main("t_gpu", &[DeviceKind::Cuda]).register();
            let data: Vec<_> = (0..10_000).map(|_| rt.alloc_bytes(64)).collect();
            for &d in &data {
                rt.task(tpl).write(d).submit();
            }
        })
    });
    group.bench_function("chained_10k", |b| {
        b.iter(|| {
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
                PlatformConfig::minotauro(1, 1),
            );
            let tpl = rt.template("t").main("t_gpu", &[DeviceKind::Cuda]).register();
            let d = rt.alloc_bytes(64);
            for _ in 0..10_000 {
                rt.task(tpl).read_write(d).submit();
            }
        })
    });
    group.finish();
}

fn bench_scheduler_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("drain_4k_tasks");
    group.sample_size(10);
    for sched in
        [SchedulerKind::DepAware, SchedulerKind::Affinity, SchedulerKind::versioning()]
    {
        let label = sched.label();
        group.bench_with_input(BenchmarkId::new(label, 4096), &sched, |b, sched| {
            b.iter(|| chain_run(sched.clone(), 4096))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_submission, bench_scheduler_drain);
criterion_main!(benches);
