//! Criterion bench behind paper Fig. 12: simulated PBPI per application
//! variant (reduced generations; the `figures` binary runs the
//! paper-scale sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use versa_apps::pbpi::{self, PbpiConfig, PbpiVariant};
use versa_core::SchedulerKind;
use versa_sim::PlatformConfig;

fn bench_fig12(c: &mut Criterion) {
    let cfg = PbpiConfig { chunks: 16, sites_per_chunk: 16384, generations: 10 };
    let mut group = c.benchmark_group("fig12_pbpi");
    group.sample_size(10);
    for (label, variant, sched) in [
        ("pbpi-smp", PbpiVariant::Smp, SchedulerKind::DepAware),
        ("pbpi-gpu-aff", PbpiVariant::Gpu, SchedulerKind::Affinity),
        ("pbpi-hyb-ver", PbpiVariant::Hybrid, SchedulerKind::versioning()),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "2G/4S"), &(), |b, _| {
            b.iter(|| pbpi::run_sim(cfg, variant, sched.clone(), PlatformConfig::minotauro(4, 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
