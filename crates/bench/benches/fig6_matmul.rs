//! Criterion bench behind paper Fig. 6: end-to-end simulated matmul runs
//! per scheduler and application variant (reduced problem size; run the
//! `figures` binary for the paper-scale sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::SchedulerKind;
use versa_sim::PlatformConfig;

fn bench_fig6(c: &mut Criterion) {
    let cfg = MatmulConfig::quick();
    let mut group = c.benchmark_group("fig6_matmul");
    group.sample_size(10);
    for (label, variant, sched) in [
        ("mm-gpu-dep", MatmulVariant::Gpu, SchedulerKind::DepAware),
        ("mm-gpu-aff", MatmulVariant::Gpu, SchedulerKind::Affinity),
        ("mm-hyb-ver", MatmulVariant::Hybrid, SchedulerKind::versioning()),
    ] {
        for gpus in [1usize, 2] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{gpus}G/4S")),
                &gpus,
                |b, &gpus| {
                    b.iter(|| {
                        matmul::run_sim(
                            cfg,
                            variant,
                            sched.clone(),
                            PlatformConfig::minotauro(4, gpus),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
