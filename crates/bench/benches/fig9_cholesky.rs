//! Criterion bench behind paper Fig. 9: simulated tiled Cholesky per
//! application variant and scheduler (reduced size; the `figures` binary
//! runs the paper-scale sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_core::SchedulerKind;
use versa_sim::PlatformConfig;

fn bench_fig9(c: &mut Criterion) {
    let cfg = CholeskyConfig { n: 8192, bs: 1024 };
    let mut group = c.benchmark_group("fig9_cholesky");
    group.sample_size(10);
    for (label, variant, sched) in [
        ("potrf-smp-aff", CholeskyVariant::PotrfSmp, SchedulerKind::Affinity),
        ("potrf-gpu-dep", CholeskyVariant::PotrfGpu, SchedulerKind::DepAware),
        ("potrf-gpu-aff", CholeskyVariant::PotrfGpu, SchedulerKind::Affinity),
        ("potrf-hyb-ver", CholeskyVariant::PotrfHybrid, SchedulerKind::versioning()),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "2G/4S"), &(), |b, _| {
            b.iter(|| {
                cholesky::run_sim(cfg, variant, sched.clone(), PlatformConfig::minotauro(4, 2))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
