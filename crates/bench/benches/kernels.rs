//! Kernel-level benches: the relative speeds of the task-version
//! implementations on the host (the native engine's ground truth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use versa_kernels::verify::{random_matrix_f64, spd_matrix_f32, spd_matrix_f64};
use versa_kernels::{gemm, pbpi, potrf, syrk, trsm};

fn bench_gemm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_f64");
    for n in [128usize, 256] {
        let a = random_matrix_f64(n, 1);
        let b = random_matrix_f64(n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, &n| {
            let mut cm = vec![0.0; n * n];
            bch.iter(|| gemm::dgemm_naive(&a, &b, &mut cm, n));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, &n| {
            let mut cm = vec![0.0; n * n];
            bch.iter(|| gemm::dgemm_blocked(&a, &b, &mut cm, n));
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |bch, &n| {
            let mut cm = vec![0.0; n * n];
            bch.iter(|| gemm::dgemm_parallel(&a, &b, &mut cm, n, 4));
        });
    }
    group.finish();
}

fn bench_cholesky_kernels(c: &mut Criterion) {
    let n = 192;
    let mut group = c.benchmark_group("cholesky_kernels_f32");
    let spd = spd_matrix_f32(n, 3);
    group.bench_function("spotrf", |b| {
        b.iter(|| {
            let mut tile = spd.clone();
            potrf::spotrf(&mut tile, n).unwrap();
        })
    });
    let mut l64 = spd_matrix_f64(n, 4);
    potrf::dpotrf(&mut l64, n).unwrap();
    let l: Vec<f32> = l64.iter().map(|&v| v as f32).collect();
    group.bench_function("strsm", |b| {
        b.iter(|| {
            let mut a = spd.clone();
            trsm::strsm_right_lower_trans(&l, &mut a, n);
        })
    });
    group.bench_function("ssyrk", |b| {
        b.iter(|| {
            let mut cmat = spd.clone();
            syrk::ssyrk_lower(&l, &mut cmat, n);
        })
    });
    group.bench_function("sgemm_nt_sub", |b| {
        b.iter(|| {
            let mut cmat = spd.clone();
            gemm::sgemm_nt_sub(&l, &l, &mut cmat, n);
        })
    });
    group.finish();
}

fn bench_pbpi_loops(c: &mut Criterion) {
    let sites = 16384;
    let mut group = c.benchmark_group("pbpi_loops");
    let p = pbpi::jukes_cantor(0.1);
    let input: Vec<f64> = (0..sites * pbpi::STATES).map(|i| (i % 97) as f64 / 97.0).collect();
    group.bench_function("loop1_serial", |b| {
        let mut out = vec![0.0; sites * pbpi::STATES];
        b.iter(|| pbpi::loop1_propagate(&p, &input, &mut out, sites, 1));
    });
    group.bench_function("loop1_4lanes", |b| {
        let mut out = vec![0.0; sites * pbpi::STATES];
        b.iter(|| pbpi::loop1_propagate(&p, &input, &mut out, sites, 4));
    });
    group.bench_function("loop2", |b| {
        let mut out = vec![0.0; sites * pbpi::STATES];
        b.iter(|| pbpi::loop2_combine(&input, &input, &mut out, sites, 1));
    });
    group.bench_function("loop3", |b| {
        b.iter(|| pbpi::loop3_loglik(&input, sites));
    });
    group.finish();
}

criterion_group!(benches, bench_gemm_variants, bench_cholesky_kernels, bench_pbpi_loops);
criterion_main!(benches);
