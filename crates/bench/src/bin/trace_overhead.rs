//! Tracing overhead guard: the versa-trace recorder must stay cheap
//! enough to leave on.
//!
//! Runs the same native matmul instance with tracing off and on,
//! interleaved (off/on/off/on/…) so thermal and cache drift hits both
//! sides equally, takes the median makespan of each side, and reports
//! the relative overhead. With `--check` the run fails if the overhead
//! exceeds the budget (3% by default) — this is what CI's perf-smoke
//! job enforces.
//!
//! Usage:
//! ```text
//! trace_overhead [--quick] [--check] [--max-overhead PCT] [--out PATH]
//! ```
//! `--quick` shrinks the instance and rep count for CI smoke runs; the
//! default writes `BENCH_trace.json` in the working directory.
//! Regenerate the committed baseline with:
//! `cargo run --release -p versa-bench --bin trace_overhead`.

use std::process::ExitCode;
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::SchedulerKind;
use versa_runtime::{NativeConfig, RuntimeConfig};

struct Side {
    label: &'static str,
    runs: Vec<f64>,
    median: f64,
    events: u64,
}

fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[sorted.len() / 2]
}

/// One native matmul run; returns (makespan seconds, trace events).
fn run_once(cfg: MatmulConfig, traced: bool, seed: u64) -> (f64, u64) {
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.tracing.enabled = traced;
    let (report, _data) =
        matmul::run_native_with(rc, cfg, MatmulVariant::Hybrid, NativeConfig::new(2, 1), seed);
    let events = report.trace.as_ref().map(|t| t.len() as u64).unwrap_or(0);
    (report.makespan.as_secs_f64(), events)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let max_overhead_pct: f64 = args
        .iter()
        .position(|a| a == "--max-overhead")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--max-overhead expects a number"))
        .unwrap_or(3.0);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_trace.json".to_string());

    // The instance must be large enough that per-run scheduling noise
    // does not swamp a single-digit-percent ratio: ≥10 ms per run.
    let (cfg, reps) = if quick {
        (MatmulConfig { n: 384, bs: 64 }, 9)
    } else {
        (MatmulConfig { n: 512, bs: 64 }, 11)
    };

    // Warm-up both sides once (page faults, lane-pool spin-up).
    run_once(cfg, false, 1);
    run_once(cfg, true, 1);

    let mut off = Side { label: "off", runs: Vec::new(), median: 0.0, events: 0 };
    let mut on = Side { label: "on", runs: Vec::new(), median: 0.0, events: 0 };
    for rep in 0..reps {
        let seed = 100 + rep as u64;
        let (t_off, _) = run_once(cfg, false, seed);
        let (t_on, ev) = run_once(cfg, true, seed);
        off.runs.push(t_off);
        on.runs.push(t_on);
        on.events = on.events.max(ev);
        eprintln!("  rep {rep}: off {t_off:.4}s  on {t_on:.4}s  ({ev} events)");
    }
    off.median = median(&off.runs);
    on.median = median(&on.runs);

    let overhead_pct = (on.median / off.median - 1.0) * 100.0;
    eprintln!(
        "tracing overhead: median off {:.4}s, on {:.4}s → {overhead_pct:+.2}% ({} events/run, budget {max_overhead_pct}%)",
        off.median, on.median, on.events
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"trace_overhead\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    json.push_str(&format!("  \"matmul_n\": {},\n", cfg.n));
    json.push_str(&format!("  \"matmul_bs\": {},\n", cfg.bs));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"events_per_run\": {},\n", on.events));
    for side in [&off, &on] {
        json.push_str(&format!(
            "  \"makespan_{}\": {{\"median_s\": {:.6}, \"runs_s\": [{}]}},\n",
            side.label,
            side.median,
            side.runs.iter().map(|t| format!("{t:.6}")).collect::<Vec<_>>().join(", ")
        ));
    }
    json.push_str(&format!("  \"overhead_pct\": {overhead_pct:.3},\n"));
    json.push_str(&format!("  \"budget_pct\": {max_overhead_pct:.3}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    if check && overhead_pct > max_overhead_pct {
        eprintln!("FAIL: tracing overhead {overhead_pct:.2}% exceeds budget {max_overhead_pct}%");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
