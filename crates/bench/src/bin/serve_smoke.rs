//! CI smoke test of the multi-job service on the native engine.
//!
//! Two client threads submit a mixed matmul + Cholesky job stream into
//! a service with a deliberately tiny admission queue. The run asserts:
//!
//! * at least one submission bounces off the full queue
//!   (`Rejected(QueueFull)` backpressure is real);
//! * every accepted job completes and its finalizer's numerical
//!   verification passes (interleaved jobs don't corrupt each other);
//! * the live metrics add up.
//!
//! Exits non-zero (panics) on any violation.

use std::time::Duration;
use versa_apps::jobs;
use versa_apps::{cholesky::CholeskyConfig, matmul::MatmulConfig};
use versa_core::SchedulerKind;
use versa_runtime::{NativeConfig, Runtime, RuntimeConfig};
use versa_serve::{JobReport, JobSpec, ServeConfig, Service, SubmitOutcome};

const JOBS_PER_CLIENT: usize = 6;

fn job_for(client: usize, i: usize) -> JobSpec {
    let seed = (client * 100 + i) as u64;
    if (client + i).is_multiple_of(2) {
        // 2×2 tiles of 64² f64 → 8 gemm tasks, serial-verifiable.
        jobs::matmul_native_job(MatmulConfig { n: 128, bs: 64 }, seed, true)
    } else {
        // 4×4 tiles of 32² f32 → 20 factorization tasks.
        jobs::cholesky_native_job(CholeskyConfig { n: 128, bs: 32 }, seed, true)
    }
}

fn main() {
    let rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(2, 1),
    );
    let service = Service::start(
        rt,
        ServeConfig { queue_capacity: 2, wave_dispatch: 8, ..ServeConfig::default() },
    );

    let reports: Vec<JobReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|client_id| {
                let client = service.client();
                scope.spawn(move || {
                    let mut reports = Vec::new();
                    for i in 0..JOBS_PER_CLIENT {
                        loop {
                            match client.submit(job_for(client_id, i)) {
                                SubmitOutcome::Accepted(t) => {
                                    reports.push(t.wait());
                                    break;
                                }
                                o if o.is_queue_full() => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                other => panic!("unexpected outcome {other:?}"),
                            }
                        }
                    }
                    reports
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread panicked")).collect()
    });

    // If the natural stream never saturated the 2-slot queue, force it:
    // burst trivial jobs until one bounces (bounded, so a hang is a bug).
    if service.metrics().rejected_queue_full == 0 {
        let client = service.client();
        let mut pending = Vec::new();
        for i in 0..10_000 {
            match client.submit(jobs::matmul_native_job(
                MatmulConfig { n: 128, bs: 64 },
                9_000 + i,
                false,
            )) {
                SubmitOutcome::Accepted(t) => pending.push(t),
                o if o.is_queue_full() => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        for t in pending {
            assert!(t.wait().outcome.is_ok());
        }
    }

    for r in &reports {
        assert!(
            r.outcome.is_ok(),
            "job {} ({:?}) failed verification: {:?}",
            r.name,
            r.job,
            r.outcome
        );
        assert!(r.tasks > 0 && r.worker_task_counts.iter().sum::<u64>() == r.tasks);
    }
    assert_eq!(reports.len(), 2 * JOBS_PER_CLIENT);

    let m = service.metrics();
    assert!(
        m.rejected_queue_full >= 1,
        "the 2-slot queue never produced a QueueFull rejection"
    );
    assert_eq!(m.active_jobs, 0);
    assert_eq!(m.live_tasks, 0);
    assert!(m.completed >= 2 * JOBS_PER_CLIENT as u64);
    assert_eq!(m.failed, 0);

    let rt = service.shutdown();
    assert!(rt.save_hints().expect("versioning active").contains("hint"));

    println!(
        "serve_smoke OK: {} jobs completed, {} rejected (queue full), \
         {} tasks over {} waves",
        m.completed, m.rejected_queue_full, m.tasks_executed, m.waves
    );
}
