//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [all|table1|fig5|matmul|cholesky|pbpi|ablations] ...
//! VERSA_SCALE=quick figures all     # reduced problem sizes
//! ```
//!
//! `matmul` prints Figs. 6–8, `cholesky` Figs. 9–11, `pbpi` Figs. 12–15.

use versa_bench::{ablations, figures, Scale};

fn print_matmul(scale: Scale) {
    let (cfg, points) = figures::matmul_matrix(scale);
    println!("{}", figures::fig6(&cfg, &points));
    println!("{}", figures::fig7(&points));
    println!("{}", figures::fig8(&points));
}

fn print_cholesky(scale: Scale) {
    let (cfg, points) = figures::cholesky_matrix(scale);
    println!("{}", figures::fig9(&cfg, &points));
    println!("{}", figures::fig10(&points));
    println!("{}", figures::fig11(&points));
}

fn print_pbpi(scale: Scale) {
    let (_cfg, points) = figures::pbpi_matrix(scale);
    println!("{}", figures::fig12(&points));
    println!("{}", figures::fig13(&points));
    println!("{}", figures::fig14(&points));
    println!("{}", figures::fig15(&points));
}

fn print_ablations(scale: Scale) {
    println!("{}", ablations::ablate_lambda(scale));
    println!("{}", ablations::ablate_bucketing(scale));
    println!("{}", ablations::ablate_mean_policy(scale));
    println!("{}", ablations::ablate_prefetch(scale));
    println!("{}", ablations::ablate_locality(scale));
    println!("{}", ablations::ablate_gpu_capacity(scale));
    println!("{}", ablations::ablate_duplex(scale));
    println!("{}", ablations::ablate_mixed_gpus(scale));
    println!("{}", ablations::ablate_baselines(scale));
    println!("{}", ablations::ablate_affinity_steal(scale));
    println!("{}", ablations::ablate_fault_injection(scale));
}

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selectors: Vec<&str> =
        if args.is_empty() { vec!["all"] } else { args.iter().map(|s| s.as_str()).collect() };

    println!(
        "versa figure harness — scale: {:?} (set VERSA_SCALE=quick for reduced sizes)\n",
        scale
    );
    for sel in selectors {
        match sel {
            "all" => {
                println!("== table1 — TaskVersionSet store ==");
                println!("{}", figures::table1(scale));
                println!("{}", figures::fig5());
                print_matmul(scale);
                print_cholesky(scale);
                print_pbpi(scale);
                print_ablations(scale);
            }
            "table1" => {
                println!("== table1 — TaskVersionSet store ==");
                println!("{}", figures::table1(scale));
            }
            "fig5" => println!("{}", figures::fig5()),
            "matmul" | "fig6" | "fig7" | "fig8" => print_matmul(scale),
            "cholesky" | "fig9" | "fig10" | "fig11" => print_cholesky(scale),
            "pbpi" | "fig12" | "fig13" | "fig14" | "fig15" => print_pbpi(scale),
            "ablations" => print_ablations(scale),
            other => {
                eprintln!("unknown selector {other:?}; expected all|table1|fig5|matmul|cholesky|pbpi|ablations");
                std::process::exit(2);
            }
        }
    }
}
