//! Trace wiring smoke test: record one traced matmul run per engine,
//! require the traces to be well-formed, carry a decision ledger, and
//! reconcile *exactly* with the engines' own `RunReport` totals, then
//! write them as `vtrace v1` files for `versa-analyze` to consume.
//!
//! Usage:
//! ```text
//! trace_smoke [--out-dir DIR]
//! ```
//! Writes `sim.vtrace` and `native.vtrace` into `DIR` (default:
//! `target/trace-smoke`). Exits non-zero if any invariant or
//! reconciliation check fails. CI runs this and then pipes both files
//! through `versa-analyze --check --require-decisions`.

use std::process::ExitCode;
use std::time::Duration;
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::{SchedulerKind, WorkerId};
use versa_mem::TransferKind;
use versa_runtime::{NativeConfig, RunReport, RuntimeConfig};
use versa_sim::PlatformConfig;
use versa_trace::{invariants, Trace, TraceAnalysis};

fn traced_rc() -> RuntimeConfig {
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.tracing.enabled = true;
    rc
}

/// All the checks versa-trace promises: clean invariants, a non-empty
/// decision ledger, and exact agreement with the run report.
fn verify(label: &str, report: &RunReport) -> Result<(), String> {
    let trace = report.trace.as_ref().ok_or_else(|| format!("{label}: no trace recorded"))?;
    let violations = invariants::check(trace);
    if !violations.is_empty() {
        return Err(format!("{label}: invariant violations: {violations:?}"));
    }
    let a = TraceAnalysis::new(trace);
    let expect = |name: &str, got: u64, want: u64| -> Result<(), String> {
        if got == want {
            Ok(())
        } else {
            Err(format!("{label}: {name} diverges: trace {got} vs report {want}"))
        }
    };
    expect("dropped events", a.dropped, 0)?;
    expect("task count", a.task_count as u64, report.tasks_executed)?;
    expect("failed attempts", a.failed_count as u64, report.failures.failure_count())?;
    expect("transfer count", a.transfer_count as u64, report.transfers.total_count())?;
    let bytes = |k: TransferKind| a.transfer_bytes.get(&k).copied().unwrap_or(0);
    expect("input bytes", bytes(TransferKind::Input), report.transfers.input_bytes)?;
    expect("output bytes", bytes(TransferKind::Output), report.transfers.output_bytes)?;
    expect("device bytes", bytes(TransferKind::Device), report.transfers.device_bytes)?;
    if a.version_counts != report.version_counts {
        return Err(format!(
            "{label}: version counts diverge: trace {:?} vs report {:?}",
            a.version_counts, report.version_counts
        ));
    }
    for (wi, &busy) in report.worker_busy.iter().enumerate() {
        let traced = a.busy.get(&WorkerId(wi as u16)).copied().unwrap_or(Duration::ZERO);
        if traced != busy {
            return Err(format!(
                "{label}: worker {wi} busy diverges: trace {traced:?} vs report {busy:?}"
            ));
        }
    }
    if a.decisions.is_empty() {
        return Err(format!("{label}: decision ledger is empty"));
    }
    // Every decision must carry its full policy input (candidate stats +
    // worker snapshots + λ in the meta) — the `versa-gym` replay harness
    // depends on it, and a silently-bare ledger would only surface there.
    if trace.meta.lambda.is_none() {
        return Err(format!("{label}: trace meta lacks the scheduler's λ"));
    }
    let bare = trace
        .decisions()
        .filter(|d| d.candidates.is_empty() || d.workers.is_empty())
        .count();
    if bare > 0 {
        return Err(format!("{label}: {bare} decision(s) lack replayable policy inputs"));
    }
    eprintln!(
        "  {label}: {} events, {} tasks, {} transfers, {} decisions — invariants OK, reconciles exactly",
        trace.len(),
        a.task_count,
        a.transfer_count,
        a.decisions.len()
    );
    Ok(())
}

fn write_vtrace(dir: &std::path::Path, name: &str, trace: &Trace) -> Result<(), String> {
    let path = dir.join(name);
    std::fs::write(&path, trace.to_text()).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("  wrote {}", path.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/trace-smoke".to_string());
    let dir = std::path::PathBuf::from(out_dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;

    let cfg = MatmulConfig { n: 128, bs: 32 };
    eprintln!("sim matmul {}x{} (versioning, traced):", cfg.n, cfg.n);
    let sim = matmul::run_sim_with(
        traced_rc(),
        cfg,
        MatmulVariant::Hybrid,
        PlatformConfig::minotauro(2, 1),
    );
    verify("sim", &sim)?;
    write_vtrace(&dir, "sim.vtrace", sim.trace.as_ref().unwrap())?;

    eprintln!("native matmul {}x{} (versioning, traced):", cfg.n, cfg.n);
    let (native, _data) = matmul::run_native_with(
        traced_rc(),
        cfg,
        MatmulVariant::Hybrid,
        NativeConfig::new(2, 1),
        7,
    );
    verify("native", &native)?;
    write_vtrace(&dir, "native.vtrace", native.trace.as_ref().unwrap())?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            eprintln!("trace smoke: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace smoke: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
