//! Cold-start vs. warm-start service latency on the native engine.
//!
//! Runs the same stream of hybrid matmul jobs through two services:
//!
//! * **cold** — a fresh runtime: the first jobs pay the versioning
//!   scheduler's learning phase, which forces λ executions of every
//!   version — including the naive SMP GEMM, the slowest thing on the
//!   machine.
//! * **warm** — a fresh runtime whose service is seeded with the hints
//!   saved from the cold service's shutdown: jobs are scheduled from
//!   the learned profiles immediately.
//!
//! Writes per-job turnaround latencies and the cold/warm means to
//! `BENCH_serve.json` (override with `--out PATH`). Regenerate the
//! committed numbers with:
//! `cargo run --release -p versa-bench --bin serve_bench`.

use std::time::Duration;
use versa_apps::jobs;
use versa_apps::matmul::MatmulConfig;
use versa_core::SchedulerKind;
use versa_runtime::{NativeConfig, Runtime, RuntimeConfig};
use versa_serve::{ServeConfig, Service};

const JOBS: usize = 5;
// 2×2 tiles of 1024² f64 → 8 gemm tasks/job. The big tile is the point:
// the naive single-core SMP GEMM the learning phase must execute λ times
// takes seconds at this size, while the lane-parallel GPU version takes
// ~0.2 s — so a cold service pays a large, honest learning bill that a
// warm-started one skips.
const CONFIG: MatmulConfig = MatmulConfig { n: 2048, bs: 1024 };

fn run_stream(label: &str, warm_start: Option<String>) -> (Vec<Duration>, Option<String>) {
    let rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(2, 1),
    );
    let service = Service::start(
        rt,
        ServeConfig { queue_capacity: 8, wave_dispatch: 16, warm_start, ..ServeConfig::default() },
    );
    let client = service.client();
    let mut latencies = Vec::with_capacity(JOBS);
    for i in 0..JOBS {
        let ticket = client
            .submit(jobs::matmul_native_job(CONFIG, 42 + i as u64, false))
            .accepted()
            .expect("queue has room for a sequential stream");
        let report = ticket.wait();
        assert!(report.outcome.is_ok(), "job failed: {:?}", report.outcome);
        eprintln!(
            "  {label} job {i}: turnaround {:8.1} ms ({} tasks)",
            report.turnaround.as_secs_f64() * 1e3,
            report.tasks
        );
        latencies.push(report.turnaround);
    }
    drop(client);
    let rt = service.shutdown();
    (latencies, rt.save_hints())
}

fn mean_ms(xs: &[Duration]) -> f64 {
    xs.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / xs.len() as f64
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_serve.json".to_string())
    };

    eprintln!("cold service (learning from scratch):");
    let (cold, hints) = run_stream("cold", None);
    let hints = hints.expect("versioning scheduler saves hints");
    eprintln!("warm service (seeded from the cold service's profile):");
    let (warm, _) = run_stream("warm", Some(hints));

    let cold_mean = mean_ms(&cold);
    let warm_mean = mean_ms(&warm);
    let speedup = cold_mean / warm_mean;
    eprintln!(
        "mean job latency: cold {cold_mean:.1} ms, warm {warm_mean:.1} ms \
         ({speedup:.2}x)"
    );

    let fmt_list = |xs: &[Duration]| {
        xs.iter()
            .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"bench\": \"serve_cold_vs_warm\",\n  \"app\": \"matmul-hybrid\",\n  \
         \"matrix_n\": {},\n  \"tile_bs\": {},\n  \"jobs_per_stream\": {},\n  \
         \"cold_job_latency_ms\": [{}],\n  \"warm_job_latency_ms\": [{}],\n  \
         \"cold_mean_ms\": {:.3},\n  \"warm_mean_ms\": {:.3},\n  \
         \"warm_speedup\": {:.3}\n}}\n",
        CONFIG.n,
        CONFIG.bs,
        JOBS,
        fmt_list(&cold),
        fmt_list(&warm),
        cold_mean,
        warm_mean,
        speedup
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    assert!(
        warm_mean < cold_mean,
        "warm start should beat cold start (cold {cold_mean:.1} ms vs warm {warm_mean:.1} ms)"
    );
}
