//! CI fault-injection smoke test.
//!
//! Runs the hybrid matmul on the simulated platform with the cuBLAS
//! version forced to fail on every execution, and asserts the recovery
//! contract end to end: the run completes (no escaping panic, no
//! `RunError`), every failure was retried, and the broken version ends
//! the run quarantined. Exits 0 on success so CI can gate on it.

use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::VersionId;
use versa_runtime::{Runtime, RuntimeConfig};
use versa_sim::{FaultPlan, FaultRule, PlatformConfig};

fn main() {
    let cfg = MatmulConfig::quick();
    let mut platform = PlatformConfig::minotauro(4, 2);
    platform.faults = FaultPlan::single(FaultRule::broken_version(VersionId(0)));
    let mut rt = Runtime::simulated(RuntimeConfig::default(), platform);
    let _app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);

    let report = rt.run().unwrap_or_else(|e| {
        eprintln!("fault smoke FAILED: run aborted: {e}");
        std::process::exit(1);
    });

    let failures = report.failures.failure_count();
    let quarantined = &report.failures.quarantined;
    println!(
        "fault smoke: {} tasks, {} failures, {} retries, {} quarantined version(s), {:.1} GFLOP/s",
        report.tasks_executed,
        failures,
        report.failures.retries,
        quarantined.len(),
        report.gflops(cfg.flops())
    );

    let mut errors = Vec::new();
    if report.tasks_executed != cfg.task_count() as u64 {
        errors.push(format!(
            "expected {} completed tasks, got {}",
            cfg.task_count(),
            report.tasks_executed
        ));
    }
    if failures == 0 {
        errors.push("no injected failures were recorded".into());
    }
    if report.failures.retries != failures {
        errors.push(format!(
            "every failure should have been retried: {} failures vs {} retries",
            failures, report.failures.retries
        ));
    }
    if !quarantined.iter().any(|q| q.version == VersionId(0)) {
        errors.push(format!(
            "the broken version was not quarantined (quarantined: {quarantined:?})"
        ));
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("fault smoke FAILED: {e}");
        }
        std::process::exit(1);
    }
    println!("fault smoke OK");
}
