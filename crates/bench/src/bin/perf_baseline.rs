//! Kernel-tier and native-engine performance baseline.
//!
//! Measures the GEMM tiers in GFLOP/s — naive, the seed 64×64-blocked
//! loop, the packed register-blocked core forced to the scalar
//! micro-kernel, one row per *detected* SIMD micro-kernel tier (avx2,
//! avx512), the runtime-dispatched `dgemm_packed`, and the multi-lane
//! packed tier — plus the native engine end-to-end on small matmul and
//! Cholesky instances in tasks/sec, then writes the numbers as JSON.
//!
//! Usage:
//! ```text
//! perf_baseline [--quick] [--check] [--crossover] [--out PATH] [--baseline PATH]
//! ```
//!
//! * `--quick` shrinks the GEMM size and rep count for CI smoke runs.
//! * `--check` turns the run into a regression gate. Same-run *ratio*
//!   gates always apply (they are immune to host speed): the packed
//!   scalar core must beat naive, and the dispatched kernel must not
//!   lose to the best tier measured in the same process. In full (non
//!   `--quick`) mode the measured tiers are additionally compared
//!   against the committed baseline JSON with a generous tolerance —
//!   shared-host day-to-day variance is large, so the absolute gate only
//!   catches collapses, while the ratio gates catch dispatch and
//!   code-structure regressions. On failure the process exits non-zero
//!   and the baseline file is left untouched.
//! * `--crossover` prints the small-n naive/packed sweep used to set the
//!   `PACK_MIN_N` dispatch threshold, then exits (no JSON).
//!
//! Regenerate the committed baseline with:
//! `cargo run --release -p versa-bench --bin perf_baseline`.

use std::time::Instant;
use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::SchedulerKind;
use versa_kernels::gemm::{
    dgemm_blocked64, dgemm_naive, dgemm_packed, dgemm_packed_scalar, dgemm_packed_tier,
    dgemm_parallel,
};
use versa_kernels::simd::{self, Tier};
use versa_kernels::verify::random_matrix_f64;
use versa_runtime::NativeConfig;

struct TierResult {
    name: String,
    n: usize,
    seconds: f64,
    gflops: f64,
}

type GemmFn = Box<dyn Fn(&[f64], &[f64], &mut [f64], usize)>;

struct TierSpec {
    name: String,
    f: GemmFn,
}

/// Best-of-`rounds` wall time per tier, measured **interleaved**: each
/// round times every tier once before the next round starts. Shared
/// hosts swing clock speed on multi-millisecond scales — longer than a
/// whole best-of window for one fast tier — so back-to-back per-tier
/// loops can time one tier entirely inside a slow phase and wreck the
/// `--check` ratio gates. Interleaving gives every tier a shot at the
/// same fast windows.
fn measure_tiers(specs: &[TierSpec], n: usize, rounds: usize) -> Vec<TierResult> {
    let a = random_matrix_f64(n, 1);
    let b = random_matrix_f64(n, 2);
    let mut c = vec![0.0; n * n];
    for s in specs {
        (s.f)(&a, &b, &mut c, n); // warm-up (faults pages, primes caches)
    }
    let mut best = vec![f64::INFINITY; specs.len()];
    for _ in 0..rounds {
        for (i, s) in specs.iter().enumerate() {
            let t0 = Instant::now();
            (s.f)(&a, &b, &mut c, n);
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
        }
    }
    specs
        .iter()
        .zip(best)
        .map(|(s, seconds)| {
            let gflops = 2.0 * (n as f64).powi(3) / seconds / 1e9;
            eprintln!("  {:<16} n={n:<5} {seconds:8.4}s  {gflops:7.2} GFLOP/s", s.name);
            TierResult { name: s.name.clone(), n, seconds, gflops }
        })
        .collect()
}

struct NativeResult {
    app: &'static str,
    tasks: u64,
    seconds: f64,
    tasks_per_sec: f64,
}

fn native_matmul(app: &'static str, variant: MatmulVariant, quick: bool) -> NativeResult {
    let cfg = if quick {
        MatmulConfig { n: 128, bs: 32 }
    } else {
        MatmulConfig { n: 256, bs: 64 }
    };
    let (report, _data) =
        matmul::run_native(cfg, variant, SchedulerKind::versioning(), NativeConfig::new(2, 1), 5);
    let seconds = report.makespan.as_secs_f64();
    let result = NativeResult {
        app,
        tasks: report.tasks_executed,
        seconds,
        tasks_per_sec: report.tasks_executed as f64 / seconds,
    };
    eprintln!(
        "  native {:<12} {:4} tasks {:8.4}s  {:8.1} tasks/s",
        result.app, result.tasks, result.seconds, result.tasks_per_sec
    );
    result
}

fn native_cholesky(quick: bool) -> NativeResult {
    let cfg = if quick {
        CholeskyConfig { n: 128, bs: 32 }
    } else {
        CholeskyConfig { n: 256, bs: 64 }
    };
    let (report, _data) = cholesky::run_native(
        cfg,
        CholeskyVariant::PotrfHybrid,
        SchedulerKind::versioning(),
        NativeConfig::new(2, 1),
        5,
    );
    let seconds = report.makespan.as_secs_f64();
    let result = NativeResult {
        app: "cholesky",
        tasks: report.tasks_executed,
        seconds,
        tasks_per_sec: report.tasks_executed as f64 / seconds,
    };
    eprintln!(
        "  native {:<12} {:4} tasks {:8.4}s  {:8.1} tasks/s",
        result.app, result.tasks, result.seconds, result.tasks_per_sec
    );
    result
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extract `(name, gflops)` rows from a committed baseline JSON without
/// a JSON dependency: the file is machine-written by this binary, so a
/// line-oriented scan of the `kernel_tiers` array is reliable.
fn parse_committed_tiers(text: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find("\"kernel_tiers\"") else { return Vec::new() };
    let Some(len) = text[start..].find(']') else { return Vec::new() };
    let mut out = Vec::new();
    for obj in text[start..start + len].split('{').skip(1) {
        let name = obj
            .split("\"name\":")
            .nth(1)
            .and_then(|r| r.split('"').nth(1))
            .map(str::to_string);
        let gflops = obj
            .split("\"gflops\":")
            .nth(1)
            .and_then(|r| r.trim_start().split(['}', ',']).next())
            .and_then(|v| v.trim().parse::<f64>().ok());
        if let (Some(n), Some(g)) = (name, gflops) {
            out.push((n, g));
        }
    }
    out
}

fn tier_gflops<'a>(tiers: &'a [TierResult], name: &str) -> Option<&'a TierResult> {
    tiers.iter().find(|t| t.name == name)
}

/// Same-run ratio gates plus (full mode) the committed-baseline bands.
/// Returns the list of violated gates.
fn check(tiers: &[TierResult], quick: bool, baseline_path: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let naive = tier_gflops(tiers, "naive").map(|t| t.gflops).unwrap_or(0.0);
    let scalar = tier_gflops(tiers, "packed_scalar").map(|t| t.gflops).unwrap_or(0.0);
    let packed = tier_gflops(tiers, "packed").map(|t| t.gflops).unwrap_or(0.0);

    // Gate 1: register blocking + packing must clearly beat the naive
    // triple loop, whatever the host (measured ≥ 2× even on the slowest
    // scalar-only machines; 1.2 leaves noise room).
    if scalar < 1.2 * naive {
        failures.push(format!(
            "packed_scalar ({scalar:.2} GF/s) < 1.2× naive ({naive:.2} GF/s)"
        ));
    }
    // Gate 2: runtime dispatch must not lose to the forced-scalar core —
    // if the active tier is scalar the two are the same code, so this
    // catches dispatch-layer overhead regressions.
    if packed < 0.85 * scalar {
        failures.push(format!(
            "dispatched packed ({packed:.2} GF/s) < 0.85× packed_scalar ({scalar:.2} GF/s)"
        ));
    }
    // Gate 3: in auto mode, dispatch must pick (at least) the best
    // detected SIMD tier. Skipped when the tier is pinned via the env
    // knobs — the per-tier rows still measure every detected kernel, so
    // a pinned run would otherwise always "lose" to the best tier.
    let pinned = std::env::var_os("VERSA_SIMD").is_some()
        || std::env::var_os("VERSA_FORCE_SCALAR").is_some();
    let best_simd = tiers
        .iter()
        .filter(|t| t.name.starts_with("packed_avx"))
        .map(|t| t.gflops)
        .fold(0.0f64, f64::max);
    // 0.75: the two rows run identical code when dispatch is right, but
    // they are timed minutes apart and shared-host frequency swings of
    // ~20% between best-of reps are routine; a wrong tier choice shows
    // up as a 2–3× gap, far below this band.
    if !pinned && best_simd > 0.0 && packed < 0.75 * best_simd {
        failures.push(format!(
            "dispatched packed ({packed:.2} GF/s) < 0.75× best SIMD tier ({best_simd:.2} GF/s)"
        ));
    }

    if !quick {
        // Absolute bands vs the committed baseline. Shared hosts swing
        // ~2× day to day, so the band only catches collapses (a tier
        // falling to less than half its committed rate); the ratio gates
        // above carry the fine-grained signal.
        match std::fs::read_to_string(baseline_path) {
            Ok(text) => {
                for (name, committed) in parse_committed_tiers(&text) {
                    let Some(measured) = tier_gflops(tiers, &name) else {
                        // Tier in the committed file but not measurable
                        // here (e.g. avx512 row on an avx2 host): skip.
                        eprintln!("  check: skipping '{name}' (not measured on this host)");
                        continue;
                    };
                    if measured.gflops < 0.5 * committed {
                        failures.push(format!(
                            "{name}: {:.2} GF/s < 0.5× committed {committed:.2} GF/s",
                            measured.gflops
                        ));
                    }
                }
            }
            Err(e) => eprintln!("  check: no committed baseline at {baseline_path} ({e}); ratio gates only"),
        }
    }
    failures
}

/// Print the small-n dispatch-crossover sweep that sets `PACK_MIN_N`.
fn crossover() {
    eprintln!("small-n crossover (best of 200 reps, µs/call):");
    eprintln!("  {:>4}  {:>10}  {:>10}  winner", "n", "naive", "packed");
    for n in [4usize, 8, 12, 16, 24, 32, 48, 64] {
        let a = random_matrix_f64(n, 1);
        let b = random_matrix_f64(n, 2);
        let mut c = vec![0.0; n * n];
        let mut best = [f64::INFINITY; 2];
        for (i, f) in [dgemm_naive as fn(&[f64], &[f64], &mut [f64], usize), dgemm_packed]
            .iter()
            .enumerate()
        {
            f(&a, &b, &mut c, n);
            for _ in 0..200 {
                let t0 = Instant::now();
                f(&a, &b, &mut c, n);
                best[i] = best[i].min(t0.elapsed().as_secs_f64());
            }
        }
        let winner = if best[0] <= best[1] { "naive" } else { "packed" };
        eprintln!("  {n:>4}  {:>10.3}  {:>10.3}  {winner}", best[0] * 1e6, best[1] * 1e6);
    }
    eprintln!("(PACK_MIN_N in gemm.rs/syrk.rs is set from this sweep)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_check = args.iter().any(|a| a == "--check");
    if args.iter().any(|a| a == "--crossover") {
        crossover();
        return;
    }
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let baseline_path = arg_after("--baseline").unwrap_or_else(|| out_path.clone());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Quick rounds are cheap (~10 ms each at n=256); best-of-5 plus
    // interleaving is what keeps the `--check` gates stable on shared
    // hosts.
    let (n, reps): (usize, usize) = if quick { (256, 5) } else { (1024, 3) };
    eprintln!("GEMM tiers (f64, n={n}, simd={}, cores_visible={cores}):", simd::active_tier().name());

    let mut specs: Vec<TierSpec> = vec![
        TierSpec { name: "naive".into(), f: Box::new(dgemm_naive) },
        TierSpec { name: "blocked64".into(), f: Box::new(dgemm_blocked64) },
        TierSpec { name: "packed_scalar".into(), f: Box::new(dgemm_packed_scalar) },
    ];
    for tier in simd::detected_tiers() {
        if tier == Tier::Scalar {
            continue;
        }
        specs.push(TierSpec {
            name: format!("packed_{}", tier.name()),
            f: Box::new(move |a, b, c, n| {
                assert!(dgemm_packed_tier(tier, a, b, c, n));
            }),
        });
    }
    specs.push(TierSpec { name: "packed".into(), f: Box::new(dgemm_packed) });
    specs.push(TierSpec {
        name: "packed_4lanes".into(),
        f: Box::new(|a, b, c, n| dgemm_parallel(a, b, c, n, 4)),
    });
    let tiers = measure_tiers(&specs, n, reps);

    let blocked = tier_gflops(&tiers, "blocked64").unwrap().gflops;
    let packed = tier_gflops(&tiers, "packed").unwrap().gflops;
    let scalar = tier_gflops(&tiers, "packed_scalar").unwrap().gflops;
    eprintln!("packed vs blocked64 speedup: {:.2}x", packed / blocked);
    eprintln!("packed vs packed_scalar speedup: {:.2}x", packed / scalar);

    if do_check {
        let failures = check(&tiers, quick, &baseline_path);
        if !failures.is_empty() {
            eprintln!("perf check FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("perf check passed");
    }

    eprintln!("native engine end-to-end:");
    let native = [
        native_matmul("matmul", MatmulVariant::Hybrid, quick),
        native_matmul("matmul_wide", MatmulVariant::Wide, quick),
        native_cholesky(quick),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"perf_baseline\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    json.push_str(&format!("  \"gemm_n\": {n},\n"));
    json.push_str(&format!("  \"cores_visible\": {cores},\n"));
    json.push_str(&format!("  \"simd_active\": \"{}\",\n", json_escape(simd::active_tier().name())));
    json.push_str(&format!(
        "  \"simd_detected\": [{}],\n",
        simd::detected_tiers()
            .iter()
            .map(|t| format!("\"{}\"", t.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"kernel_tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"seconds\": {:.6}, \"gflops\": {:.3}}}{}\n",
            json_escape(&t.name),
            t.n,
            t.seconds,
            t.gflops,
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"packed_vs_blocked64_speedup\": {:.3},\n",
        packed / blocked
    ));
    json.push_str(&format!(
        "  \"packed_vs_scalar_speedup\": {:.3},\n",
        packed / scalar
    ));
    json.push_str("  \"native\": [\n");
    for (i, r) in native.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"tasks\": {}, \"seconds\": {:.6}, \"tasks_per_sec\": {:.2}}}{}\n",
            json_escape(r.app),
            r.tasks,
            r.seconds,
            r.tasks_per_sec,
            if i + 1 < native.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
