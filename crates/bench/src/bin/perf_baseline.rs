//! Kernel-tier and native-engine performance baseline.
//!
//! Measures the three GEMM tiers (naive / seed 64×64-blocked / packed
//! register-blocked, plus the multi-lane packed tier) in GFLOP/s, and the
//! native engine end-to-end on small matmul and Cholesky instances in
//! tasks/sec, then writes the numbers as JSON.
//!
//! Usage:
//! ```text
//! perf_baseline [--quick] [--out PATH]
//! ```
//! `--quick` shrinks the GEMM size and rep count for CI smoke runs;
//! the default writes `BENCH_kernels.json` in the working directory.
//! Regenerate the committed baseline with:
//! `cargo run --release -p versa-bench --bin perf_baseline`.

use std::time::Instant;
use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::SchedulerKind;
use versa_kernels::gemm::{dgemm_blocked64, dgemm_naive, dgemm_packed, dgemm_parallel};
use versa_kernels::verify::random_matrix_f64;
use versa_runtime::NativeConfig;

struct TierResult {
    name: &'static str,
    n: usize,
    seconds: f64,
    gflops: f64,
}

/// Best-of-`reps` wall time for one GEMM tier.
fn time_tier(
    name: &'static str,
    n: usize,
    reps: usize,
    f: impl Fn(&[f64], &[f64], &mut [f64], usize),
) -> TierResult {
    let a = random_matrix_f64(n, 1);
    let b = random_matrix_f64(n, 2);
    let mut c = vec![0.0; n * n];
    f(&a, &b, &mut c, n); // warm-up (faults pages, primes caches)
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f(&a, &b, &mut c, n);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let gflops = 2.0 * (n as f64).powi(3) / best / 1e9;
    eprintln!("  {name:<16} n={n:<5} {best:8.4}s  {gflops:7.2} GFLOP/s");
    TierResult { name, n, seconds: best, gflops }
}

struct NativeResult {
    app: &'static str,
    tasks: u64,
    seconds: f64,
    tasks_per_sec: f64,
}

fn native_matmul(quick: bool) -> NativeResult {
    let cfg = if quick {
        MatmulConfig { n: 128, bs: 32 }
    } else {
        MatmulConfig { n: 256, bs: 64 }
    };
    let (report, _data) = matmul::run_native(
        cfg,
        MatmulVariant::Hybrid,
        SchedulerKind::versioning(),
        NativeConfig::new(2, 1),
        5,
    );
    let seconds = report.makespan.as_secs_f64();
    let result = NativeResult {
        app: "matmul",
        tasks: report.tasks_executed,
        seconds,
        tasks_per_sec: report.tasks_executed as f64 / seconds,
    };
    eprintln!(
        "  native {:<9} {:4} tasks {:8.4}s  {:8.1} tasks/s",
        result.app, result.tasks, result.seconds, result.tasks_per_sec
    );
    result
}

fn native_cholesky(quick: bool) -> NativeResult {
    let cfg = if quick {
        CholeskyConfig { n: 128, bs: 32 }
    } else {
        CholeskyConfig { n: 256, bs: 64 }
    };
    let (report, _data) = cholesky::run_native(
        cfg,
        CholeskyVariant::PotrfHybrid,
        SchedulerKind::versioning(),
        NativeConfig::new(2, 1),
        5,
    );
    let seconds = report.makespan.as_secs_f64();
    let result = NativeResult {
        app: "cholesky",
        tasks: report.tasks_executed,
        seconds,
        tasks_per_sec: report.tasks_executed as f64 / seconds,
    };
    eprintln!(
        "  native {:<9} {:4} tasks {:8.4}s  {:8.1} tasks/s",
        result.app, result.tasks, result.seconds, result.tasks_per_sec
    );
    result
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let (n, reps): (usize, usize) = if quick { (256, 1) } else { (1024, 3) };
    eprintln!("GEMM tiers (f64, n={n}):");
    let tiers = [
        time_tier("naive", n, reps.saturating_sub(2).max(1), dgemm_naive),
        time_tier("blocked64", n, reps, dgemm_blocked64),
        time_tier("packed", n, reps, dgemm_packed),
        time_tier("packed_4lanes", n, reps, |a, b, c, n| dgemm_parallel(a, b, c, n, 4)),
    ];
    let blocked = tiers.iter().find(|t| t.name == "blocked64").unwrap().gflops;
    let packed = tiers.iter().find(|t| t.name == "packed").unwrap().gflops;
    let speedup = packed / blocked;
    eprintln!("packed vs blocked64 speedup: {speedup:.2}x");

    eprintln!("native engine end-to-end:");
    let native = [native_matmul(quick), native_cholesky(quick)];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"perf_baseline\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    json.push_str(&format!("  \"gemm_n\": {n},\n"));
    json.push_str("  \"kernel_tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"seconds\": {:.6}, \"gflops\": {:.3}}}{}\n",
            json_escape(t.name),
            t.n,
            t.seconds,
            t.gflops,
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"packed_vs_blocked64_speedup\": {speedup:.3},\n"));
    json.push_str("  \"native\": [\n");
    for (i, r) in native.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"tasks\": {}, \"seconds\": {:.6}, \"tasks_per_sec\": {:.2}}}{}\n",
            json_escape(r.app),
            r.tasks,
            r.seconds,
            r.tasks_per_sec,
            if i + 1 < native.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
