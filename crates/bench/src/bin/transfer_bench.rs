//! Overlapped-transfer benchmark: sync coordinator copies vs async
//! per-worker staging lanes vs async + prefetch lookahead.
//!
//! Runs tiled matmul (primary) and Cholesky (secondary) on the native
//! engine with ≥ 2 emulated-GPU workers and a throttled interconnect
//! (`NativeConfig::link_bandwidth`), in three transfer modes:
//!
//! * `sync`  — `async_transfers = false`: every copy-in runs on the
//!   coordinator, serializing all workers' transfers.
//! * `async` — staging lanes, `lookahead_depth = 0`: copies move off the
//!   coordinator and overlap *across* workers, but not with the same
//!   worker's compute.
//! * `async+lookahead` — `lookahead_depth = 2`: the next tasks' inputs
//!   stage while the current kernel runs (double-buffering).
//!
//! The emulated link runs at 200 MB/s — software GEMM kernels are some
//! three orders of magnitude slower than the M2090s the paper measured,
//! so the interconnect is scaled down proportionally to keep the
//! compute/transfer ratio representative.
//!
//! Usage:
//! ```text
//! transfer_bench [--quick] [--out PATH]
//! ```
//! `--quick` shrinks problem sizes for CI smoke runs; the default writes
//! `BENCH_transfers.json` in the working directory. Regenerate the
//! committed baseline with:
//! `cargo run --release -p versa-bench --bin transfer_bench`.

use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::SchedulerKind;
use versa_runtime::{NativeConfig, RunReport, RuntimeConfig};

/// 200 MB/s emulated PCIe (see module docs for the scaling argument).
const LINK_BYTES_PER_SEC: u64 = 200_000_000;

#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    async_transfers: bool,
    lookahead_depth: usize,
}

const MODES: [Mode; 3] = [
    Mode { name: "sync", async_transfers: false, lookahead_depth: 0 },
    Mode { name: "async", async_transfers: true, lookahead_depth: 0 },
    Mode { name: "async+lookahead", async_transfers: true, lookahead_depth: 2 },
];

struct ModeResult {
    mode: &'static str,
    seconds: f64,
    tasks: u64,
    input_bytes: u64,
    device_bytes: u64,
    /// Per worker: (staged_bytes, stage_seconds, compute_seconds, overlap_ratio).
    workers: Vec<(u64, f64, f64, f64)>,
}

fn mode_config(mode: Mode) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::with_scheduler(SchedulerKind::DepAware);
    cfg.async_transfers = mode.async_transfers;
    cfg.lookahead_depth = mode.lookahead_depth;
    cfg
}

fn native_config(gpu_lanes: usize) -> NativeConfig {
    NativeConfig {
        smp_workers: 0,
        gpus: 2,
        gpu_lanes,
        link_bandwidth: Some(LINK_BYTES_PER_SEC),
    }
}

fn summarize(mode: Mode, report: &RunReport) -> ModeResult {
    let workers = report
        .worker_transfers
        .iter()
        .map(|wt| {
            (
                wt.staged_bytes,
                wt.stage_time.as_secs_f64(),
                wt.compute_time.as_secs_f64(),
                wt.overlap_ratio(),
            )
        })
        .collect();
    ModeResult {
        mode: mode.name,
        seconds: report.makespan.as_secs_f64(),
        tasks: report.tasks_executed,
        input_bytes: report.transfers.input_bytes,
        device_bytes: report.transfers.device_bytes,
        workers,
    }
}

fn bench_matmul(quick: bool) -> Vec<ModeResult> {
    let cfg = if quick {
        MatmulConfig { n: 512, bs: 128 }
    } else {
        MatmulConfig { n: 2048, bs: 256 }
    };
    let lanes = if quick { 1 } else { 2 };
    eprintln!("matmul n={} bs={} ({} tasks), 2 GPUs, link {} MB/s:", cfg.n, cfg.bs, cfg.task_count(), LINK_BYTES_PER_SEC / 1_000_000);
    MODES
        .iter()
        .map(|&mode| {
            let (report, _) = matmul::run_native_with(
                mode_config(mode),
                cfg,
                MatmulVariant::Gpu,
                native_config(lanes),
                11,
            );
            let r = summarize(mode, &report);
            report_line(&r);
            r
        })
        .collect()
}

fn bench_cholesky(quick: bool) -> Vec<ModeResult> {
    let cfg = if quick {
        CholeskyConfig { n: 256, bs: 64 }
    } else {
        CholeskyConfig { n: 1024, bs: 128 }
    };
    let lanes = if quick { 1 } else { 2 };
    eprintln!("cholesky n={} bs={} ({} tile cols), 2 GPUs, link {} MB/s:", cfg.n, cfg.bs, cfg.nb(), LINK_BYTES_PER_SEC / 1_000_000);
    MODES
        .iter()
        .map(|&mode| {
            let (report, _) = cholesky::run_native_with(
                mode_config(mode),
                cfg,
                CholeskyVariant::PotrfGpu,
                native_config(lanes),
                11,
            );
            let r = summarize(mode, &report);
            report_line(&r);
            r
        })
        .collect()
}

fn report_line(r: &ModeResult) {
    let overlaps: Vec<String> =
        r.workers.iter().map(|w| format!("{:.2}", w.3)).collect();
    eprintln!(
        "  {:<16} {:8.3}s  {:4} tasks  {:6.1} MB in  overlap [{}]",
        r.mode,
        r.seconds,
        r.tasks,
        r.input_bytes as f64 / 1e6,
        overlaps.join(", ")
    );
}

fn emit_app(json: &mut String, app: &str, results: &[ModeResult], last: bool) {
    let sync = results.iter().find(|r| r.mode == "sync").unwrap().seconds;
    json.push_str(&format!("    {{\"app\": \"{app}\", \"modes\": [\n"));
    for (i, r) in results.iter().enumerate() {
        let workers: Vec<String> = r
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"staged_bytes\": {}, \"stage_seconds\": {:.6}, \"compute_seconds\": {:.6}, \"overlap_ratio\": {:.4}}}",
                    w.0, w.1, w.2, w.3
                )
            })
            .collect();
        json.push_str(&format!(
            "      {{\"mode\": \"{}\", \"seconds\": {:.6}, \"tasks\": {}, \"input_bytes\": {}, \"device_bytes\": {}, \"speedup_vs_sync\": {:.4}, \"workers\": [{}]}}{}\n",
            r.mode,
            r.seconds,
            r.tasks,
            r.input_bytes,
            r.device_bytes,
            sync / r.seconds,
            workers.join(", "),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!("    ]}}{}\n", if last { "" } else { "," }));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_transfers.json".to_string());

    let mm = bench_matmul(quick);
    let ch = bench_cholesky(quick);

    let mm_sync = mm.iter().find(|r| r.mode == "sync").unwrap().seconds;
    let mm_best = mm.iter().find(|r| r.mode == "async+lookahead").unwrap().seconds;
    let speedup = mm_sync / mm_best;
    eprintln!("matmul async+lookahead speedup vs sync: {speedup:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"transfer_bench\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    json.push_str(&format!("  \"link_bytes_per_sec\": {LINK_BYTES_PER_SEC},\n"));
    json.push_str(&format!(
        "  \"matmul_async_lookahead_speedup_vs_sync\": {speedup:.4},\n"
    ));
    json.push_str("  \"apps\": [\n");
    emit_app(&mut json, "matmul", &mm, false);
    emit_app(&mut json, "cholesky", &ch, true);
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
