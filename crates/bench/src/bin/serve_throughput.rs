//! Sustained small-job throughput gate for the multi-job service.
//!
//! Two phases over [`versa_apps::jobs::tiny_axpy_job`] (two allocations,
//! a two-task AXPY chain — pure runtime overhead, no arithmetic to speak
//! of), driven on the simulated platform so every microsecond measured
//! is coordination cost — admission, graph bookkeeping, scheduler bids,
//! directory/arena traffic — with no kernel time or per-wave OS-thread
//! churn folded in:
//!
//! * **saturation** — a closed loop holds a fixed number of jobs in
//!   flight for a wall budget and counts completions, once with the
//!   serve-at-scale machinery off (per-probe scheduler bids, no graph
//!   recycling — the pre-batching service) and once with it on (batched
//!   wave bids + graph pooling). The legacy side degrades as the graph
//!   window grows without bound — its per-free liveness scan walks
//!   every node ever submitted — which is exactly the ceiling the
//!   optimized side removes; the gate demands ≥10× sustained jobs/sec.
//! * **latency** — run first, before the saturation burn heats up the
//!   host: open-loop Poisson arrivals against the optimized service at
//!   a gentle fixed rate, far under measured capacity;
//!   per-job turnaround p50/p99 must stay tight or admission is
//!   stalling on coordination somewhere. The tail gate is
//!   `p99 ≤ max(2 × p50, p50 + 10 ms)` plus a 50 ms hard cap and a
//!   no-shed requirement: the absolute slack absorbs scheduler/
//!   virtualization jitter on small shared runners (a multiplicative
//!   bound alone over a ~0.1 ms median measures the hypervisor, not
//!   the service, and steal-time pauses alone reach ~5 ms at p99),
//!   while a service that serializes or backs up still fails —
//!   observed pathologies sit at 9–100 ms p99 with shed arrivals,
//!   tripping the no-shed arm and usually the slack arm too.
//!
//! Admission-control books are checked at the end of every phase:
//! `submitted == accepted + rejected_queue_full + rejected_shutdown +
//! shed_deadline`, and every accepted job must complete.
//!
//! Usage:
//! ```text
//! serve_throughput [--quick] [--check] [--min-speedup X] [--out PATH]
//! ```
//! `--quick` shrinks the wall budgets for CI smoke runs; `--check`
//! fails the run when a gate is missed (what CI's serve-throughput job
//! enforces). The default writes `BENCH_serve_throughput.json`;
//! regenerate the committed baseline with:
//! `cargo run --release -p versa-bench --bin serve_throughput`.

use std::collections::VecDeque;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use versa_apps::jobs;
use versa_core::SchedulerKind;
use versa_runtime::{Runtime, RuntimeConfig};
use versa_serve::{ServeConfig, Service};
use versa_sim::PlatformConfig;

/// Elements per AXPY buffer: small enough that kernels are ~free, large
/// enough that the job is not purely a channel round-trip.
const ELEMS: usize = 256;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// xorshift64* — deterministic inter-arrival randomness without pulling
/// in an RNG crate.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential with mean `mean_s` seconds.
    fn exp(&mut self, mean_s: f64) -> Duration {
        Duration::from_secs_f64(-mean_s * self.unit().ln())
    }
}

/// Jobs held in flight by the closed loop — bounds the service's active
/// set so both sides measure steady-state per-job cost, not the cost of
/// an ever-growing backlog.
const IN_FLIGHT: usize = 256;

fn service(optimized: bool) -> Service {
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.batched_bids = optimized;
    let rt = Runtime::simulated(rc, PlatformConfig::minotauro(4, 0));
    let config = ServeConfig {
        // Deep enough that a multi-ms host hiccup (~128 ms of backlog at
        // the latency phase's arrival rate) does not shed open-loop
        // arrivals on its own.
        queue_capacity: 256,
        wave_dispatch: 64,
        recycle_graph: optimized,
        ..ServeConfig::default()
    };
    Service::start(rt, config)
}

struct SaturationResult {
    jobs_done: u64,
    elapsed_s: f64,
    jobs_per_sec: f64,
}

/// Keep [`IN_FLIGHT`] jobs in flight for `budget`, then drain; returns
/// sustained completed-jobs/sec over the whole run (including the
/// drain, so a backlogged side cannot hide work past the deadline).
fn saturate(label: &str, optimized: bool, budget: Duration) -> SaturationResult {
    let svc = service(optimized);
    let client = svc.client();
    let start = Instant::now();
    let mut tickets = VecDeque::with_capacity(IN_FLIGHT);
    let mut seed = 0u64;
    let reap = |t: versa_serve::JobTicket| {
        let report = t.wait();
        assert!(report.outcome.is_ok(), "job failed: {:?}", report.outcome);
    };
    while start.elapsed() < budget {
        // Closed loop: block on the oldest ticket once the in-flight cap
        // is reached, so the active set stays bounded on both sides.
        if tickets.len() == IN_FLIGHT {
            reap(tickets.pop_front().unwrap());
        }
        match client.submit(jobs::tiny_axpy_job(ELEMS, seed)).accepted() {
            Some(t) => {
                tickets.push_back(t);
                seed += 1;
            }
            // Queue full: free service capacity by reaping a completion.
            None => match tickets.pop_front() {
                Some(t) => reap(t),
                None => std::thread::yield_now(),
            },
        }
    }
    for t in tickets.drain(..) {
        reap(t);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let m = client.metrics();
    assert_eq!(
        m.submitted,
        m.accepted + m.rejected_queue_full + m.rejected_shutdown + m.shed_deadline,
        "{label}: admission books must balance"
    );
    assert_eq!(m.completed, seed, "{label}: every accepted job completes");
    drop(client);
    svc.shutdown();
    let jobs_per_sec = seed as f64 / elapsed_s;
    eprintln!(
        "  {label}: {seed} jobs in {elapsed_s:.2}s → {jobs_per_sec:.0} jobs/s \
         ({} offers rejected by backpressure)",
        m.rejected_queue_full
    );
    SaturationResult { jobs_done: seed, elapsed_s, jobs_per_sec }
}

struct LatencyResult {
    jobs_done: u64,
    rate_target: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Open-loop Poisson arrivals at `rate` jobs/sec against the optimized
/// service; returns turnaround percentiles.
fn open_loop(rate: f64, jobs: u64) -> LatencyResult {
    let svc = service(true);
    let client = svc.client();
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut tickets = Vec::with_capacity(jobs as usize);
    let mut next = Instant::now();
    for seed in 0..jobs {
        next += rng.exp(1.0 / rate);
        // Sleep (don't spin) to the arrival instant: on small machines
        // the arrival thread shares a core with the service, and a spin
        // loop would starve the very thing being measured.
        if let Some(wait) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // Open loop: a full queue sheds the arrival instead of blocking
        // the arrival process (the books still count it).
        if let Some(t) = client.submit(jobs::tiny_axpy_job(ELEMS, seed)).accepted() {
            tickets.push(t);
        }
    }
    let mut turnaround_ms: Vec<f64> = tickets
        .drain(..)
        .map(|t| {
            let report = t.wait();
            assert!(report.outcome.is_ok(), "latency job failed: {:?}", report.outcome);
            report.turnaround.as_secs_f64() * 1e3
        })
        .collect();
    let m = client.metrics();
    assert_eq!(
        m.submitted,
        m.accepted + m.rejected_queue_full + m.rejected_shutdown + m.shed_deadline,
        "latency phase: admission books must balance"
    );
    drop(client);
    svc.shutdown();
    turnaround_ms.sort_by(|a, b| a.total_cmp(b));
    let done = turnaround_ms.len() as u64;
    let (p50, p99) = (percentile(&turnaround_ms, 0.50), percentile(&turnaround_ms, 0.99));
    eprintln!(
        "  open-loop @ {rate:.0} jobs/s: {done}/{jobs} admitted, turnaround \
         p10 {:.3} p50 {p50:.3} p90 {:.3} p95 {:.3} p99 {p99:.3} ms",
        percentile(&turnaround_ms, 0.10),
        percentile(&turnaround_ms, 0.90),
        percentile(&turnaround_ms, 0.95),
    );
    LatencyResult { jobs_done: done, rate_target: rate, p50_ms: p50, p99_ms: p99 }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let min_speedup: f64 = args
        .iter()
        .position(|a| a == "--min-speedup")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--min-speedup expects a number"))
        .unwrap_or(10.0);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve_throughput.json".to_string());

    // The legacy side's per-job cost grows with every job it has ever
    // served, so its sustained rate keeps falling the longer the budget
    // runs; the quick budgets are the smallest window where that decay
    // (and the ≥10× contrast) is reliably visible.
    let (sat_budget, lat_jobs) = if quick {
        (Duration::from_secs(6), 8_000u64)
    } else {
        (Duration::from_secs(12), 30_000u64)
    };

    // Warm-up: lane pools, allocator, template registration paths.
    saturate("warmup", true, Duration::from_millis(300));

    // Latency first, on a cold machine. At this gentle fixed rate
    // queueing stays negligible by construction (asserted against the
    // capacity measured below), so the percentiles measure the
    // service's own admission→completion path. Running it before the
    // saturation burn matters on burstable/shared hosts: a sustained
    // 100%-CPU phase drains the hypervisor's credit bucket, and the
    // throttle response would otherwise land in the tail percentiles.
    let lat_rate = 2_000.0;
    let lat = open_loop(lat_rate, lat_jobs);
    let tail_ratio = lat.p99_ms / lat.p50_ms;

    eprintln!("saturation ({}s budget per side):", sat_budget.as_secs());
    let legacy = saturate("legacy (per-probe bids, no recycling)", false, sat_budget);
    let optimized = saturate("optimized (batched bids + recycling)", true, sat_budget);
    let speedup = optimized.jobs_per_sec / legacy.jobs_per_sec;
    eprintln!(
        "sustained throughput: legacy {:.0} jobs/s, optimized {:.0} jobs/s → {speedup:.2}x \
         (gate ≥{min_speedup}x)",
        legacy.jobs_per_sec, optimized.jobs_per_sec
    );
    assert!(
        lat_rate < optimized.jobs_per_sec * 0.2,
        "latency rate {lat_rate} is not gentle against measured capacity {:.0} jobs/s",
        optimized.jobs_per_sec
    );
    let tail_slack_ms = 10.0;
    let tail_bound_ms = (2.0 * lat.p50_ms).max(lat.p50_ms + tail_slack_ms);
    eprintln!(
        "tail: p99/p50 = {tail_ratio:.2}, gate p99 ≤ max(2×p50, p50+{tail_slack_ms} ms) \
         = {tail_bound_ms:.3} ms, hard cap 50 ms"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"serve_throughput\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    json.push_str("  \"job\": \"tiny-axpy\",\n");
    json.push_str(&format!("  \"elems_per_buffer\": {ELEMS},\n"));
    json.push_str(&format!("  \"saturation_budget_s\": {},\n", sat_budget.as_secs_f64()));
    json.push_str(&format!(
        "  \"legacy\": {{\"jobs\": {}, \"elapsed_s\": {:.3}, \"jobs_per_sec\": {:.1}}},\n",
        legacy.jobs_done, legacy.elapsed_s, legacy.jobs_per_sec
    ));
    json.push_str(&format!(
        "  \"optimized\": {{\"jobs\": {}, \"elapsed_s\": {:.3}, \"jobs_per_sec\": {:.1}}},\n",
        optimized.jobs_done, optimized.elapsed_s, optimized.jobs_per_sec
    ));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"min_speedup\": {min_speedup:.1},\n"));
    json.push_str(&format!(
        "  \"open_loop\": {{\"rate_jobs_per_sec\": {:.1}, \"jobs\": {}, \
         \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"tail_ratio\": {:.3}, \
         \"tail_slack_ms\": {tail_slack_ms:.1}}}\n",
        lat.rate_target, lat.jobs_done, lat.p50_ms, lat.p99_ms, tail_ratio
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    let mut ok = true;
    if speedup < min_speedup {
        eprintln!("FAIL: sustained speedup {speedup:.2}x below the {min_speedup}x gate");
        ok = false;
    }
    if lat.p99_ms > tail_bound_ms {
        eprintln!(
            "FAIL: p99 {:.3} ms exceeds max(2×p50, p50+{tail_slack_ms} ms) = {tail_bound_ms:.3} ms",
            lat.p99_ms
        );
        ok = false;
    }
    if lat.p99_ms > 50.0 {
        eprintln!("FAIL: p99 {:.3} ms exceeds the 50 ms hard cap", lat.p99_ms);
        ok = false;
    }
    if lat.jobs_done != lat_jobs {
        eprintln!(
            "FAIL: {} of {lat_jobs} gentle open-loop arrivals were shed — the service backed up",
            lat_jobs - lat.jobs_done
        );
        ok = false;
    }
    if check && !ok {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
