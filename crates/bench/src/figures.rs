//! Regeneration of every table and figure in the paper's §V.

use crate::{sweep, Cell, FigureResult, Scale, SweepPoint};
use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_apps::pbpi::{self, PbpiConfig, PbpiVariant};
use versa_core::{SchedulerKind, TemplateId, VersionId};
use versa_runtime::{RunReport, Runtime, RuntimeConfig};
use versa_sim::PlatformConfig;

fn matmul_cfg(scale: Scale) -> MatmulConfig {
    match scale {
        Scale::Paper => MatmulConfig::paper(),
        Scale::Quick => MatmulConfig::quick(),
    }
}

fn cholesky_cfg(scale: Scale) -> CholeskyConfig {
    match scale {
        Scale::Paper => CholeskyConfig::paper(),
        Scale::Quick => CholeskyConfig { n: 8192, bs: 1024 },
    }
}

fn pbpi_cfg(scale: Scale) -> PbpiConfig {
    match scale {
        Scale::Paper => PbpiConfig::paper(),
        Scale::Quick => PbpiConfig { chunks: 16, sites_per_chunk: 16384, generations: 20 },
    }
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1.0e6
}

// ---------------------------------------------------------------------
// Matmul (Figs. 6, 7, 8)
// ---------------------------------------------------------------------

/// All matmul runs for one sweep point.
pub struct MatmulPoint {
    /// The resource configuration.
    pub point: SweepPoint,
    /// mm-gpu under the dependency-aware scheduler.
    pub gpu_dep: RunReport,
    /// mm-gpu under the affinity scheduler.
    pub gpu_aff: RunReport,
    /// mm-hyb under the versioning scheduler.
    pub hyb_ver: RunReport,
    /// The hybrid run's `matmul_tile` template.
    pub template: TemplateId,
}

/// Execute the full matmul sweep (the backing runs of Figs. 6–8).
pub fn matmul_matrix(scale: Scale) -> (MatmulConfig, Vec<MatmulPoint>) {
    let cfg = matmul_cfg(scale);
    let points = sweep()
        .into_iter()
        .map(|p| {
            let platform = || PlatformConfig::minotauro(p.smp, p.gpus);
            let gpu_dep =
                matmul::run_sim(cfg, MatmulVariant::Gpu, SchedulerKind::DepAware, platform());
            let gpu_aff =
                matmul::run_sim(cfg, MatmulVariant::Gpu, SchedulerKind::Affinity, platform());
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
                platform(),
            );
            let app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
            let hyb_ver = rt.run().expect("run failed");
            MatmulPoint { point: p, gpu_dep, gpu_aff, hyb_ver, template: app.template }
        })
        .collect();
    (cfg, points)
}

/// Fig. 6 — matmul performance (GFLOP/s) per scheduler and resource mix.
pub fn fig6(cfg: &MatmulConfig, points: &[MatmulPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig6",
        "Matrix multiplication performance (GFLOP/s)",
        &["config", "mm-gpu-dep", "mm-gpu-aff", "mm-hyb-ver"],
    );
    let f = cfg.flops();
    for p in points {
        out.push_row(vec![
            Cell::text(p.point.label()),
            Cell::num(p.gpu_dep.gflops(f)),
            Cell::num(p.gpu_aff.gflops(f)),
            Cell::num(p.hyb_ver.gflops(f)),
        ]);
    }
    out.note("paper: dep ≈ aff for mm-gpu; linear 1→2 GPU scaling; SMP count irrelevant for mm-gpu");
    out.note("paper: mm-hyb-ver slightly lower at few SMP workers, overtakes as SMP workers grow");
    out
}

/// Fig. 7 — matmul bytes transferred per category (GA / GD / HV).
pub fn fig7(points: &[MatmulPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig7",
        "Data transferred for matrix multiplication (MB)",
        &["config", "series", "input", "output", "device"],
    );
    for p in points {
        for (series, rep) in
            [("GA", &p.gpu_aff), ("GD", &p.gpu_dep), ("HV", &p.hyb_ver)]
        {
            out.push_row(vec![
                Cell::text(format!("{} {}", p.point.label(), series)),
                Cell::text(series),
                Cell::num(mb(rep.transfers.input_bytes)),
                Cell::num(mb(rep.transfers.output_bytes)),
                Cell::num(mb(rep.transfers.device_bytes)),
            ]);
        }
    }
    out.note("paper: HV transfers exceed GA/GD and grow with SMP workers; HV shows device-device traffic");
    out
}

/// Fig. 8 — matmul per-version execution shares under the versioning
/// scheduler.
pub fn fig8(points: &[MatmulPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig8",
        "Matmul task statistics for versioning scheduler (% of executions)",
        &["config", "cublas", "cuda", "cblas"],
    );
    for p in points {
        let shares = p.hyb_ver.version_shares(p.template, 3);
        out.push_row(vec![
            Cell::text(p.point.label()),
            Cell::num(100.0 * shares[0]),
            Cell::num(100.0 * shares[1]),
            Cell::num(100.0 * shares[2]),
        ]);
    }
    out.note("paper: CUBLAS dominates; hand-CUDA only runs during learning (almost invisible)");
    out.note("paper: SMP share ≈10%, grows with SMP workers, larger with 1 GPU than with 2");
    out
}

// ---------------------------------------------------------------------
// Cholesky (Figs. 9, 10, 11)
// ---------------------------------------------------------------------

/// All Cholesky runs for one sweep point.
pub struct CholeskyPoint {
    /// The resource configuration.
    pub point: SweepPoint,
    /// potrf-smp under the affinity scheduler.
    pub smp_aff: RunReport,
    /// potrf-gpu under the dependency-aware scheduler.
    pub gpu_dep: RunReport,
    /// potrf-gpu under the affinity scheduler.
    pub gpu_aff: RunReport,
    /// potrf-hyb under the versioning scheduler.
    pub hyb_ver: RunReport,
    /// The hybrid run's `potrf` template.
    pub potrf: TemplateId,
}

/// Execute the full Cholesky sweep (the backing runs of Figs. 9–11).
pub fn cholesky_matrix(scale: Scale) -> (CholeskyConfig, Vec<CholeskyPoint>) {
    let cfg = cholesky_cfg(scale);
    let points = sweep()
        .into_iter()
        .map(|p| {
            let platform = || PlatformConfig::minotauro(p.smp, p.gpus);
            let smp_aff = cholesky::run_sim(
                cfg,
                CholeskyVariant::PotrfSmp,
                SchedulerKind::Affinity,
                platform(),
            );
            let gpu_dep = cholesky::run_sim(
                cfg,
                CholeskyVariant::PotrfGpu,
                SchedulerKind::DepAware,
                platform(),
            );
            let gpu_aff = cholesky::run_sim(
                cfg,
                CholeskyVariant::PotrfGpu,
                SchedulerKind::Affinity,
                platform(),
            );
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
                platform(),
            );
            let app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfHybrid);
            let hyb_ver = rt.run().expect("run failed");
            CholeskyPoint { point: p, smp_aff, gpu_dep, gpu_aff, hyb_ver, potrf: app.potrf }
        })
        .collect();
    (cfg, points)
}

/// Fig. 9 — Cholesky performance (GFLOP/s).
pub fn fig9(cfg: &CholeskyConfig, points: &[CholeskyPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig9",
        "Cholesky factorization performance (GFLOP/s)",
        &["config", "potrf-smp-aff", "potrf-gpu-dep", "potrf-gpu-aff", "potrf-hyb-ver"],
    );
    let f = cfg.flops();
    for p in points {
        out.push_row(vec![
            Cell::text(p.point.label()),
            Cell::num(p.smp_aff.gflops(f)),
            Cell::num(p.gpu_dep.gflops(f)),
            Cell::num(p.gpu_aff.gflops(f)),
            Cell::num(p.hyb_ver.gflops(f)),
        ]);
    }
    out.note("paper: potrf-smp is worst everywhere (transfers + slow SMP potrf)");
    out.note("paper: potrf-hyb-ver close to potrf-gpu; learning phase visible (only 16 potrf instances)");
    out
}

/// Fig. 10 — Cholesky bytes transferred per category.
pub fn fig10(points: &[CholeskyPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig10",
        "Data transferred for Cholesky (MB)",
        &["config", "series", "input", "output", "device"],
    );
    for p in points {
        for (series, rep) in [
            ("SA", &p.smp_aff),
            ("GD", &p.gpu_dep),
            ("GA", &p.gpu_aff),
            ("HV", &p.hyb_ver),
        ] {
            out.push_row(vec![
                Cell::text(format!("{} {}", p.point.label(), series)),
                Cell::text(series),
                Cell::num(mb(rep.transfers.input_bytes)),
                Cell::num(mb(rep.transfers.output_bytes)),
                Cell::num(mb(rep.transfers.device_bytes)),
            ]);
        }
    }
    out.note("paper: potrf-smp forces extra host round-trips; 2-GPU runs add device-device traffic");
    out
}

/// Fig. 11 — Cholesky potrf version shares under the versioning
/// scheduler.
pub fn fig11(points: &[CholeskyPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig11",
        "Cholesky task statistics for versioning scheduler (% of potrf executions)",
        &["config", "potrf-gpu", "potrf-smp"],
    );
    for p in points {
        let shares = p.hyb_ver.version_shares(p.potrf, 2);
        out.push_row(vec![
            Cell::text(p.point.label()),
            Cell::num(100.0 * shares[0]),
            Cell::num(100.0 * shares[1]),
        ]);
    }
    out.note("paper: not enough look-ahead to hide a slow SMP potrf — the GPUs are the earliest executors, so nearly all potrf work goes to the GPU (SMP gets only the λ forced learning runs)");
    out
}

// ---------------------------------------------------------------------
// PBPI (Figs. 12, 13, 14, 15)
// ---------------------------------------------------------------------

/// All PBPI runs for one sweep point.
pub struct PbpiPoint {
    /// The resource configuration.
    pub point: SweepPoint,
    /// pbpi-smp (dependency-aware; SMP-only tasks).
    pub smp: RunReport,
    /// pbpi-gpu under the dependency-aware scheduler.
    pub gpu_dep: RunReport,
    /// pbpi-gpu under the affinity scheduler.
    pub gpu_aff: RunReport,
    /// pbpi-hyb under the versioning scheduler.
    pub hyb_ver: RunReport,
    /// The hybrid run's loop-1 template.
    pub loop1: TemplateId,
    /// The hybrid run's loop-2 template.
    pub loop2: TemplateId,
}

/// Execute the full PBPI sweep (the backing runs of Figs. 12–15).
pub fn pbpi_matrix(scale: Scale) -> (PbpiConfig, Vec<PbpiPoint>) {
    let cfg = pbpi_cfg(scale);
    let points = sweep()
        .into_iter()
        .map(|p| {
            let platform = || PlatformConfig::minotauro(p.smp, p.gpus);
            let smp =
                pbpi::run_sim(cfg, PbpiVariant::Smp, SchedulerKind::DepAware, platform());
            let gpu_dep =
                pbpi::run_sim(cfg, PbpiVariant::Gpu, SchedulerKind::DepAware, platform());
            let gpu_aff =
                pbpi::run_sim(cfg, PbpiVariant::Gpu, SchedulerKind::Affinity, platform());
            let mut rt = Runtime::simulated(
                RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
                platform(),
            );
            let app = pbpi::build(&mut rt, cfg, PbpiVariant::Hybrid);
            let hyb_ver = rt.run().expect("run failed");
            PbpiPoint {
                point: p,
                smp,
                gpu_dep,
                gpu_aff,
                hyb_ver,
                loop1: app.loop1,
                loop2: app.loop2,
            }
        })
        .collect();
    (cfg, points)
}

/// Fig. 12 — PBPI execution time (seconds; lower is better).
pub fn fig12(points: &[PbpiPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig12",
        "PBPI execution time (seconds, lower is better)",
        &["config", "pbpi-smp", "pbpi-gpu-dep", "pbpi-gpu-aff", "pbpi-hyb-ver"],
    );
    for p in points {
        out.push_row(vec![
            Cell::text(p.point.label()),
            Cell::num_p(p.smp.makespan.as_secs_f64(), 2),
            Cell::num_p(p.gpu_dep.makespan.as_secs_f64(), 2),
            Cell::num_p(p.gpu_aff.makespan.as_secs_f64(), 2),
            Cell::num_p(p.hyb_ver.makespan.as_secs_f64(), 2),
        ]);
    }
    out.note("paper: pbpi-smp beats pbpi-gpu (loop 3 forces data home each generation); pbpi-hyb-ver beats both");
    out
}

/// Fig. 13 — PBPI bytes transferred per category.
pub fn fig13(points: &[PbpiPoint]) -> FigureResult {
    let mut out = FigureResult::new(
        "fig13",
        "Data transferred for PBPI (MB)",
        &["config", "series", "input", "output", "device"],
    );
    for p in points {
        for (series, rep) in [
            ("SMP", &p.smp),
            ("GD", &p.gpu_dep),
            ("GA", &p.gpu_aff),
            ("HV", &p.hyb_ver),
        ] {
            out.push_row(vec![
                Cell::text(format!("{} {}", p.point.label(), series)),
                Cell::text(series),
                Cell::num(mb(rep.transfers.input_bytes)),
                Cell::num(mb(rep.transfers.output_bytes)),
                Cell::num(mb(rep.transfers.device_bytes)),
            ]);
        }
    }
    out.note("paper: pbpi-smp transfers nothing; hybrid transfers more than gpu-only but overlaps better");
    out
}

fn pbpi_share_figure(
    id: &'static str,
    title: &str,
    points: &[PbpiPoint],
    which: fn(&PbpiPoint) -> TemplateId,
) -> FigureResult {
    let mut out = FigureResult::new(id, title, &["config", "cuda", "smp"]);
    for p in points {
        let shares = p.hyb_ver.version_shares(which(p), 2);
        out.push_row(vec![
            Cell::text(p.point.label()),
            Cell::num(100.0 * shares[0]),
            Cell::num(100.0 * shares[1]),
        ]);
    }
    out
}

/// Fig. 14 — PBPI loop-1 version shares under the versioning scheduler.
pub fn fig14(points: &[PbpiPoint]) -> FigureResult {
    let mut out = pbpi_share_figure(
        "fig14",
        "PBPI task statistics for versioning scheduler, first loop (%)",
        points,
        |p| p.loop1,
    );
    out.note("paper: loop 1 goes to the GPU most of the time");
    out
}

/// Fig. 15 — PBPI loop-2 version shares under the versioning scheduler.
pub fn fig15(points: &[PbpiPoint]) -> FigureResult {
    let mut out = pbpi_share_figure(
        "fig15",
        "PBPI task statistics for versioning scheduler, second loop (%)",
        points,
        |p| p.loop2,
    );
    out.note("paper: loop 2 is shared between GPU and SMP (thousands of SMP executions)");
    out
}

// ---------------------------------------------------------------------
// Table I and Fig. 5
// ---------------------------------------------------------------------

/// Table I — a learned `TaskVersionSet` store, printed in the paper's
/// layout. Produced by running a hybrid matmul at **two different tile
/// sizes** in one runtime, so the store shows two size groups.
pub fn table1(scale: Scale) -> String {
    let cfg = matmul_cfg(scale);
    let small = MatmulConfig { n: cfg.n / 2, bs: cfg.bs / 2 };
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(4, 2),
    );
    let template = matmul::register(&mut rt, MatmulVariant::Hybrid);
    for c in [cfg, small] {
        let nb = c.nb();
        let bytes = c.tile_bytes();
        let a: Vec<_> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
        let b: Vec<_> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
        let cm: Vec<_> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
        matmul::submit_tasks(&mut rt, template, nb, &a, &b, &cm);
    }
    let report = rt.run().expect("run failed");
    report.profile_table.expect("versioning scheduler renders Table I")
}

/// Fig. 5 — an earliest-executor decision narrative: the GPU is the
/// fastest executor but is busy, so an idle SMP worker wins the task.
pub fn fig5() -> String {
    use std::fmt::Write as _;
    use versa_core::{
        DeviceKind, SchedCtx, Scheduler, TaskId, TaskInstance, TemplateRegistry,
        VersioningScheduler, WorkerId, WorkerInfo, WorkerState,
    };
    use versa_mem::{AccessMode, DataId, Directory, MemSpace, Region};

    let mut registry = TemplateRegistry::new();
    let template = registry
        .template("task")
        .main("task_gpu", &[DeviceKind::Cuda])
        .version("task_smp", &[DeviceKind::Smp])
        .register();
    let mut workers = vec![
        WorkerState::new(WorkerInfo {
            id: WorkerId(0),
            device: DeviceKind::Smp,
            space: MemSpace::HOST,
        }),
        WorkerState::new(WorkerInfo {
            id: WorkerId(1),
            device: DeviceKind::Smp,
            space: MemSpace::HOST,
        }),
        WorkerState::new(WorkerInfo {
            id: WorkerId(2),
            device: DeviceKind::Cuda,
            space: MemSpace::device(0),
        }),
    ];
    let directory = Directory::new();
    directory.register(DataId(0), 1 << 20, MemSpace::HOST);

    let mut sched = VersioningScheduler::with_defaults();
    sched.set_decision_logging(true);
    // Learned profile: GPU version 10 ms, SMP version 35 ms.
    sched.profiles_mut().seed(template, 2, 1 << 20, VersionId(0), std::time::Duration::from_millis(10), 20);
    sched.profiles_mut().seed(template, 2, 1 << 20, VersionId(1), std::time::Duration::from_millis(35), 20);
    // GPU worker 2 is busy: six queued tasks ≈ 60 ms of work. SMP worker
    // 1 is idle; SMP worker 0 has one queued task.
    for q in 0..6 {
        workers[2].enqueue(TaskId(100 + q), VersionId(0), std::time::Duration::from_millis(10));
    }
    workers[0].enqueue(TaskId(200), VersionId(1), std::time::Duration::from_millis(35));

    let task = TaskInstance {
        id: TaskId(1),
        template,
        accesses: vec![(Region::whole(DataId(0), 1 << 20), AccessMode::InOut)],
        data_set_size: 1 << 20,
        job: None,
    };
    let ctx = SchedCtx { templates: &registry, workers: &workers, directory: &directory, chain_hint: None };
    let assignment = sched.assign(&task, &ctx);

    let mut out = String::new();
    let _ = writeln!(out, "== fig5 — earliest-executor decision (paper Fig. 5) ==");
    let _ = writeln!(
        out,
        "profile: task_gpu mean 10ms on cuda, task_smp mean 35ms on smp"
    );
    let decision = sched.decisions().last().expect("decision logged");
    for bid in &decision.bids {
        let _ = writeln!(
            out,
            "worker w{} ({}): busy {:>5.1}ms + mean {:>5.1}ms -> finish {:>5.1}ms",
            bid.worker.0,
            if bid.worker.0 == 2 { "gpu" } else { "smp" },
            bid.busy.as_secs_f64() * 1e3,
            bid.mean.as_secs_f64() * 1e3,
            bid.finish.as_secs_f64() * 1e3,
        );
    }
    let _ = writeln!(
        out,
        "decision: task {} -> worker w{} running version v{} (the GPU is the fastest executor, \
         but the idle SMP worker is the earliest executor)",
        decision.task.0, assignment.worker.0, assignment.version.0
    );
    assert_eq!(assignment.worker, WorkerId(1), "the idle SMP worker must win");
    out
}
