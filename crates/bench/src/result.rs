//! Typed figure results and text-table rendering.

use std::fmt;

/// One table cell: a label or a numeric value (kept numeric so shape
/// tests can assert on it).
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// A label.
    Text(String),
    /// A numeric value printed with the given number of decimals.
    Num(f64, usize),
}

impl Cell {
    /// Text cell helper.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// Numeric cell with one decimal.
    pub fn num(v: f64) -> Cell {
        Cell::Num(v, 1)
    }

    /// Numeric cell with custom precision.
    pub fn num_p(v: f64, decimals: usize) -> Cell {
        Cell::Num(v, decimals)
    }

    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v, d) => format!("{v:.*}", d),
        }
    }
}

/// A regenerated table or figure: title, column headers, typed rows and
/// free-form notes (the paper's observations the table supports).
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig6"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row has `headers.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Notes printed below the table.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// New empty result.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> FigureResult {
        FigureResult {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch in {}", self.id);
        self.rows.push(row);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Numeric value at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the cell is not numeric.
    pub fn num(&self, row: usize, col: usize) -> f64 {
        match &self.rows[row][col] {
            Cell::Num(v, _) => *v,
            Cell::Text(t) => panic!("cell ({row}, {col}) of {} is text {t:?}", self.id),
        }
    }

    /// Index of the row whose first cell is the given label.
    ///
    /// # Panics
    /// Panics if no such row exists.
    pub fn row_by_label(&self, label: &str) -> usize {
        self.rows
            .iter()
            .position(|r| matches!(&r[0], Cell::Text(t) if t == label))
            .unwrap_or_else(|| panic!("{} has no row labelled {label:?}", self.id))
    }

    /// Index of a column by header name.
    ///
    /// # Panics
    /// Panics if no such column exists.
    pub fn col(&self, header: &str) -> usize {
        self.headers
            .iter()
            .position(|h| h == header)
            .unwrap_or_else(|| panic!("{} has no column {header:?}", self.id))
    }

    /// Numeric value at `(row labelled `label`, column named `header`)`.
    pub fn value(&self, label: &str, header: &str) -> f64 {
        self.num(self.row_by_label(label), self.col(header))
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<w$}", c, w = widths[i])?;
                } else {
                    write!(f, "  {:>w$}", c, w = widths[i])?;
                }
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &rendered {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        let mut r = FigureResult::new("figX", "sample", &["config", "a", "b"]);
        r.push_row(vec![Cell::text("1G/1S"), Cell::num(302.0), Cell::num_p(0.123, 3)]);
        r.push_row(vec![Cell::text("2G/8S"), Cell::num(641.5), Cell::num(9.0)]);
        r.note("a note");
        r
    }

    #[test]
    fn accessors_find_cells() {
        let r = sample();
        assert_eq!(r.num(0, 1), 302.0);
        assert_eq!(r.value("2G/8S", "a"), 641.5);
        assert_eq!(r.col("b"), 2);
        assert_eq!(r.row_by_label("1G/1S"), 0);
    }

    #[test]
    fn display_renders_aligned_table() {
        let s = sample().to_string();
        assert!(s.contains("== figX — sample =="));
        assert!(s.contains("302.0"));
        assert!(s.contains("0.123"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut r = FigureResult::new("figY", "t", &["a", "b"]);
        r.push_row(vec![Cell::num(1.0)]);
    }

    #[test]
    #[should_panic(expected = "is text")]
    fn num_on_text_panics() {
        let r = sample();
        let _ = r.num(0, 0);
    }
}
