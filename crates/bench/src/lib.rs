//! # versa-bench — figure & table regeneration harness
//!
//! One function per table/figure of the paper's evaluation section
//! (§V). Each returns a [`FigureResult`] — a typed table that the
//! `figures` binary prints and the shape tests in `tests/` assert on.
//!
//! Absolute numbers come from the simulated platform and are not
//! expected to match the paper's testbed; the *shapes* (who wins, by
//! roughly what factor, where crossovers fall) are the reproduction
//! target. `EXPERIMENTS.md` records both.

#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
mod result;

pub use result::{Cell, FigureResult};

/// Problem scale selector: `Paper` uses the §V-A2 sizes; `Quick` shrinks
/// them (same tile structure) for fast CI runs. Controlled by the
/// `VERSA_SCALE` environment variable in the `figures` binary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper's §V problem sizes.
    Paper,
    /// Reduced sizes for tests and Criterion benches.
    Quick,
}

impl Scale {
    /// Read from `VERSA_SCALE` (`paper` | `quick`), defaulting to paper.
    pub fn from_env() -> Scale {
        match std::env::var("VERSA_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Paper,
        }
    }
}

/// One point of the paper's resource sweep: number of GPUs and SMP
/// worker threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SweepPoint {
    /// GPU devices (paper: 1 or 2).
    pub gpus: usize,
    /// SMP worker threads (paper: 1–8).
    pub smp: usize,
}

impl SweepPoint {
    /// Label in the figures, e.g. `2G/4S`.
    pub fn label(&self) -> String {
        format!("{}G/{}S", self.gpus, self.smp)
    }
}

/// The paper's full resource sweep: {1, 2} GPUs × {1, 2, 4, 8} SMP
/// workers.
pub fn sweep() -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for gpus in [1usize, 2] {
        for smp in [1usize, 2, 4, 8] {
            out.push(SweepPoint { gpus, smp });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_paper_matrix() {
        let s = sweep();
        assert_eq!(s.len(), 8);
        assert!(s.contains(&SweepPoint { gpus: 1, smp: 1 }));
        assert!(s.contains(&SweepPoint { gpus: 2, smp: 8 }));
        assert_eq!(SweepPoint { gpus: 2, smp: 4 }.label(), "2G/4S");
    }

    #[test]
    fn scale_env_parsing_defaults_to_paper() {
        // Note: avoids mutating the process env; just checks default.
        if std::env::var("VERSA_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Paper);
        }
    }
}
