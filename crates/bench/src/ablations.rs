//! Ablation studies for the design choices called out in DESIGN.md and
//! the paper's §VII future-work list.

use crate::{Cell, FigureResult, Scale};
use std::time::Duration;
use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::scheduler::AffinityScheduler;
use versa_core::{
    MeanPolicy, SchedulerKind, SizeBucketPolicy, VersionId, VersioningConfig, WorkerId,
};
use versa_runtime::{Runtime, RuntimeConfig};
use versa_sim::{FaultPlan, FaultRule, PlatformConfig};

fn cholesky_cfg(scale: Scale) -> CholeskyConfig {
    match scale {
        Scale::Paper => CholeskyConfig::paper(),
        Scale::Quick => CholeskyConfig { n: 8192, bs: 1024 },
    }
}

fn matmul_cfg(scale: Scale) -> MatmulConfig {
    match scale {
        Scale::Paper => MatmulConfig::paper(),
        Scale::Quick => MatmulConfig::quick(),
    }
}

/// λ sweep on the hybrid Cholesky — the learning threshold's cost is
/// most visible where task instances are scarce (only 16 potrf calls).
pub fn ablate_lambda(scale: Scale) -> FigureResult {
    let cfg = cholesky_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-lambda",
        "Learning threshold λ vs Cholesky potrf-hyb performance",
        &["lambda", "GFLOP/s", "smp potrf runs"],
    );
    for lambda in [1u64, 3, 5, 10] {
        let kind = SchedulerKind::Versioning(VersioningConfig { lambda, ..Default::default() });
        let mut rt = Runtime::simulated(
            RuntimeConfig::with_scheduler(kind),
            PlatformConfig::minotauro(4, 2),
        );
        let app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfHybrid);
        let report = rt.run().expect("run failed");
        let hist = report.version_histogram(app.potrf, 2);
        out.push_row(vec![
            Cell::text(lambda.to_string()),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num_p(hist[1] as f64, 0),
        ]);
    }
    out.note("each extra λ forces more runs of the slow SMP potrf (1.4 s each) onto the critical path");
    out
}

/// Exact vs relative-range size grouping (paper §VII) on a matmul whose
/// tile sizes differ slightly: exact grouping re-learns per size, range
/// grouping shares one group.
pub fn ablate_bucketing(scale: Scale) -> FigureResult {
    let cfg = matmul_cfg(scale);
    // A second tile size ~13% larger in bytes: same group under a 25%
    // relative tolerance, a new group under exact matching.
    let alt = MatmulConfig { n: cfg.n + cfg.n / 16, bs: cfg.bs + cfg.bs / 16 };
    let mut out = FigureResult::new(
        "ablate-bucketing",
        "Size-group policy on a mixed-tile-size matmul workload",
        &["policy", "makespan_s", "size groups", "hand-cuda runs (learning only)"],
    );
    for (label, policy) in [
        ("exact", SizeBucketPolicy::Exact),
        ("range-25%", SizeBucketPolicy::RelativeRange { tolerance: 0.25 }),
    ] {
        let kind = SchedulerKind::Versioning(VersioningConfig {
            bucket_policy: policy,
            ..Default::default()
        });
        let mut rt = Runtime::simulated(
            RuntimeConfig::with_scheduler(kind),
            PlatformConfig::minotauro(4, 2),
        );
        let template = matmul::register(&mut rt, MatmulVariant::Hybrid);
        for c in [cfg, alt] {
            let nb = c.nb();
            let bytes = c.tile_bytes();
            let a: Vec<_> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
            let b: Vec<_> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
            let cm: Vec<_> = (0..nb * nb).map(|_| rt.alloc_bytes(bytes)).collect();
            matmul::submit_tasks(&mut rt, template, nb, &a, &b, &cm);
        }
        let report = rt.run().expect("run failed");
        let groups = rt.versioning().expect("versioning policy").profiles().group_count();
        out.push_row(vec![
            Cell::text(label),
            Cell::num_p(report.makespan.as_secs_f64(), 3),
            Cell::num_p(groups as f64, 0),
            Cell::num_p(report.version_counts.get(&(template, VersionId(1))).copied().unwrap_or(0) as f64, 0),
        ]);
    }
    out.note("the hand-CUDA version only runs while learning: exact grouping learns once per size group");
    out.note("paper §VII: range grouping avoids re-entering the learning phase for near-identical sizes");
    out
}

/// Arithmetic mean vs EWMA (paper footnote 3) under a behaviour shift:
/// how fast does the learned mean track a 20× slowdown?
///
/// Deterministic decision-quality study on the [`ProfileStore`] itself:
/// 100 samples at 7 ms, then a shift to 140 ms; after each post-shift
/// sample the store's mean is compared against the new truth, and
/// against the 28 ms SMP alternative (how many samples until the
/// scheduler would stop preferring the degraded GPU version).
pub fn ablate_mean_policy(_scale: Scale) -> FigureResult {
    use versa_core::{ProfileStore, TemplateId};
    let mut out = FigureResult::new(
        "ablate-mean",
        "Mean policy tracking a 20x slowdown (7ms -> 140ms, SMP alternative 28ms)",
        &["policy", "mean after 10 samples (ms)", "mean after 50 (ms)", "samples to cross 28ms"],
    );
    let tpl = TemplateId(0);
    let v = VersionId(0);
    for (label, policy) in [
        ("arithmetic", MeanPolicy::Arithmetic),
        ("ewma(0.3)", MeanPolicy::Ewma { alpha: 0.3 }),
    ] {
        let mut store = ProfileStore::new(SizeBucketPolicy::Exact, policy, 3);
        for _ in 0..100 {
            store.record(tpl, 1, 1024, v, Duration::from_millis(7));
        }
        let mut mean_at_10 = 0.0;
        let mut mean_at_50 = 0.0;
        let mut crossed_at: Option<usize> = None;
        for i in 1..=200usize {
            store.record(tpl, 1, 1024, v, Duration::from_millis(140));
            let mean = store.mean(tpl, 1024, v).unwrap().as_secs_f64() * 1e3;
            if i == 10 {
                mean_at_10 = mean;
            }
            if i == 50 {
                mean_at_50 = mean;
            }
            if crossed_at.is_none() && mean > 28.0 {
                crossed_at = Some(i);
            }
        }
        out.push_row(vec![
            Cell::text(label),
            Cell::num(mean_at_10),
            Cell::num(mean_at_50),
            Cell::num_p(crossed_at.map(|c| c as f64).unwrap_or(f64::NAN), 0),
        ]);
    }
    out.note("the EWMA discounts stale fast-GPU samples: the scheduler re-routes to the SMP version far sooner");
    out
}

/// Transfer/compute overlap + prefetch on vs off (paper §V-A2 enables
/// them for every scheduler).
pub fn ablate_prefetch(scale: Scale) -> FigureResult {
    let cfg = matmul_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-prefetch",
        "Transfer/compute overlap + prefetch (mm-hyb-ver)",
        &["prefetch", "GFLOP/s"],
    );
    for prefetch in [true, false] {
        let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
        rc.prefetch = prefetch;
        let mut rt = Runtime::simulated(rc, PlatformConfig::minotauro(4, 2));
        let _app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
        let report = rt.run().expect("run failed");
        out.push_row(vec![
            Cell::text(if prefetch { "on" } else { "off" }),
            Cell::num(report.gflops(cfg.flops())),
        ]);
    }
    out.note("without prefetch every task stalls on its own copy-ins (paper §V-A2 keeps it on)");
    out
}

/// Plain versioning vs the §VII locality-aware extension: device-device
/// traffic and performance on the 2-GPU matmul.
pub fn ablate_locality(scale: Scale) -> FigureResult {
    let cfg = matmul_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-locality",
        "Locality-aware versioning (paper §VII) on mm-hyb, 2 GPUs",
        &["scheduler", "GFLOP/s", "input MB", "device MB"],
    );
    for kind in [SchedulerKind::versioning(), SchedulerKind::locality_versioning()] {
        let label = kind.label();
        let mut rt =
            Runtime::simulated(RuntimeConfig::with_scheduler(kind), PlatformConfig::minotauro(8, 2));
        let _app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
        let report = rt.run().expect("run failed");
        out.push_row(vec![
            Cell::text(label),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num(report.transfers.input_bytes as f64 / 1e6),
            Cell::num(report.transfers.device_bytes as f64 / 1e6),
        ]);
    }
    out.note("the transfer-time term steers tasks toward the device already holding their tiles");
    out
}

/// Mixed-generation GPUs: one nominal + one 3× slower. The paper's
/// profiles are per *version*, not per worker, so the learned CUBLAS
/// mean conflates the two devices; only the busy-time feedback (slow
/// queues drain slower) rebalances the load. A limitations study.
pub fn ablate_mixed_gpus(scale: Scale) -> FigureResult {
    let cfg = matmul_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-mixed-gpus",
        "Versioning on mixed-speed GPUs (mm-hyb, 4 SMP workers, 2 GPUs)",
        &["node", "GFLOP/s", "fast-GPU tasks", "slow-GPU tasks"],
    );
    for (label, factors) in [
        ("uniform (1x, 1x)", vec![1.0, 1.0]),
        ("mixed (1x, 3x slower)", vec![1.0, 3.0]),
        ("uniform (3x, 3x)", vec![3.0, 3.0]),
    ] {
        let mut platform = PlatformConfig::minotauro(4, 2);
        platform.gpu_speed_factors = factors;
        let mut rt = Runtime::simulated(
            RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
            platform,
        );
        let _app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
        let report = rt.run().expect("run failed");
        let gpu_tasks = &report.worker_task_counts[4..6];
        out.push_row(vec![
            Cell::text(label),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num_p(gpu_tasks[0] as f64, 0),
            Cell::num_p(gpu_tasks[1] as f64, 0),
        ]);
    }
    out.note("per-version means cannot tell the two devices apart; busy-time feedback still shifts most work to the fast GPU");
    out
}

/// Dual copy engines (duplex links) vs a single DMA engine per GPU, on
/// the transfer-bound pbpi-gpu — uploads and downloads cross every
/// generation, so engine concurrency matters.
pub fn ablate_duplex(scale: Scale) -> FigureResult {
    use versa_apps::pbpi::{self, PbpiConfig, PbpiVariant};
    let cfg = match scale {
        Scale::Paper => PbpiConfig::paper(),
        Scale::Quick => PbpiConfig { chunks: 16, sites_per_chunk: 16384, generations: 20 },
    };
    let mut out = FigureResult::new(
        "ablate-duplex",
        "Dual vs single DMA engines per GPU on pbpi-gpu (2 GPUs, 4 SMP workers)",
        &["copy engines", "time (s)"],
    );
    for (label, duplex) in [("dual (M2090)", true), ("single", false)] {
        let mut platform = PlatformConfig::minotauro(4, 2);
        platform.link.duplex = duplex;
        let report = pbpi::run_sim(cfg, PbpiVariant::Gpu, SchedulerKind::Affinity, platform);
        out.push_row(vec![Cell::text(label), Cell::num_p(report.makespan.as_secs_f64(), 2)]);
    }
    out.note("a single engine serializes the generation's uploads against the previous downloads");
    out
}

/// All four policies on the GPU-only Cholesky: the breadth-first
/// (Nanos++ default) floor shows what dependence/locality awareness buys.
pub fn ablate_baselines(scale: Scale) -> FigureResult {
    let cfg = cholesky_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-baselines",
        "Scheduler policy floor on potrf-gpu Cholesky (2 GPUs, 4 SMP workers)",
        &["scheduler", "GFLOP/s", "input MB", "device MB"],
    );
    for kind in [
        SchedulerKind::BreadthFirst,
        SchedulerKind::DepAware,
        SchedulerKind::Affinity,
    ] {
        let label = kind.label();
        let mut rt =
            Runtime::simulated(RuntimeConfig::with_scheduler(kind), PlatformConfig::minotauro(4, 2));
        let _app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfGpu);
        let report = rt.run().expect("run failed");
        out.push_row(vec![
            Cell::text(label),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num(report.transfers.input_bytes as f64 / 1e6),
            Cell::num(report.transfers.device_bytes as f64 / 1e6),
        ]);
    }
    out.note("breadth-first ignores placement entirely — the locality-aware policies cut device traffic");
    out
}

/// Finite GPU memory (LRU-managed, write-back on sole-copy eviction) vs
/// the default unbounded model, on the 2-GPU matmul.
pub fn ablate_gpu_capacity(scale: Scale) -> FigureResult {
    let cfg = matmul_cfg(scale);
    let matrix_bytes = cfg.tile_bytes() * (cfg.nb() * cfg.nb()) as u64;
    let mut out = FigureResult::new(
        "ablate-capacity",
        "GPU memory capacity on mm-gpu, 2 GPUs (LRU eviction + write-back)",
        &["capacity", "GFLOP/s", "input MB", "output MB"],
    );
    for (label, capacity) in [
        ("unlimited", None),
        // Comfortable: each GPU's share of the working set fits.
        ("1x matrix", Some(matrix_bytes)),
        // Tight: a tenth of one matrix per GPU — steady eviction churn.
        ("0.1x matrix", Some(matrix_bytes / 10)),
    ] {
        let mut platform = PlatformConfig::minotauro(4, 2);
        platform.gpu_mem_capacity = capacity;
        let mut rt =
            Runtime::simulated(RuntimeConfig::with_scheduler(SchedulerKind::Affinity), platform);
        let _app = matmul::build(&mut rt, cfg, MatmulVariant::Gpu);
        let report = rt.run().expect("run failed");
        out.push_row(vec![
            Cell::text(label),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num(report.transfers.input_bytes as f64 / 1e6),
            Cell::num(report.transfers.output_bytes as f64 / 1e6),
        ]);
    }
    out.note("under memory pressure the runtime re-uploads evicted tiles and writes back sole copies");
    out
}

/// Fault injection on the hybrid matmul: the versioning scheduler
/// quarantines failing versions and finishes the run on whatever still
/// works, trading GFLOP/s for completion instead of crashing.
pub fn ablate_fault_injection(scale: Scale) -> FigureResult {
    let cfg = matmul_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-faults",
        "Fault injection on hybrid matmul (4 SMP workers, 2 GPUs)",
        &["scenario", "GFLOP/s", "failures", "retries", "quarantined"],
    );
    // minotauro(4, 2): workers 0–3 are SMP cores, 4–5 the GPU engines.
    let scenarios: [(&str, FaultPlan); 3] = [
        ("no faults", FaultPlan::none()),
        // The tuned cuBLAS version is broken; the hand-CUDA version
        // keeps the GPUs productive.
        ("broken cublas", FaultPlan::single(FaultRule::broken_version(VersionId(0)))),
        // Both GPU engines are down: every GPU version gets
        // quarantined and the SMP cores carry the whole run.
        (
            "GPUs offline",
            FaultPlan {
                rules: vec![
                    FaultRule::flaky_worker(WorkerId(4), 1.0),
                    FaultRule::flaky_worker(WorkerId(5), 1.0),
                ],
                ..FaultPlan::default()
            },
        ),
    ];
    for (label, plan) in scenarios {
        let mut platform = PlatformConfig::minotauro(4, 2);
        platform.faults = plan;
        // Worst case before both GPU versions are quarantined: a task
        // alternates them and eats 2 failures per version — give it
        // headroom beyond the default budget of 3.
        let config = RuntimeConfig { max_task_retries: 8, ..RuntimeConfig::default() };
        let mut rt = Runtime::simulated(config, platform);
        let _app = matmul::build(&mut rt, cfg, MatmulVariant::Hybrid);
        let report = rt.run().expect("a working version always remains");
        out.push_row(vec![
            Cell::text(label),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num_p(report.failures.failure_count() as f64, 0),
            Cell::num_p(report.failures.retries as f64, 0),
            Cell::num_p(report.failures.quarantined.len() as f64, 0),
        ]);
    }
    out.note("failures quarantine the guilty version after 2 strikes; the run always completes, degraded");
    out
}

/// Affinity steal-threshold sweep: pure minimum-transfer affinity
/// collapses under the Cholesky load imbalance the paper describes.
pub fn ablate_affinity_steal(scale: Scale) -> FigureResult {
    let cfg = cholesky_cfg(scale);
    let mut out = FigureResult::new(
        "ablate-steal",
        "Affinity scheduler steal threshold on potrf-gpu Cholesky (2 GPUs)",
        &["steal threshold", "GFLOP/s", "device MB"],
    );
    for (label, threshold) in [("0", 0usize), ("4", 4), ("off", usize::MAX)] {
        let mut rt = Runtime::simulated(
            RuntimeConfig::with_scheduler(SchedulerKind::Affinity),
            PlatformConfig::minotauro(4, 2),
        );
        // Replace the scheduler with a custom-threshold affinity.
        *rt.scheduler_mut() = Box::new(AffinityScheduler::with_steal_threshold(threshold));
        let _app = cholesky::build(&mut rt, cfg, CholeskyVariant::PotrfGpu);
        let report = rt.run().expect("run failed");
        out.push_row(vec![
            Cell::text(label),
            Cell::num(report.gflops(cfg.flops())),
            Cell::num(report.transfers.device_bytes as f64 / 1e6),
        ]);
    }
    out.note("paper §V-B2: \"one GPU steals tasks from the other one and this increases the number of memory transfers\"");
    out
}
