//! Worker model: per-worker FIFO task queues and estimated busy time.
//!
//! Paper §IV-B: "With the versioning scheduler, each worker has its own
//! task queue. ... it will be used at runtime to assign tasks to threads
//! and keep track of the amount of work each thread has". The *estimated
//! busy time* of a worker "is computed as the addition of the estimated
//! execution time for each task version in its queue".

use crate::{DeviceKind, TaskId, VersionId, WorkerId};
use std::collections::VecDeque;
use std::time::Duration;
use versa_mem::MemSpace;

/// Static description of a worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerInfo {
    /// Worker id (dense, 0-based).
    pub id: WorkerId,
    /// The single device this worker drives (paper §IV-B: each worker is
    /// devoted to exactly one device).
    pub device: DeviceKind,
    /// The address space tasks run against on this worker: host for SMP
    /// workers, the device's space otherwise.
    pub space: MemSpace,
}

/// One entry of a worker queue: a task, the version it will run, and the
/// execution-time estimate the scheduler used when enqueueing it (0 if the
/// version had no profile information yet).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedTask {
    /// The task instance.
    pub task: TaskId,
    /// The implementation chosen for it.
    pub version: VersionId,
    /// Estimated execution time at assignment.
    pub estimate: Duration,
}

/// Mutable scheduling state of one worker: FIFO queue + busy estimate.
///
/// The runtime owns a `Vec<WorkerState>`; schedulers read busy times
/// through it and the runtime pushes/pops as tasks are assigned, started
/// and finished.
#[derive(Clone, Debug)]
pub struct WorkerState {
    /// Static description.
    pub info: WorkerInfo,
    queue: VecDeque<QueuedTask>,
    running: Option<QueuedTask>,
    busy: Duration,
    executed: u64,
    retired: bool,
}

impl WorkerState {
    /// Fresh idle worker.
    pub fn new(info: WorkerInfo) -> WorkerState {
        WorkerState {
            info,
            queue: VecDeque::new(),
            running: None,
            busy: Duration::ZERO,
            executed: 0,
            retired: false,
        }
    }

    /// Permanently remove this worker from scheduling consideration
    /// (its node died). Retired workers keep their history for reports
    /// but never receive another assignment.
    pub fn retire(&mut self) {
        self.retired = true;
    }

    /// Whether this worker has been retired (node lost).
    #[inline]
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Drain and return every queued (not yet started) task, clearing
    /// their contribution to the busy estimate — used when a node dies
    /// with work still queued on its workers.
    pub fn drain_queue(&mut self) -> Vec<QueuedTask> {
        let drained: Vec<QueuedTask> = self.queue.drain(..).collect();
        for q in &drained {
            self.busy = self.busy.saturating_sub(q.estimate);
        }
        drained
    }

    /// Abandon the running task without counting it as executed (node
    /// lost mid-task). Returns the abandoned entry, if any.
    pub fn abandon_running(&mut self) -> Option<QueuedTask> {
        let running = self.running.take()?;
        self.busy = self.busy.saturating_sub(running.estimate);
        Some(running)
    }

    /// Estimated time for this worker to drain its queue (running task
    /// included at its full estimate).
    #[inline]
    pub fn estimated_busy(&self) -> Duration {
        self.busy
    }

    /// Whether the worker has neither a running task nor queued work.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.running.is_none() && self.queue.is_empty()
    }

    /// Number of queued (not yet started) tasks.
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The task currently executing, if any.
    #[inline]
    pub fn running(&self) -> Option<&QueuedTask> {
        self.running.as_ref()
    }

    /// Tasks waiting in the queue, front first.
    pub fn queued(&self) -> impl Iterator<Item = &QueuedTask> {
        self.queue.iter()
    }

    /// Total tasks this worker has finished (for reports).
    #[inline]
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Enqueue an assigned task; its estimate is added to the busy time.
    pub fn enqueue(&mut self, task: TaskId, version: VersionId, estimate: Duration) {
        self.busy += estimate;
        self.queue.push_back(QueuedTask { task, version, estimate });
    }

    /// Pop the next task to execute, marking it running.
    ///
    /// Returns `None` if the queue is empty or a task is already running
    /// (workers execute one task at a time).
    pub fn start_next(&mut self) -> Option<QueuedTask> {
        if self.running.is_some() {
            return None;
        }
        let next = self.queue.pop_front()?;
        self.running = Some(next);
        Some(next)
    }

    /// Mark the running task finished, removing its estimate from the
    /// busy time.
    ///
    /// # Panics
    /// Panics if `task` is not the running task.
    pub fn finish(&mut self, task: TaskId) {
        let running = self.running.take().expect("finish with no running task");
        assert_eq!(running.task, task, "finish of a task that is not running");
        self.busy = self.busy.saturating_sub(running.estimate);
        self.executed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker() -> WorkerState {
        WorkerState::new(WorkerInfo {
            id: WorkerId(0),
            device: DeviceKind::Smp,
            space: MemSpace::HOST,
        })
    }

    #[test]
    fn fresh_worker_is_idle() {
        let w = worker();
        assert!(w.is_idle());
        assert_eq!(w.estimated_busy(), Duration::ZERO);
        assert_eq!(w.queue_len(), 0);
        assert_eq!(w.executed_count(), 0);
    }

    #[test]
    fn busy_time_is_sum_of_estimates() {
        let mut w = worker();
        w.enqueue(TaskId(1), VersionId(0), Duration::from_millis(30));
        w.enqueue(TaskId(2), VersionId(1), Duration::from_millis(20));
        assert_eq!(w.estimated_busy(), Duration::from_millis(50));
        assert!(!w.is_idle());
    }

    #[test]
    fn fifo_order_and_one_task_at_a_time() {
        let mut w = worker();
        w.enqueue(TaskId(1), VersionId(0), Duration::from_millis(1));
        w.enqueue(TaskId(2), VersionId(0), Duration::from_millis(1));
        let first = w.start_next().unwrap();
        assert_eq!(first.task, TaskId(1));
        // Still running: no second start.
        assert!(w.start_next().is_none());
        w.finish(TaskId(1));
        let second = w.start_next().unwrap();
        assert_eq!(second.task, TaskId(2));
    }

    #[test]
    fn finish_releases_estimate_and_counts() {
        let mut w = worker();
        w.enqueue(TaskId(1), VersionId(0), Duration::from_millis(30));
        w.start_next();
        // Running task still counts toward the busy estimate.
        assert_eq!(w.estimated_busy(), Duration::from_millis(30));
        w.finish(TaskId(1));
        assert_eq!(w.estimated_busy(), Duration::ZERO);
        assert_eq!(w.executed_count(), 1);
        assert!(w.is_idle());
    }

    #[test]
    fn zero_estimate_tasks_are_fine() {
        let mut w = worker();
        w.enqueue(TaskId(1), VersionId(0), Duration::ZERO);
        assert_eq!(w.estimated_busy(), Duration::ZERO);
        w.start_next();
        w.finish(TaskId(1));
        assert_eq!(w.executed_count(), 1);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn finishing_wrong_task_panics() {
        let mut w = worker();
        w.enqueue(TaskId(1), VersionId(0), Duration::ZERO);
        w.start_next();
        w.finish(TaskId(2));
    }

    #[test]
    #[should_panic(expected = "no running task")]
    fn finishing_idle_worker_panics() {
        let mut w = worker();
        w.finish(TaskId(1));
    }
}
