//! The dependency-aware baseline scheduler.

use super::{compatible_workers, least_loaded, Assignment, SchedCtx, Scheduler};
use crate::{TaskInstance, VersionId};
use std::time::Duration;

/// "A simple implementation of a scheduler that tries to find chains of
/// dependencies and schedule consecutive tasks of the same chain to the
/// same device. Its decisions are fast, but in some cases cannot fully
/// exploit data locality." (paper §V-A)
///
/// Policy: if the runtime reports that one of the task's inputs was
/// produced by worker *w* (the chain hint), *w* can run the task's main
/// version, and *w* is not grossly over-committed relative to the
/// least-loaded compatible worker, assign it there; otherwise fall back
/// to the least-loaded compatible worker. The balance guard is what keeps
/// a single connected dependency graph from collapsing onto one device —
/// chains are followed locally, but the frontier still spreads. Like
/// every pre-existing Nanos++ scheduler, it only ever runs the **main**
/// implementation (paper footnote 1).
#[derive(Debug)]
pub struct DepAwareScheduler {
    balance_threshold: usize,
}

impl Default for DepAwareScheduler {
    fn default() -> Self {
        DepAwareScheduler { balance_threshold: 2 }
    }
}

impl DepAwareScheduler {
    /// Create the scheduler with the default balance threshold (2
    /// queued tasks of imbalance tolerated before leaving the chain).
    pub fn new() -> DepAwareScheduler {
        DepAwareScheduler::default()
    }

    /// Custom balance threshold; `usize::MAX` follows chains
    /// unconditionally.
    pub fn with_balance_threshold(balance_threshold: usize) -> DepAwareScheduler {
        DepAwareScheduler { balance_threshold }
    }
}

const MAIN: VersionId = VersionId(0);

impl Scheduler for DepAwareScheduler {
    fn name(&self) -> &'static str {
        "dependency-aware"
    }

    fn assign(&mut self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Assignment {
        let tpl = ctx.templates.get(task.template);
        let least = least_loaded(compatible_workers(ctx, task, MAIN)).unwrap_or_else(|| {
            panic!(
                "no worker can run the main version of {:?} (devices {:?})",
                tpl.name,
                tpl.main_version().devices
            )
        });
        if let Some(hint) = ctx.chain_hint {
            let w = &ctx.workers[hint.index()];
            let imbalance =
                super::queue_pressure(w).saturating_sub(super::queue_pressure(least));
            if tpl.version(MAIN).runs_on(w.info.device) && imbalance <= self.balance_threshold {
                return Assignment { worker: hint, version: MAIN, estimate: Duration::ZERO };
            }
        }
        Assignment { worker: least.info.id, version: MAIN, estimate: Duration::ZERO }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::{TaskId, WorkerId};
    use versa_mem::DataId;

    fn ctx_fixture() -> (crate::TemplateRegistry, crate::TemplateId, Vec<crate::WorkerState>) {
        let (reg, tpl) = hybrid_registry();
        (reg, tpl, workers_2smp_2gpu())
    }

    #[test]
    fn follows_the_chain_when_compatible() {
        let (reg, tpl, workers) = ctx_fixture();
        let dir = directory(DataId(0), DataId(1), 64);
        let t = task(0, tpl, DataId(0), DataId(1), 64);
        let mut s = DepAwareScheduler::new();
        // Producer ran on GPU worker 3; main version is CUDA → follow.
        let ctx = SchedCtx {
            templates: &reg,
            workers: &workers,
            directory: &dir,
            chain_hint: Some(WorkerId(3)),
        };
        let a = s.assign(&t, &ctx);
        assert_eq!(a.worker, WorkerId(3));
        assert_eq!(a.version, VersionId(0));
    }

    #[test]
    fn ignores_incompatible_chain_hint() {
        let (reg, tpl, workers) = ctx_fixture();
        let dir = directory(DataId(0), DataId(1), 64);
        let t = task(0, tpl, DataId(0), DataId(1), 64);
        let mut s = DepAwareScheduler::new();
        // Producer ran on SMP worker 0, but main is CUDA-only → fall back
        // to a GPU worker.
        let ctx = SchedCtx {
            templates: &reg,
            workers: &workers,
            directory: &dir,
            chain_hint: Some(WorkerId(0)),
        };
        let a = s.assign(&t, &ctx);
        assert!(a.worker == WorkerId(2) || a.worker == WorkerId(3));
    }

    #[test]
    fn no_hint_picks_least_loaded_compatible() {
        let (reg, tpl, mut workers) = ctx_fixture();
        // Load GPU worker 2 with a queued task.
        workers[2].enqueue(TaskId(99), VersionId(0), Duration::from_millis(5));
        let dir = directory(DataId(0), DataId(1), 64);
        let t = task(0, tpl, DataId(0), DataId(1), 64);
        let mut s = DepAwareScheduler::new();
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let a = s.assign(&t, &ctx);
        assert_eq!(a.worker, WorkerId(3), "w3 is the idle GPU");
        assert_eq!(a.estimate, Duration::ZERO);
    }

    #[test]
    fn never_uses_alternative_versions() {
        let (reg, tpl, workers) = ctx_fixture();
        let dir = directory(DataId(0), DataId(1), 64);
        let mut s = DepAwareScheduler::new();
        assert!(!s.supports_versions());
        for i in 0..16 {
            let t = task(i, tpl, DataId(0), DataId(1), 64);
            let ctx = SchedCtx {
                templates: &reg,
                workers: &workers,
                directory: &dir,
                chain_hint: None,
            };
            assert_eq!(s.assign(&t, &ctx).version, VersionId(0));
        }
    }

    #[test]
    #[should_panic(expected = "no worker can run")]
    fn panics_without_compatible_worker() {
        let (reg, tpl) = {
            let mut reg = crate::TemplateRegistry::new();
            let tpl = reg
                .template("cell_only")
                .main("spe_impl", &[crate::DeviceKind::CellSpe])
                .register();
            (reg, tpl)
        };
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 64);
        let t = task(0, tpl, DataId(0), DataId(1), 64);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let _ = DepAwareScheduler::new().assign(&t, &ctx);
    }
}
