//! Scheduling policies.
//!
//! Three policies from the paper's evaluation (§V-A), plus the
//! locality-aware extension of §VII:
//!
//! * [`DepAwareScheduler`] — "tries to find chains of dependencies and
//!   schedule consecutive tasks of the same chain to the same device. Its
//!   decisions are fast, but in some cases cannot fully exploit data
//!   locality."
//! * [`AffinityScheduler`] — "for each task, it evaluates the amount of
//!   data that should be transferred to a certain device in order to
//!   execute the task [and] chooses the device where the minimum amount
//!   of data must be transferred."
//! * [`VersioningScheduler`] — the paper's contribution (§IV): learns
//!   per-version execution times and assigns each task to its *earliest
//!   executor*.
//!
//! Schedulers are engine-agnostic: an execution engine calls
//! [`Scheduler::assign`] when a task becomes ready and
//! [`Scheduler::task_finished`] when it completes, passing measured
//! execution times. Only the versioning scheduler supports tasks with
//! more than one implementation; the baselines run the *main* version
//! exclusively (paper footnote 1).

mod affinity;
mod breadth_first;
mod dep_aware;
pub mod policy;
mod versioning;

pub use affinity::AffinityScheduler;
pub use breadth_first::BreadthFirstScheduler;
pub use dep_aware::DepAwareScheduler;
pub use policy::{
    CandidateStats, EpsilonGreedy, Policy, PolicyChoice, PolicyCtx, PolicyKind,
    RepresentativeSet, RoundRobinLearning, Ucb1, WorkerSnap,
};
pub use versioning::{Decision, DecisionPhase, VersioningConfig, VersioningScheduler, WorkerBid};

use crate::{TaskInstance, TemplateRegistry, VersionId, WorkerId, WorkerState};
use std::time::Duration;
use versa_mem::Directory;

/// Why a task execution failed (fed back to the scheduler through
/// [`Scheduler::task_failed`] so it can learn which versions misbehave,
/// not just which are slow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A native kernel panicked on its worker thread.
    Panic,
    /// The simulated platform injected a fault (see `versa-sim`'s
    /// `FaultPlan`).
    Fault,
    /// The node hosting the worker disappeared (connection lost or
    /// heartbeat timeout). Says nothing about the health of the task's
    /// version, so the versioning scheduler does not charge a quarantine
    /// strike for it — the node, not the code, is quarantined (by the
    /// cluster membership layer).
    NodeLost,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Fault => write!(f, "fault"),
            FailureKind::NodeLost => write!(f, "node-lost"),
        }
    }
}

/// The scheduler's answer for one ready task: which worker runs it, which
/// implementation it runs, and the execution-time estimate backing the
/// decision (added to the worker's busy time; zero when unknown).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Chosen worker.
    pub worker: WorkerId,
    /// Chosen implementation.
    pub version: VersionId,
    /// Estimated execution time used for busy-time accounting.
    pub estimate: Duration,
}

/// Read-only view of runtime state a scheduler may consult.
pub struct SchedCtx<'a> {
    /// All registered task version sets.
    pub templates: &'a TemplateRegistry,
    /// Per-worker queues and busy estimates, indexed by worker id.
    pub workers: &'a [WorkerState],
    /// Coherence directory (data placement), for affinity decisions.
    pub directory: &'a Directory,
    /// The worker that executed the most recently finished producer of
    /// one of this task's inputs, if any — the "dependency chain" signal
    /// the dependency-aware scheduler follows.
    pub chain_hint: Option<WorkerId>,
}

/// A scheduling policy.
pub trait Scheduler: Send {
    /// Short policy name (used in reports and figure labels).
    fn name(&self) -> &'static str;

    /// Decide where (and as which version) a ready task runs. Called
    /// exactly once per task, when it becomes ready (all dependencies
    /// satisfied).
    fn assign(&mut self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Assignment;

    /// Observe a completed execution and its measured duration. The
    /// default implementation ignores it; the versioning scheduler feeds
    /// its profile store.
    fn task_finished(
        &mut self,
        task: &TaskInstance,
        assignment: Assignment,
        measured: Duration,
    ) {
        let _ = (task, assignment, measured);
    }

    /// Observe a completed data transfer into `to`: `bytes` moved in
    /// `elapsed` wall (or virtual) time. The default implementation
    /// ignores it; the versioning scheduler maintains a per-space
    /// bandwidth EWMA — learned online exactly like the paper's mean
    /// execution times — that prices the transfer term of its
    /// earliest-executor estimate.
    fn transfer_done(&mut self, to: versa_mem::MemSpace, bytes: u64, elapsed: Duration) {
        let _ = (to, bytes, elapsed);
    }

    /// Observe a failed execution (kernel panic in the native engine, or
    /// an injected fault in the simulator). The default implementation
    /// ignores it; the versioning scheduler counts failures per
    /// (template, version, size-group) and quarantines versions that
    /// fail repeatedly so subsequent assignments route around them.
    fn task_failed(&mut self, task: &TaskInstance, assignment: Assignment, kind: FailureKind) {
        let _ = (task, assignment, kind);
    }

    /// Whether this policy can exploit alternative (non-main) versions.
    fn supports_versions(&self) -> bool {
        false
    }

    /// Begin a batched scheduling wave over the ready frontier. Engines
    /// call this once per dispatch round, before the per-task
    /// [`Scheduler::assign`]/[`Scheduler::eager`] loop, handing over the
    /// frontier so the scheduler can snapshot whatever decision inputs
    /// are invariant for the whole wave (candidate sets, reliability
    /// flags, runnable-version lists). Between `begin_wave` and
    /// [`Scheduler::end_wave`] the engine promises not to call
    /// `task_finished` / `task_failed` / `transfer_done`, so completed
    /// counts — and everything derived from them — cannot move under the
    /// cache. The default implementation does nothing: batching is a
    /// pure amortization, and per-task decisions must be bit-identical
    /// with or without the bracket.
    fn begin_wave(&mut self, frontier: &[&TaskInstance], ctx: &SchedCtx<'_>) {
        let _ = (frontier, ctx);
    }

    /// End a batched scheduling wave: drop any per-wave caches. Always
    /// paired with [`Scheduler::begin_wave`].
    fn end_wave(&mut self) {}

    /// Whether `task` should be pushed to a worker queue immediately
    /// (look-ahead assignment) or held centrally until a worker runs dry.
    ///
    /// The versioning scheduler answers `false` while the task's size
    /// group is still in the learning phase: the paper's learning phase
    /// "consists of picking task versions from ready tasks in a
    /// Round-Robin fashion and distributing them among OmpSs workers" —
    /// i.e. one at a time as workers ask for work, not bulk-enqueued,
    /// which would flood slow versions when a wide frontier becomes ready
    /// at once. Defaults to `true` (baselines always push eagerly).
    fn eager(&self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> bool {
        let _ = (task, ctx);
        true
    }

    /// Downcast to the versioning scheduler, if that is what this is
    /// (used to render Table I dumps and seed profile hints).
    fn as_versioning(&self) -> Option<&VersioningScheduler> {
        None
    }

    /// Mutable variant of [`Scheduler::as_versioning`].
    fn as_versioning_mut(&mut self) -> Option<&mut VersioningScheduler> {
        None
    }
}

/// Selector for [`make_scheduler`]; the programmatic analogue of choosing
/// a Nanos++ scheduler plug-in "through configuration arguments or
/// environment variables" (paper §III).
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerKind {
    /// Nanos++'s default FIFO baseline (not in the paper's trio).
    BreadthFirst,
    /// The dependency-aware baseline.
    DepAware,
    /// The affinity (minimum-transfer) baseline.
    Affinity,
    /// The paper's versioning scheduler.
    Versioning(VersioningConfig),
}

impl SchedulerKind {
    /// Versioning scheduler with the paper's defaults.
    pub fn versioning() -> SchedulerKind {
        SchedulerKind::Versioning(VersioningConfig::default())
    }

    /// Versioning scheduler with the §VII locality-aware extension.
    pub fn locality_versioning() -> SchedulerKind {
        SchedulerKind::Versioning(VersioningConfig { locality_aware: true, ..Default::default() })
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::BreadthFirst => "bf",
            SchedulerKind::DepAware => "dep",
            SchedulerKind::Affinity => "aff",
            SchedulerKind::Versioning(cfg) if cfg.locality_aware => "locver",
            SchedulerKind::Versioning(_) => "ver",
        }
    }
}

/// Instantiate a scheduler from its selector.
pub fn make_scheduler(kind: &SchedulerKind) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::BreadthFirst => Box::new(BreadthFirstScheduler::new()),
        SchedulerKind::DepAware => Box::new(DepAwareScheduler::new()),
        SchedulerKind::Affinity => Box::new(AffinityScheduler::new()),
        SchedulerKind::Versioning(cfg) => Box::new(VersioningScheduler::new(cfg.clone())),
    }
}

/// Workers able to run version `version` of `task`'s template.
pub(crate) fn compatible_workers<'a>(
    ctx: &'a SchedCtx<'_>,
    task: &'a TaskInstance,
    version: VersionId,
) -> impl Iterator<Item = &'a WorkerState> + 'a {
    let tpl = ctx.templates.get(task.template);
    ctx.workers
        .iter()
        .filter(move |w| !w.is_retired() && tpl.version(version).runs_on(w.info.device))
}

/// Queue pressure of a worker: queued tasks plus the running one.
pub(crate) fn queue_pressure(w: &WorkerState) -> usize {
    w.queue_len() + usize::from(w.running().is_some())
}

/// Least-loaded worker among `candidates` by `(queue pressure, busy
/// estimate, id)` — deterministic.
pub(crate) fn least_loaded<'a>(
    candidates: impl Iterator<Item = &'a WorkerState>,
) -> Option<&'a WorkerState> {
    candidates.min_by_key(|w| (queue_pressure(w), w.estimated_busy(), w.info.id))
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for scheduler unit tests.

    use crate::{
        DeviceKind, TaskId, TaskInstance, TemplateId, TemplateRegistry, WorkerId, WorkerInfo,
        WorkerState,
    };
    use versa_mem::{AccessMode, DataId, Directory, MemSpace, Region};

    /// 2 SMP workers (w0, w1) + 2 GPU workers (w2, w3).
    pub fn workers_2smp_2gpu() -> Vec<WorkerState> {
        let mut out = Vec::new();
        for i in 0..2u16 {
            out.push(WorkerState::new(WorkerInfo {
                id: WorkerId(i),
                device: DeviceKind::Smp,
                space: MemSpace::HOST,
            }));
        }
        for g in 0..2u16 {
            out.push(WorkerState::new(WorkerInfo {
                id: WorkerId(2 + g),
                device: DeviceKind::Cuda,
                space: MemSpace::device(g),
            }));
        }
        out
    }

    /// A registry with a hybrid template (CUBLAS main on CUDA, hand-CUDA
    /// alt, CBLAS alt on SMP) registered as `"matmul_tile"`.
    pub fn hybrid_registry() -> (TemplateRegistry, TemplateId) {
        let mut reg = TemplateRegistry::new();
        let id = reg
            .template("matmul_tile")
            .main("cublas", &[DeviceKind::Cuda])
            .version("cuda", &[DeviceKind::Cuda])
            .version("cblas", &[DeviceKind::Smp])
            .register();
        (reg, id)
    }

    /// A task reading `a` and writing `c`, both of `bytes` bytes.
    pub fn task(
        id: u64,
        template: TemplateId,
        a: DataId,
        c: DataId,
        bytes: u64,
    ) -> TaskInstance {
        let accesses = vec![
            (Region::whole(a, bytes), AccessMode::In),
            (Region::whole(c, bytes), AccessMode::InOut),
        ];
        TaskInstance { id: TaskId(id), template, accesses, data_set_size: 2 * bytes, job: None }
    }

    /// A directory with `a` and `c` registered on the host.
    pub fn directory(a: DataId, c: DataId, bytes: u64) -> Directory {
        let dir = Directory::new();
        dir.register(a, bytes, MemSpace::HOST);
        dir.register(c, bytes, MemSpace::HOST);
        dir
    }
}
