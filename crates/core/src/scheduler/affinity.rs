//! The affinity (minimum-transfer) baseline scheduler.

use super::{compatible_workers, least_loaded, queue_pressure, Assignment, SchedCtx, Scheduler};
use crate::{TaskInstance, VersionId};
use std::time::Duration;

/// "A smarter implementation that tries to minimize the amount of
/// transfers between devices. For each task, it evaluates the amount of
/// data that should be transferred to a certain device in order to
/// execute the task. The scheduler chooses the device where the minimum
/// amount of data must be transferred." (paper §V-A)
///
/// A pure minimum-transfer policy collapses under load imbalance, so —
/// like the Nanos++ implementation the paper measures, where "there is
/// one GPU that steals tasks from the other one and this increases the
/// number of memory transfers" (§V-B2) — a starving worker steals: if the
/// minimum-transfer worker's queue exceeds the least-loaded compatible
/// worker's queue by more than [`AffinityScheduler::steal_threshold`]
/// tasks, the task goes to the least-loaded worker instead. Only the
/// **main** implementation is ever used (paper footnote 1).
#[derive(Debug)]
pub struct AffinityScheduler {
    steal_threshold: usize,
}

impl Default for AffinityScheduler {
    fn default() -> Self {
        AffinityScheduler { steal_threshold: 4 }
    }
}

const MAIN: VersionId = VersionId(0);

impl AffinityScheduler {
    /// Scheduler with the default steal threshold (4 queued tasks).
    pub fn new() -> AffinityScheduler {
        AffinityScheduler::default()
    }

    /// Scheduler with a custom steal threshold. `usize::MAX` disables
    /// stealing entirely (pure minimum-transfer affinity).
    pub fn with_steal_threshold(steal_threshold: usize) -> AffinityScheduler {
        AffinityScheduler { steal_threshold }
    }

    /// The imbalance (in queued tasks) tolerated before stealing.
    pub fn steal_threshold(&self) -> usize {
        self.steal_threshold
    }
}

impl Scheduler for AffinityScheduler {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn assign(&mut self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Assignment {
        let tpl = ctx.templates.get(task.template);
        let best = compatible_workers(ctx, task, MAIN)
            .min_by_key(|w| {
                let bytes = ctx.directory.bytes_missing_for(&task.accesses, w.info.space);
                (bytes, queue_pressure(w), w.estimated_busy(), w.info.id)
            })
            .unwrap_or_else(|| {
                panic!(
                    "no worker can run the main version of {:?} (devices {:?})",
                    tpl.name,
                    tpl.main_version().devices
                )
            });

        let chosen = if self.steal_threshold == usize::MAX {
            best
        } else {
            let least = least_loaded(compatible_workers(ctx, task, MAIN))
                .expect("candidate set verified non-empty");
            let imbalance = queue_pressure(best).saturating_sub(queue_pressure(least));
            if imbalance > self.steal_threshold {
                least
            } else {
                best
            }
        };
        Assignment { worker: chosen.info.id, version: MAIN, estimate: Duration::ZERO }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::{TaskId, WorkerId};
    use versa_mem::{AccessMode, DataId, MemSpace};

    #[test]
    fn picks_the_space_already_holding_the_data() {
        let (reg, tpl) = hybrid_registry();
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 1024);
        // Move both inputs to GPU 1's space (dev1 → worker 3).
        dir.acquire(DataId(0), MemSpace::device(1), AccessMode::In);
        dir.acquire(DataId(1), MemSpace::device(1), AccessMode::InOut);
        let t = task(0, tpl, DataId(0), DataId(1), 1024);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let a = AffinityScheduler::new().assign(&t, &ctx);
        assert_eq!(a.worker, WorkerId(3));
    }

    #[test]
    fn ties_broken_by_load_then_id() {
        let (reg, tpl) = hybrid_registry();
        let mut workers = workers_2smp_2gpu();
        workers[2].enqueue(TaskId(9), VersionId(0), Duration::ZERO);
        // Data only on host: both GPUs need the same transfers → pick the
        // idle one (w3).
        let dir = directory(DataId(0), DataId(1), 1024);
        let t = task(0, tpl, DataId(0), DataId(1), 1024);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let a = AffinityScheduler::new().assign(&t, &ctx);
        assert_eq!(a.worker, WorkerId(3));
    }

    #[test]
    fn starving_worker_steals_despite_transfers() {
        let (reg, tpl) = hybrid_registry();
        let mut workers = workers_2smp_2gpu();
        // Data lives on GPU 0 (worker 2), but worker 2 is buried in work.
        let dir = directory(DataId(0), DataId(1), 1024);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        dir.acquire(DataId(1), MemSpace::device(0), AccessMode::InOut);
        for i in 0..6 {
            workers[2].enqueue(TaskId(100 + i), VersionId(0), Duration::from_millis(1));
        }
        let t = task(0, tpl, DataId(0), DataId(1), 1024);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let a = AffinityScheduler::new().assign(&t, &ctx);
        assert_eq!(a.worker, WorkerId(3), "idle GPU steals the task");
    }

    #[test]
    fn stealing_can_be_disabled() {
        let (reg, tpl) = hybrid_registry();
        let mut workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 1024);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        dir.acquire(DataId(1), MemSpace::device(0), AccessMode::InOut);
        for i in 0..50 {
            workers[2].enqueue(TaskId(100 + i), VersionId(0), Duration::from_millis(1));
        }
        let t = task(0, tpl, DataId(0), DataId(1), 1024);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let a = AffinityScheduler::with_steal_threshold(usize::MAX).assign(&t, &ctx);
        assert_eq!(a.worker, WorkerId(2), "pure affinity never steals");
    }

    #[test]
    fn main_version_only() {
        let (reg, tpl) = hybrid_registry();
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 1024);
        let t = task(0, tpl, DataId(0), DataId(1), 1024);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let mut s = AffinityScheduler::new();
        assert!(!s.supports_versions());
        assert_eq!(s.assign(&t, &ctx).version, VersionId(0));
    }
}
