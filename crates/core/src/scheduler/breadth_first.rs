//! Breadth-first baseline: Nanos++'s default scheduler.
//!
//! Not part of the paper's evaluated trio, but the runtime it extends
//! ships it as the default policy: ready tasks are taken in submission
//! order and handed to the least-loaded compatible worker, with no
//! locality or history awareness at all. Useful as the "no information"
//! floor in ablations.

use super::{compatible_workers, least_loaded, Assignment, SchedCtx, Scheduler};
use crate::{TaskInstance, VersionId};
use std::time::Duration;

/// First-come, first-served to the least-loaded compatible worker; main
/// version only (like every pre-`implements` Nanos++ policy).
#[derive(Default, Debug)]
pub struct BreadthFirstScheduler {
    _private: (),
}

impl BreadthFirstScheduler {
    /// Create the scheduler.
    pub fn new() -> BreadthFirstScheduler {
        BreadthFirstScheduler::default()
    }
}

const MAIN: VersionId = VersionId(0);

impl Scheduler for BreadthFirstScheduler {
    fn name(&self) -> &'static str {
        "breadth-first"
    }

    fn assign(&mut self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Assignment {
        let tpl = ctx.templates.get(task.template);
        let worker = least_loaded(compatible_workers(ctx, task, MAIN)).unwrap_or_else(|| {
            panic!(
                "no worker can run the main version of {:?} (devices {:?})",
                tpl.name,
                tpl.main_version().devices
            )
        });
        Assignment { worker: worker.info.id, version: MAIN, estimate: Duration::ZERO }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::{SchedCtx, TaskId, WorkerId};
    use versa_mem::DataId;

    #[test]
    fn spreads_over_least_loaded_compatible_workers() {
        let (reg, tpl) = hybrid_registry();
        let mut workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 64);
        let mut s = BreadthFirstScheduler::new();
        // Main version is CUDA-only → only the two GPU workers qualify,
        // and successive tasks alternate between them.
        let mut picks = Vec::new();
        for i in 0..4 {
            let t = task(i, tpl, DataId(0), DataId(1), 64);
            let ctx = SchedCtx {
                templates: &reg,
                workers: &workers,
                directory: &dir,
                chain_hint: Some(WorkerId(2)), // ignored by breadth-first
            };
            let a = s.assign(&t, &ctx);
            workers[a.worker.index()].enqueue(TaskId(i), a.version, Duration::ZERO);
            picks.push(a.worker);
        }
        assert_eq!(picks, vec![WorkerId(2), WorkerId(3), WorkerId(2), WorkerId(3)]);
    }

    #[test]
    fn main_version_only_and_no_version_support() {
        let (reg, tpl) = hybrid_registry();
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 64);
        let mut s = BreadthFirstScheduler::new();
        assert!(!s.supports_versions());
        let t = task(0, tpl, DataId(0), DataId(1), 64);
        let ctx =
            SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        assert_eq!(s.assign(&t, &ctx).version, VersionId(0));
        assert_eq!(s.name(), "breadth-first");
    }
}
