//! Pluggable decision policies for the versioning scheduler.
//!
//! The paper hard-wires one selection strategy: round-robin learning
//! until every version has λ observations, then earliest-executor
//! bidding. Korndörfer et al. (PAPERS.md) treat the selection strategy
//! itself as a design axis, and Luo et al. show version-set pruning
//! matters once version counts grow — so the decision core is factored
//! out behind the [`Policy`] trait. The scheduler stays responsible for
//! everything *around* the decision (profiles, quarantine, bandwidth
//! EWMAs, bookkeeping); a policy is a pure function of the
//! [`PolicyCtx`] snapshot plus its own internal state.
//!
//! Because the snapshot is recorded verbatim into the trace's decision
//! ledger, any policy can be re-run *offline* against a recorded run
//! (`versa-gym`): replaying [`RoundRobinLearning`] over its own
//! recording reproduces every decision exactly, and candidate policies
//! are scored without touching live workloads.

use super::versioning::DecisionPhase;
use super::WorkerBid;
use crate::profile::BucketKey;
use crate::{TemplateId, VersionId, WorkerId};
use std::collections::HashMap;
use std::time::Duration;

/// Profile statistics of one candidate version, snapshotted immediately
/// before a decision (quarantined versions are already filtered out by
/// the scheduler, except in the all-quarantined fallback).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateStats {
    /// The candidate version.
    pub version: VersionId,
    /// Times it has been *assigned* in this size group (≥ its execution
    /// count while assignments are still queued).
    pub scheduled: u64,
    /// Completed executions recorded in this size group.
    pub count: u64,
    /// Mean execution time, once at least one execution completed.
    pub mean: Option<Duration>,
}

/// One worker's load at decision time, plus which of the template's
/// versions its device can run — everything a policy needs to place the
/// chosen version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerSnap {
    /// The worker.
    pub worker: WorkerId,
    /// Queue pressure: queued tasks plus the running one.
    pub pressure: u64,
    /// Estimated busy time (queue drain estimate).
    pub busy: Duration,
    /// Estimated copy-in time for this task's non-resident data (zero
    /// unless the scheduler runs locality-aware).
    pub transfer: Duration,
    /// Template versions this worker's device can run, in version order
    /// (unfiltered by quarantine; intersect with the candidate list).
    pub runnable: Vec<VersionId>,
}

impl WorkerSnap {
    /// Whether this worker can run `version`.
    pub fn can_run(&self, version: VersionId) -> bool {
        self.runnable.contains(&version)
    }
}

/// Everything a [`Policy`] may consult for one decision. A pure
/// snapshot: replaying a recorded `PolicyCtx` through the same policy
/// state reproduces the live decision.
#[derive(Clone, Debug)]
pub struct PolicyCtx<'a> {
    /// The task's template.
    pub template: TemplateId,
    /// The size bucket its profile lookup used.
    pub bucket: BucketKey,
    /// Owning job id, when running under a multi-job service.
    pub job: Option<u64>,
    /// The scheduler's learning threshold λ.
    pub lambda: u64,
    /// Candidate versions (trainable minus quarantined), with their
    /// profile statistics, in version order.
    pub candidates: &'a [CandidateStats],
    /// Per-worker load snapshots, in worker-id order.
    pub workers: &'a [WorkerSnap],
}

/// A policy's answer: the chosen placement, which regime produced it,
/// and the bid ledger backing it (empty for learning-style decisions).
#[derive(Clone, Debug)]
pub struct PolicyChoice {
    /// Chosen version.
    pub version: VersionId,
    /// Chosen worker.
    pub worker: WorkerId,
    /// Which regime the choice came from (drives the scheduler's
    /// bookkeeping and the trace's phase label).
    pub phase: DecisionPhase,
    /// Execution-time estimate backing the choice (for busy-time
    /// accounting; zero when unknown).
    pub estimate: Duration,
    /// All bids considered, when the choice came from an auction.
    pub bids: Vec<WorkerBid>,
}

/// The decision core of the versioning scheduler, extracted so
/// alternative selection strategies compose with the same profile,
/// quarantine and bid plumbing.
///
/// Contract:
/// * `decide` must return a version from `ctx.candidates` and a worker
///   whose snapshot says it can run that version.
/// * Policies may keep internal state (round-robin cursors, RNG state),
///   but must be deterministic: the same sequence of `PolicyCtx`
///   snapshots yields the same sequence of choices. This is what makes
///   offline replay (`versa-gym`) exact.
/// * The scheduler owns all store mutations; a policy never sees the
///   profile store itself, only the snapshot.
pub trait Policy: Send {
    /// Stable policy name (CLI selector and report label).
    fn name(&self) -> &'static str;

    /// Choose a `(version, worker)` for one ready task.
    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> PolicyChoice;
}

/// Least-loaded worker able to run `version`, by `(queue pressure, busy
/// estimate, id)` — the learning phase's placement rule.
fn least_loaded_for(workers: &[WorkerSnap], version: VersionId) -> WorkerId {
    workers
        .iter()
        .filter(|w| w.can_run(version))
        .min_by_key(|w| (w.pressure, w.busy, w.worker))
        .expect("candidate version has a compatible worker")
        .worker
}

/// Earliest-finish worker for `version`, pricing queue drain plus the
/// transfer term (used by the bandit policies, which choose the version
/// first and the placement second).
fn earliest_for(workers: &[WorkerSnap], version: VersionId, mean: Duration) -> WorkerId {
    workers
        .iter()
        .filter(|w| w.can_run(version))
        .min_by_key(|w| (w.busy + mean + w.transfer, w.pressure, w.worker))
        .expect("candidate version has a compatible worker")
        .worker
}

/// The paper's earliest-executor auction over `allowed`, with the
/// no-means fallback: every worker bids `busy + mean(fastest allowed
/// version it can run) + transfer`; the minimum bid wins. When no
/// worker can produce a bid (no allowed version has a completed mean),
/// the least-scheduled candidate goes to the least-loaded compatible
/// worker.
pub(crate) fn earliest_executor(ctx: &PolicyCtx<'_>, allowed: &[CandidateStats]) -> PolicyChoice {
    let mut bids: Vec<WorkerBid> = Vec::with_capacity(ctx.workers.len());
    for w in ctx.workers {
        let best = allowed
            .iter()
            .filter(|c| w.can_run(c.version))
            .filter_map(|c| c.mean.map(|m| (m, c.version)))
            .min();
        let Some((mean, version)) = best else { continue };
        bids.push(WorkerBid {
            worker: w.worker,
            busy: w.busy,
            version,
            mean,
            transfer: w.transfer,
            finish: w.busy + mean + w.transfer,
        });
    }
    if let Some(best) = bids.iter().min_by_key(|b| (b.finish, b.worker)).copied() {
        return PolicyChoice {
            version: best.version,
            worker: best.worker,
            phase: DecisionPhase::Reliable,
            estimate: best.mean,
            bids,
        };
    }
    // Every allowed version has λ assignments queued but none has
    // completed yet — no means to bid with.
    let version = ctx
        .candidates
        .iter()
        .min_by_key(|c| (c.scheduled, c.version))
        .expect("candidates verified non-empty")
        .version;
    PolicyChoice {
        version,
        worker: least_loaded_for(ctx.workers, version),
        phase: DecisionPhase::ReliableFallback,
        estimate: Duration::ZERO,
        bids: Vec::new(),
    }
}

/// The paper's strategy (§IV-B), unchanged: round-robin over
/// under-trained versions until each has λ assignments, then
/// earliest-executor bidding. Decision-for-decision identical to the
/// pre-trait `VersioningScheduler` (enforced by the golden-trace tests
/// in `versa-gym`).
#[derive(Debug, Default)]
pub struct RoundRobinLearning {
    /// Per-(template, bucket) round-robin cursor — the same arithmetic
    /// the profile store's learning cursor used before the extraction.
    cursors: HashMap<(TemplateId, BucketKey), usize>,
}

impl RoundRobinLearning {
    /// New policy with all cursors at zero.
    pub fn new() -> RoundRobinLearning {
        RoundRobinLearning::default()
    }
}

impl Policy for RoundRobinLearning {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> PolicyChoice {
        if ctx.candidates.iter().any(|c| c.scheduled < ctx.lambda) {
            let cursor = self.cursors.entry((ctx.template, ctx.bucket)).or_insert(0);
            let n = ctx.candidates.len();
            for step in 0..n {
                let idx = (*cursor + step) % n;
                let c = &ctx.candidates[idx];
                if c.scheduled < ctx.lambda {
                    *cursor = idx + 1;
                    return PolicyChoice {
                        version: c.version,
                        worker: least_loaded_for(ctx.workers, c.version),
                        phase: DecisionPhase::Learning,
                        estimate: c.mean.unwrap_or(Duration::ZERO),
                        bids: Vec::new(),
                    };
                }
            }
            // The under-trained set emptied between the phase check and
            // the pick (quarantine strikes can do this): fall through to
            // the profiled path instead of panicking.
        }
        earliest_executor(ctx, ctx.candidates)
    }
}

/// UCB1 version selection (Korndörfer et al.): pick the version with
/// the best lower confidence bound `mean − c·σ̂·sqrt(2·ln N / n)`,
/// untried versions first. Exploration keeps slow-looking versions
/// alive long enough to be sure they are actually slow; placement is
/// earliest-finish.
#[derive(Debug)]
pub struct Ucb1 {
    exploration: f64,
}

impl Ucb1 {
    /// New UCB1 policy; `exploration` scales the confidence radius
    /// (0 = pure greedy).
    pub fn new(exploration: f64) -> Ucb1 {
        Ucb1 { exploration }
    }
}

impl Policy for Ucb1 {
    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> PolicyChoice {
        if let Some(c) =
            ctx.candidates.iter().filter(|c| c.count == 0).min_by_key(|c| (c.scheduled, c.version))
        {
            return PolicyChoice {
                version: c.version,
                worker: least_loaded_for(ctx.workers, c.version),
                phase: DecisionPhase::Learning,
                estimate: Duration::ZERO,
                bids: Vec::new(),
            };
        }
        let total: u64 = ctx.candidates.iter().map(|c| c.count).sum();
        // Scale the confidence radius by the spread of observed means so
        // the bound is dimensionally a duration, not a unitless count.
        let spread = ctx
            .candidates
            .iter()
            .filter_map(|c| c.mean)
            .max()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        let lcb = |c: &CandidateStats| -> f64 {
            let mean = c.mean.map_or(0.0, |m| m.as_secs_f64());
            let radius = (2.0 * (total.max(2) as f64).ln() / c.count.max(1) as f64).sqrt();
            mean - self.exploration * spread * radius
        };
        let best = ctx
            .candidates
            .iter()
            .min_by(|a, b| lcb(a).total_cmp(&lcb(b)).then(a.version.cmp(&b.version)))
            .expect("candidates verified non-empty");
        let mean = best.mean.unwrap_or(Duration::ZERO);
        PolicyChoice {
            version: best.version,
            worker: earliest_for(ctx.workers, best.version, mean),
            phase: DecisionPhase::Reliable,
            estimate: mean,
            bids: Vec::new(),
        }
    }
}

/// ε-greedy version selection: with probability ε pick a uniformly
/// random candidate (exploration), otherwise the fastest mean; untried
/// versions are always taken first. Deterministic for a given seed
/// (xorshift64*), so replay is exact.
#[derive(Debug)]
pub struct EpsilonGreedy {
    epsilon: f64,
    state: u64,
}

impl EpsilonGreedy {
    /// New ε-greedy policy with the given exploration rate and RNG seed.
    pub fn new(epsilon: f64, seed: u64) -> EpsilonGreedy {
        EpsilonGreedy { epsilon, state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — tiny, seedable, good enough for exploration.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Policy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "epsilon-greedy"
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> PolicyChoice {
        if let Some(c) =
            ctx.candidates.iter().filter(|c| c.count == 0).min_by_key(|c| (c.scheduled, c.version))
        {
            return PolicyChoice {
                version: c.version,
                worker: least_loaded_for(ctx.workers, c.version),
                phase: DecisionPhase::Learning,
                estimate: Duration::ZERO,
                bids: Vec::new(),
            };
        }
        let explore = self.next_f64() < self.epsilon;
        let chosen = if explore {
            let idx = (self.next_u64() % ctx.candidates.len() as u64) as usize;
            &ctx.candidates[idx]
        } else {
            ctx.candidates
                .iter()
                .min_by_key(|c| (c.mean.unwrap_or(Duration::MAX), c.version))
                .expect("candidates verified non-empty")
        };
        let mean = chosen.mean.unwrap_or(Duration::ZERO);
        PolicyChoice {
            version: chosen.version,
            worker: earliest_for(ctx.workers, chosen.version, mean),
            phase: DecisionPhase::Reliable,
            estimate: mean,
            bids: Vec::new(),
        }
    }
}

/// Representative-set pruning (Luo et al.): train every version once,
/// then restrict the earliest-executor auction to the `k` fastest —
/// learning cost stays bounded when version counts explode, at the
/// price of never revisiting versions outside the representative set.
#[derive(Debug)]
pub struct RepresentativeSet {
    k: usize,
}

impl RepresentativeSet {
    /// New pruning policy keeping the `k` fastest versions (k ≥ 1).
    pub fn new(k: usize) -> RepresentativeSet {
        RepresentativeSet { k: k.max(1) }
    }
}

impl Policy for RepresentativeSet {
    fn name(&self) -> &'static str {
        "representative-set"
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> PolicyChoice {
        // One observation per version is the entire learning phase.
        if let Some(c) = ctx
            .candidates
            .iter()
            .filter(|c| c.count == 0 && c.scheduled == 0)
            .min_by_key(|c| c.version)
        {
            return PolicyChoice {
                version: c.version,
                worker: least_loaded_for(ctx.workers, c.version),
                phase: DecisionPhase::Learning,
                estimate: Duration::ZERO,
                bids: Vec::new(),
            };
        }
        let mut ranked: Vec<&CandidateStats> = ctx.candidates.iter().collect();
        ranked.sort_by_key(|c| (c.mean.unwrap_or(Duration::MAX), c.version));
        let allowed: Vec<CandidateStats> =
            ranked.into_iter().take(self.k).copied().collect();
        earliest_executor(ctx, &allowed)
    }
}

/// Selector for the shipped policies — the `policy` field of
/// [`VersioningConfig`](super::VersioningConfig), so policy selection
/// flows through `RuntimeConfig` like every other scheduler knob.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum PolicyKind {
    /// The paper's round-robin learning + earliest-executor (default).
    #[default]
    RoundRobin,
    /// UCB1 lower-confidence-bound version selection.
    Ucb1 {
        /// Confidence-radius scale (0 = greedy).
        exploration: f64,
    },
    /// ε-greedy version selection with a deterministic seeded RNG.
    EpsilonGreedy {
        /// Exploration probability in [0, 1].
        epsilon: f64,
        /// RNG seed (decisions are deterministic per seed).
        seed: u64,
    },
    /// Representative-set pruning: one observation each, then auction
    /// over the `k` fastest.
    RepresentativeSet {
        /// Size of the representative set.
        k: usize,
    },
}

impl PolicyKind {
    /// Stable name (CLI selector, report label).
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::Ucb1 { .. } => "ucb1",
            PolicyKind::EpsilonGreedy { .. } => "epsilon-greedy",
            PolicyKind::RepresentativeSet { .. } => "representative-set",
        }
    }

    /// Parse a policy name into its default-parameter kind.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        PolicyKind::shipped().into_iter().find(|k| k.label() == name)
    }

    /// Every shipped policy with its default parameters, in a stable
    /// order (`round-robin` first — the identity policy for replay).
    pub fn shipped() -> Vec<PolicyKind> {
        vec![
            PolicyKind::RoundRobin,
            PolicyKind::Ucb1 { exploration: 0.5 },
            PolicyKind::EpsilonGreedy { epsilon: 0.1, seed: 0x9E37_79B9_7F4A_7C15 },
            PolicyKind::RepresentativeSet { k: 2 },
        ]
    }

    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match *self {
            PolicyKind::RoundRobin => Box::new(RoundRobinLearning::new()),
            PolicyKind::Ucb1 { exploration } => Box::new(Ucb1::new(exploration)),
            PolicyKind::EpsilonGreedy { epsilon, seed } => {
                Box::new(EpsilonGreedy::new(epsilon, seed))
            }
            PolicyKind::RepresentativeSet { k } => Box::new(RepresentativeSet::new(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn cand(v: u16, scheduled: u64, count: u64, mean: Option<Duration>) -> CandidateStats {
        CandidateStats { version: VersionId(v), scheduled, count, mean }
    }

    fn snap(w: u16, pressure: u64, busy: Duration, runnable: &[u16]) -> WorkerSnap {
        WorkerSnap {
            worker: WorkerId(w),
            pressure,
            busy,
            transfer: Duration::ZERO,
            runnable: runnable.iter().map(|&v| VersionId(v)).collect(),
        }
    }

    fn ctx<'a>(candidates: &'a [CandidateStats], workers: &'a [WorkerSnap]) -> PolicyCtx<'a> {
        PolicyCtx {
            template: TemplateId(0),
            bucket: BucketKey(0),
            job: None,
            lambda: 3,
            candidates,
            workers,
        }
    }

    #[test]
    fn round_robin_cycles_then_bids() {
        let mut p = RoundRobinLearning::new();
        let workers = [snap(0, 0, Duration::ZERO, &[0, 1])];
        // Both under-trained: alternate starting at the cursor.
        let c = [cand(0, 0, 0, None), cand(1, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(0));
        let c = [cand(0, 1, 1, Some(ms(10))), cand(1, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(1));
        // Trained: the faster mean wins the auction.
        let c = [cand(0, 3, 3, Some(ms(10))), cand(1, 3, 3, Some(ms(5)))];
        let choice = p.decide(&ctx(&c, &workers));
        assert_eq!(choice.version, VersionId(1));
        assert_eq!(choice.phase, DecisionPhase::Reliable);
        assert_eq!(choice.bids.len(), 1);
    }

    #[test]
    fn round_robin_skips_trained_versions_mid_cycle() {
        let mut p = RoundRobinLearning::new();
        let workers = [snap(0, 0, Duration::ZERO, &[0, 1, 2])];
        // v0 already has λ assignments: the walk starts at the cursor
        // (0) and skips to v1.
        let c = [cand(0, 3, 0, None), cand(1, 0, 0, None), cand(2, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(1));
        let c = [cand(0, 3, 0, None), cand(1, 1, 0, None), cand(2, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(2));
    }

    #[test]
    fn round_robin_falls_through_when_no_undertrained_candidate_survives() {
        // The phase check sees an under-trained candidate list, but the
        // walk finds none (stale snapshot after quarantine strikes):
        // must not panic — the earliest-executor fallback handles it.
        let mut p = RoundRobinLearning::new();
        let workers = [snap(0, 0, Duration::ZERO, &[0])];
        let c = [cand(0, 5, 2, Some(ms(7)))];
        let choice = p.decide(&ctx(&c, &workers));
        assert_eq!(choice.version, VersionId(0));
        assert_eq!(choice.phase, DecisionPhase::Reliable);
    }

    #[test]
    fn learning_places_on_least_loaded_compatible_worker() {
        let mut p = RoundRobinLearning::new();
        let workers = [
            snap(0, 2, ms(50), &[0]),
            snap(1, 0, ms(1), &[1]), // idle, but cannot run v0
            snap(2, 1, ms(5), &[0, 1]),
        ];
        let c = [cand(0, 0, 0, None), cand(1, 0, 0, None)];
        let choice = p.decide(&ctx(&c, &workers));
        assert_eq!(choice.version, VersionId(0));
        assert_eq!(choice.worker, WorkerId(2), "w1 is idle but incompatible");
    }

    #[test]
    fn ucb1_tries_every_version_then_exploits() {
        let mut p = Ucb1::new(0.0); // greedy: no exploration bonus
        let workers = [snap(0, 0, Duration::ZERO, &[0, 1])];
        let c = [cand(0, 0, 0, None), cand(1, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(0));
        let c = [cand(0, 1, 1, Some(ms(20))), cand(1, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(1));
        let c = [cand(0, 1, 1, Some(ms(20))), cand(1, 1, 1, Some(ms(5)))];
        let choice = p.decide(&ctx(&c, &workers));
        assert_eq!(choice.version, VersionId(1), "greedy UCB picks the faster mean");
        assert_eq!(choice.phase, DecisionPhase::Reliable);
    }

    #[test]
    fn ucb1_exploration_revisits_rarely_tried_versions() {
        let mut p = Ucb1::new(2.0);
        let workers = [snap(0, 0, Duration::ZERO, &[0, 1])];
        // v0 slightly slower but tried once; v1 fast and tried often.
        // A large exploration bonus prefers the under-sampled v0.
        let c = [cand(0, 1, 1, Some(ms(11))), cand(1, 50, 50, Some(ms(10)))];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(0));
    }

    #[test]
    fn epsilon_greedy_is_deterministic_per_seed() {
        let workers = [snap(0, 0, Duration::ZERO, &[0, 1])];
        let c = [cand(0, 5, 5, Some(ms(20))), cand(1, 5, 5, Some(ms(5)))];
        let run = |seed: u64| {
            let mut p = EpsilonGreedy::new(0.5, seed);
            (0..32).map(|_| p.decide(&ctx(&c, &workers)).version.0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same choices");
        let picks = run(7);
        assert!(picks.contains(&1), "greedy arm taken");
        assert!(picks.contains(&0), "ε = 0.5 explores the slow arm too");
    }

    #[test]
    fn representative_set_prunes_to_k_fastest() {
        let mut p = RepresentativeSet::new(2);
        let workers = [snap(0, 0, Duration::ZERO, &[0, 1, 2])];
        // Train each version exactly once.
        let c = [cand(0, 0, 0, None), cand(1, 0, 0, None), cand(2, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(0));
        let c = [cand(0, 1, 1, Some(ms(30))), cand(1, 0, 0, None), cand(2, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(1));
        let c = [cand(0, 1, 1, Some(ms(30))), cand(1, 1, 1, Some(ms(5))), cand(2, 0, 0, None)];
        assert_eq!(p.decide(&ctx(&c, &workers)).version, VersionId(2));
        // All observed: v2 (400 ms) is outside the representative set
        // {v1, v0}; the auction never picks it again.
        let c = [
            cand(0, 1, 1, Some(ms(30))),
            cand(1, 1, 1, Some(ms(5))),
            cand(2, 1, 1, Some(ms(400))),
        ];
        for _ in 0..8 {
            let choice = p.decide(&ctx(&c, &workers));
            assert_ne!(choice.version, VersionId(2), "pruned version must not win");
        }
    }

    #[test]
    fn kind_round_trips_labels() {
        for kind in PolicyKind::shipped() {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind.clone()));
            assert_eq!(kind.build().name(), kind.label());
        }
        assert_eq!(PolicyKind::parse("bogus"), None);
        assert_eq!(PolicyKind::default(), PolicyKind::RoundRobin);
    }
}
