//! The versioning scheduler — the paper's contribution (§IV).

use super::policy::{CandidateStats, Policy, PolicyCtx, PolicyKind, WorkerSnap};
use super::{queue_pressure, Assignment, FailureKind, SchedCtx, Scheduler};
use crate::profile::{BucketKey, MeanPolicy, ProfileStore, SizeBucketPolicy};
use crate::{TaskId, TaskInstance, TemplateId, VersionId, WorkerId};
use std::collections::HashMap;
use std::time::Duration;
use versa_mem::MemSpace;

/// Smoothing factor for the per-space bandwidth EWMA: the same "keep
/// adapting, weight the recent past" idea as the paper's footnote-3
/// weighted execution means.
const BANDWIDTH_EWMA_ALPHA: f64 = 0.25;

/// Upper clamp on one measured bandwidth sample (bytes/second). Timer
/// granularity on a tiny transfer can price a link at petabytes per
/// second; one such sample drags the EWMA so high the locality term
/// never predicts a transfer cost again. 1 TB/s sits comfortably above
/// any link this runtime models while still bounding the damage.
const BANDWIDTH_SAMPLE_CEILING: f64 = 1.0e12;

/// Tunables of the [`VersioningScheduler`]; the analogue of Nanos++
/// configuration arguments / environment variables.
#[derive(Clone, Debug, PartialEq)]
pub struct VersioningConfig {
    /// Learning threshold λ: minimum executions of every version of a
    /// size group before the group's information is *reliable* (paper
    /// §IV-B; user-configurable per footnote 4).
    pub lambda: u64,
    /// How data set sizes are grouped (paper default: exact match; §VII
    /// proposes ranges).
    pub bucket_policy: SizeBucketPolicy,
    /// Mean-update policy (paper default: arithmetic; footnote 3 suggests
    /// a weighted mean).
    pub mean_policy: MeanPolicy,
    /// §VII extension: add an estimated transfer time to the
    /// earliest-executor objective so data locality is taken into
    /// account.
    pub locality_aware: bool,
    /// Link bandwidth assumed when estimating transfer times in
    /// locality-aware mode (bytes/second).
    pub assumed_bandwidth: f64,
    /// Quarantine threshold K: consecutive failures of a (template,
    /// version, size-group) entry before the version is excluded from
    /// learning and bidding in that group.
    pub quarantine_threshold: u64,
    /// Probation period: with `Some(p)`, a quarantined version earns one
    /// retrial after `p` successful executions of other versions in the
    /// same group; with `None`, quarantine holds until the run ends.
    pub probation: Option<u64>,
    /// Decision policy: which [`Policy`] turns the per-decision snapshot
    /// into a `(version, worker)` choice. The default,
    /// [`PolicyKind::RoundRobin`], is the paper's strategy and is
    /// decision-for-decision identical to the pre-trait scheduler.
    pub policy: PolicyKind,
}

impl Default for VersioningConfig {
    fn default() -> Self {
        VersioningConfig {
            lambda: 3,
            bucket_policy: SizeBucketPolicy::Exact,
            mean_policy: MeanPolicy::Arithmetic,
            locality_aware: false,
            // A PCIe 2.0 x16-class link, matching the simulated platform.
            assumed_bandwidth: 6.0e9,
            quarantine_threshold: 2,
            probation: None,
            policy: PolicyKind::RoundRobin,
        }
    }
}

/// Which phase produced a decision (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionPhase {
    /// Initial learning phase: round-robin over under-trained versions.
    Learning,
    /// Reliable-information phase: earliest-executor selection.
    Reliable,
    /// Past the learning phase but no version had a completed mean to
    /// bid with (every version has λ assignments still in flight) — the
    /// least-scheduled version went to the least-loaded worker.
    ReliableFallback,
}

/// One worker's bid during an earliest-executor decision: the version it
/// would run, its mean execution time, and the resulting finish estimate.
/// Captured for the paper's Fig. 5-style decision traces.
#[derive(Clone, Copy, Debug)]
pub struct WorkerBid {
    /// The bidding worker.
    pub worker: WorkerId,
    /// Its current estimated busy time.
    pub busy: Duration,
    /// The fastest version it can run.
    pub version: VersionId,
    /// That version's mean execution time.
    pub mean: Duration,
    /// Estimated transfer time added in locality-aware mode (zero
    /// otherwise).
    pub transfer: Duration,
    /// `busy + mean (+ transfer)`: when the worker would finish the task.
    pub finish: Duration,
}

/// Per-(template, size-group) decision inputs precomputed at
/// [`Scheduler::begin_wave`] and reused for every task of the group in
/// the wave. Valid because reliability and candidate sets only move via
/// `task_finished`/`task_failed`, which the engine promises not to call
/// inside the wave bracket. The one intra-wave mutation — `scheduled`
/// bumps from the scheduler's own bookkeeping — is mirrored into
/// `stats` after each decision so round-robin still advances, and a
/// quarantined choice (whose bookkeeping can flip the group's exclusion
/// set) evicts the entry outright.
struct GroupCache {
    candidates: Vec<VersionId>,
    stats: Vec<CandidateStats>,
    reliable: bool,
}

/// All caches for one scheduling wave; dropped at
/// [`Scheduler::end_wave`].
struct WaveCache {
    groups: HashMap<(TemplateId, BucketKey), GroupCache>,
    /// Per-template, per-worker runnable-version lists (retirement is
    /// wave-invariant, so these never change mid-wave).
    runnable: HashMap<TemplateId, Vec<Vec<VersionId>>>,
}

/// A recorded scheduling decision (optional; see
/// [`VersioningScheduler::set_decision_logging`]).
#[derive(Clone, Debug)]
pub struct Decision {
    /// The task being placed.
    pub task: TaskId,
    /// Its template.
    pub template: TemplateId,
    /// The size bucket the profile lookup used.
    pub bucket: BucketKey,
    /// The owning job id, when the task runs under a multi-job service.
    pub job: Option<u64>,
    /// Phase the group was in.
    pub phase: DecisionPhase,
    /// All bids considered (empty for learning-phase decisions).
    pub bids: Vec<WorkerBid>,
    /// The chosen assignment.
    pub assignment: Assignment,
    /// Candidate versions with their profile statistics as seen *before*
    /// this decision's bookkeeping — together with `workers`, the full
    /// policy input, so recorded decisions replay offline as a pure
    /// function (the `versa-gym` harness).
    pub candidates: Vec<CandidateStats>,
    /// Per-worker load snapshots at decision time.
    pub workers: Vec<WorkerSnap>,
}

/// The paper's self-adaptive scheduler: it "is able to choose the most
/// appropriate task implementation at runtime each time a task must be
/// run. As tasks are executed, the scheduler learns and keeps track of
/// their behavior so that it can make accurate decisions in the immediate
/// future" (paper §I).
///
/// Behaviour per size group:
/// 1. **Learning phase** — versions picked round-robin until each has run
///    λ times; tasks go to the least-loaded worker able to run the picked
///    version.
/// 2. **Reliable phase** — every worker bids `busy + mean(best version it
///    can run)`; the minimum bid (the *earliest executor*) wins. This is
///    exactly the Fig. 5 rule: a slower SMP worker wins when the fast GPU
///    is backed up.
///
/// The scheduler never stops learning: reliable-phase executions update
/// the means too, and a task instance with an unseen data-set size drops
/// its group back into the learning phase.
pub struct VersioningScheduler {
    config: VersioningConfig,
    profiles: ProfileStore,
    policy: Box<dyn Policy>,
    decisions: Option<Vec<Decision>>,
    /// Measured bytes/second into each space, learned online from
    /// completed transfers (EWMA). Used by the locality-aware transfer
    /// term in place of the static `assumed_bandwidth` once at least one
    /// transfer into the space has been observed.
    bandwidth: HashMap<MemSpace, f64>,
    /// Active wave cache between `begin_wave`/`end_wave`; `None` when
    /// scheduling task-by-task (decisions are identical either way —
    /// the cache only amortizes recomputation).
    wave: Option<WaveCache>,
}

impl VersioningScheduler {
    /// Create a scheduler from a configuration.
    pub fn new(config: VersioningConfig) -> VersioningScheduler {
        let mut profiles =
            ProfileStore::new(config.bucket_policy, config.mean_policy, config.lambda);
        profiles.set_quarantine(config.quarantine_threshold, config.probation);
        let policy = config.policy.build();
        VersioningScheduler {
            config,
            profiles,
            policy,
            decisions: None,
            bandwidth: HashMap::new(),
            wave: None,
        }
    }

    /// Scheduler with the paper's default configuration.
    pub fn with_defaults() -> VersioningScheduler {
        VersioningScheduler::new(VersioningConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &VersioningConfig {
        &self.config
    }

    /// Name of the active decision policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The learned profile store (paper Table I), e.g. for rendering or
    /// saving hints.
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// Mutable access to the profile store — used to seed external hints
    /// before a run (paper §VII).
    pub fn profiles_mut(&mut self) -> &mut ProfileStore {
        &mut self.profiles
    }

    /// Enable or disable decision logging (Fig. 5-style traces). Logging
    /// is off by default; enabling it on long runs costs memory.
    pub fn set_decision_logging(&mut self, enabled: bool) {
        self.decisions = if enabled { Some(Vec::new()) } else { None };
    }

    /// Recorded decisions, if logging is enabled.
    pub fn decisions(&self) -> &[Decision] {
        self.decisions.as_deref().unwrap_or(&[])
    }

    /// Drain and return the recorded decisions, leaving logging enabled.
    /// Engines call this after each scheduling burst to move records into
    /// the trace without unbounded growth here.
    pub fn drain_decisions(&mut self) -> Vec<Decision> {
        self.decisions.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Whether decision logging is currently enabled.
    pub fn decision_logging(&self) -> bool {
        self.decisions.is_some()
    }

    /// Versions of `task`'s template that at least one existing worker
    /// can run (versions targeting absent devices are excluded so the
    /// learning phase can terminate).
    fn trainable_versions(&self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Vec<VersionId> {
        let tpl = ctx.templates.get(task.template);
        (0..tpl.version_count() as u16)
            .map(VersionId)
            .filter(|&v| {
                ctx.workers
                    .iter()
                    .any(|w| !w.is_retired() && tpl.version(v).runs_on(w.info.device))
            })
            .collect()
    }

    /// Trainable versions minus quarantined ones. If quarantine empties
    /// the set entirely, falls back to the least-failed runnable version
    /// so the scheduler stays total — the engine's bounded retry is the
    /// layer that turns persistent failure into a graceful error.
    fn candidate_versions(&self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Vec<VersionId> {
        let all = self.trainable_versions(task, ctx);
        let candidates: Vec<VersionId> = all
            .iter()
            .copied()
            .filter(|&v| !self.profiles.is_excluded(task.template, task.data_set_size, v))
            .collect();
        if !candidates.is_empty() {
            return candidates;
        }
        let group = self.profiles.group(task.template, task.data_set_size);
        all.iter()
            .copied()
            .min_by_key(|&v| (group.map_or(0, |g| g.failures(v)), v))
            .into_iter()
            .collect()
    }

    /// Measured bandwidth into `space`, once at least one transfer has
    /// completed there.
    pub fn measured_bandwidth(&self, space: MemSpace) -> Option<f64> {
        self.bandwidth.get(&space).copied()
    }

    fn transfer_estimate(&self, task: &TaskInstance, ctx: &SchedCtx<'_>, w: &crate::WorkerState) -> Duration {
        if !self.config.locality_aware {
            return Duration::ZERO;
        }
        let bytes = ctx.directory.bytes_missing_for(&task.accesses, w.info.space);
        // Prefer the online-measured bandwidth for this destination
        // space; until a transfer has been observed, fall back to the
        // configured static estimate.
        let bw = self
            .bandwidth
            .get(&w.info.space)
            .copied()
            .unwrap_or(self.config.assumed_bandwidth);
        Duration::from_secs_f64(bytes as f64 / bw)
    }

    /// Per-candidate profile statistics, captured *before* any
    /// bookkeeping mutates the store. Recorded into the decision ledger
    /// so policies replay offline as pure functions of this snapshot.
    fn candidate_stats(&self, task: &TaskInstance, candidates: &[VersionId]) -> Vec<CandidateStats> {
        let group = self.profiles.group(task.template, task.data_set_size);
        candidates
            .iter()
            .map(|&v| match group {
                Some(g) => CandidateStats {
                    version: v,
                    scheduled: g.scheduled(v),
                    count: g.version(v).count(),
                    mean: g.version(v).mean(),
                },
                None => CandidateStats { version: v, scheduled: 0, count: 0, mean: None },
            })
            .collect()
    }

    /// Per-worker runnable-version lists for a template: a retired
    /// worker (lost node) advertises no runnable versions, so every
    /// policy treats it as incompatible.
    fn runnable_lists(&self, template: TemplateId, ctx: &SchedCtx<'_>) -> Vec<Vec<VersionId>> {
        let tpl = ctx.templates.get(template);
        ctx.workers
            .iter()
            .map(|w| {
                if w.is_retired() {
                    Vec::new()
                } else {
                    tpl.versions_for(w.info.device).collect()
                }
            })
            .collect()
    }

    /// Per-worker load snapshots at decision time. Busy time, queue
    /// pressure, and the transfer estimate are read live — enqueues
    /// between decisions in the same wave must be visible — while the
    /// runnable lists come from the wave cache when one is active.
    fn worker_snaps(&self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Vec<WorkerSnap> {
        let cached = self.wave.as_ref().and_then(|w| w.runnable.get(&task.template));
        let fresh;
        let runnable = match cached {
            Some(lists) if lists.len() == ctx.workers.len() => lists,
            _ => {
                fresh = self.runnable_lists(task.template, ctx);
                &fresh
            }
        };
        ctx.workers
            .iter()
            .zip(runnable)
            .map(|(w, runnable)| WorkerSnap {
                worker: w.info.id,
                pressure: queue_pressure(w) as u64,
                busy: w.estimated_busy(),
                transfer: self.transfer_estimate(task, ctx, w),
                runnable: runnable.clone(),
            })
            .collect()
    }

    /// Candidate versions plus their stats snapshot for one decision:
    /// from the wave cache when a wave is active and the group is
    /// cached, recomputed (and cached for the rest of the wave)
    /// otherwise.
    fn decision_inputs(
        &mut self,
        task: &TaskInstance,
        ctx: &SchedCtx<'_>,
    ) -> (Vec<VersionId>, Vec<CandidateStats>) {
        let key = (task.template, self.profiles.bucket(task.data_set_size));
        if let Some(g) = self.wave.as_ref().and_then(|w| w.groups.get(&key)) {
            return (g.candidates.clone(), g.stats.clone());
        }
        let candidates = self.candidate_versions(task, ctx);
        let stats = self.candidate_stats(task, &candidates);
        if self.wave.is_some() {
            let reliable =
                self.profiles.is_reliable(task.template, task.data_set_size, &candidates);
            let entry =
                GroupCache { candidates: candidates.clone(), stats: stats.clone(), reliable };
            if let Some(w) = &mut self.wave {
                w.groups.insert(key, entry);
            }
        }
        (candidates, stats)
    }
}

impl Scheduler for VersioningScheduler {
    fn name(&self) -> &'static str {
        if self.config.locality_aware {
            "locality-versioning"
        } else {
            "versioning"
        }
    }

    fn begin_wave(&mut self, frontier: &[&TaskInstance], ctx: &SchedCtx<'_>) {
        let mut groups = HashMap::new();
        let mut runnable: HashMap<TemplateId, Vec<Vec<VersionId>>> = HashMap::new();
        for task in frontier {
            let key = (task.template, self.profiles.bucket(task.data_set_size));
            groups.entry(key).or_insert_with(|| {
                let candidates = self.candidate_versions(task, ctx);
                let stats = self.candidate_stats(task, &candidates);
                let reliable =
                    self.profiles.is_reliable(task.template, task.data_set_size, &candidates);
                GroupCache { candidates, stats, reliable }
            });
            runnable
                .entry(task.template)
                .or_insert_with(|| self.runnable_lists(task.template, ctx));
        }
        self.wave = Some(WaveCache { groups, runnable });
    }

    fn end_wave(&mut self) {
        self.wave = None;
    }

    fn assign(&mut self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> Assignment {
        // The full decision input, captured before any bookkeeping; the
        // policy sees nothing else, so recording this snapshot into the
        // ledger makes every decision replayable offline.
        let (candidate_versions, candidates) = self.decision_inputs(task, ctx);
        assert!(
            !candidate_versions.is_empty(),
            "no worker can run any version of {:?}",
            ctx.templates.get(task.template).name
        );
        let workers = self.worker_snaps(task, ctx);
        let bucket = self.profiles.bucket(task.data_set_size);
        let choice = self.policy.decide(&PolicyCtx {
            template: task.template,
            bucket,
            job: task.job.map(|j| j.job),
            lambda: self.config.lambda,
            candidates: &candidates,
            workers: &workers,
        });
        let n_versions = ctx.templates.get(task.template).version_count();
        match choice.phase {
            DecisionPhase::Learning => {
                self.profiles.note_learning(
                    task.template,
                    n_versions,
                    task.data_set_size,
                    choice.version,
                );
            }
            DecisionPhase::Reliable | DecisionPhase::ReliableFallback => {
                self.profiles.mark_scheduled(
                    task.template,
                    n_versions,
                    task.data_set_size,
                    choice.version,
                );
            }
        }
        // Keep the wave cache coherent with the bookkeeping above: the
        // chosen version's `scheduled` count advanced (round-robin in
        // the same wave must see it), and picking a quarantined version
        // zeroes its probation credit — which can flip the group's
        // exclusion set — so that group's entry is evicted and
        // recomputed on next use.
        if self.wave.is_some() {
            let key = (task.template, bucket);
            let quarantined =
                self.profiles.is_quarantined(task.template, task.data_set_size, choice.version);
            if let Some(w) = &mut self.wave {
                if quarantined {
                    w.groups.remove(&key);
                } else if let Some(g) = w.groups.get_mut(&key) {
                    if let Some(c) = g.stats.iter_mut().find(|c| c.version == choice.version) {
                        c.scheduled += 1;
                    }
                }
            }
        }
        let assignment =
            Assignment { worker: choice.worker, version: choice.version, estimate: choice.estimate };
        if let Some(log) = &mut self.decisions {
            log.push(Decision {
                task: task.id,
                template: task.template,
                bucket,
                job: task.job.map(|j| j.job),
                phase: choice.phase,
                bids: choice.bids,
                assignment,
                candidates,
                workers,
            });
        }
        assignment
    }

    fn task_finished(&mut self, task: &TaskInstance, assignment: Assignment, measured: Duration) {
        // "Execution information is also recorded exactly in the same way
        // as the previous phase ... the scheduler is always learning."
        // The group already exists (created at assign time); the version
        // count passed here is a lower bound the store grows to if needed.
        let n_versions = usize::from(assignment.version.0) + 1;
        self.profiles.record(
            task.template,
            n_versions,
            task.data_set_size,
            assignment.version,
            measured,
        );
    }

    fn transfer_done(&mut self, to: MemSpace, bytes: u64, elapsed: Duration) {
        if bytes == 0 || elapsed.is_zero() {
            return;
        }
        let sample = bytes as f64 / elapsed.as_secs_f64();
        // Reject degenerate samples outright and clamp the plausible-but
        // -absurd ones: a single poisoned sample would otherwise skew the
        // EWMA for the rest of the run (and `Duration::from_secs_f64` in
        // the transfer estimate panics on non-finite input downstream).
        if !sample.is_finite() || sample <= 0.0 {
            return;
        }
        let sample = sample.min(BANDWIDTH_SAMPLE_CEILING);
        self.bandwidth
            .entry(to)
            .and_modify(|bw| *bw += BANDWIDTH_EWMA_ALPHA * (sample - *bw))
            .or_insert(sample);
    }

    fn task_failed(&mut self, task: &TaskInstance, assignment: Assignment, kind: FailureKind) {
        // A lost node is not evidence against the version: the same code
        // may run perfectly elsewhere. Node-level quarantine is handled
        // by the cluster membership layer, so no strike is recorded.
        if kind == FailureKind::NodeLost {
            return;
        }
        let n_versions = usize::from(assignment.version.0) + 1;
        self.profiles.record_failure(
            task.template,
            n_versions,
            task.data_set_size,
            assignment.version,
        );
    }

    fn supports_versions(&self) -> bool {
        true
    }

    fn eager(&self, task: &TaskInstance, ctx: &SchedCtx<'_>) -> bool {
        if let Some(w) = &self.wave {
            let key = (task.template, self.profiles.bucket(task.data_set_size));
            if let Some(g) = w.groups.get(&key) {
                return g.reliable;
            }
        }
        let candidates = self.candidate_versions(task, ctx);
        self.profiles.is_reliable(task.template, task.data_set_size, &candidates)
    }

    fn as_versioning(&self) -> Option<&VersioningScheduler> {
        Some(self)
    }

    fn as_versioning_mut(&mut self) -> Option<&mut VersioningScheduler> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::{DeviceKind, SchedCtx, WorkerState};
    use versa_mem::DataId;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    struct Fixture {
        reg: crate::TemplateRegistry,
        tpl: crate::TemplateId,
        workers: Vec<WorkerState>,
        dir: versa_mem::Directory,
    }

    impl Fixture {
        fn new() -> Fixture {
            let (reg, tpl) = hybrid_registry();
            Fixture {
                reg,
                tpl,
                workers: workers_2smp_2gpu(),
                dir: directory(DataId(0), DataId(1), 1024),
            }
        }

        fn ctx(&self) -> SchedCtx<'_> {
            SchedCtx {
                templates: &self.reg,
                workers: &self.workers,
                directory: &self.dir,
                chain_hint: None,
            }
        }

        fn task(&self, id: u64) -> crate::TaskInstance {
            task(id, self.tpl, DataId(0), DataId(1), 1024)
        }

        /// Assign a task, simulate it finishing after `measured`, and
        /// feed the measurement back.
        fn run_once(&mut self, s: &mut VersioningScheduler, id: u64, measured: Duration) -> Assignment {
            let t = self.task(id);
            let a = s.assign(&t, &self.ctx());
            s.task_finished(&t, a, measured);
            a
        }
    }

    /// Duration model used in tests: CUBLAS 7 ms, hand-CUDA 10 ms, CBLAS
    /// 420 ms — the paper's "SMP task duration is about 60 times the GPU
    /// task duration" regime.
    fn measured_for(version: VersionId) -> Duration {
        match version.0 {
            0 => ms(7),
            1 => ms(10),
            _ => ms(420),
        }
    }

    #[test]
    fn learning_phase_trains_every_version_lambda_times() {
        let mut fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        let mut counts = [0u64; 3];
        // 3 versions × λ=3 → exactly 9 learning assignments.
        for i in 0..9 {
            let a = fx.run_once(&mut s, i, measured_for(VersionId(0)));
            counts[a.version.index()] += 1;
        }
        assert_eq!(counts, [3, 3, 3]);
        assert!(s.profiles().is_reliable(
            fx.tpl,
            2048,
            &[VersionId(0), VersionId(1), VersionId(2)]
        ));
    }

    #[test]
    fn reliable_phase_prefers_fastest_executor_when_idle() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        // All workers idle → the GPU running CUBLAS (fastest mean) wins.
        let a = s.assign(&fx.task(100), &fx.ctx());
        assert_eq!(a.version, VersionId(0), "CUBLAS is the fastest version");
        assert_eq!(fx.workers[a.worker.index()].info.device, DeviceKind::Cuda);
        assert_eq!(a.estimate, ms(7));
    }

    #[test]
    fn earliest_executor_beats_fastest_executor_under_load() {
        // The paper's Fig. 5 scenario: the GPU is the fastest executor
        // but is busy; an idle SMP worker finishes earlier.
        let mut fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        // Bury both GPU workers: busy ≈ 500 ms each > SMP mean 420 ms.
        for g in 2..4 {
            for q in 0..100 {
                fx.workers[g].enqueue(crate::TaskId(1000 + q), VersionId(0), ms(5));
            }
        }
        let a = s.assign(&fx.task(200), &fx.ctx());
        assert_eq!(a.version, VersionId(2), "SMP CBLAS version wins");
        assert_eq!(fx.workers[a.worker.index()].info.device, DeviceKind::Smp);
    }

    #[test]
    fn gpu_still_wins_under_mild_load() {
        let mut fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        // 10 × 5 ms queued ≪ 420 ms SMP mean → GPU keeps the task.
        for q in 0..10 {
            fx.workers[2].enqueue(crate::TaskId(1000 + q), VersionId(0), ms(5));
        }
        let a = s.assign(&fx.task(200), &fx.ctx());
        assert_eq!(fx.workers[a.worker.index()].info.device, DeviceKind::Cuda);
        // And it picks the idle GPU (w3), not the loaded one.
        assert_eq!(a.worker, crate::WorkerId(3));
    }

    #[test]
    fn unseen_size_reenters_learning_phase() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        // New data-set size → learning again (round-robin incl. SMP).
        let t = task(300, fx.tpl, DataId(0), DataId(1), 4096);
        let a = s.assign(&t, &fx.ctx());
        // Learning decisions have no bids; check via the decision log on
        // a fresh scheduler instead — here we just check the group is new.
        assert_eq!(s.profiles().count(fx.tpl, 8192, a.version), 0);
        assert!(!s.profiles().is_reliable(
            fx.tpl,
            8192,
            &[VersionId(0), VersionId(1), VersionId(2)]
        ));
    }

    #[test]
    fn versions_without_workers_are_not_trained() {
        // Template with a Cell version but no Cell workers: learning must
        // still terminate.
        let mut reg = crate::TemplateRegistry::new();
        let tpl = reg
            .template("t")
            .main("gpu_impl", &[DeviceKind::Cuda])
            .version("cell_impl", &[DeviceKind::CellSpe])
            .version("smp_impl", &[DeviceKind::Smp])
            .register();
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 64);
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..6 {
            let t = task(i, tpl, DataId(0), DataId(1), 64);
            let ctx = SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
            let a = s.assign(&t, &ctx);
            assert_ne!(a.version, VersionId(1), "cell version must never be picked");
            s.task_finished(&t, a, ms(5));
        }
        // After 3+3 runs of v0 and v2, the group is reliable.
        let t = task(99, tpl, DataId(0), DataId(1), 64);
        let ctx = SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let _ = s.assign(&t, &ctx);
        assert!(s.profiles().is_reliable(tpl, 128, &[VersionId(0), VersionId(2)]));
    }

    #[test]
    fn decision_log_captures_bids() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        s.set_decision_logging(true);
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        let _ = s.assign(&fx.task(100), &fx.ctx());
        let decisions = s.decisions();
        assert_eq!(decisions.len(), 10);
        assert!(decisions[..9].iter().all(|d| d.phase == DecisionPhase::Learning));
        let last = decisions.last().unwrap();
        assert_eq!(last.phase, DecisionPhase::Reliable);
        // 4 workers, all with a runnable trained version → 4 bids.
        assert_eq!(last.bids.len(), 4);
        let winner = last.bids.iter().min_by_key(|b| (b.finish, b.worker)).unwrap();
        assert_eq!(winner.worker, last.assignment.worker);
    }

    #[test]
    fn locality_mode_penalizes_remote_data() {
        // Data resident on GPU 0; both GPUs idle with equal means. The
        // locality-aware scheduler must pick GPU 0, the plain one picks
        // the lowest-id bid too — so check the transfer term directly.
        let (reg, tpl) = hybrid_registry();
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 100_000_000);
        dir.acquire(DataId(0), versa_mem::MemSpace::device(1), versa_mem::AccessMode::In);
        dir.acquire(DataId(1), versa_mem::MemSpace::device(1), versa_mem::AccessMode::InOut);
        let mut s = VersioningScheduler::new(VersioningConfig {
            locality_aware: true,
            ..Default::default()
        });
        s.set_decision_logging(true);
        // Seed profiles so we skip straight to the reliable phase.
        for v in [VersionId(0), VersionId(1), VersionId(2)] {
            s.profiles_mut().seed(tpl, 3, 200_000_000, v, ms(10), 5);
        }
        let t = task(0, tpl, DataId(0), DataId(1), 100_000_000);
        let ctx = SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };
        let a = s.assign(&t, &ctx);
        assert_eq!(a.worker, crate::WorkerId(3), "data already on GPU 1 (worker 3)");
        let d = s.decisions().last().unwrap();
        let w2 = d.bids.iter().find(|b| b.worker == crate::WorkerId(2)).unwrap();
        let w3 = d.bids.iter().find(|b| b.worker == crate::WorkerId(3)).unwrap();
        assert!(w2.transfer > Duration::ZERO);
        assert_eq!(w3.transfer, Duration::ZERO);
    }

    #[test]
    fn transfer_done_learns_bandwidth_as_ewma() {
        let mut s = VersioningScheduler::with_defaults();
        let dev = versa_mem::MemSpace::device(0);
        assert_eq!(s.measured_bandwidth(dev), None);
        // First sample sets the estimate outright: 1e9 B in 1 s.
        s.transfer_done(dev, 1_000_000_000, Duration::from_secs(1));
        assert_eq!(s.measured_bandwidth(dev), Some(1.0e9));
        // Second sample (2e9 B/s) moves it by α = 0.25.
        s.transfer_done(dev, 2_000_000_000, Duration::from_secs(1));
        let bw = s.measured_bandwidth(dev).unwrap();
        assert!((bw - 1.25e9).abs() < 1.0, "EWMA step: got {bw}");
        // Degenerate samples are ignored.
        s.transfer_done(dev, 0, Duration::from_secs(1));
        s.transfer_done(dev, 64, Duration::ZERO);
        assert_eq!(s.measured_bandwidth(dev), Some(bw));
        // Other spaces keep independent estimates.
        assert_eq!(s.measured_bandwidth(versa_mem::MemSpace::device(1)), None);
    }

    #[test]
    fn measured_bandwidth_steers_to_slower_but_data_resident_worker() {
        // The Fig. 5 analogue for data movement: the GPU version's mean
        // (10 ms) beats the SMP version's (40 ms), but the task's 200 MB
        // working set lives on the host and the *measured* link is slow
        // — the earliest executor is the slower worker that already
        // holds the data.
        let (reg, tpl) = hybrid_registry();
        let workers = workers_2smp_2gpu();
        let dir = directory(DataId(0), DataId(1), 100_000_000);
        let mk = || {
            let mut s = VersioningScheduler::new(VersioningConfig {
                locality_aware: true,
                // Deliberately optimistic static estimate: with no
                // measurements the transfer term is negligible.
                assumed_bandwidth: 1.0e12,
                ..Default::default()
            });
            for (v, mean) in [(VersionId(0), ms(10)), (VersionId(1), ms(15)), (VersionId(2), ms(40))] {
                s.profiles_mut().seed(tpl, 3, 200_000_000, v, mean, 5);
            }
            s.set_decision_logging(true);
            s
        };
        let ctx = SchedCtx { templates: &reg, workers: &workers, directory: &dir, chain_hint: None };

        // Before any transfer completes, the optimistic static bandwidth
        // makes the fast GPU win.
        let mut cold = mk();
        let a = cold.assign(&task(0, tpl, DataId(0), DataId(1), 100_000_000), &ctx);
        assert_eq!(a.version, VersionId(0), "without measurements the GPU mean dominates");

        // Online measurements reveal the real link: 2 GB/s into each GPU
        // space → a 200 MB copy-in costs ~100 ms, dwarfing the 30 ms
        // mean advantage. The host-resident SMP worker now wins.
        let mut warm = mk();
        for g in 0..2 {
            warm.transfer_done(versa_mem::MemSpace::device(g), 200_000_000, Duration::from_millis(100));
        }
        let a = warm.assign(&task(1, tpl, DataId(0), DataId(1), 100_000_000), &ctx);
        assert_eq!(a.version, VersionId(2), "SMP CBLAS wins on residency");
        assert_eq!(workers[a.worker.index()].info.device, DeviceKind::Smp);
        let d = warm.decisions().last().unwrap();
        let gpu_bid = d.bids.iter().find(|b| b.worker == crate::WorkerId(2)).unwrap();
        let smp_bid = d.bids.iter().find(|b| b.worker == crate::WorkerId(0)).unwrap();
        assert!(gpu_bid.transfer >= Duration::from_millis(90), "priced from the measured EWMA");
        assert_eq!(smp_bid.transfer, Duration::ZERO, "data already resident on the host");
    }

    #[test]
    fn no_means_fallback_logs_reliable_fallback_phase() {
        // λ = 1, three versions: three learning assignments exhaust the
        // round-robin without any completion, so the fourth assignment
        // is past learning but has no means to bid with.
        let fx = Fixture::new();
        let mut s = VersioningScheduler::new(VersioningConfig {
            lambda: 1,
            ..Default::default()
        });
        s.set_decision_logging(true);
        for i in 0..3 {
            let _ = s.assign(&fx.task(i), &fx.ctx());
        }
        let _ = s.assign(&fx.task(3), &fx.ctx());
        let decisions = s.decisions();
        assert_eq!(decisions.len(), 4);
        assert!(decisions[..3].iter().all(|d| d.phase == DecisionPhase::Learning));
        let last = decisions.last().unwrap();
        assert_eq!(last.phase, DecisionPhase::ReliableFallback, "not a learning decision");
        assert!(last.bids.is_empty());
    }

    #[test]
    fn quarantined_version_is_routed_around() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        // Idle platform: CUBLAS (v0) would normally win every time.
        let probe = s.assign(&fx.task(50), &fx.ctx());
        assert_eq!(probe.version, VersionId(0));
        // Fail v0 twice (default K = 2) → quarantined.
        let t = fx.task(51);
        let a = Assignment { worker: crate::WorkerId(2), version: VersionId(0), estimate: ms(7) };
        s.task_failed(&t, a, FailureKind::Panic);
        s.task_failed(&t, a, FailureKind::Panic);
        assert!(s.profiles().is_quarantined(fx.tpl, 2048, VersionId(0)));
        // Subsequent assignments avoid the quarantined version.
        for i in 60..70 {
            let a = s.assign(&fx.task(i), &fx.ctx());
            assert_ne!(a.version, VersionId(0), "quarantined version must not be picked");
            s.task_finished(&fx.task(i), a, measured_for(a.version));
        }
    }

    #[test]
    fn all_quarantined_falls_back_to_least_failed() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        let t = fx.task(99);
        for v in 0..3u16 {
            let a = Assignment {
                worker: crate::WorkerId(0),
                version: VersionId(v),
                estimate: Duration::ZERO,
            };
            // v0 fails 3×, v1 and v2 fail 2× — v1 is least-failed after v0.
            let n = if v == 0 { 3 } else { 2 };
            for _ in 0..n {
                s.task_failed(&t, a, FailureKind::Fault);
            }
        }
        // The scheduler must stay total: some version is still assigned.
        let a = s.assign(&fx.task(100), &fx.ctx());
        assert_eq!(a.version, VersionId(1), "least-failed version wins the fallback");
    }

    #[test]
    fn success_during_probation_rehabilitates_version() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::new(VersioningConfig {
            quarantine_threshold: 1,
            probation: Some(2),
            ..Default::default()
        });
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        let t = fx.task(40);
        let bad = Assignment { worker: crate::WorkerId(2), version: VersionId(0), estimate: ms(7) };
        s.task_failed(&t, bad, FailureKind::Panic);
        assert!(s.profiles().is_excluded(fx.tpl, 2048, VersionId(0)));
        // Two peer successes earn v0 a retrial; its success lifts quarantine.
        for i in 41..43 {
            let a = s.assign(&fx.task(i), &fx.ctx());
            assert_ne!(a.version, VersionId(0));
            s.task_finished(&fx.task(i), a, measured_for(a.version));
        }
        let a = s.assign(&fx.task(43), &fx.ctx());
        assert_eq!(a.version, VersionId(0), "probation retrial goes to the fastest version");
        s.task_finished(&fx.task(43), a, measured_for(a.version));
        assert!(!s.profiles().is_quarantined(fx.tpl, 2048, VersionId(0)));
    }

    #[test]
    fn quarantine_storm_mid_learning_does_not_panic() {
        // Fault injection for the old learning-phase `expect`: quarantine
        // every version while the group is still learning, then keep
        // scheduling. The scheduler must stay total — the all-quarantined
        // fallback feeds the least-failed version back through the policy
        // (learning if under-trained, profiled otherwise), never panics.
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        s.set_decision_logging(true);
        // Two learning assignments, then every version fails K=2 times.
        for i in 0..2 {
            let _ = s.assign(&fx.task(i), &fx.ctx());
        }
        let t = fx.task(10);
        for v in 0..3u16 {
            let a = Assignment {
                worker: crate::WorkerId(0),
                version: VersionId(v),
                estimate: Duration::ZERO,
            };
            s.task_failed(&t, a, FailureKind::Panic);
            s.task_failed(&t, a, FailureKind::Panic);
        }
        for v in 0..3u16 {
            assert!(s.profiles().is_quarantined(fx.tpl, 2048, VersionId(v)));
        }
        // Every subsequent assignment still succeeds, routed through the
        // single least-failed fallback candidate.
        for i in 20..26 {
            let a = s.assign(&fx.task(i), &fx.ctx());
            assert_eq!(a.version, VersionId(0), "least-failed (tie on id) fallback");
            s.task_finished(&fx.task(i), a, measured_for(a.version));
        }
        // The decision ledger stayed coherent: one decision per assign,
        // each with a non-empty candidate snapshot.
        assert!(s.decisions().iter().all(|d| !d.candidates.is_empty()));
    }

    #[test]
    fn transfer_done_rejects_and_clamps_poison_samples() {
        let mut s = VersioningScheduler::with_defaults();
        let dev = versa_mem::MemSpace::device(0);
        // A glitched timer on a huge transfer: u64::MAX bytes in 1 ns is
        // ~1.8e28 B/s. It must not enter the EWMA raw.
        s.transfer_done(dev, u64::MAX, Duration::from_nanos(1));
        let bw = s.measured_bandwidth(dev).unwrap();
        assert!(bw <= 1.0e12, "poison sample clamped to the ceiling, got {bw}");
        // A later sane sample pulls the estimate back down by the normal
        // EWMA step instead of fighting an astronomically large mean.
        s.transfer_done(dev, 1_000_000_000, Duration::from_secs(1));
        let bw2 = s.measured_bandwidth(dev).unwrap();
        assert!(bw2 < bw, "EWMA recovers after a clamped outlier");
        // Degenerate inputs never touch the estimate.
        s.transfer_done(dev, 0, Duration::from_secs(1));
        s.transfer_done(dev, 64, Duration::ZERO);
        assert_eq!(s.measured_bandwidth(dev), Some(bw2));
    }

    #[test]
    fn policy_selection_flows_through_config() {
        // A non-default policy wired through `VersioningConfig` drives
        // decisions: UCB1 has no round-robin learning phase, so its first
        // pass tries versions in least-scheduled order and its decisions
        // remain valid assignments.
        let fx = Fixture::new();
        // Zero exploration = greedy-after-one-try, so convergence below
        // is deterministic.
        let mut s = VersioningScheduler::new(VersioningConfig {
            policy: PolicyKind::Ucb1 { exploration: 0.0 },
            ..Default::default()
        });
        assert_eq!(s.policy_name(), "ucb1");
        s.set_decision_logging(true);
        for i in 0..12 {
            let a = s.assign(&fx.task(i), &fx.ctx());
            s.task_finished(&fx.task(i), a, measured_for(a.version));
        }
        // Every version got tried at least once (UCB1 unexplored-first)...
        for v in 0..3u16 {
            assert!(s.profiles().count(fx.tpl, 2048, VersionId(v)) >= 1);
        }
        // ...and with the counts in, UCB1 converges on the fastest.
        let a = s.assign(&fx.task(100), &fx.ctx());
        assert_eq!(a.version, VersionId(0), "CUBLAS has the best mean");
    }

    #[test]
    fn node_lost_failure_charges_no_version_strike() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        let t = fx.task(50);
        let a = Assignment { worker: crate::WorkerId(2), version: VersionId(0), estimate: ms(7) };
        // K = 2: two NodeLost failures must NOT quarantine the version...
        s.task_failed(&t, a, FailureKind::NodeLost);
        s.task_failed(&t, a, FailureKind::NodeLost);
        assert!(!s.profiles().is_quarantined(fx.tpl, 2048, VersionId(0)));
        // ...and the version still wins on an idle platform.
        let probe = s.assign(&fx.task(51), &fx.ctx());
        assert_eq!(probe.version, VersionId(0));
    }

    #[test]
    fn retired_workers_receive_no_assignments() {
        let mut fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        // Retire both GPU workers: the auction must fall to the SMP pair
        // even though CUBLAS has the best mean.
        fx.workers[2].retire();
        fx.workers[3].retire();
        for i in 20..26 {
            let a = s.assign(&fx.task(i), &fx.ctx());
            assert!(a.worker.index() < 2, "retired worker got task: {:?}", a.worker);
            assert_eq!(a.version, VersionId(2), "only the SMP version is runnable");
            s.task_finished(&fx.task(i), a, measured_for(a.version));
        }
    }

    #[test]
    fn retiring_all_workers_of_a_version_drops_it_from_learning() {
        // With the GPUs retired before any training, learning must not
        // wait for GPU-only versions (they are untrainable now).
        let mut fx = Fixture::new();
        fx.workers[2].retire();
        fx.workers[3].retire();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..3 {
            let a = s.assign(&fx.task(i), &fx.ctx());
            assert_eq!(a.version, VersionId(2));
            s.task_finished(&fx.task(i), a, measured_for(a.version));
        }
        assert!(s.profiles().is_reliable(fx.tpl, 2048, &[VersionId(2)]));
    }

    #[test]
    fn task_finished_keeps_updating_means_in_reliable_phase() {
        let fx = Fixture::new();
        let mut s = VersioningScheduler::with_defaults();
        for i in 0..9 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        let before = s.profiles().count(fx.tpl, 2048, VersionId(0));
        for i in 10..20 {
            let t = fx.task(i);
            let a = s.assign(&t, &fx.ctx());
            s.task_finished(&t, a, measured_for(a.version));
        }
        let after = s.profiles().count(fx.tpl, 2048, VersionId(0));
        assert!(after > before, "the scheduler never stops learning");
    }
}
