//! Device architectures a task version may target.

use std::fmt;

/// The architecture a task implementation is written for — the argument of
/// the OmpSs `device(...)` clause (paper §III: "e.g., cell, gpu, smp").
///
/// A version may target *several* devices ("the same implementation can be
/// targeted to more than one device, provided that all devices specified
/// are able to run the code", paper §IV-A), so versions carry a list of
/// `DeviceKind`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceKind {
    /// A general-purpose CPU core sharing host memory (`device(smp)`).
    Smp,
    /// A CUDA-capable GPU with its own memory space (`device(cuda)`).
    Cuda,
    /// An OpenCL accelerator with its own memory space (`device(opencl)`).
    OpenCl,
    /// A Cell/B.E.-style SPE accelerator (`device(cell)`); kept for
    /// fidelity with the paper's motivation section.
    CellSpe,
}

impl DeviceKind {
    /// Whether workers of this kind operate directly on host memory.
    ///
    /// SMP workers share the host address space; every other kind owns a
    /// separate memory space and needs explicit transfers.
    #[inline]
    pub fn shares_host_memory(self) -> bool {
        matches!(self, DeviceKind::Smp)
    }

    /// The `device(...)` clause spelling.
    pub fn clause_name(self) -> &'static str {
        match self {
            DeviceKind::Smp => "smp",
            DeviceKind::Cuda => "cuda",
            DeviceKind::OpenCl => "opencl",
            DeviceKind::CellSpe => "cell",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.clause_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_smp_shares_host_memory() {
        assert!(DeviceKind::Smp.shares_host_memory());
        assert!(!DeviceKind::Cuda.shares_host_memory());
        assert!(!DeviceKind::OpenCl.shares_host_memory());
        assert!(!DeviceKind::CellSpe.shares_host_memory());
    }

    #[test]
    fn clause_names_match_ompss_syntax() {
        assert_eq!(DeviceKind::Smp.to_string(), "smp");
        assert_eq!(DeviceKind::Cuda.to_string(), "cuda");
        assert_eq!(DeviceKind::CellSpe.to_string(), "cell");
    }
}
