//! Execution profiles: the paper's `TaskVersionSet` structure (Table I).
//!
//! For every task version set, divided into *groups of data set sizes*,
//! the runtime records per version the number of executions and their mean
//! execution time. "As tasks are executed, the scheduler learns and keeps
//! track of their behavior" (paper §I) — and it *never stops* learning:
//! means keep updating in the reliable-information phase too (§IV-B).

mod bucket;
mod hints;
mod stats;
mod store;

pub use bucket::{BucketKey, SizeBucketPolicy};
pub use hints::{
    apply_hints, parse_hints, render_hints, HintRecord, HintsError, HintsFile, HintsPolicy,
    QuarantineRecord,
};
pub use stats::{MeanPolicy, RunningMean};
pub use store::{GroupProfile, ProfileStore, QuarantineEntry, VersionStats};
