//! Running execution-time statistics for one task version.

use std::time::Duration;

/// How the mean execution time is updated.
///
/// The paper uses the arithmetic mean of all executions and notes
/// (footnote 3) that "optionally, we could try computing a weighted mean
/// to give more weight to recent execution information" — implemented
/// here as an exponentially weighted moving average and ablated in the
/// benchmark suite.
#[derive(Clone, Copy, PartialEq, Debug)]
#[derive(Default)]
pub enum MeanPolicy {
    /// Arithmetic mean of all samples (the paper's choice).
    #[default]
    Arithmetic,
    /// Exponentially weighted moving average with smoothing factor
    /// `alpha` in `(0, 1]`: `mean ← alpha·sample + (1−alpha)·mean`.
    Ewma {
        /// Weight of the newest sample.
        alpha: f64,
    },
}


/// Mean execution time and execution count of one task version within one
/// size group — one `<VersionId, ExecTime, #Exec>` row of paper Table I.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningMean {
    count: u64,
    mean_ns: f64,
}

impl RunningMean {
    /// No executions recorded yet.
    pub fn new() -> RunningMean {
        RunningMean::default()
    }

    /// A pre-seeded statistic (profile hints / warm start).
    pub fn seeded(mean: Duration, count: u64) -> RunningMean {
        RunningMean { count, mean_ns: mean.as_nanos() as f64 }
    }

    /// Number of recorded executions.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean execution time, or `None` if nothing was recorded.
    #[inline]
    pub fn mean(&self) -> Option<Duration> {
        if self.count == 0 {
            None
        } else {
            Some(Duration::from_nanos(self.mean_ns.max(0.0) as u64))
        }
    }

    /// Record one execution time.
    pub fn record(&mut self, sample: Duration, policy: MeanPolicy) {
        let sample_ns = sample.as_nanos() as f64;
        self.count += 1;
        match policy {
            MeanPolicy::Arithmetic => {
                // Incremental arithmetic mean: m += (x - m) / n.
                self.mean_ns += (sample_ns - self.mean_ns) / self.count as f64;
            }
            MeanPolicy::Ewma { alpha } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
                if self.count == 1 {
                    self.mean_ns = sample_ns;
                } else {
                    self.mean_ns = alpha * sample_ns + (1.0 - alpha) * self.mean_ns;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_mean_is_none() {
        let m = RunningMean::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), None);
    }

    #[test]
    fn arithmetic_mean_matches_definition() {
        let mut m = RunningMean::new();
        for sample in [10, 20, 30, 40] {
            m.record(ms(sample), MeanPolicy::Arithmetic);
        }
        assert_eq!(m.count(), 4);
        let mean = m.mean().unwrap();
        assert!((mean.as_secs_f64() - 0.025).abs() < 1e-9, "mean = {mean:?}");
    }

    #[test]
    fn ewma_tracks_recent_samples() {
        let mut arith = RunningMean::new();
        let mut ewma = RunningMean::new();
        // 50 slow runs then 50 fast runs: the EWMA should end much closer
        // to the fast regime than the arithmetic mean.
        for _ in 0..50 {
            arith.record(ms(100), MeanPolicy::Arithmetic);
            ewma.record(ms(100), MeanPolicy::Ewma { alpha: 0.3 });
        }
        for _ in 0..50 {
            arith.record(ms(10), MeanPolicy::Arithmetic);
            ewma.record(ms(10), MeanPolicy::Ewma { alpha: 0.3 });
        }
        let a = arith.mean().unwrap().as_secs_f64();
        let e = ewma.mean().unwrap().as_secs_f64();
        assert!((a - 0.055).abs() < 1e-9);
        assert!(e < 0.012, "EWMA should converge to the recent regime, got {e}");
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut m = RunningMean::new();
        m.record(ms(42), MeanPolicy::Ewma { alpha: 0.1 });
        assert_eq!(m.mean().unwrap(), ms(42));
    }

    #[test]
    fn seeded_statistics() {
        let m = RunningMean::seeded(ms(18), 350);
        assert_eq!(m.count(), 350);
        assert_eq!(m.mean().unwrap(), ms(18));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let mut m = RunningMean::new();
        m.record(ms(1), MeanPolicy::Ewma { alpha: 0.0 });
    }
}
