//! External profile hints (paper §VII future work).
//!
//! "The scheduler should also offer the possibility to receive external
//! hints for task versions: for example, read [a] file with additional
//! information about tasks versions. This file can be written by the
//! user, but it could also be written by [the] runtime from a previous
//! application's execution."
//!
//! Hints use a line-based text format (one record per line) instead of
//! the paper's proposed XML, avoiding a serialization dependency:
//!
//! ```text
//! # versa profile hints v2
//! policy bucket=exact mean=arithmetic
//! hint <template_name> <version_index> <bucket_key> <mean_ns> <count>
//! quarantine <template_name> <version_index> <bucket_key> <failures>
//! ```
//!
//! Records are keyed by template *name* (stable across runs) and raw
//! [`BucketKey`]. Bucket keys are only meaningful under the
//! [`SizeBucketPolicy`] that produced them (and seeded means only under
//! the same [`MeanPolicy`]), so v2 files carry a `policy` line and
//! [`apply_hints`] rejects a file whose policies differ from the
//! receiving store's. Legacy v1 files without a `policy` line still load
//! — they simply skip the check.
//!
//! `quarantine` records are optional and carry the store's failure
//! quarantine state (consecutive-failure streak per quarantined entry),
//! so a warm-started service does not have to rediscover a broken
//! version by failing on it again.

use super::{BucketKey, MeanPolicy, ProfileStore, SizeBucketPolicy};
use crate::{TemplateRegistry, VersionId};
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// One parsed hint line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HintRecord {
    /// Template (task version set) name.
    pub template: String,
    /// Version index within the template.
    pub version: u16,
    /// Size-group key (raw).
    pub bucket: BucketKey,
    /// Mean execution time in nanoseconds.
    pub mean_ns: u64,
    /// Execution count backing the mean.
    pub count: u64,
}

/// The profiling policies a hints file was produced under, declared in
/// its `policy` header line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HintsPolicy {
    /// Size-grouping policy the bucket keys were computed with.
    pub bucket: SizeBucketPolicy,
    /// Mean-update policy the means were accumulated with.
    pub mean: MeanPolicy,
}

impl HintsPolicy {
    fn render(&self) -> String {
        format!("policy bucket={} mean={}", render_bucket(self.bucket), render_mean(self.mean))
    }
}

fn render_bucket(p: SizeBucketPolicy) -> String {
    match p {
        SizeBucketPolicy::Exact => "exact".to_string(),
        SizeBucketPolicy::RelativeRange { tolerance } => format!("range:{tolerance}"),
    }
}

fn render_mean(p: MeanPolicy) -> String {
    match p {
        MeanPolicy::Arithmetic => "arithmetic".to_string(),
        MeanPolicy::Ewma { alpha } => format!("ewma:{alpha}"),
    }
}

/// One parsed quarantine line: a (template, version, size-group) entry
/// that was quarantined when the hints were saved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Template (task version set) name.
    pub template: String,
    /// Version index within the template.
    pub version: u16,
    /// Size-group key (raw).
    pub bucket: BucketKey,
    /// Consecutive failures sustaining the quarantine.
    pub failures: u64,
}

/// A parsed hints file: the declared policies (absent in legacy v1
/// files) and the records.
#[derive(Clone, Debug, PartialEq)]
pub struct HintsFile {
    /// The `policy` header, when present.
    pub policy: Option<HintsPolicy>,
    /// The `hint` records, in file order.
    pub records: Vec<HintRecord>,
    /// The `quarantine` records, in file order.
    pub quarantine: Vec<QuarantineRecord>,
}

/// Errors produced while parsing or applying a hints file.
#[derive(Debug, PartialEq)]
pub enum HintsError {
    /// A line did not match the expected record shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The field name.
        field: &'static str,
    },
    /// A `policy` line could not be parsed (or appeared twice).
    BadPolicy {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The file's declared policies differ from the receiving store's —
    /// its bucket keys/means would be misinterpreted.
    PolicyMismatch {
        /// The receiving store's policies, rendered.
        expected: String,
        /// The file's declared policies, rendered.
        found: String,
    },
}

impl fmt::Display for HintsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HintsError::Malformed { line, content } => {
                write!(f, "hints line {line}: malformed record {content:?}")
            }
            HintsError::BadNumber { line, field } => {
                write!(f, "hints line {line}: invalid number in field {field}")
            }
            HintsError::BadPolicy { line, content } => {
                write!(f, "hints line {line}: malformed policy header {content:?}")
            }
            HintsError::PolicyMismatch { expected, found } => {
                write!(
                    f,
                    "hints were recorded under \"{found}\" but the store uses \"{expected}\""
                )
            }
        }
    }
}

impl std::error::Error for HintsError {}

/// Serialize every measured statistic of `store` to the hints format,
/// policies included.
pub fn render_hints(store: &ProfileStore, registry: &TemplateRegistry) -> String {
    let mut out = String::from("# versa profile hints v2\n");
    let policy = HintsPolicy { bucket: store.bucket_policy(), mean: store.mean_policy() };
    out.push_str(&policy.render());
    out.push('\n');
    for (template, bucket, group) in store.iter() {
        let name = &registry.get(template).name;
        for (i, stats) in group.versions().iter().enumerate() {
            if let Some(mean) = stats.mean() {
                let _ = writeln!(
                    out,
                    "hint {name} {i} {} {} {}",
                    bucket.0,
                    mean.as_nanos(),
                    stats.count()
                );
            }
        }
    }
    for entry in store.quarantined() {
        let name = &registry.get(entry.template).name;
        let _ = writeln!(
            out,
            "quarantine {name} {} {} {}",
            entry.version.index(),
            entry.bucket.0,
            entry.failures
        );
    }
    out
}

fn parse_policy(line: usize, trimmed: &str) -> Result<HintsPolicy, HintsError> {
    let err = || HintsError::BadPolicy { line, content: trimmed.to_string() };
    let mut bucket = None;
    let mut mean = None;
    for field in trimmed.split_ascii_whitespace().skip(1) {
        let (key, value) = field.split_once('=').ok_or_else(err)?;
        match key {
            "bucket" if bucket.is_none() => {
                bucket = Some(match value.split_once(':') {
                    None if value == "exact" => SizeBucketPolicy::Exact,
                    Some(("range", tol)) => SizeBucketPolicy::RelativeRange {
                        tolerance: tol.parse().map_err(|_| err())?,
                    },
                    _ => return Err(err()),
                });
            }
            "mean" if mean.is_none() => {
                mean = Some(match value.split_once(':') {
                    None if value == "arithmetic" => MeanPolicy::Arithmetic,
                    Some(("ewma", alpha)) => {
                        MeanPolicy::Ewma { alpha: alpha.parse().map_err(|_| err())? }
                    }
                    _ => return Err(err()),
                });
            }
            _ => return Err(err()),
        }
    }
    Ok(HintsPolicy { bucket: bucket.ok_or_else(err)?, mean: mean.ok_or_else(err)? })
}

/// Parse a hints file. Blank lines and `#` comments are ignored; at most
/// one `policy` line is accepted (none in legacy v1 files).
pub fn parse_hints(text: &str) -> Result<HintsFile, HintsError> {
    let mut policy: Option<HintsPolicy> = None;
    let mut records = Vec::new();
    let mut quarantine = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.starts_with("policy") {
            if policy.is_some() {
                return Err(HintsError::BadPolicy { line, content: trimmed.to_string() });
            }
            policy = Some(parse_policy(line, trimmed)?);
            continue;
        }
        let mut fields = trimmed.split_ascii_whitespace();
        let tag = fields.next();
        if tag != Some("hint") && tag != Some("quarantine") {
            return Err(HintsError::Malformed { line, content: trimmed.to_string() });
        }
        let mut next = |field: &'static str| {
            fields.next().ok_or(HintsError::Malformed { line, content: trimmed.to_string() }).map(
                |s| (field, s.to_string()),
            )
        };
        let (_, template) = next("template")?;
        let parse_u64 = |field: &'static str, s: &str| {
            s.parse::<u64>().map_err(|_| HintsError::BadNumber { line, field })
        };
        let (f, s) = next("version")?;
        let version =
            s.parse::<u16>().map_err(|_| HintsError::BadNumber { line, field: f })?;
        let (f, s) = next("bucket")?;
        let bucket = BucketKey(parse_u64(f, &s)?);
        if tag == Some("quarantine") {
            let (f, s) = next("failures")?;
            let failures = parse_u64(f, &s)?;
            if fields.next().is_some() {
                return Err(HintsError::Malformed { line, content: trimmed.to_string() });
            }
            quarantine.push(QuarantineRecord { template, version, bucket, failures });
            continue;
        }
        let (f, s) = next("mean_ns")?;
        let mean_ns = parse_u64(f, &s)?;
        let (f, s) = next("count")?;
        let count = parse_u64(f, &s)?;
        if fields.next().is_some() {
            return Err(HintsError::Malformed { line, content: trimmed.to_string() });
        }
        records.push(HintRecord { template, version, bucket, mean_ns, count });
    }
    Ok(HintsFile { policy, records, quarantine })
}

/// Seed `store` with a parsed hints file. When the file declares its
/// policies, they must match the store's
/// ([`HintsError::PolicyMismatch`] otherwise). Hints for templates not
/// present in `registry` (or version indices out of range) are skipped
/// and counted in the returned `(applied, skipped)` pair.
pub fn apply_hints(
    store: &mut ProfileStore,
    registry: &TemplateRegistry,
    file: &HintsFile,
) -> Result<(usize, usize), HintsError> {
    let ours = HintsPolicy { bucket: store.bucket_policy(), mean: store.mean_policy() };
    if let Some(theirs) = file.policy {
        if theirs != ours {
            return Err(HintsError::PolicyMismatch {
                expected: ours.render(),
                found: theirs.render(),
            });
        }
    }
    let mut applied = 0;
    let mut skipped = 0;
    for rec in &file.records {
        let Some(template) = registry.by_name(&rec.template) else {
            skipped += 1;
            continue;
        };
        let n_versions = registry.get(template).version_count();
        if rec.version as usize >= n_versions {
            skipped += 1;
            continue;
        }
        store.seed_bucket(
            template,
            n_versions,
            rec.bucket,
            VersionId(rec.version),
            Duration::from_nanos(rec.mean_ns),
            rec.count,
        );
        applied += 1;
    }
    for rec in &file.quarantine {
        let Some(template) = registry.by_name(&rec.template) else {
            skipped += 1;
            continue;
        };
        let n_versions = registry.get(template).version_count();
        if rec.version as usize >= n_versions {
            skipped += 1;
            continue;
        }
        store.seed_quarantine(template, n_versions, rec.bucket, VersionId(rec.version), rec.failures);
        applied += 1;
    }
    Ok((applied, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;

    fn registry() -> TemplateRegistry {
        let mut reg = TemplateRegistry::new();
        reg.template("matmul_tile")
            .main("cublas", &[DeviceKind::Cuda])
            .version("cblas", &[DeviceKind::Smp])
            .register();
        reg
    }

    #[test]
    fn roundtrip_through_text() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let mut store = ProfileStore::with_defaults();
        store.record(tpl, 2, 1000, VersionId(0), Duration::from_millis(7));
        store.record(tpl, 2, 1000, VersionId(1), Duration::from_millis(420));
        store.record(tpl, 2, 2000, VersionId(0), Duration::from_millis(14));

        let text = render_hints(&store, &reg);
        let file = parse_hints(&text).unwrap();
        assert_eq!(file.records.len(), 3);
        assert_eq!(
            file.policy,
            Some(HintsPolicy { bucket: SizeBucketPolicy::Exact, mean: MeanPolicy::Arithmetic })
        );

        let mut fresh = ProfileStore::with_defaults();
        let (applied, skipped) = apply_hints(&mut fresh, &reg, &file).unwrap();
        assert_eq!((applied, skipped), (3, 0));
        assert_eq!(fresh.mean(tpl, 1000, VersionId(0)), Some(Duration::from_millis(7)));
        assert_eq!(fresh.mean(tpl, 1000, VersionId(1)), Some(Duration::from_millis(420)));
        assert_eq!(fresh.count(tpl, 2000, VersionId(0)), 1);
    }

    #[test]
    fn non_default_policies_roundtrip() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let mut store = ProfileStore::new(
            SizeBucketPolicy::RelativeRange { tolerance: 0.25 },
            MeanPolicy::Ewma { alpha: 0.3 },
            4,
        );
        store.record(tpl, 2, 1000, VersionId(0), Duration::from_millis(7));
        let text = render_hints(&store, &reg);
        assert!(text.contains("policy bucket=range:0.25 mean=ewma:0.3"));
        let file = parse_hints(&text).unwrap();

        let mut same = ProfileStore::new(
            SizeBucketPolicy::RelativeRange { tolerance: 0.25 },
            MeanPolicy::Ewma { alpha: 0.3 },
            4,
        );
        assert_eq!(apply_hints(&mut same, &reg, &file).unwrap(), (1, 0));
    }

    #[test]
    fn policy_mismatch_is_rejected_at_load() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let mut store = ProfileStore::new(
            SizeBucketPolicy::RelativeRange { tolerance: 0.25 },
            MeanPolicy::Arithmetic,
            4,
        );
        store.record(tpl, 2, 1000, VersionId(0), Duration::from_millis(7));
        let file = parse_hints(&render_hints(&store, &reg)).unwrap();

        // A store with exact buckets would misread the range-policy keys.
        let mut exact = ProfileStore::with_defaults();
        let err = apply_hints(&mut exact, &reg, &file).unwrap_err();
        assert!(matches!(err, HintsError::PolicyMismatch { .. }));
        assert!(err.to_string().contains("range:0.25"));

        // Different tolerance is a mismatch too.
        let mut other_tol = ProfileStore::new(
            SizeBucketPolicy::RelativeRange { tolerance: 0.5 },
            MeanPolicy::Arithmetic,
            4,
        );
        assert!(apply_hints(&mut other_tol, &reg, &file).is_err());
    }

    #[test]
    fn legacy_v1_files_without_policy_line_still_load() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let text = "# versa profile hints v1\nhint matmul_tile 0 1000 7000000 10\n";
        let file = parse_hints(text).unwrap();
        assert_eq!(file.policy, None);
        let mut store = ProfileStore::with_defaults();
        assert_eq!(apply_hints(&mut store, &reg, &file).unwrap(), (1, 0));
        assert_eq!(store.count(tpl, 1000, VersionId(0)), 10);
    }

    #[test]
    fn warm_started_store_skips_learning() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let text = "hint matmul_tile 0 1000 7000000 10\nhint matmul_tile 1 1000 420000000 10\n";
        let mut store = ProfileStore::with_defaults();
        let file = parse_hints(text).unwrap();
        apply_hints(&mut store, &reg, &file).unwrap();
        assert!(store.is_reliable(tpl, 1000, &[VersionId(0), VersionId(1)]));
    }

    #[test]
    fn quarantine_state_roundtrips() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let mut store = ProfileStore::with_defaults();
        store.record(tpl, 2, 1000, VersionId(0), Duration::from_millis(7));
        store.record_failure(tpl, 2, 1000, VersionId(1));
        store.record_failure(tpl, 2, 1000, VersionId(1));
        assert!(store.is_quarantined(tpl, 1000, VersionId(1)));

        let text = render_hints(&store, &reg);
        assert!(text.contains("quarantine matmul_tile 1 1000 2"));
        let file = parse_hints(&text).unwrap();
        assert_eq!(file.quarantine.len(), 1);
        assert_eq!(file.quarantine[0].failures, 2);

        let mut fresh = ProfileStore::with_defaults();
        apply_hints(&mut fresh, &reg, &file).unwrap();
        assert!(fresh.is_quarantined(tpl, 1000, VersionId(1)));
        assert!(fresh.is_excluded(tpl, 1000, VersionId(1)));
        // Byte-stable: re-rendering the restored store reproduces the file.
        assert_eq!(render_hints(&fresh, &reg), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n   \nhint t 0 5 100 1\n# trailing\n";
        let file = parse_hints(text).unwrap();
        assert_eq!(file.records.len(), 1);
        assert_eq!(file.records[0].template, "t");
        assert_eq!(file.records[0].bucket, BucketKey(5));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(
            parse_hints("nonsense here").unwrap_err(),
            HintsError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_hints("hint t 0 5 100").unwrap_err(),
            HintsError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_hints("hint t 0 5 100 1 extra").unwrap_err(),
            HintsError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_hints("hint t zero 5 100 1").unwrap_err(),
            HintsError::BadNumber { line: 1, field: "version" }
        ));
    }

    #[test]
    fn malformed_policy_lines_rejected() {
        for bad in [
            "policy",
            "policy bucket=exact",
            "policy mean=arithmetic",
            "policy bucket=weird mean=arithmetic",
            "policy bucket=range:xyz mean=arithmetic",
            "policy bucket=exact mean=ewma",
            "policy bucket=exact mean=arithmetic bucket=exact",
            "policy bucket=exact mean=arithmetic\npolicy bucket=exact mean=arithmetic",
        ] {
            assert!(
                matches!(parse_hints(bad).unwrap_err(), HintsError::BadPolicy { .. }),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn unknown_templates_are_skipped_not_fatal() {
        let reg = registry();
        let file =
            parse_hints("hint unknown_task 0 5 100 1\nhint matmul_tile 9 5 100 1\n").unwrap();
        let mut store = ProfileStore::with_defaults();
        let (applied, skipped) = apply_hints(&mut store, &reg, &file).unwrap();
        assert_eq!((applied, skipped), (0, 2));
    }
}
