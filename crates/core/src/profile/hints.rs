//! External profile hints (paper §VII future work).
//!
//! "The scheduler should also offer the possibility to receive external
//! hints for task versions: for example, read [a] file with additional
//! information about tasks versions. This file can be written by the
//! user, but it could also be written by [the] runtime from a previous
//! application's execution."
//!
//! Hints use a line-based text format (one record per line) instead of
//! the paper's proposed XML, avoiding a serialization dependency:
//!
//! ```text
//! # versa profile hints v1
//! hint <template_name> <version_index> <bucket_key> <mean_ns> <count>
//! ```
//!
//! Records are keyed by template *name* (stable across runs) and raw
//! [`BucketKey`] — hints are only meaningful when saved and loaded under
//! the same [`SizeBucketPolicy`](super::SizeBucketPolicy).

use super::{BucketKey, ProfileStore};
use crate::{TemplateRegistry, VersionId};
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// One parsed hint line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HintRecord {
    /// Template (task version set) name.
    pub template: String,
    /// Version index within the template.
    pub version: u16,
    /// Size-group key (raw).
    pub bucket: BucketKey,
    /// Mean execution time in nanoseconds.
    pub mean_ns: u64,
    /// Execution count backing the mean.
    pub count: u64,
}

/// Errors produced while parsing a hints file.
#[derive(Debug, PartialEq, Eq)]
pub enum HintsError {
    /// A line did not match the expected record shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The field name.
        field: &'static str,
    },
}

impl fmt::Display for HintsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HintsError::Malformed { line, content } => {
                write!(f, "hints line {line}: malformed record {content:?}")
            }
            HintsError::BadNumber { line, field } => {
                write!(f, "hints line {line}: invalid number in field {field}")
            }
        }
    }
}

impl std::error::Error for HintsError {}

/// Serialize every measured statistic of `store` to the hints format.
pub fn render_hints(store: &ProfileStore, registry: &TemplateRegistry) -> String {
    let mut out = String::from("# versa profile hints v1\n");
    for (template, bucket, group) in store.iter() {
        let name = &registry.get(template).name;
        for (i, stats) in group.versions().iter().enumerate() {
            if let Some(mean) = stats.mean() {
                let _ = writeln!(
                    out,
                    "hint {name} {i} {} {} {}",
                    bucket.0,
                    mean.as_nanos(),
                    stats.count()
                );
            }
        }
    }
    out
}

/// Parse a hints file. Blank lines and `#` comments are ignored.
pub fn parse_hints(text: &str) -> Result<Vec<HintRecord>, HintsError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_ascii_whitespace();
        let tag = fields.next();
        if tag != Some("hint") {
            return Err(HintsError::Malformed { line, content: trimmed.to_string() });
        }
        let mut next = |field: &'static str| {
            fields.next().ok_or(HintsError::Malformed { line, content: trimmed.to_string() }).map(
                |s| (field, s.to_string()),
            )
        };
        let (_, template) = next("template")?;
        let parse_u64 = |field: &'static str, s: &str| {
            s.parse::<u64>().map_err(|_| HintsError::BadNumber { line, field })
        };
        let (f, s) = next("version")?;
        let version =
            s.parse::<u16>().map_err(|_| HintsError::BadNumber { line, field: f })?;
        let (f, s) = next("bucket")?;
        let bucket = BucketKey(parse_u64(f, &s)?);
        let (f, s) = next("mean_ns")?;
        let mean_ns = parse_u64(f, &s)?;
        let (f, s) = next("count")?;
        let count = parse_u64(f, &s)?;
        if fields.next().is_some() {
            return Err(HintsError::Malformed { line, content: trimmed.to_string() });
        }
        records.push(HintRecord { template, version, bucket, mean_ns, count });
    }
    Ok(records)
}

/// Seed `store` with parsed hints. Hints for templates not present in
/// `registry` (or version indices out of range) are skipped and counted in
/// the returned `(applied, skipped)` pair.
pub fn apply_hints(
    store: &mut ProfileStore,
    registry: &TemplateRegistry,
    records: &[HintRecord],
) -> (usize, usize) {
    let mut applied = 0;
    let mut skipped = 0;
    for rec in records {
        let Some(template) = registry.by_name(&rec.template) else {
            skipped += 1;
            continue;
        };
        let n_versions = registry.get(template).version_count();
        if rec.version as usize >= n_versions {
            skipped += 1;
            continue;
        }
        store.seed_bucket(
            template,
            n_versions,
            rec.bucket,
            VersionId(rec.version),
            Duration::from_nanos(rec.mean_ns),
            rec.count,
        );
        applied += 1;
    }
    (applied, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;

    fn registry() -> TemplateRegistry {
        let mut reg = TemplateRegistry::new();
        reg.template("matmul_tile")
            .main("cublas", &[DeviceKind::Cuda])
            .version("cblas", &[DeviceKind::Smp])
            .register();
        reg
    }

    #[test]
    fn roundtrip_through_text() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let mut store = ProfileStore::with_defaults();
        store.record(tpl, 2, 1000, VersionId(0), Duration::from_millis(7));
        store.record(tpl, 2, 1000, VersionId(1), Duration::from_millis(420));
        store.record(tpl, 2, 2000, VersionId(0), Duration::from_millis(14));

        let text = render_hints(&store, &reg);
        let records = parse_hints(&text).unwrap();
        assert_eq!(records.len(), 3);

        let mut fresh = ProfileStore::with_defaults();
        let (applied, skipped) = apply_hints(&mut fresh, &reg, &records);
        assert_eq!((applied, skipped), (3, 0));
        assert_eq!(fresh.mean(tpl, 1000, VersionId(0)), Some(Duration::from_millis(7)));
        assert_eq!(fresh.mean(tpl, 1000, VersionId(1)), Some(Duration::from_millis(420)));
        assert_eq!(fresh.count(tpl, 2000, VersionId(0)), 1);
    }

    #[test]
    fn warm_started_store_skips_learning() {
        let reg = registry();
        let tpl = reg.by_name("matmul_tile").unwrap();
        let text = "hint matmul_tile 0 1000 7000000 10\nhint matmul_tile 1 1000 420000000 10\n";
        let mut store = ProfileStore::with_defaults();
        let recs = parse_hints(text).unwrap();
        apply_hints(&mut store, &reg, &recs);
        assert!(store.is_reliable(tpl, 1000, &[VersionId(0), VersionId(1)]));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n   \nhint t 0 5 100 1\n# trailing\n";
        let recs = parse_hints(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].template, "t");
        assert_eq!(recs[0].bucket, BucketKey(5));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(
            parse_hints("nonsense here").unwrap_err(),
            HintsError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_hints("hint t 0 5 100").unwrap_err(),
            HintsError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_hints("hint t 0 5 100 1 extra").unwrap_err(),
            HintsError::Malformed { line: 1, .. }
        ));
        assert!(matches!(
            parse_hints("hint t zero 5 100 1").unwrap_err(),
            HintsError::BadNumber { line: 1, field: "version" }
        ));
    }

    #[test]
    fn unknown_templates_are_skipped_not_fatal() {
        let reg = registry();
        let recs = parse_hints("hint unknown_task 0 5 100 1\nhint matmul_tile 9 5 100 1\n").unwrap();
        let mut store = ProfileStore::with_defaults();
        let (applied, skipped) = apply_hints(&mut store, &reg, &recs);
        assert_eq!((applied, skipped), (0, 2));
    }
}
