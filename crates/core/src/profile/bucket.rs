//! Data-set-size grouping policies.
//!
//! The paper groups profile information by *exact* data set size and
//! acknowledges the drawback (§VII): "if the data needed by two calls to
//! the same task varies from only 1 byte, the scheduler will consider
//! that these calls belong to different groups ... it would be better to
//! define the data sizes of each group in a reasonable range". Both the
//! exact policy and that proposed range policy are implemented here.

/// Canonical key of a size group. Two data set sizes fall in the same
/// group iff they map to the same `BucketKey` under the active policy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BucketKey(pub u64);

/// Policy mapping a data set size (bytes) to a size group.
#[derive(Clone, Copy, PartialEq, Debug)]
#[derive(Default)]
pub enum SizeBucketPolicy {
    /// One group per exact byte size (the paper's implementation).
    #[default]
    Exact,
    /// Geometric bucketing: sizes within a relative `tolerance` of each
    /// other land in the same group (the paper's §VII proposal). A
    /// tolerance of `0.25` groups sizes within ±~25%.
    RelativeRange {
        /// Relative width of each bucket; must be positive.
        tolerance: f64,
    },
}


impl SizeBucketPolicy {
    /// Map a data set size to its group key.
    pub fn bucket(&self, data_set_size: u64) -> BucketKey {
        match *self {
            SizeBucketPolicy::Exact => BucketKey(data_set_size),
            SizeBucketPolicy::RelativeRange { tolerance } => {
                assert!(tolerance > 0.0, "tolerance must be positive");
                if data_set_size == 0 {
                    return BucketKey(0);
                }
                // Geometric buckets: bucket i covers [(1+t)^i, (1+t)^{i+1}).
                // Offset by 1 so size 0 keeps its own bucket 0.
                let idx = (data_set_size as f64).ln() / (1.0 + tolerance).ln();
                BucketKey(idx.floor() as u64 + 1)
            }
        }
    }

    /// A human-readable label for a group key (used when printing the
    /// Table I-style profile dump).
    pub fn describe(&self, key: BucketKey) -> String {
        match *self {
            SizeBucketPolicy::Exact => format_bytes(key.0),
            SizeBucketPolicy::RelativeRange { tolerance } => {
                if key.0 == 0 {
                    return "0 B".to_string();
                }
                let lo = (1.0 + tolerance).powi((key.0 - 1) as i32);
                let hi = (1.0 + tolerance).powi(key.0 as i32);
                format!("{}..{}", format_bytes(lo as u64), format_bytes(hi as u64))
            }
        }
    }
}

/// Pretty-print a byte count (e.g. `8.0 MB`), used in profile dumps.
pub(crate) fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_policy_separates_adjacent_sizes() {
        let p = SizeBucketPolicy::Exact;
        // The paper's complaint: a 1-byte difference makes a new group.
        assert_ne!(p.bucket(1_000_000), p.bucket(1_000_001));
        assert_eq!(p.bucket(1_000_000), p.bucket(1_000_000));
    }

    #[test]
    fn range_policy_groups_similar_sizes() {
        let p = SizeBucketPolicy::RelativeRange { tolerance: 0.25 };
        // 1-byte difference now shares a group...
        assert_eq!(p.bucket(1_000_000), p.bucket(1_000_001));
        // ...but a 10x difference does not.
        assert_ne!(p.bucket(1_000_000), p.bucket(10_000_000));
    }

    #[test]
    fn range_policy_is_monotone() {
        let p = SizeBucketPolicy::RelativeRange { tolerance: 0.5 };
        let mut last = p.bucket(1).0;
        for size in 2..10_000u64 {
            let b = p.bucket(size).0;
            assert!(b >= last, "bucket keys must be monotone in size");
            last = b;
        }
    }

    #[test]
    fn zero_size_has_its_own_bucket() {
        let p = SizeBucketPolicy::RelativeRange { tolerance: 0.25 };
        assert_eq!(p.bucket(0), BucketKey(0));
        assert_ne!(p.bucket(1), BucketKey(0));
        assert_eq!(SizeBucketPolicy::Exact.bucket(0), BucketKey(0));
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KB");
        assert_eq!(format_bytes(8 * 1024 * 1024), "8.0 MB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.0 GB");
    }

    #[test]
    fn describe_exact_is_the_size() {
        let p = SizeBucketPolicy::Exact;
        assert_eq!(p.describe(p.bucket(2 * 1024 * 1024)), "2.0 MB");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_tolerance_panics() {
        let p = SizeBucketPolicy::RelativeRange { tolerance: 0.0 };
        let _ = p.bucket(10);
    }
}
