//! The `TaskVersionSet` store (paper Table I).

use super::{BucketKey, MeanPolicy, RunningMean, SizeBucketPolicy};
use crate::{TemplateId, TemplateRegistry, VersionId};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Statistics of one task version within one size group.
#[derive(Clone, Copy, Debug, Default)]
pub struct VersionStats {
    mean: RunningMean,
    min: Option<Duration>,
    max: Option<Duration>,
}

impl VersionStats {
    /// Number of recorded executions.
    pub fn count(&self) -> u64 {
        self.mean.count()
    }

    /// Mean execution time, if any execution was recorded.
    pub fn mean(&self) -> Option<Duration> {
        self.mean.mean()
    }

    /// Fastest observed execution.
    pub fn min(&self) -> Option<Duration> {
        self.min
    }

    /// Slowest observed execution.
    pub fn max(&self) -> Option<Duration> {
        self.max
    }

    fn record(&mut self, sample: Duration, policy: MeanPolicy) {
        self.mean.record(sample, policy);
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    fn seed(&mut self, mean: Duration, count: u64) {
        self.mean = RunningMean::seeded(mean, count);
        self.min.get_or_insert(mean);
        self.max.get_or_insert(mean);
    }
}

/// Per-(task, size-group) profile: one statistics slot per version, plus
/// the round-robin cursor the learning phase uses and per-version
/// failure/quarantine bookkeeping.
#[derive(Clone, Debug)]
pub struct GroupProfile {
    versions: Vec<VersionStats>,
    scheduled: Vec<u64>,
    rr_cursor: usize,
    failures: Vec<u64>,
    quarantined: Vec<bool>,
    probation_credit: Vec<u64>,
}

impl GroupProfile {
    fn new(n_versions: usize) -> GroupProfile {
        GroupProfile {
            versions: vec![VersionStats::default(); n_versions],
            scheduled: vec![0; n_versions],
            rr_cursor: 0,
            failures: vec![0; n_versions],
            quarantined: vec![false; n_versions],
            probation_credit: vec![0; n_versions],
        }
    }

    fn ensure(&mut self, n_versions: usize) {
        if self.versions.len() < n_versions {
            self.versions.resize(n_versions, VersionStats::default());
            self.scheduled.resize(n_versions, 0);
            self.failures.resize(n_versions, 0);
            self.quarantined.resize(n_versions, false);
            self.probation_credit.resize(n_versions, 0);
        }
    }

    /// Times a version has been *assigned* (scheduled) in this group —
    /// at least its execution count, possibly more while assignments are
    /// still queued. The learning round-robin counts assignments so that
    /// a flood of ready tasks cannot over-commit a slow version whose
    /// first λ instances are still waiting in a queue.
    pub fn scheduled(&self, v: VersionId) -> u64 {
        self.scheduled[v.index()]
    }

    /// Statistics of one version.
    pub fn version(&self, v: VersionId) -> &VersionStats {
        &self.versions[v.index()]
    }

    /// Consecutive failures recorded for a version since its last
    /// successful execution in this group.
    pub fn failures(&self, v: VersionId) -> u64 {
        self.failures[v.index()]
    }

    /// Whether a version is currently quarantined in this group.
    pub fn is_quarantined(&self, v: VersionId) -> bool {
        self.quarantined[v.index()]
    }

    /// Statistics of every version, in version order.
    pub fn versions(&self) -> &[VersionStats] {
        &self.versions
    }

    /// The fastest version among `candidates` by mean execution time
    /// (the group's *fastest executor*, paper §IV-B). Versions with no
    /// recorded executions are skipped.
    pub fn fastest_version(&self, candidates: &[VersionId]) -> Option<(VersionId, Duration)> {
        candidates
            .iter()
            .filter_map(|&v| self.versions[v.index()].mean().map(|m| (v, m)))
            .min_by_key(|&(v, m)| (m, v))
    }
}

/// Profile information for every task version set, divided into groups of
/// data set sizes — the scheduler's long-term memory (paper Table I).
///
/// ```
/// use std::time::Duration;
/// use versa_core::{ProfileStore, TemplateId, VersionId};
///
/// let mut store = ProfileStore::with_defaults(); // exact groups, λ = 3
/// let (task, gpu, smp) = (TemplateId(0), VersionId(0), VersionId(1));
///
/// // Three observed executions per version → the 2 MB group becomes
/// // reliable and the means drive earliest-executor decisions.
/// for _ in 0..3 {
///     store.record(task, 2, 2 << 20, gpu, Duration::from_millis(18));
///     store.record(task, 2, 2 << 20, smp, Duration::from_millis(30));
/// }
/// assert!(store.is_reliable(task, 2 << 20, &[gpu, smp]));
/// assert_eq!(store.mean(task, 2 << 20, gpu), Some(Duration::from_millis(18)));
/// // A different data-set size is a fresh group (paper §IV-B).
/// assert!(!store.is_reliable(task, 3 << 20, &[gpu, smp]));
/// ```
#[derive(Debug)]
pub struct ProfileStore {
    bucket_policy: SizeBucketPolicy,
    mean_policy: MeanPolicy,
    lambda: u64,
    quarantine_threshold: u64,
    probation: Option<u64>,
    groups: HashMap<(TemplateId, BucketKey), GroupProfile>,
}

/// Summary of one quarantined (template, size-group, version) entry, for
/// run reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Template the quarantined version belongs to.
    pub template: TemplateId,
    /// Size-group key.
    pub bucket: BucketKey,
    /// The quarantined version.
    pub version: VersionId,
    /// Consecutive failures that triggered (and sustain) the quarantine.
    pub failures: u64,
}

impl ProfileStore {
    /// Create a store.
    ///
    /// `lambda` is the learning threshold: every version of a group must
    /// run at least `lambda` times before the group's information is
    /// considered *reliable* (paper §IV-B; "this threshold can be
    /// configured by the user").
    pub fn new(bucket_policy: SizeBucketPolicy, mean_policy: MeanPolicy, lambda: u64) -> Self {
        assert!(lambda > 0, "lambda must be at least 1");
        ProfileStore {
            bucket_policy,
            mean_policy,
            lambda,
            quarantine_threshold: 2,
            probation: None,
            groups: HashMap::new(),
        }
    }

    /// Store with the paper's defaults: exact size groups, arithmetic
    /// mean, λ = 3.
    pub fn with_defaults() -> Self {
        ProfileStore::new(SizeBucketPolicy::Exact, MeanPolicy::Arithmetic, 3)
    }

    /// The learning threshold λ.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Configure failure quarantine: after `threshold` consecutive
    /// failures a (template, version, size-group) entry is quarantined
    /// and excluded from learning/bidding. With `probation = Some(p)`,
    /// a quarantined version earns one retrial after `p` successful
    /// executions of other versions in the same group; with `None`,
    /// quarantine is permanent until the version succeeds (which can
    /// only happen through probation or an all-quarantined fallback).
    pub fn set_quarantine(&mut self, threshold: u64, probation: Option<u64>) {
        assert!(threshold > 0, "quarantine threshold must be at least 1");
        self.quarantine_threshold = threshold;
        self.probation = probation;
    }

    /// The configured quarantine threshold K.
    pub fn quarantine_threshold(&self) -> u64 {
        self.quarantine_threshold
    }

    /// The configured probation period, if any.
    pub fn probation(&self) -> Option<u64> {
        self.probation
    }

    /// The active size-grouping policy.
    pub fn bucket_policy(&self) -> SizeBucketPolicy {
        self.bucket_policy
    }

    /// The active mean-update policy.
    pub fn mean_policy(&self) -> MeanPolicy {
        self.mean_policy
    }

    /// Group key for a data set size.
    pub fn bucket(&self, data_set_size: u64) -> BucketKey {
        self.bucket_policy.bucket(data_set_size)
    }

    fn group_mut(&mut self, template: TemplateId, n_versions: usize, size: u64) -> &mut GroupProfile {
        let key = (template, self.bucket_policy.bucket(size));
        let group = self.groups.entry(key).or_insert_with(|| GroupProfile::new(n_versions));
        group.ensure(n_versions);
        group
    }

    /// The group for `(template, size)`, if any execution was recorded or
    /// seeded for it.
    pub fn group(&self, template: TemplateId, size: u64) -> Option<&GroupProfile> {
        self.groups.get(&(template, self.bucket_policy.bucket(size)))
    }

    /// Record one measured execution. A success clears the version's
    /// consecutive-failure streak (lifting any quarantine on it) and
    /// earns every *other* quarantined version in the group one unit of
    /// probation credit.
    pub fn record(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        size: u64,
        version: VersionId,
        measured: Duration,
    ) {
        let policy = self.mean_policy;
        let group = self.group_mut(template, n_versions, size);
        group.versions[version.index()].record(measured, policy);
        group.failures[version.index()] = 0;
        group.quarantined[version.index()] = false;
        group.probation_credit[version.index()] = 0;
        for (i, q) in group.quarantined.iter().enumerate() {
            if *q && i != version.index() {
                group.probation_credit[i] += 1;
            }
        }
    }

    /// Record one failed execution. After the configured threshold of
    /// consecutive failures the version is quarantined in this size
    /// group.
    pub fn record_failure(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        size: u64,
        version: VersionId,
    ) {
        let threshold = self.quarantine_threshold;
        let group = self.group_mut(template, n_versions, size);
        group.failures[version.index()] += 1;
        group.probation_credit[version.index()] = 0;
        if group.failures[version.index()] >= threshold {
            group.quarantined[version.index()] = true;
        }
    }

    /// Whether a version is excluded from scheduling in the group of
    /// `size`: quarantined and not (yet) due for a probation retrial.
    pub fn is_excluded(&self, template: TemplateId, size: u64, version: VersionId) -> bool {
        let Some(group) = self.group(template, size) else { return false };
        if !group.is_quarantined(version) {
            return false;
        }
        match self.probation {
            None => true,
            Some(p) => group.probation_credit[version.index()] < p,
        }
    }

    /// Whether a version is quarantined in the group of `size` (even if
    /// a probation retrial is currently due).
    pub fn is_quarantined(&self, template: TemplateId, size: u64, version: VersionId) -> bool {
        self.group(template, size).is_some_and(|g| g.is_quarantined(version))
    }

    /// Every quarantined (template, size-group, version) entry, sorted
    /// for deterministic output.
    pub fn quarantined(&self) -> Vec<QuarantineEntry> {
        let mut out = Vec::new();
        for (template, bucket, group) in self.iter() {
            for (i, q) in group.quarantined.iter().enumerate() {
                if *q {
                    out.push(QuarantineEntry {
                        template,
                        bucket,
                        version: VersionId(i as u16),
                        failures: group.failures[i],
                    });
                }
            }
        }
        out
    }

    /// Seed statistics from external hints (paper §VII: "the scheduler
    /// should also offer the possibility to receive external hints").
    pub fn seed(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        size: u64,
        version: VersionId,
        mean: Duration,
        count: u64,
    ) {
        let group = self.group_mut(template, n_versions, size);
        group.versions[version.index()].seed(mean, count);
        group.scheduled[version.index()] = group.scheduled[version.index()].max(count);
    }

    /// Seed statistics addressing a size group by its raw [`BucketKey`]
    /// (used when loading hint files, whose records carry keys, not
    /// sizes). Only meaningful when the store uses the same bucket policy
    /// the hints were saved under.
    pub fn seed_bucket(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        key: BucketKey,
        version: VersionId,
        mean: Duration,
        count: u64,
    ) {
        let group = self
            .groups
            .entry((template, key))
            .or_insert_with(|| GroupProfile::new(n_versions));
        group.ensure(n_versions.max(version.index() + 1));
        group.versions[version.index()].seed(mean, count);
        // Seeded statistics count as both executed and scheduled.
        group.scheduled[version.index()] = group.scheduled[version.index()].max(count);
    }

    /// Seed quarantine state addressing a size group by its raw
    /// [`BucketKey`] (used when loading hint files). The entry is marked
    /// quarantined with the given consecutive-failure streak, exactly as
    /// it was when the hints were saved — the streak is *not* clamped to
    /// the receiving store's threshold, so a save/load round trip is
    /// lossless.
    pub fn seed_quarantine(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        key: BucketKey,
        version: VersionId,
        failures: u64,
    ) {
        let group = self
            .groups
            .entry((template, key))
            .or_insert_with(|| GroupProfile::new(n_versions));
        group.ensure(n_versions.max(version.index() + 1));
        group.failures[version.index()] = failures;
        group.quarantined[version.index()] = true;
        group.probation_credit[version.index()] = 0;
    }

    /// Mean execution time of one version in the group of `size`.
    pub fn mean(&self, template: TemplateId, size: u64, version: VersionId) -> Option<Duration> {
        self.group(template, size).and_then(|g| g.version(version).mean())
    }

    /// Execution count of one version in the group of `size`.
    pub fn count(&self, template: TemplateId, size: u64, version: VersionId) -> u64 {
        self.group(template, size).map_or(0, |g| g.version(version).count())
    }

    /// Whether the group of `(template, size)` has *reliable information*:
    /// every candidate version has run at least λ times (paper §IV-B).
    ///
    /// `candidates` should contain only versions that some existing worker
    /// can actually run — a version targeting a device with no workers
    /// would otherwise keep the group in the learning phase forever.
    pub fn is_reliable(&self, template: TemplateId, size: u64, candidates: &[VersionId]) -> bool {
        match self.group(template, size) {
            None => candidates.is_empty(),
            Some(g) => candidates.iter().all(|&v| g.version(v).count() >= self.lambda),
        }
    }

    /// Whether the learning round-robin still has versions to hand out:
    /// some candidate has been *scheduled* fewer than λ times. Distinct
    /// from [`ProfileStore::is_reliable`], which requires λ *completed*
    /// executions — in between, assignments flow through the
    /// partial-information path.
    pub fn needs_training(&self, template: TemplateId, size: u64, candidates: &[VersionId]) -> bool {
        match self.group(template, size) {
            None => !candidates.is_empty(),
            Some(g) => candidates.iter().any(|&v| g.scheduled(v) < self.lambda),
        }
    }

    /// Pick (and account) the next version to train during the learning
    /// phase: versions with fewer than λ *assignments*, visited
    /// round-robin (paper §IV-B: "picking task versions from ready tasks
    /// in a Round-Robin fashion"). The pick's scheduled count is
    /// incremented, so a burst of ready tasks trains each version exactly
    /// λ times even before any of them completes.
    ///
    /// Returns `None` when every candidate has λ assignments (the group
    /// leaves the learning round-robin).
    pub fn next_learning_version(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        size: u64,
        candidates: &[VersionId],
    ) -> Option<VersionId> {
        let lambda = self.lambda;
        let group = self.group_mut(template, n_versions, size);
        if candidates.is_empty() {
            return None;
        }
        for step in 0..candidates.len() {
            let idx = (group.rr_cursor + step) % candidates.len();
            let v = candidates[idx];
            if group.scheduled[v.index()] < lambda {
                group.rr_cursor = idx + 1;
                group.scheduled[v.index()] += 1;
                return Some(v);
            }
        }
        None
    }

    /// Account a learning-phase assignment of `version` chosen by a
    /// decision policy: ensures the group exists and increments the
    /// version's scheduled count — exactly the accounting
    /// [`ProfileStore::next_learning_version`] performs on its own pick,
    /// and deliberately *without* [`ProfileStore::mark_scheduled`]'s
    /// probation-credit spend (a learning assignment is training, not a
    /// quarantine retrial).
    pub fn note_learning(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        size: u64,
        version: VersionId,
    ) {
        let group = self.group_mut(template, n_versions, size);
        group.scheduled[version.index()] += 1;
    }

    /// Account a non-learning assignment of `version` (keeps scheduled
    /// counts an upper bound of execution counts). Scheduling a
    /// quarantined version spends its probation credit: the retrial is
    /// this one assignment, and another failure re-quarantines it for a
    /// full probation period.
    pub fn mark_scheduled(
        &mut self,
        template: TemplateId,
        n_versions: usize,
        size: u64,
        version: VersionId,
    ) {
        let group = self.group_mut(template, n_versions, size);
        group.scheduled[version.index()] += 1;
        if group.quarantined[version.index()] {
            group.probation_credit[version.index()] = 0;
        }
    }

    /// Iterate over all `(template, bucket, group)` entries, sorted for
    /// deterministic output.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, BucketKey, &GroupProfile)> {
        let mut keys: Vec<&(TemplateId, BucketKey)> = self.groups.keys().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |k| (k.0, k.1, &self.groups[k]))
    }

    /// Number of size groups across all templates.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Render the store in the layout of paper Table I.
    pub fn render_table(&self, registry: &TemplateRegistry) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12}   {:<26} {:>10} {:>8}",
            "TaskVersionSet", "DataSetSize", "VersionId", "ExecTime", "#Exec"
        );
        for (template, bucket, group) in self.iter() {
            let tpl = registry.get(template);
            let mut first_of_group = true;
            for (i, stats) in group.versions().iter().enumerate() {
                if stats.count() == 0 {
                    continue;
                }
                let name = format!("{}-{}", tpl.name, tpl.version(VersionId(i as u16)).name);
                let mean = stats
                    .mean()
                    .map(|m| format!("{:.2}ms", m.as_secs_f64() * 1e3))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{:<16} {:>12}   {:<26} {:>10} {:>8}",
                    if first_of_group { tpl.name.as_str() } else { "" },
                    if first_of_group { self.bucket_policy.describe(bucket) } else { String::new() },
                    name,
                    mean,
                    stats.count()
                );
                first_of_group = false;
            }
        }
        let _ = writeln!(out, "({} size groups, λ = {})", self.group_count(), self.lambda);
        out
    }

    /// Total bytes of the group descriptions — convenience for tests.
    pub fn describe_bucket(&self, key: BucketKey) -> String {
        self.bucket_policy.describe(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn store() -> ProfileStore {
        ProfileStore::with_defaults()
    }

    const TPL: TemplateId = TemplateId(0);
    const V0: VersionId = VersionId(0);
    const V1: VersionId = VersionId(1);
    const V2: VersionId = VersionId(2);

    #[test]
    fn record_and_query_roundtrip() {
        let mut s = store();
        s.record(TPL, 3, 2_000_000, V1, ms(18));
        s.record(TPL, 3, 2_000_000, V1, ms(22));
        assert_eq!(s.count(TPL, 2_000_000, V1), 2);
        assert_eq!(s.mean(TPL, 2_000_000, V1).unwrap(), ms(20));
        assert_eq!(s.count(TPL, 2_000_000, V0), 0);
        assert_eq!(s.mean(TPL, 2_000_000, V0), None);
    }

    #[test]
    fn different_sizes_are_different_groups() {
        let mut s = store();
        s.record(TPL, 3, 2_000_000, V0, ms(30));
        s.record(TPL, 3, 3_000_000, V0, ms(45));
        assert_eq!(s.mean(TPL, 2_000_000, V0).unwrap(), ms(30));
        assert_eq!(s.mean(TPL, 3_000_000, V0).unwrap(), ms(45));
        assert_eq!(s.group_count(), 2);
    }

    #[test]
    fn reliability_requires_lambda_runs_of_every_candidate() {
        let mut s = ProfileStore::new(SizeBucketPolicy::Exact, MeanPolicy::Arithmetic, 2);
        let candidates = [V0, V1];
        assert!(!s.is_reliable(TPL, 100, &candidates));
        s.record(TPL, 2, 100, V0, ms(1));
        s.record(TPL, 2, 100, V0, ms(1));
        assert!(!s.is_reliable(TPL, 100, &candidates), "V1 untrained");
        s.record(TPL, 2, 100, V1, ms(1));
        assert!(!s.is_reliable(TPL, 100, &candidates), "V1 has 1 < λ runs");
        s.record(TPL, 2, 100, V1, ms(1));
        assert!(s.is_reliable(TPL, 100, &candidates));
        // A new size re-enters the learning phase (paper §IV-B).
        assert!(!s.is_reliable(TPL, 101, &candidates));
    }

    #[test]
    fn learning_round_robin_cycles_versions() {
        let mut s = ProfileStore::new(SizeBucketPolicy::Exact, MeanPolicy::Arithmetic, 2);
        let candidates = [V0, V1, V2];
        let mut picks = Vec::new();
        for _ in 0..6 {
            let v = s.next_learning_version(TPL, 3, 100, &candidates).unwrap();
            picks.push(v);
            s.record(TPL, 3, 100, v, ms(5));
        }
        assert_eq!(picks, vec![V0, V1, V2, V0, V1, V2]);
        assert!(s.next_learning_version(TPL, 3, 100, &candidates).is_none());
        assert!(s.is_reliable(TPL, 100, &candidates));
    }

    #[test]
    fn learning_skips_fully_scheduled_versions() {
        let mut s = ProfileStore::new(SizeBucketPolicy::Exact, MeanPolicy::Arithmetic, 1);
        let candidates = [V0, V1];
        // V0 gets its λ = 1 assignment...
        assert_eq!(s.next_learning_version(TPL, 2, 100, &candidates), Some(V0));
        // ...so the round-robin must move on to V1, even though V0 has
        // not *completed* yet (scheduled counts gate the hand-out).
        assert_eq!(s.next_learning_version(TPL, 2, 100, &candidates), Some(V1));
        assert_eq!(s.next_learning_version(TPL, 2, 100, &candidates), None);
        assert!(!s.needs_training(TPL, 100, &candidates));
        // Execution-based reliability still waits for completions.
        assert!(!s.is_reliable(TPL, 100, &candidates));
        s.record(TPL, 2, 100, V0, ms(5));
        s.record(TPL, 2, 100, V1, ms(5));
        assert!(s.is_reliable(TPL, 100, &candidates));
    }

    #[test]
    fn scheduled_counts_track_assignments() {
        let mut s = ProfileStore::with_defaults();
        let candidates = [V0, V1];
        for _ in 0..6 {
            let v = s.next_learning_version(TPL, 2, 100, &candidates).unwrap();
            let _ = v;
        }
        let g = s.group(TPL, 100).unwrap();
        assert_eq!(g.scheduled(V0), 3);
        assert_eq!(g.scheduled(V1), 3);
        assert!(s.next_learning_version(TPL, 2, 100, &candidates).is_none());
    }

    #[test]
    fn no_candidates_means_nothing_to_learn() {
        let mut s = store();
        assert_eq!(s.next_learning_version(TPL, 3, 100, &[]), None);
        assert!(s.is_reliable(TPL, 100, &[]));
    }

    #[test]
    fn fastest_version_ignores_unmeasured() {
        let mut s = store();
        s.record(TPL, 3, 100, V1, ms(18));
        s.record(TPL, 3, 100, V0, ms(30));
        let group = s.group(TPL, 100).unwrap();
        let (v, m) = group.fastest_version(&[V0, V1, V2]).unwrap();
        assert_eq!(v, V1);
        assert_eq!(m, ms(18));
    }

    #[test]
    fn min_max_tracked() {
        let mut s = store();
        s.record(TPL, 1, 100, V0, ms(30));
        s.record(TPL, 1, 100, V0, ms(10));
        s.record(TPL, 1, 100, V0, ms(20));
        let stats = s.group(TPL, 100).unwrap().version(V0);
        assert_eq!(stats.min().unwrap(), ms(10));
        assert_eq!(stats.max().unwrap(), ms(30));
    }

    #[test]
    fn seeding_counts_as_training() {
        let mut s = store();
        s.seed(TPL, 2, 100, V0, ms(20), 50);
        s.seed(TPL, 2, 100, V1, ms(5), 50);
        assert!(s.is_reliable(TPL, 100, &[V0, V1]));
        assert_eq!(s.mean(TPL, 100, V0).unwrap(), ms(20));
    }

    #[test]
    fn range_policy_merges_similar_sizes() {
        let mut s = ProfileStore::new(
            SizeBucketPolicy::RelativeRange { tolerance: 0.25 },
            MeanPolicy::Arithmetic,
            3,
        );
        s.record(TPL, 1, 1_000_000, V0, ms(10));
        s.record(TPL, 1, 1_000_001, V0, ms(20));
        assert_eq!(s.group_count(), 1);
        assert_eq!(s.mean(TPL, 1_000_000, V0).unwrap(), ms(15));
    }

    #[test]
    fn render_table_mentions_every_measured_version() {
        let mut reg = TemplateRegistry::new();
        let tpl = reg
            .template("task1")
            .main("task1-v1", &[DeviceKind::Cuda])
            .version("task1-v2", &[DeviceKind::Cuda])
            .version("task1-v3", &[DeviceKind::Smp])
            .register();
        let mut s = store();
        s.record(tpl, 3, 2 << 20, VersionId(0), ms(30));
        s.record(tpl, 3, 2 << 20, VersionId(1), ms(18));
        s.record(tpl, 3, 3 << 20, VersionId(2), ms(40));
        let table = s.render_table(&reg);
        assert!(table.contains("task1-task1-v1"));
        assert!(table.contains("task1-task1-v2"));
        assert!(table.contains("task1-task1-v3"));
        assert!(table.contains("30.00ms"));
        assert!(table.contains("2 size groups"));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_rejected() {
        let _ = ProfileStore::new(SizeBucketPolicy::Exact, MeanPolicy::Arithmetic, 0);
    }

    #[test]
    fn quarantine_after_threshold_failures() {
        let mut s = store(); // default threshold K = 2
        assert!(!s.is_excluded(TPL, 100, V0));
        s.record_failure(TPL, 2, 100, V0);
        assert!(!s.is_quarantined(TPL, 100, V0), "one failure is below K");
        assert!(!s.is_excluded(TPL, 100, V0));
        s.record_failure(TPL, 2, 100, V0);
        assert!(s.is_quarantined(TPL, 100, V0));
        assert!(s.is_excluded(TPL, 100, V0), "no probation → permanently excluded");
        let q = s.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].version, V0);
        assert_eq!(q[0].failures, 2);
        // Other versions and other size groups are unaffected.
        assert!(!s.is_quarantined(TPL, 100, V1));
        assert!(!s.is_quarantined(TPL, 101, V0));
    }

    #[test]
    fn success_clears_failure_streak_and_quarantine() {
        let mut s = store();
        s.record_failure(TPL, 2, 100, V0);
        s.record(TPL, 2, 100, V0, ms(5));
        s.record_failure(TPL, 2, 100, V0);
        assert!(!s.is_quarantined(TPL, 100, V0), "streak reset by success");
        s.record_failure(TPL, 2, 100, V0);
        assert!(s.is_quarantined(TPL, 100, V0));
        s.record(TPL, 2, 100, V0, ms(5));
        assert!(!s.is_quarantined(TPL, 100, V0), "a success lifts quarantine");
    }

    #[test]
    fn probation_grants_retrial_after_peer_successes() {
        let mut s = store();
        s.set_quarantine(2, Some(3));
        s.record_failure(TPL, 2, 100, V0);
        s.record_failure(TPL, 2, 100, V0);
        assert!(s.is_excluded(TPL, 100, V0));
        // Two peer successes: still short of the probation period.
        s.record(TPL, 2, 100, V1, ms(5));
        s.record(TPL, 2, 100, V1, ms(5));
        assert!(s.is_excluded(TPL, 100, V0));
        // Third success earns the retrial.
        s.record(TPL, 2, 100, V1, ms(5));
        assert!(!s.is_excluded(TPL, 100, V0), "probation retrial due");
        assert!(s.is_quarantined(TPL, 100, V0), "still quarantined until a success");
        // Scheduling the retrial spends the credit...
        s.mark_scheduled(TPL, 2, 100, V0);
        assert!(s.is_excluded(TPL, 100, V0));
        // ...and a success on the retrial lifts the quarantine for good.
        s.record(TPL, 2, 100, V0, ms(5));
        assert!(!s.is_quarantined(TPL, 100, V0));
        assert!(!s.is_excluded(TPL, 100, V0));
    }

    #[test]
    fn failed_probation_restarts_the_clock() {
        let mut s = store();
        s.set_quarantine(1, Some(2));
        s.record_failure(TPL, 2, 100, V0);
        s.record(TPL, 2, 100, V1, ms(5));
        s.record(TPL, 2, 100, V1, ms(5));
        assert!(!s.is_excluded(TPL, 100, V0));
        s.mark_scheduled(TPL, 2, 100, V0);
        s.record_failure(TPL, 2, 100, V0);
        assert!(s.is_excluded(TPL, 100, V0), "failure re-quarantines");
        s.record(TPL, 2, 100, V1, ms(5));
        assert!(s.is_excluded(TPL, 100, V0), "needs the full period again");
        s.record(TPL, 2, 100, V1, ms(5));
        assert!(!s.is_excluded(TPL, 100, V0));
    }
}
