//! # versa-core — the paper's contribution
//!
//! This crate implements the runtime-side machinery of *Self-Adaptive
//! OmpSs Tasks in Heterogeneous Environments* (Planas et al., IPDPS 2013):
//!
//! * The **task/version model** ([`TaskTemplate`], [`TaskVersion`]): a task
//!   may carry several implementations (`implements(...)` clause), each
//!   targeting one or more [`DeviceKind`]s. The "structure the compiler
//!   creates ... a list of devices where the task can be executed and a
//!   pointer to the corresponding task function" (paper §IV-A) is the
//!   [`TemplateRegistry`].
//! * **Execution profiles** ([`profile`]): the `TaskVersionSet` data
//!   structure of paper Table I — per task, per *data-set-size group*, per
//!   version: mean execution time and execution count.
//! * **Schedulers** ([`scheduler`]): the paper's *versioning scheduler*
//!   (learning phase + earliest-executor phase), the two baselines it is
//!   evaluated against (*dependency-aware* and *affinity*), and the
//!   locality-aware extension sketched in the paper's future work (§VII).
//! * The **worker model** ([`WorkerState`]): per-worker FIFO task queues
//!   and estimated busy time.
//!
//! The crate is engine-agnostic: it never executes anything. Execution
//! engines (see `versa-runtime`) feed it ready tasks and measured
//! durations; it answers with assignments.

#![warn(missing_docs)]

mod device;
mod ids;
pub mod profile;
pub mod scheduler;
mod task;
mod worker;

pub use device::DeviceKind;
pub use ids::{TaskId, TemplateId, VersionId, WorkerId};
pub use profile::{BucketKey, MeanPolicy, ProfileStore, QuarantineEntry, SizeBucketPolicy};
pub use scheduler::{
    make_scheduler, Assignment, CandidateStats, FailureKind, Policy, PolicyChoice, PolicyCtx,
    PolicyKind, SchedCtx, Scheduler, SchedulerKind, VersioningConfig, VersioningScheduler,
    WorkerSnap,
};
pub use task::{JobTag, TaskInstance, TaskTemplate, TaskVersion, TemplateBuilder, TemplateRegistry};
pub use worker::{QueuedTask, WorkerInfo, WorkerState};
