//! Newtype identifiers used across the runtime.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }

        impl $name {
            /// The identifier as a plain index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_type! {
    /// Identifies a *task version set* — one annotated task function
    /// together with all its `implements(...)` versions.
    TemplateId(u32), "tpl"
}

id_type! {
    /// Index of one implementation inside its template's version table.
    VersionId(u16), "v"
}

id_type! {
    /// One dynamic task instance (one call to an annotated function).
    TaskId(u64), "t"
}

id_type! {
    /// One runtime worker thread. Paper §IV-B: "Each OmpSs worker thread
    /// is currently devoted to only one device".
    WorkerId(u16), "w"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats_use_prefixes() {
        assert_eq!(format!("{:?}", TemplateId(3)), "tpl3");
        assert_eq!(format!("{:?}", VersionId(0)), "v0");
        assert_eq!(format!("{:?}", TaskId(17)), "t17");
        assert_eq!(format!("{}", WorkerId(5)), "w5");
    }

    #[test]
    fn ordering_and_index() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(WorkerId(4).index(), 4);
    }
}
