//! Task templates (version sets), versions, and dynamic task instances.

use crate::{DeviceKind, TaskId, TemplateId, VersionId};
use std::collections::HashMap;
use versa_mem::{AccessMode, Region};

/// One implementation of a task — one function annotated with
/// `#pragma omp target device(...)` and (for non-main versions)
/// `implements(main)`.
#[derive(Clone, Debug)]
pub struct TaskVersion {
    /// Function name, e.g. `"matmul_tile_cublas"`.
    pub name: String,
    /// Devices this implementation can run on (the `device(...)` clause
    /// may list several).
    pub devices: Vec<DeviceKind>,
    /// Whether this is the *main* implementation. "This distinction is
    /// only a compiler issue and will not affect the runtime execution"
    /// for the versioning scheduler (paper §IV-A) — but the baseline
    /// schedulers, which predate `implements`, only ever run the main
    /// version (paper footnote 1).
    pub is_main: bool,
}

impl TaskVersion {
    /// Whether this version can execute on a worker of kind `device`.
    #[inline]
    pub fn runs_on(&self, device: DeviceKind) -> bool {
        self.devices.contains(&device)
    }
}

/// A *task version set*: one annotated task together with all of its
/// alternative implementations. This mirrors the structure the Mercurium
/// compiler generates for the runtime (paper §IV-A).
#[derive(Clone, Debug)]
pub struct TaskTemplate {
    /// Stable identifier.
    pub id: TemplateId,
    /// Name of the main task function, e.g. `"matmul_tile"`.
    pub name: String,
    /// All implementations. Exactly one is the main version; it is always
    /// stored at index 0 (so `VersionId(0)` is the main implementation).
    pub versions: Vec<TaskVersion>,
}

impl TaskTemplate {
    /// The main implementation (always version 0).
    pub fn main_version(&self) -> &TaskVersion {
        &self.versions[0]
    }

    /// Look up a version.
    pub fn version(&self, v: VersionId) -> &TaskVersion {
        &self.versions[v.index()]
    }

    /// Ids of versions runnable on `device`.
    pub fn versions_for(&self, device: DeviceKind) -> impl Iterator<Item = VersionId> + '_ {
        self.versions
            .iter()
            .enumerate()
            .filter(move |(_, v)| v.runs_on(device))
            .map(|(i, _)| VersionId(i as u16))
    }

    /// Number of versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }
}

/// Builder for a [`TaskTemplate`]; the programmatic analogue of writing the
/// pragmas of paper Fig. 4.
///
/// ```
/// use versa_core::{DeviceKind, TemplateRegistry};
///
/// let mut reg = TemplateRegistry::new();
/// let matmul = reg
///     .template("matmul_tile")
///     .main("matmul_tile_cublas", &[DeviceKind::Cuda])
///     .version("matmul_tile_cuda", &[DeviceKind::Cuda])
///     .version("matmul_tile_cblas", &[DeviceKind::Smp])
///     .register();
/// assert_eq!(reg.get(matmul).version_count(), 3);
/// ```
pub struct TemplateBuilder<'a> {
    registry: &'a mut TemplateRegistry,
    name: String,
    versions: Vec<TaskVersion>,
}

impl TemplateBuilder<'_> {
    /// Declare the main implementation. Must be called exactly once,
    /// before any [`TemplateBuilder::version`].
    pub fn main(mut self, name: &str, devices: &[DeviceKind]) -> Self {
        assert!(self.versions.is_empty(), "main version must be declared first");
        assert!(!devices.is_empty(), "a version must target at least one device");
        self.versions.push(TaskVersion {
            name: name.to_string(),
            devices: devices.to_vec(),
            is_main: true,
        });
        self
    }

    /// Declare an alternative implementation (`implements(main)`).
    ///
    /// The `implements` clause "always references the main implementation"
    /// (paper §IV-A): versions chain to the main version only, which this
    /// builder enforces structurally.
    pub fn version(mut self, name: &str, devices: &[DeviceKind]) -> Self {
        assert!(!self.versions.is_empty(), "declare the main version before alternatives");
        assert!(!devices.is_empty(), "a version must target at least one device");
        self.versions.push(TaskVersion {
            name: name.to_string(),
            devices: devices.to_vec(),
            is_main: false,
        });
        self
    }

    /// Finish and register the template.
    ///
    /// # Panics
    /// Panics if no main version was declared, the template name is
    /// already taken, or the name is empty / contains whitespace (names
    /// key the whitespace-delimited profile-hints format).
    pub fn register(self) -> TemplateId {
        assert!(!self.versions.is_empty(), "template {:?} has no versions", self.name);
        assert!(
            !self.name.is_empty() && !self.name.chars().any(|c| c.is_whitespace()),
            "template name {:?} must be non-empty and contain no whitespace \
             (it keys the line-based profile-hints format)",
            self.name
        );
        let id = TemplateId(self.registry.templates.len() as u32);
        let prev = self.registry.by_name.insert(self.name.clone(), id);
        assert!(prev.is_none(), "template {:?} registered twice", self.name);
        self.registry.templates.push(TaskTemplate { id, name: self.name, versions: self.versions });
        id
    }
}

/// All registered task templates; the runtime-side mirror of the
/// compiler-emitted version tables.
#[derive(Default, Debug, Clone)]
pub struct TemplateRegistry {
    templates: Vec<TaskTemplate>,
    by_name: HashMap<String, TemplateId>,
}

impl TemplateRegistry {
    /// Empty registry.
    pub fn new() -> TemplateRegistry {
        TemplateRegistry::default()
    }

    /// Start building a template named `name`.
    pub fn template(&mut self, name: &str) -> TemplateBuilder<'_> {
        TemplateBuilder { registry: self, name: name.to_string(), versions: Vec::new() }
    }

    /// Look up a template by id.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn get(&self, id: TemplateId) -> &TaskTemplate {
        &self.templates[id.index()]
    }

    /// Look up a template id by name.
    pub fn by_name(&self, name: &str) -> Option<TemplateId> {
        self.by_name.get(name).copied()
    }

    /// All templates in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &TaskTemplate> {
        self.templates.iter()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// Job/tenant tag attached to a task instance by a serving layer.
///
/// The one-shot API leaves tasks untagged (`TaskInstance::job == None`);
/// a multi-job service stamps every task it submits so that dispatch
/// order can interleave jobs fairly and reports can be sliced per job.
/// Tags are advisory: schedulers may ignore them entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobTag {
    /// Service-unique job id.
    pub job: u64,
    /// Owning tenant/client id (several jobs may share a tenant).
    pub tenant: u32,
    /// Priority class; higher classes are dispatched strictly before
    /// lower ones when tasks compete for dispatch slots.
    pub class: u8,
    /// Weighted-round-robin share *within* a class (must be >= 1).
    pub weight: u32,
}

impl JobTag {
    /// Tag with default class/weight (class 1 "normal", weight 1).
    pub fn new(job: u64, tenant: u32) -> JobTag {
        JobTag { job, tenant, class: 1, weight: 1 }
    }
}

/// A dynamic task instance: one invocation of an annotated task function.
#[derive(Clone, Debug)]
pub struct TaskInstance {
    /// Unique instance id (creation order).
    pub id: TaskId,
    /// The version set this instance belongs to.
    pub template: TemplateId,
    /// Data accesses (dependence + copy clauses, `copy_deps` semantics).
    pub accesses: Vec<(Region, AccessMode)>,
    /// The instance's *data set size* in bytes: each accessed allocation
    /// counted once, "even if it is an input/output parameter" (paper
    /// footnote 2). Used to select the profile size group.
    pub data_set_size: u64,
    /// Owning job, when submitted through a multi-job service.
    pub job: Option<JobTag>,
}

impl TaskInstance {
    /// Compute the data set size from a list of accesses and a size
    /// oracle for allocations (each allocation counted once).
    pub fn data_set_size_of(
        accesses: &[(Region, AccessMode)],
        alloc_bytes: impl Fn(versa_mem::DataId) -> u64,
    ) -> u64 {
        let mut seen = Vec::with_capacity(accesses.len());
        let mut total = 0;
        for (region, _) in accesses {
            if !seen.contains(&region.data) {
                seen.push(region.data);
                total += alloc_bytes(region.data);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_mem::DataId;

    fn registry_with_matmul() -> (TemplateRegistry, TemplateId) {
        let mut reg = TemplateRegistry::new();
        let id = reg
            .template("matmul_tile")
            .main("matmul_tile_cublas", &[DeviceKind::Cuda])
            .version("matmul_tile_cuda", &[DeviceKind::Cuda])
            .version("matmul_tile_cblas", &[DeviceKind::Smp])
            .register();
        (reg, id)
    }

    #[test]
    fn main_version_is_index_zero() {
        let (reg, id) = registry_with_matmul();
        let tpl = reg.get(id);
        assert!(tpl.main_version().is_main);
        assert_eq!(tpl.main_version().name, "matmul_tile_cublas");
        assert!(!tpl.version(VersionId(1)).is_main);
        assert!(!tpl.version(VersionId(2)).is_main);
    }

    #[test]
    fn versions_for_filters_by_device() {
        let (reg, id) = registry_with_matmul();
        let tpl = reg.get(id);
        let cuda: Vec<_> = tpl.versions_for(DeviceKind::Cuda).collect();
        let smp: Vec<_> = tpl.versions_for(DeviceKind::Smp).collect();
        assert_eq!(cuda, vec![VersionId(0), VersionId(1)]);
        assert_eq!(smp, vec![VersionId(2)]);
        assert!(tpl.versions_for(DeviceKind::CellSpe).next().is_none());
    }

    #[test]
    fn lookup_by_name() {
        let (reg, id) = registry_with_matmul();
        assert_eq!(reg.by_name("matmul_tile"), Some(id));
        assert_eq!(reg.by_name("nope"), None);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn multi_device_version() {
        let mut reg = TemplateRegistry::new();
        let id = reg
            .template("saxpy")
            .main("saxpy_any", &[DeviceKind::Smp, DeviceKind::Cuda])
            .register();
        let tpl = reg.get(id);
        assert!(tpl.main_version().runs_on(DeviceKind::Smp));
        assert!(tpl.main_version().runs_on(DeviceKind::Cuda));
    }

    #[test]
    #[should_panic(expected = "main version must be declared first")]
    fn two_mains_rejected() {
        let mut reg = TemplateRegistry::new();
        let _ = reg
            .template("t")
            .main("a", &[DeviceKind::Smp])
            .main("b", &[DeviceKind::Smp])
            .register();
    }

    #[test]
    #[should_panic(expected = "declare the main version before alternatives")]
    fn version_before_main_rejected() {
        let mut reg = TemplateRegistry::new();
        let _ = reg.template("t").version("a", &[DeviceKind::Smp]).register();
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_template_name_rejected() {
        let mut reg = TemplateRegistry::new();
        let _ = reg.template("t").main("a", &[DeviceKind::Smp]).register();
        let _ = reg.template("t").main("b", &[DeviceKind::Smp]).register();
    }

    #[test]
    #[should_panic(expected = "no whitespace")]
    fn whitespace_in_template_name_rejected() {
        let mut reg = TemplateRegistry::new();
        let _ = reg.template("mat mul").main("a", &[DeviceKind::Smp]).register();
    }

    #[test]
    #[should_panic(expected = "no whitespace")]
    fn empty_template_name_rejected() {
        let mut reg = TemplateRegistry::new();
        let _ = reg.template("").main("a", &[DeviceKind::Smp]).register();
    }

    #[test]
    fn data_set_size_counts_each_allocation_once() {
        let a = DataId(0);
        let b = DataId(1);
        let accesses = vec![
            (Region::whole(a, 100), AccessMode::In),
            (Region::whole(b, 50), AccessMode::In),
            (Region::whole(a, 100), AccessMode::InOut),
        ];
        let size = TaskInstance::data_set_size_of(&accesses, |d| if d == a { 100 } else { 50 });
        assert_eq!(size, 150);
    }
}
