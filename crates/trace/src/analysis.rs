//! Trace analysis: the aggregate views a performance engineer would pull
//! from Paraver on the real Nanos++ runtime — per-worker busy time and
//! utilization, per-category transfer occupancy and volume, per-version
//! execution counts (paper Table I), the scheduler's learning→reliable
//! phase transitions per (template, size-bucket), and a CSV timeline.
//!
//! Accounting reconciles exactly with the engine's `RunReport`:
//! * `busy[w]` sums the **measured kernel time** (`TaskEnd::kernel_ns`)
//!   of completed tasks — the same quantity the engines sum into
//!   `RunReport::worker_busy`.
//! * `transfer_bytes[kind]` matches `RunReport::transfers`.
//! * `version_counts` matches `RunReport::version_counts`.
//! * `failed_count` matches `RunReport::failures.failure_count()`.

use crate::event::{DecisionRecord, Phase, Trace, TraceEvent, Ts};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;
use versa_core::{BucketKey, TemplateId, VersionId, WorkerId};
use versa_mem::TransferKind;

/// One executed attempt interval on a worker. `start..end` is the wall
/// (or virtual-time) span the attempt occupied the worker; `kernel` is
/// the measured compute time inside it (equal to the span in the
/// simulator, slightly smaller on the native engine where the span also
/// covers buffer plumbing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskInterval {
    /// The worker that executed.
    pub worker: WorkerId,
    /// Attempt start.
    pub start: Ts,
    /// Attempt end.
    pub end: Ts,
    /// The task.
    pub task: versa_core::TaskId,
    /// Its template.
    pub template: TemplateId,
    /// The version that ran.
    pub version: VersionId,
    /// Measured kernel time (zero for failed attempts).
    pub kernel: Duration,
    /// Whether the attempt failed.
    pub failed: bool,
}

/// Decision counts per scheduling phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseMix {
    /// Learning-phase assignments.
    pub learning: u64,
    /// Reliable earliest-executor assignments.
    pub reliable: u64,
    /// Fallback assignments (profiles exhausted / quarantined).
    pub fallback: u64,
}

impl PhaseMix {
    /// Count one decision.
    pub fn count(&mut self, phase: Phase) {
        match phase {
            Phase::Learning => self.learning += 1,
            Phase::Reliable => self.reliable += 1,
            Phase::ReliableFallback => self.fallback += 1,
        }
    }

    /// Total decisions.
    pub fn total(&self) -> u64 {
        self.learning + self.reliable + self.fallback
    }
}

/// Aggregated view of one trace.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Timestamp of the last event in the trace.
    pub span: Ts,
    /// Measured kernel time of completed tasks per worker (reconciles
    /// with `RunReport::worker_busy`).
    pub busy: HashMap<WorkerId, Duration>,
    /// Executed attempt intervals, in start order (failed attempts
    /// included, flagged).
    pub intervals: Vec<TaskInterval>,
    /// Total link-busy time per transfer category.
    pub transfer_time: HashMap<TransferKind, Duration>,
    /// Total bytes moved per transfer category.
    pub transfer_bytes: HashMap<TransferKind, u64>,
    /// Completed executions per (template, version) — paper Table I.
    pub version_counts: HashMap<(TemplateId, VersionId), u64>,
    /// Number of tasks that completed.
    pub task_count: usize,
    /// Number of transfers that occurred.
    pub transfer_count: usize,
    /// Number of failed attempts (kernel faults + staging faults).
    pub failed_count: usize,
    /// The scheduler decision ledger, in time order.
    pub decisions: Vec<DecisionRecord>,
    /// Decision phase mix per (template, bucket).
    pub phase_mix: HashMap<(TemplateId, BucketKey), PhaseMix>,
    /// Cluster node losses, in time order (empty for single-node runs).
    pub node_losses: Vec<(Ts, u16)>,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

impl TraceAnalysis {
    /// Analyze a trace. Start events are matched to their terminal event
    /// per task; a `TaskStart` without a terminal (truncated trace)
    /// contributes no interval.
    pub fn new(trace: &Trace) -> TraceAnalysis {
        let mut open: HashMap<u64, (WorkerId, Ts, TemplateId, VersionId)> = HashMap::new();
        let mut busy: HashMap<WorkerId, Duration> = HashMap::new();
        let mut intervals = Vec::new();
        let mut transfer_time: HashMap<TransferKind, Duration> = HashMap::new();
        let mut transfer_bytes: HashMap<TransferKind, u64> = HashMap::new();
        let mut version_counts: HashMap<(TemplateId, VersionId), u64> = HashMap::new();
        let mut decisions = Vec::new();
        let mut phase_mix: HashMap<(TemplateId, BucketKey), PhaseMix> = HashMap::new();
        let mut span = Ts::ZERO;
        let mut transfer_count = 0;
        let mut failed_count = 0;
        let mut task_count = 0;
        let mut node_losses = Vec::new();
        for ev in trace.events() {
            span = span.max(ev.time());
            match *ev {
                TraceEvent::TaskStart { time, task, worker, version, template, .. } => {
                    open.insert(task.0, (worker, time, template, version));
                }
                TraceEvent::TaskEnd { time, task, worker, kernel_ns } => {
                    span = span.max(time);
                    task_count += 1;
                    let kernel = Duration::from_nanos(kernel_ns);
                    *busy.entry(worker).or_default() += kernel;
                    if let Some((w, start, template, version)) = open.remove(&task.0) {
                        debug_assert_eq!(w, worker, "task moved workers mid-flight");
                        *version_counts.entry((template, version)).or_insert(0) += 1;
                        intervals.push(TaskInterval {
                            worker,
                            start,
                            end: time,
                            task,
                            template,
                            version,
                            kernel,
                            failed: false,
                        });
                    }
                }
                TraceEvent::TaskFailed { time, task, worker, version, .. } => {
                    // The failed attempt occupied its worker but produced
                    // nothing; it contributes no busy (kernel) time.
                    failed_count += 1;
                    if let Some((w, start, template, v)) = open.remove(&task.0) {
                        debug_assert_eq!((w, v), (worker, version), "attempt mismatch");
                        intervals.push(TaskInterval {
                            worker,
                            start,
                            end: time,
                            task,
                            template,
                            version,
                            kernel: Duration::ZERO,
                            failed: true,
                        });
                    }
                }
                TraceEvent::Transfer { start, end, from, to, bytes, .. } => {
                    span = span.max(end);
                    let kind = TransferKind::classify(from, to);
                    *transfer_time.entry(kind).or_default() += end - start;
                    *transfer_bytes.entry(kind).or_default() += bytes;
                    transfer_count += 1;
                }
                TraceEvent::Decision(ref d) => {
                    phase_mix.entry((d.template, d.bucket)).or_default().count(d.phase);
                    decisions.push(d.clone());
                }
                TraceEvent::NodeLost { time, node } => {
                    node_losses.push((time, node));
                }
                TraceEvent::TaskCreated { .. }
                | TraceEvent::TaskReady { .. }
                | TraceEvent::JobAdmitted { .. }
                | TraceEvent::JobCompleted { .. } => {}
            }
        }
        intervals.sort_by_key(|i| (i.start, i.worker));
        TraceAnalysis {
            span,
            busy,
            intervals,
            transfer_time,
            transfer_bytes,
            version_counts,
            task_count,
            transfer_count,
            failed_count,
            decisions,
            phase_mix,
            node_losses,
            dropped: trace.dropped,
        }
    }

    /// Fraction of the trace span a worker spent computing (0..=1).
    pub fn utilization(&self, worker: WorkerId) -> f64 {
        if self.span == Ts::ZERO {
            return 0.0;
        }
        self.busy.get(&worker).copied().unwrap_or(Duration::ZERO).as_secs_f64()
            / self.span.as_duration().as_secs_f64()
    }

    /// Check that no worker ever ran two attempts at once; returns the
    /// first violating pair if any (an engine-correctness invariant used
    /// by the test suite).
    pub fn find_overlap(&self) -> Option<(TaskInterval, TaskInterval)> {
        let mut last: HashMap<WorkerId, TaskInterval> = HashMap::new();
        for &iv in &self.intervals {
            if let Some(&prev) = last.get(&iv.worker) {
                if iv.start < prev.end {
                    return Some((prev, iv));
                }
            }
            let slot = last.entry(iv.worker).or_insert(iv);
            if iv.end > slot.end {
                *slot = iv;
            }
        }
        None
    }

    /// Render a per-worker utilization summary.
    pub fn utilization_table(&self) -> String {
        let mut workers: Vec<WorkerId> = self.busy.keys().copied().collect();
        workers.sort_unstable();
        let mut out = String::new();
        let _ = writeln!(out, "{:<8} {:>10} {:>8}", "worker", "busy (ms)", "util %");
        for w in workers {
            let busy = self.busy[&w];
            let _ = writeln!(
                out,
                "{:<8} {:>10.1} {:>8.1}",
                w.to_string(),
                busy.as_secs_f64() * 1e3,
                100.0 * self.utilization(w)
            );
        }
        out
    }

    /// Paper Table-I style per-version execution-count table.
    pub fn version_table(&self, meta: &crate::TraceMeta) -> String {
        let mut rows: Vec<(&(TemplateId, VersionId), &u64)> = self.version_counts.iter().collect();
        rows.sort_by_key(|(k, _)| **k);
        let mut out = String::new();
        let _ = writeln!(out, "{:<20} {:<16} {:>10}", "template", "version", "executions");
        for ((t, v), n) in rows {
            let _ = writeln!(
                out,
                "{:<20} {:<16} {:>10}",
                meta.template_name(*t),
                meta.version_name(*t, *v),
                n
            );
        }
        out
    }

    /// Bytes and link-busy time per transfer category.
    pub fn transfer_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<12} {:>14} {:>12}", "category", "bytes", "busy (ms)");
        for kind in [TransferKind::Input, TransferKind::Output, TransferKind::Device] {
            let bytes = self.transfer_bytes.get(&kind).copied().unwrap_or(0);
            let time = self.transfer_time.get(&kind).copied().unwrap_or(Duration::ZERO);
            let _ = writeln!(
                out,
                "{:<12} {:>14} {:>12.1}",
                kind.to_string(),
                bytes,
                time.as_secs_f64() * 1e3
            );
        }
        out
    }

    /// Learning→reliable phase-transition report per (template, bucket):
    /// how many learning assignments each profile bucket needed before
    /// the scheduler trusted its means, and when the switch happened.
    pub fn phase_report(&self, meta: &crate::TraceMeta) -> String {
        let mut keys: Vec<(TemplateId, BucketKey)> = self.phase_mix.keys().copied().collect();
        keys.sort_by_key(|&(t, b)| (t, b.0));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>7} {:>9} {:>9} {:>9} {:>14}",
            "template", "bucket", "learning", "reliable", "fallback", "reliable@ (ms)"
        );
        for key in keys {
            let mix = &self.phase_mix[&key];
            let first_reliable = self
                .decisions
                .iter()
                .find(|d| (d.template, d.bucket) == key && d.phase == Phase::Reliable)
                .map(|d| format!("{:.3}", d.time.as_duration().as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<20} {:>7} {:>9} {:>9} {:>9} {:>14}",
                meta.template_name(key.0),
                key.1 .0,
                mix.learning,
                mix.reliable,
                mix.fallback,
                first_reliable
            );
        }
        out
    }

    /// ASCII per-worker occupancy timeline: `#` compute, `x` failed
    /// attempt, `.` idle. Multi-node traces group workers under one
    /// header per cluster node, with `~` filling a lost node's rows from
    /// the loss instant onward.
    pub fn timeline(&self, meta: &crate::TraceMeta, cols: usize) -> String {
        let mut out = String::new();
        if self.span == Ts::ZERO {
            return out;
        }
        let cols = cols.max(10);
        let cell = |t: Ts| ((t.0 as u128 * cols as u128 / self.span.0.max(1) as u128) as usize).min(cols - 1);
        let mut workers: Vec<WorkerId> = self.busy.keys().copied().collect();
        for iv in &self.intervals {
            if !workers.contains(&iv.worker) {
                workers.push(iv.worker);
            }
        }
        let node_of = |w: WorkerId| {
            meta.workers.iter().find(|m| m.id == w).map_or(0, |m| m.node)
        };
        workers.sort_unstable_by_key(|&w| (node_of(w), w));
        let clustered = workers.iter().any(|&w| node_of(w) != 0);
        let mut current_node: Option<u16> = None;
        for w in workers {
            let node = node_of(w);
            if clustered && current_node != Some(node) {
                current_node = Some(node);
                let lost = self.node_losses.iter().find(|(_, n)| *n == node);
                let label = if node == 0 { "coordinator".to_string() } else { format!("node {node}") };
                match lost {
                    Some((at, _)) => {
                        let _ = writeln!(out, "-- {label} (lost at {at}) --");
                    }
                    None => {
                        let _ = writeln!(out, "-- {label} --");
                    }
                }
            }
            let mut row = vec!['.'; cols];
            for iv in self.intervals.iter().filter(|iv| iv.worker == w) {
                let glyph = if iv.failed { 'x' } else { '#' };
                for c in row.iter_mut().take(cell(iv.end) + 1).skip(cell(iv.start)) {
                    *c = glyph;
                }
            }
            if let Some(&(at, _)) = self.node_losses.iter().find(|(_, n)| *n == node) {
                for c in row.iter_mut().skip(cell(at)) {
                    if *c == '.' {
                        *c = '~';
                    }
                }
            }
            let _ = writeln!(
                out,
                "{:<10} {}",
                meta.worker_label(w),
                row.into_iter().collect::<String>()
            );
        }
        out
    }
}

/// Export a trace as CSV (`kind,start_ns,end_ns,who,what`) for external
/// timeline tools. Rows: completed attempts (`task`), failed attempts
/// (`failed`), transfers (`transfer`) and decisions (`decision`).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::from("kind,start_ns,end_ns,who,what\n");
    let a = TraceAnalysis::new(trace);
    let mut rows: Vec<(u64, String)> = Vec::new();
    for iv in &a.intervals {
        rows.push((
            iv.start.0,
            if iv.failed {
                format!("failed,{},{},{},t{}v{}", iv.start.0, iv.end.0, iv.worker, iv.task.0, iv.version.0)
            } else {
                format!("task,{},{},{},t{}v{}", iv.start.0, iv.end.0, iv.worker, iv.task.0, iv.version.0)
            },
        ));
    }
    for ev in trace.events() {
        match ev {
            TraceEvent::Transfer { start, end, data, from, to, bytes, .. } => {
                rows.push((
                    start.0,
                    format!("transfer,{},{},{from}->{to},{data:?}:{bytes}B", start.0, end.0),
                ));
            }
            TraceEvent::Decision(d) => {
                rows.push((
                    d.time.0,
                    format!(
                        "decision,{},{},{},t{}v{}:{}",
                        d.time.0,
                        d.time.0,
                        d.worker,
                        d.task.0,
                        d.version.0,
                        d.phase.label()
                    ),
                ));
            }
            _ => {}
        }
    }
    rows.sort_by_key(|(t, _)| *t);
    for (_, row) in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMeta;
    use versa_core::TaskId;
    use versa_mem::{DataId, MemSpace};

    fn start(t: u64, task: u64, w: u16, v: u16) -> TraceEvent {
        TraceEvent::TaskStart {
            time: Ts(t),
            task: TaskId(task),
            worker: WorkerId(w),
            version: VersionId(v),
            template: TemplateId(0),
            attempt: 1,
        }
    }

    fn end(t: u64, task: u64, w: u16, kernel: u64) -> TraceEvent {
        TraceEvent::TaskEnd { time: Ts(t), task: TaskId(task), worker: WorkerId(w), kernel_ns: kernel }
    }

    fn sample_trace() -> Trace {
        Trace::new(
            TraceMeta::default(),
            vec![
                start(0, 1, 0, 0),
                end(100, 1, 0, 100),
                start(100, 2, 0, 0),
                end(250, 2, 0, 150),
                start(50, 3, 1, 1),
                end(150, 3, 1, 100),
                TraceEvent::Transfer {
                    start: Ts(0),
                    end: Ts(40),
                    data: DataId(0),
                    from: MemSpace::HOST,
                    to: MemSpace::device(0),
                    bytes: 64,
                    by: Some(WorkerId(1)),
                },
            ],
            0,
        )
    }

    #[test]
    fn busy_time_sums_measured_kernels() {
        let a = TraceAnalysis::new(&sample_trace());
        assert_eq!(a.busy[&WorkerId(0)], Duration::from_nanos(250));
        assert_eq!(a.busy[&WorkerId(1)], Duration::from_nanos(100));
        assert_eq!(a.task_count, 3);
        assert_eq!(a.transfer_count, 1);
        assert_eq!(a.span, Ts(250));
        assert_eq!(a.version_counts[&(TemplateId(0), VersionId(0))], 2);
        assert_eq!(a.version_counts[&(TemplateId(0), VersionId(1))], 1);
        assert_eq!(a.transfer_bytes[&TransferKind::Input], 64);
    }

    #[test]
    fn utilization_is_busy_over_span() {
        let a = TraceAnalysis::new(&sample_trace());
        assert!((a.utilization(WorkerId(0)) - 1.0).abs() < 1e-12);
        assert!((a.utilization(WorkerId(1)) - 0.4).abs() < 1e-12);
        assert_eq!(a.utilization(WorkerId(9)), 0.0);
    }

    #[test]
    fn failed_attempts_form_intervals_but_not_busy() {
        let mut evs = vec![
            start(0, 1, 0, 0),
            TraceEvent::TaskFailed {
                time: Ts(80),
                task: TaskId(1),
                worker: WorkerId(0),
                version: VersionId(0),
                attempt: 1,
            },
        ];
        evs.push(start(80, 1, 0, 0));
        evs.push(end(200, 1, 0, 120));
        let a = TraceAnalysis::new(&Trace::new(TraceMeta::default(), evs, 0));
        assert_eq!(a.failed_count, 1);
        assert_eq!(a.task_count, 1);
        assert_eq!(a.intervals.len(), 2);
        assert!(a.intervals[0].failed);
        assert_eq!(a.busy[&WorkerId(0)], Duration::from_nanos(120));
        assert_eq!(a.find_overlap(), None);
    }

    #[test]
    fn overlap_is_detected() {
        let a = TraceAnalysis::new(&Trace::new(
            TraceMeta::default(),
            vec![start(0, 1, 0, 0), end(100, 1, 0, 100), start(50, 2, 0, 0), end(150, 2, 0, 100)],
            0,
        ));
        assert!(a.find_overlap().is_some());
    }

    #[test]
    fn phase_mix_counts_decisions() {
        let mk = |t: u64, phase: Phase| {
            TraceEvent::Decision(DecisionRecord {
                time: Ts(t),
                task: TaskId(t),
                template: TemplateId(0),
                bucket: BucketKey(3),
                job: None,
                phase,
                worker: WorkerId(0),
                version: VersionId(0),
                bids: Vec::new(),
                candidates: Vec::new(),
                workers: Vec::new(),
            })
        };
        let a = TraceAnalysis::new(&Trace::new(
            TraceMeta::default(),
            vec![mk(0, Phase::Learning), mk(1, Phase::Learning), mk(2, Phase::Reliable)],
            0,
        ));
        let mix = &a.phase_mix[&(TemplateId(0), BucketKey(3))];
        assert_eq!((mix.learning, mix.reliable, mix.fallback), (2, 1, 0));
        assert_eq!(mix.total(), 3);
        assert_eq!(a.decisions.len(), 3);
        let report = a.phase_report(&TraceMeta::default());
        assert!(report.contains("tpl0"));
    }

    #[test]
    fn tables_render() {
        let a = TraceAnalysis::new(&sample_trace());
        let ut = a.utilization_table();
        assert!(ut.contains("w0"));
        assert!(ut.contains("100.0"));
        let vt = a.version_table(&TraceMeta::default());
        assert!(vt.contains("executions"));
        assert!(vt.contains("tpl0"));
        let tt = a.transfer_table();
        assert!(tt.contains("Input Tx"));
        assert!(tt.contains("64"));
        let tl = a.timeline(&TraceMeta::default(), 40);
        assert!(tl.contains('#'));
    }

    #[test]
    fn csv_lists_tasks_and_transfers() {
        let csv = to_csv(&sample_trace());
        assert!(csv.starts_with("kind,start_ns,end_ns"));
        assert!(csv.contains("task,0,100,w0,t1v0"));
        assert!(csv.contains("transfer,0,40,host->dev0,d0:64B"));
        assert_eq!(csv.lines().count(), 1 + 3 + 1);
    }
}
