//! Trace well-formedness invariants, shared by `versa-analyze --check`,
//! the `trace_smoke` CI bin and the property-test suite.
//!
//! 1. Every `TaskStart` is closed by exactly one terminal event
//!    (`TaskEnd` or `TaskFailed`) at a time ≥ its start, on the same
//!    worker, before the task starts again.
//! 2. A task has at most one `TaskEnd` (completion is final).
//! 3. Retry attempt numbers are strictly increasing per task, starting
//!    at 1 (`TaskFailed` may appear without a `TaskStart` — staging
//!    faults fail a task before its kernel ever runs).
//! 4. Attempt spans never overlap per worker.
//! 5. Transfer spans are well-formed (`start ≤ end`).
//! 6. No task starts on a lost node's worker after the loss event (the
//!    cluster invariant: retirement must precede requeue).
//!
//! Note: a `Trace` drained from a bounded wave (versa-serve) can carry a
//! start whose terminal lands in the *next* wave's trace; `check` is
//! meant for whole-run traces.

use crate::analysis::TraceAnalysis;
use crate::event::{Trace, TraceEvent};
use std::collections::HashMap;

/// Check all invariants; returns human-readable violations (empty =
/// well-formed).
pub fn check(trace: &Trace) -> Vec<String> {
    let mut violations = Vec::new();

    struct TaskState {
        open: Option<(versa_core::WorkerId, crate::Ts)>,
        ended: bool,
        last_attempt: u32,
    }
    let mut tasks: HashMap<u64, TaskState> = HashMap::new();
    // node id → loss time, filled as NodeLost events stream past.
    let mut lost_nodes: HashMap<u16, crate::Ts> = HashMap::new();
    let node_of = |w: versa_core::WorkerId| {
        trace.meta.workers.iter().find(|m| m.id == w).map_or(0, |m| m.node)
    };

    for ev in trace.events() {
        match *ev {
            TraceEvent::NodeLost { time, node } => {
                lost_nodes.entry(node).or_insert(time);
            }
            TraceEvent::TaskStart { time, task, worker, attempt, .. } => {
                if let Some(at) = lost_nodes.get(&node_of(worker)) {
                    if time > *at {
                        violations.push(format!(
                            "{task} started on {worker} at {time}, after its node was lost at {at}"
                        ));
                    }
                }
                let st = tasks
                    .entry(task.0)
                    .or_insert(TaskState { open: None, ended: false, last_attempt: 0 });
                if st.ended {
                    violations.push(format!("{task} started again after completing"));
                }
                if st.open.is_some() {
                    violations.push(format!("{task} started twice without a terminal event"));
                }
                if attempt != st.last_attempt + 1 {
                    violations.push(format!(
                        "{task} attempt numbers not increasing ({} after {})",
                        attempt, st.last_attempt
                    ));
                }
                st.open = Some((worker, time));
            }
            TraceEvent::TaskEnd { time, task, worker, .. } => {
                let st = tasks
                    .entry(task.0)
                    .or_insert(TaskState { open: None, ended: false, last_attempt: 0 });
                if st.ended {
                    violations.push(format!("{task} completed twice"));
                }
                st.ended = true;
                match st.open.take() {
                    Some((w, start)) => {
                        if w != worker {
                            violations.push(format!("{task} started on {w} but ended on {worker}"));
                        }
                        if time < start {
                            violations.push(format!("{task} ended at {time} before start {start}"));
                        }
                    }
                    None => violations.push(format!("{task} ended without a start")),
                }
            }
            TraceEvent::TaskFailed { time, task, worker, attempt, .. } => {
                let st = tasks
                    .entry(task.0)
                    .or_insert(TaskState { open: None, ended: false, last_attempt: 0 });
                if st.ended {
                    violations.push(format!("{task} failed after completing"));
                }
                if attempt != st.last_attempt + 1 {
                    violations.push(format!(
                        "{task} attempt numbers not increasing ({} after {})",
                        attempt, st.last_attempt
                    ));
                }
                st.last_attempt = attempt;
                // A failure may close an open start (kernel fault) or
                // stand alone (staging fault).
                if let Some((w, start)) = st.open.take() {
                    if w != worker {
                        violations.push(format!("{task} started on {w} but failed on {worker}"));
                    }
                    if time < start {
                        violations.push(format!("{task} failed at {time} before start {start}"));
                    }
                }
            }
            TraceEvent::Transfer { start, end, data, .. } if end < start => {
                violations.push(format!("transfer of {data:?} ends at {end} before start {start}"));
            }
            _ => {}
        }
    }

    for (task, st) in &tasks {
        if st.open.is_some() {
            violations.push(format!("t{task} started but never reached a terminal event"));
        }
    }

    let a = TraceAnalysis::new(trace);
    if let Some((p, q)) = a.find_overlap() {
        violations.push(format!(
            "worker {} ran two attempts at once: t{} [{}..{}] overlaps t{} [{}..{}]",
            p.worker, p.task.0, p.start.0, p.end.0, q.task.0, q.start.0, q.end.0
        ));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceMeta, Ts};
    use versa_core::{TaskId, TemplateId, VersionId, WorkerId};

    fn start(t: u64, task: u64, w: u16, attempt: u32) -> TraceEvent {
        TraceEvent::TaskStart {
            time: Ts(t),
            task: TaskId(task),
            worker: WorkerId(w),
            version: VersionId(0),
            template: TemplateId(0),
            attempt,
        }
    }
    fn end(t: u64, task: u64, w: u16) -> TraceEvent {
        TraceEvent::TaskEnd { time: Ts(t), task: TaskId(task), worker: WorkerId(w), kernel_ns: 1 }
    }
    fn failed(t: u64, task: u64, w: u16, attempt: u32) -> TraceEvent {
        TraceEvent::TaskFailed {
            time: Ts(t),
            task: TaskId(task),
            worker: WorkerId(w),
            version: VersionId(0),
            attempt,
        }
    }
    fn trace(evs: Vec<TraceEvent>) -> Trace {
        Trace::new(TraceMeta::default(), evs, 0)
    }

    #[test]
    fn clean_retry_chain_passes() {
        let t = trace(vec![
            start(0, 1, 0, 1),
            failed(10, 1, 0, 1),
            start(10, 1, 1, 2),
            end(30, 1, 1),
        ]);
        assert_eq!(check(&t), Vec::<String>::new());
    }

    #[test]
    fn staging_fault_without_start_passes() {
        let t = trace(vec![failed(5, 1, 0, 1), start(6, 1, 0, 2), end(9, 1, 0)]);
        assert!(check(&t).is_empty());
    }

    #[test]
    fn dangling_start_is_flagged() {
        let v = check(&trace(vec![start(0, 1, 0, 1)]));
        assert!(v.iter().any(|m| m.contains("never reached a terminal")));
    }

    #[test]
    fn double_end_is_flagged() {
        let v = check(&trace(vec![start(0, 1, 0, 1), end(5, 1, 0), end(6, 1, 0)]));
        assert!(v.iter().any(|m| m.contains("without a start") || m.contains("completed twice")));
    }

    #[test]
    fn non_monotonic_attempts_are_flagged() {
        let v = check(&trace(vec![
            start(0, 1, 0, 1),
            failed(5, 1, 0, 1),
            start(6, 1, 0, 1), // attempt should be 2
            end(9, 1, 0),
        ]));
        assert!(v.iter().any(|m| m.contains("not increasing")));
    }

    #[test]
    fn start_after_node_loss_is_flagged() {
        let meta = TraceMeta {
            workers: vec![crate::WorkerMeta {
                id: WorkerId(0),
                device: "smp".into(),
                space: versa_mem::MemSpace::device(1),
                node: 1,
            }],
            ..Default::default()
        };
        let t = Trace::new(
            meta,
            vec![TraceEvent::NodeLost { time: Ts(5), node: 1 }, start(10, 1, 0, 1), end(20, 1, 0)],
            0,
        );
        let v = check(&t);
        assert!(v.iter().any(|m| m.contains("node was lost")), "{v:?}");
        // The same start before the loss is fine.
        let meta = TraceMeta {
            workers: vec![crate::WorkerMeta {
                id: WorkerId(0),
                device: "smp".into(),
                space: versa_mem::MemSpace::device(1),
                node: 1,
            }],
            ..Default::default()
        };
        let t = Trace::new(
            meta,
            vec![start(0, 1, 0, 1), end(4, 1, 0), TraceEvent::NodeLost { time: Ts(5), node: 1 }],
            0,
        );
        assert!(check(&t).is_empty());
    }

    #[test]
    fn worker_overlap_is_flagged() {
        let v = check(&trace(vec![
            start(0, 1, 0, 1),
            start(5, 2, 0, 1),
            end(10, 1, 0),
            end(15, 2, 0),
        ]));
        assert!(v.iter().any(|m| m.contains("two attempts at once") || m.contains("started twice")));
    }
}
