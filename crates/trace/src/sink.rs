//! Lock-light, bounded-memory event recorder.
//!
//! One [`TraceSink`] carries `workers + 1` independent *lanes*: engine
//! thread `i` records into lane `i`, the coordinator records into the
//! last lane ([`TraceSink::coordinator`]). Each lane is a fixed-capacity
//! ring guarded by its own mutex — a worker thread only ever touches its
//! own lane, so the lock is uncontended on the hot path and recording is
//! one `VecDeque` push. When a ring is full the **oldest** event is
//! dropped and counted (flight-recorder semantics: the tail of a run is
//! always intact; [`Trace::dropped`] reports the loss).
//!
//! When tracing is disabled the engines hold no sink at all
//! (`Option<Arc<TraceSink>>` is `None`), so the disabled cost is a
//! branch on an `Option` — the run is byte-identical to an untraced one.

use crate::event::{Trace, TraceEvent};
use crate::meta::TraceMeta;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The `RuntimeConfig::tracing` knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record a trace for this run.
    pub enabled: bool,
    /// Ring capacity per lane (events). Each worker thread and the
    /// coordinator get one lane; total bounded memory is
    /// `(workers + 1) * lane_capacity * sizeof(event)`.
    pub lane_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { enabled: false, lane_capacity: 1 << 16 }
    }
}

impl TraceConfig {
    /// Tracing on, default lane capacity.
    pub fn on() -> TraceConfig {
        TraceConfig { enabled: true, ..TraceConfig::default() }
    }
}

struct Lane {
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

/// The shared recorder. See the module docs for the lane protocol.
pub struct TraceSink {
    lanes: Vec<Mutex<Lane>>,
    cap: usize,
}

impl TraceSink {
    /// A sink with one lane per worker plus a coordinator lane.
    pub fn new(workers: usize, lane_capacity: usize) -> TraceSink {
        let cap = lane_capacity.max(1);
        TraceSink {
            lanes: (0..workers + 1)
                .map(|_| Mutex::new(Lane { ring: VecDeque::new(), dropped: 0 }))
                .collect(),
            cap,
        }
    }

    /// Build the sink an engine should use for a run: `None` when the
    /// config has tracing off (the no-sink path costs one branch).
    pub fn from_config(cfg: &TraceConfig, workers: usize) -> Option<Arc<TraceSink>> {
        cfg.enabled.then(|| Arc::new(TraceSink::new(workers, cfg.lane_capacity)))
    }

    /// The coordinator's lane index (workers use their own index).
    pub fn coordinator(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Record an event into a lane, dropping (and counting) the oldest
    /// event if the ring is full.
    pub fn record(&self, lane: usize, ev: TraceEvent) {
        let mut lane = self.lanes[lane].lock().unwrap();
        if lane.ring.len() == self.cap {
            lane.ring.pop_front();
            lane.dropped += 1;
        }
        lane.ring.push_back(ev);
    }

    /// Total events lost to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.lock().unwrap().dropped).sum()
    }

    /// Drain every lane and merge into a time-ordered [`Trace`]. Lanes
    /// are left empty (the sink can keep recording a subsequent wave).
    pub fn drain(&self, meta: TraceMeta) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        for lane in &self.lanes {
            let mut lane = lane.lock().unwrap();
            events.extend(lane.ring.drain(..));
            dropped += lane.dropped;
            lane.dropped = 0;
        }
        Trace::new(meta, events, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Ts;
    use versa_core::{TaskId, TemplateId, VersionId, WorkerId};

    fn ev(t: u64, task: u64) -> TraceEvent {
        TraceEvent::TaskStart {
            time: Ts(t),
            task: TaskId(task),
            worker: WorkerId(0),
            version: VersionId(0),
            template: TemplateId(0),
            attempt: 1,
        }
    }

    #[test]
    fn disabled_config_yields_no_sink() {
        assert!(TraceSink::from_config(&TraceConfig::default(), 4).is_none());
        assert!(TraceSink::from_config(&TraceConfig::on(), 4).is_some());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let sink = TraceSink::new(0, 3);
        for i in 0..5 {
            sink.record(0, ev(i, i));
        }
        assert_eq!(sink.dropped(), 2);
        let tr = sink.drain(TraceMeta::default());
        assert_eq!(tr.dropped, 2);
        // The *newest* three survive (flight-recorder).
        let kept: Vec<u64> = tr
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::TaskStart { task, .. } => task.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn lanes_merge_in_time_order() {
        let sink = TraceSink::new(2, 16);
        sink.record(0, ev(10, 1));
        sink.record(1, ev(5, 2));
        sink.record(sink.coordinator(), ev(7, 3));
        let tr = sink.drain(TraceMeta::default());
        let times: Vec<u64> = tr.events().iter().map(|e| e.time().0).collect();
        assert_eq!(times, vec![5, 7, 10]);
        // Drain resets the lanes.
        assert_eq!(sink.drain(TraceMeta::default()).len(), 0);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn threaded_recording_loses_nothing_under_capacity() {
        let sink = Arc::new(TraceSink::new(4, 1024));
        let mut handles = Vec::new();
        for lane in 0..4 {
            let s = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.record(lane, ev(i, lane as u64 * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let tr = sink.drain(TraceMeta::default());
        assert_eq!(tr.len(), 400);
        assert_eq!(tr.dropped, 0);
    }
}
