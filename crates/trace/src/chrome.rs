//! Chrome/Perfetto trace exporter (`chrome://tracing` "Trace Event
//! Format" JSON). Load the output in Perfetto or chrome://tracing to get
//! the paper's Fig. 5-style timeline interactively.
//!
//! Layout: pid 0 = compute (one tid per worker), pid 1 = interconnect
//! (one tid per destination space). Completed/failed attempts are `X`
//! duration events, decisions and staging faults are `i` instants.
//! Timestamps are microseconds (the format's unit), with three decimal
//! places preserving nanosecond resolution.

use crate::analysis::TraceAnalysis;
use crate::event::{Trace, TraceEvent};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Serialize a trace as Trace-Event-Format JSON.
pub fn to_chrome_json(trace: &Trace) -> String {
    let a = TraceAnalysis::new(trace);
    let meta = &trace.meta;
    let mut events: Vec<String> = Vec::new();

    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"compute\"}}"
            .to_string(),
    );
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"interconnect\"}}"
            .to_string(),
    );
    for w in &meta.workers {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            w.id.0,
            esc(&format!("{} ({})", meta.worker_label(w.id), w.space))
        ));
    }

    for iv in &a.intervals {
        let name = format!(
            "{}:{}{}",
            meta.template_name(iv.template),
            meta.version_name(iv.template, iv.version),
            if iv.failed { " FAILED" } else { "" }
        );
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"task\":{},\"kernel_ns\":{}}}}}",
            esc(&name),
            if iv.failed { "failed" } else { "task" },
            us(iv.start.0),
            us((iv.end - iv.start).as_nanos() as u64),
            iv.worker.0,
            iv.task.0,
            iv.kernel.as_nanos()
        ));
    }

    for ev in trace.events() {
        match ev {
            TraceEvent::Transfer { start, end, data, from, to, bytes, .. } => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"transfer\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"data\":{},\"bytes\":{}}}}}",
                    esc(&format!("{from}->{to}")),
                    us(start.0),
                    us((*end - *start).as_nanos() as u64),
                    to.index(),
                    data.0,
                    bytes
                ));
            }
            TraceEvent::Decision(d) => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"task\":{},\"phase\":\"{}\",\"bids\":{}}}}}",
                    esc(&format!("assign t{} {}", d.task.0, meta.version_name(d.template, d.version))),
                    us(d.time.0),
                    d.worker.0,
                    d.task.0,
                    d.phase.label(),
                    d.bids.len()
                ));
            }
            _ => {}
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Validate exporter output: syntactically valid JSON with a
/// `traceEvents` array whose members carry the required keys.
pub fn validate(json_text: &str) -> Result<(), String> {
    let doc = crate::json::parse(json_text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i}: missing {key}"));
            }
        }
        match ph {
            "X" => {
                for key in ["ts", "dur"] {
                    if ev.get(key).and_then(|v| v.as_num()).is_none() {
                        return Err(format!("event {i}: X event missing numeric {key}"));
                    }
                }
            }
            "i" => {
                if ev.get("ts").and_then(|v| v.as_num()).is_none() {
                    return Err(format!("event {i}: i event missing numeric ts"));
                }
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Ts;
    use crate::TraceMeta;
    use versa_core::{TaskId, TemplateId, VersionId, WorkerId};
    use versa_mem::{DataId, MemSpace};

    fn sample() -> Trace {
        Trace::new(
            TraceMeta::default(),
            vec![
                TraceEvent::TaskStart {
                    time: Ts(0),
                    task: TaskId(1),
                    worker: WorkerId(0),
                    version: VersionId(0),
                    template: TemplateId(0),
                    attempt: 1,
                },
                TraceEvent::TaskEnd {
                    time: Ts(1500),
                    task: TaskId(1),
                    worker: WorkerId(0),
                    kernel_ns: 1400,
                },
                TraceEvent::Transfer {
                    start: Ts(0),
                    end: Ts(700),
                    data: DataId(3),
                    from: MemSpace::HOST,
                    to: MemSpace::device(0),
                    bytes: 4096,
                    by: Some(WorkerId(0)),
                },
            ],
            0,
        )
    }

    #[test]
    fn exporter_output_validates() {
        let json = to_chrome_json(&sample());
        validate(&json).expect("schema-valid");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Nanosecond resolution survives as fractional microseconds.
        assert!(json.contains("\"ts\":1.500") || json.contains("\"dur\":1.500"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"traceEvents\": 3}").is_err());
        assert!(validate("{\"traceEvents\": [{\"ph\":\"X\"}]}").is_err());
        assert!(validate("not json").is_err());
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
