//! `versa-analyze` — reproduce the paper's artifacts from a trace file.
//!
//! Reads `vtrace v1` files written by the engines' `--trace` flags and
//! prints, per trace:
//!
//! * a per-version execution-count table (paper Table I),
//! * per-category transfer bytes and link occupancy,
//! * a per-worker occupancy timeline + utilization table,
//! * the scheduler's learning→reliable phase-transition report per
//!   (template, size-bucket).
//!
//! ```text
//! versa-analyze [--check] [--require-decisions] [--chrome OUT.json]
//!               [--csv OUT.csv] [--quiet] TRACE...
//! ```
//!
//! `--check` additionally verifies trace well-formedness invariants and
//! exits non-zero on any violation; `--require-decisions` also fails if
//! the trace carries no scheduler decision records (an empty decision
//! ledger means the wiring is broken). `--chrome`/`--csv` convert the
//! (last) input trace for external tools.

use std::process::ExitCode;
use versa_trace::{analysis, chrome, invariants, Trace, TraceAnalysis};

struct Args {
    check: bool,
    require_decisions: bool,
    quiet: bool,
    chrome_out: Option<String>,
    csv_out: Option<String>,
    inputs: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: versa-analyze [--check] [--require-decisions] [--chrome OUT.json]\n\
         \x20                    [--csv OUT.csv] [--quiet] TRACE..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        require_decisions: false,
        quiet: false,
        chrome_out: None,
        csv_out: None,
        inputs: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => args.check = true,
            "--require-decisions" => args.require_decisions = true,
            "--quiet" => args.quiet = true,
            "--chrome" => args.chrome_out = Some(it.next().unwrap_or_else(|| usage())),
            "--csv" => args.csv_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
            path => args.inputs.push(path.to_string()),
        }
    }
    if args.inputs.is_empty() {
        usage();
    }
    args
}

fn analyze_one(path: &str, args: &Args) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let a = TraceAnalysis::new(&trace);

    if !args.quiet {
        println!("=== {path} ===");
        println!(
            "engine {}  ·  {} events ({} dropped)  ·  span {:.3} ms  ·  {} tasks, {} failed attempts, {} transfers, {} decisions\n",
            trace.meta.engine,
            trace.len(),
            trace.dropped,
            a.span.as_duration().as_secs_f64() * 1e3,
            a.task_count,
            a.failed_count,
            a.transfer_count,
            a.decisions.len()
        );
        println!("per-version execution counts (paper Table I):");
        println!("{}", a.version_table(&trace.meta));
        println!("transfers:");
        println!("{}", a.transfer_table());
        println!("per-worker occupancy ('#' compute, 'x' failed attempt, '.' idle):");
        print!("{}", a.timeline(&trace.meta, 72));
        println!();
        println!("{}", a.utilization_table());
        if !a.phase_mix.is_empty() {
            println!("scheduler phase transitions per (template, bucket):");
            println!("{}", a.phase_report(&trace.meta));
        }
    }

    let mut problems = Vec::new();
    if args.check {
        problems.extend(invariants::check(&trace));
    }
    if args.require_decisions && a.decisions.is_empty() {
        problems.push("decision ledger is empty".to_string());
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("{path}: INVARIANT VIOLATION: {p}");
        }
        return Err(format!("{path}: {} invariant violation(s)", problems.len()));
    }
    if args.check && !args.quiet {
        println!("invariants: OK\n");
    }
    Ok(trace)
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = false;
    let mut last: Option<Trace> = None;
    for path in &args.inputs {
        match analyze_one(path, &args) {
            Ok(trace) => last = Some(trace),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if let Some(trace) = &last {
        if let Some(out) = &args.chrome_out {
            let json = chrome::to_chrome_json(trace);
            if let Err(e) = chrome::validate(&json) {
                eprintln!("internal error: exporter produced invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(out, &json) {
                eprintln!("write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}");
        }
        if let Some(out) = &args.csv_out {
            if let Err(e) = std::fs::write(out, analysis::to_csv(trace)) {
                eprintln!("write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
