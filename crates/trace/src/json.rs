//! A minimal JSON parser, used to validate the Chrome-trace exporter's
//! output (the workspace deliberately carries no serde dependency — all
//! JSON in this project is hand-rolled, so the checker must be too).
//!
//! Supports the full JSON grammar except `\u` surrogate pairs are kept
//! as-is (sufficient for validation and for reading back our own
//! exporter, which never emits them).

/// A parsed JSON value. Object keys keep their document order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up an object key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e1, "x\ny", true, null], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert_eq!(arr[4], JsonValue::Null);
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é\t""#).unwrap();
        assert_eq!(v.as_str(), Some("é\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "{} extra",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
