//! Trace metadata: who the workers are and what the templates/versions
//! are called, so exporters and reports can print names instead of ids.

use versa_core::{TemplateId, TemplateRegistry, VersionId, WorkerId, WorkerInfo};
use versa_mem::MemSpace;

/// One worker thread, as it existed during the traced run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerMeta {
    /// Worker id (dense, 0-based).
    pub id: WorkerId,
    /// Device clause name (`smp`, `cuda`, …).
    pub device: String,
    /// The address space the worker runs against.
    pub space: MemSpace,
    /// Cluster node hosting the worker (0 = the coordinator process;
    /// remote nodes are 1-based). Single-node runs leave this 0 and the
    /// text format omits it, so old traces parse and new single-node
    /// traces are byte-identical to old ones.
    pub node: u16,
}

/// One task template with its version names, indexed by [`VersionId`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateMeta {
    /// Template id.
    pub id: TemplateId,
    /// Template (task function) name.
    pub name: String,
    /// Version names, `versions[v]` named by `VersionId(v)`.
    pub versions: Vec<String>,
}

/// Naming/topology metadata attached to every [`Trace`](crate::Trace).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Which engine recorded the trace (`"sim"`, `"native"`, `"serve"`).
    pub engine: String,
    /// The workers, in id order.
    pub workers: Vec<WorkerMeta>,
    /// The templates, in id order.
    pub templates: Vec<TemplateMeta>,
    /// The versioning scheduler's learning threshold λ during the run,
    /// when it was the active scheduler — replaying its decision ledger
    /// offline needs the same threshold.
    pub lambda: Option<u64>,
}

/// Identifier-safe rendering: names are single whitespace-free tokens in
/// the text format, so any embedded whitespace becomes `_`.
fn token(name: &str) -> String {
    if name.is_empty() {
        return "_".to_string();
    }
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

impl TraceMeta {
    /// Capture metadata from a runtime's worker table and template
    /// registry.
    pub fn new(engine: &str, workers: &[WorkerInfo], templates: &TemplateRegistry) -> TraceMeta {
        TraceMeta {
            engine: engine.to_string(),
            workers: workers
                .iter()
                .map(|w| WorkerMeta {
                    id: w.id,
                    device: w.device.clause_name().to_string(),
                    space: w.space,
                    node: 0,
                })
                .collect(),
            templates: templates
                .iter()
                .enumerate()
                .map(|(i, t)| TemplateMeta {
                    id: TemplateId(i as u32),
                    name: token(&t.name),
                    versions: (0..t.version_count())
                        .map(|v| token(&t.version(VersionId(v as u16)).name))
                        .collect(),
                })
                .collect(),
            lambda: None,
        }
    }

    /// The template's name, or `tpl{n}` if unknown.
    pub fn template_name(&self, t: TemplateId) -> String {
        self.templates
            .iter()
            .find(|m| m.id == t)
            .map(|m| m.name.clone())
            .unwrap_or_else(|| format!("{t}"))
    }

    /// The version's name, or `v{n}` if unknown.
    pub fn version_name(&self, t: TemplateId, v: VersionId) -> String {
        self.templates
            .iter()
            .find(|m| m.id == t)
            .and_then(|m| m.versions.get(v.index()).cloned())
            .unwrap_or_else(|| format!("{v}"))
    }

    /// A short worker label like `w2:cuda`.
    pub fn worker_label(&self, w: WorkerId) -> String {
        match self.workers.iter().find(|m| m.id == w) {
            Some(m) => format!("{w}:{}", m.device),
            None => format!("{w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_core::DeviceKind;

    fn sample() -> TraceMeta {
        let mut reg = TemplateRegistry::new();
        reg.template("matmul_tile")
            .main("cublas", &[DeviceKind::Cuda])
            .version("cblas", &[DeviceKind::Smp])
            .register();
        let workers = [
            WorkerInfo { id: WorkerId(0), device: DeviceKind::Smp, space: MemSpace::HOST },
            WorkerInfo { id: WorkerId(1), device: DeviceKind::Cuda, space: MemSpace::device(0) },
        ];
        TraceMeta::new("sim", &workers, &reg)
    }

    #[test]
    fn names_resolve() {
        let m = sample();
        assert_eq!(m.engine, "sim");
        assert_eq!(m.template_name(TemplateId(0)), "matmul_tile");
        assert_eq!(m.version_name(TemplateId(0), VersionId(1)), "cblas");
        assert_eq!(m.worker_label(WorkerId(1)), "w1:cuda");
    }

    #[test]
    fn unknown_ids_fall_back_to_numeric() {
        let m = sample();
        assert_eq!(m.template_name(TemplateId(9)), "tpl9");
        assert_eq!(m.version_name(TemplateId(0), VersionId(7)), "v7");
        assert_eq!(m.worker_label(WorkerId(9)), "w9");
    }

    #[test]
    fn tokens_have_no_whitespace() {
        assert_eq!(token("a b\tc"), "a_b_c");
        assert_eq!(token(""), "_");
    }
}
