//! `vtrace v1` — the line-oriented on-disk trace format.
//!
//! One event per line, whitespace-separated tokens, `#` comments.
//! Written by the engines' `--trace` flags, consumed by `versa-analyze`.
//! The format round-trips: `Trace::parse(trace.to_text()) == trace`.
//!
//! ```text
//! vtrace 1
//! engine sim
//! dropped 0
//! worker 0 smp host
//! worker 1 cuda dev0
//! template 0 matmul_tile cublas cblas
//! created 0 12 0                    # time task template
//! ready 5 12                        # time task
//! decision 5 12 0 3 - learning 1 0  # time task tpl bucket job phase worker version [bids…]
//! start 5 12 1 0 0 1                # time task worker version template attempt
//! end 105 12 1 100                  # time task worker kernel_ns
//! failed 40 7 0 1 2                 # time task worker version attempt
//! xfer 0 40 3 host dev0 4096 1     # start end data from to bytes by-worker
//! job+ 0 1 64                       # time job tasks
//! job- 900 1 1                      # time job ok
//! ```
//!
//! Decision bids are appended as `worker:version:busy:mean:transfer:finish`
//! tokens (durations in ns). Two further token families record the full
//! policy input so decisions replay offline (`versa-gym`): candidate
//! statistics as `cV:scheduled:count:mean_ns` (mean `-` if unmeasured)
//! and worker snapshots as `wW:pressure:busy_ns:transfer_ns:v0+v1` (the
//! trailing field lists runnable versions, `-` if none). Both are
//! letter-prefixed, so parsers distinguish them from digit-leading bid
//! tokens; an optional `lambda N` meta line records the learning
//! threshold. Traces without these extensions still parse.

use crate::event::{Bid, CandidateRecord, DecisionRecord, Phase, Trace, TraceEvent, Ts, WorkerSnapRecord};
use crate::meta::{TemplateMeta, TraceMeta, WorkerMeta};
use std::fmt::Write as _;
use std::time::Duration;
use versa_core::{BucketKey, TaskId, TemplateId, VersionId, WorkerId};
use versa_mem::{DataId, MemSpace};

fn space_token(s: MemSpace) -> String {
    format!("{s}")
}

fn parse_space(tok: &str) -> Result<MemSpace, String> {
    if tok == "host" {
        return Ok(MemSpace::HOST);
    }
    tok.strip_prefix("dev")
        .and_then(|n| n.parse::<u16>().ok())
        .map(MemSpace::device)
        .ok_or_else(|| format!("bad memory space {tok:?}"))
}

impl Trace {
    /// Serialize as `vtrace v1` text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "vtrace 1");
        let _ = writeln!(out, "engine {}", if self.meta.engine.is_empty() { "unknown" } else { &self.meta.engine });
        let _ = writeln!(out, "dropped {}", self.dropped);
        for w in &self.meta.workers {
            let _ = write!(out, "worker {} {} {}", w.id.0, w.device, space_token(w.space));
            // Trailing node token only when remote, so single-node traces
            // stay byte-identical to the pre-cluster format.
            if w.node != 0 {
                let _ = write!(out, " n{}", w.node);
            }
            out.push('\n');
        }
        for t in &self.meta.templates {
            let _ = write!(out, "template {} {}", t.id.0, t.name);
            for v in &t.versions {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        if let Some(lambda) = self.meta.lambda {
            let _ = writeln!(out, "lambda {lambda}");
        }
        for ev in self.events() {
            match ev {
                TraceEvent::TaskCreated { time, task, template } => {
                    let _ = writeln!(out, "created {} {} {}", time.0, task.0, template.0);
                }
                TraceEvent::TaskReady { time, task } => {
                    let _ = writeln!(out, "ready {} {}", time.0, task.0);
                }
                TraceEvent::Decision(d) => {
                    let job = d.job.map(|j| j.to_string()).unwrap_or_else(|| "-".into());
                    let _ = write!(
                        out,
                        "decision {} {} {} {} {} {} {} {}",
                        d.time.0,
                        d.task.0,
                        d.template.0,
                        d.bucket.0,
                        job,
                        d.phase.label(),
                        d.worker.0,
                        d.version.0
                    );
                    for b in &d.bids {
                        let _ = write!(
                            out,
                            " {}:{}:{}:{}:{}:{}",
                            b.worker.0,
                            b.version.0,
                            b.busy.as_nanos(),
                            b.mean.as_nanos(),
                            b.transfer.as_nanos(),
                            b.finish.as_nanos()
                        );
                    }
                    for c in &d.candidates {
                        let mean = c
                            .mean
                            .map(|m| m.as_nanos().to_string())
                            .unwrap_or_else(|| "-".into());
                        let _ = write!(
                            out,
                            " c{}:{}:{}:{mean}",
                            c.version.0, c.scheduled, c.count
                        );
                    }
                    for w in &d.workers {
                        let runnable = if w.runnable.is_empty() {
                            "-".to_string()
                        } else {
                            w.runnable
                                .iter()
                                .map(|v| v.0.to_string())
                                .collect::<Vec<_>>()
                                .join("+")
                        };
                        let _ = write!(
                            out,
                            " w{}:{}:{}:{}:{runnable}",
                            w.worker.0,
                            w.pressure,
                            w.busy.as_nanos(),
                            w.transfer.as_nanos()
                        );
                    }
                    out.push('\n');
                }
                TraceEvent::TaskStart { time, task, worker, version, template, attempt } => {
                    let _ = writeln!(
                        out,
                        "start {} {} {} {} {} {}",
                        time.0, task.0, worker.0, version.0, template.0, attempt
                    );
                }
                TraceEvent::TaskEnd { time, task, worker, kernel_ns } => {
                    let _ = writeln!(out, "end {} {} {} {}", time.0, task.0, worker.0, kernel_ns);
                }
                TraceEvent::TaskFailed { time, task, worker, version, attempt } => {
                    let _ = writeln!(
                        out,
                        "failed {} {} {} {} {}",
                        time.0, task.0, worker.0, version.0, attempt
                    );
                }
                TraceEvent::Transfer { start, end, data, from, to, bytes, by } => {
                    let by = by.map(|w| w.0.to_string()).unwrap_or_else(|| "-".into());
                    let _ = writeln!(
                        out,
                        "xfer {} {} {} {} {} {} {}",
                        start.0,
                        end.0,
                        data.0,
                        space_token(*from),
                        space_token(*to),
                        bytes,
                        by
                    );
                }
                TraceEvent::NodeLost { time, node } => {
                    let _ = writeln!(out, "nodelost {} {}", time.0, node);
                }
                TraceEvent::JobAdmitted { time, job, tasks } => {
                    let _ = writeln!(out, "job+ {} {} {}", time.0, job, tasks);
                }
                TraceEvent::JobCompleted { time, job, ok } => {
                    let _ = writeln!(out, "job- {} {} {}", time.0, job, u8::from(*ok));
                }
            }
        }
        out
    }

    /// Parse `vtrace v1` text.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut meta = TraceMeta::default();
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut saw_header = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
            let toks: Vec<&str> = line.split_whitespace().collect();
            if !saw_header {
                if toks != ["vtrace", "1"] {
                    return Err(err("expected `vtrace 1` header"));
                }
                saw_header = true;
                continue;
            }
            macro_rules! num {
                ($i:expr, $ty:ty) => {
                    toks.get($i)
                        .and_then(|t| t.parse::<$ty>().ok())
                        .ok_or_else(|| err(concat!("bad field ", stringify!($i))))?
                };
            }
            match toks[0] {
                "engine" => meta.engine = toks.get(1).unwrap_or(&"unknown").to_string(),
                "dropped" => dropped = num!(1, u64),
                "lambda" => meta.lambda = Some(num!(1, u64)),
                "worker" => {
                    let space = parse_space(toks.get(3).ok_or_else(|| err("missing space"))?)
                        .map_err(|e| err(&e))?;
                    let node = match toks.get(4) {
                        None => 0,
                        Some(t) => t
                            .strip_prefix('n')
                            .and_then(|n| n.parse::<u16>().ok())
                            .ok_or_else(|| err("bad node token"))?,
                    };
                    meta.workers.push(WorkerMeta {
                        id: WorkerId(num!(1, u16)),
                        device: toks.get(2).ok_or_else(|| err("missing device"))?.to_string(),
                        space,
                        node,
                    });
                }
                "template" => {
                    meta.templates.push(TemplateMeta {
                        id: TemplateId(num!(1, u32)),
                        name: toks.get(2).ok_or_else(|| err("missing name"))?.to_string(),
                        versions: toks[3..].iter().map(|s| s.to_string()).collect(),
                    });
                }
                "created" => events.push(TraceEvent::TaskCreated {
                    time: Ts(num!(1, u64)),
                    task: TaskId(num!(2, u64)),
                    template: TemplateId(num!(3, u32)),
                }),
                "ready" => events.push(TraceEvent::TaskReady {
                    time: Ts(num!(1, u64)),
                    task: TaskId(num!(2, u64)),
                }),
                "decision" => {
                    let job = match *toks.get(5).ok_or_else(|| err("missing job"))? {
                        "-" => None,
                        j => Some(j.parse::<u64>().map_err(|_| err("bad job"))?),
                    };
                    let phase = Phase::from_label(toks.get(6).ok_or_else(|| err("missing phase"))?)
                        .ok_or_else(|| err("bad phase"))?;
                    let mut bids = Vec::new();
                    let mut candidates = Vec::new();
                    let mut workers = Vec::new();
                    let ns = |s: &str| {
                        s.parse::<u64>().map(Duration::from_nanos).map_err(|_| err("bad bid field"))
                    };
                    for tok in &toks[9..] {
                        if let Some(rest) = tok.strip_prefix('c') {
                            let f: Vec<&str> = rest.split(':').collect();
                            if f.len() != 4 {
                                return Err(err("bad candidate"));
                            }
                            let mean = match f[3] {
                                "-" => None,
                                m => Some(ns(m)?),
                            };
                            candidates.push(CandidateRecord {
                                version: VersionId(
                                    f[0].parse().map_err(|_| err("bad candidate version"))?,
                                ),
                                scheduled: f[1].parse().map_err(|_| err("bad candidate field"))?,
                                count: f[2].parse().map_err(|_| err("bad candidate field"))?,
                                mean,
                            });
                            continue;
                        }
                        if let Some(rest) = tok.strip_prefix('w') {
                            let f: Vec<&str> = rest.split(':').collect();
                            if f.len() != 5 {
                                return Err(err("bad worker snapshot"));
                            }
                            let runnable = match f[4] {
                                "-" => Vec::new(),
                                list => list
                                    .split('+')
                                    .map(|v| v.parse().map(VersionId))
                                    .collect::<Result<Vec<_>, _>>()
                                    .map_err(|_| err("bad runnable list"))?,
                            };
                            workers.push(WorkerSnapRecord {
                                worker: WorkerId(
                                    f[0].parse().map_err(|_| err("bad snapshot worker"))?,
                                ),
                                pressure: f[1].parse().map_err(|_| err("bad snapshot field"))?,
                                busy: ns(f[2])?,
                                transfer: ns(f[3])?,
                                runnable,
                            });
                            continue;
                        }
                        let f: Vec<&str> = tok.split(':').collect();
                        if f.len() != 6 {
                            return Err(err("bad bid"));
                        }
                        bids.push(Bid {
                            worker: WorkerId(f[0].parse().map_err(|_| err("bad bid worker"))?),
                            version: VersionId(f[1].parse().map_err(|_| err("bad bid version"))?),
                            busy: ns(f[2])?,
                            mean: ns(f[3])?,
                            transfer: ns(f[4])?,
                            finish: ns(f[5])?,
                        });
                    }
                    events.push(TraceEvent::Decision(DecisionRecord {
                        time: Ts(num!(1, u64)),
                        task: TaskId(num!(2, u64)),
                        template: TemplateId(num!(3, u32)),
                        bucket: BucketKey(num!(4, u64)),
                        job,
                        phase,
                        worker: WorkerId(num!(7, u16)),
                        version: VersionId(num!(8, u16)),
                        bids,
                        candidates,
                        workers,
                    }));
                }
                "start" => events.push(TraceEvent::TaskStart {
                    time: Ts(num!(1, u64)),
                    task: TaskId(num!(2, u64)),
                    worker: WorkerId(num!(3, u16)),
                    version: VersionId(num!(4, u16)),
                    template: TemplateId(num!(5, u32)),
                    attempt: num!(6, u32),
                }),
                "end" => events.push(TraceEvent::TaskEnd {
                    time: Ts(num!(1, u64)),
                    task: TaskId(num!(2, u64)),
                    worker: WorkerId(num!(3, u16)),
                    kernel_ns: num!(4, u64),
                }),
                "failed" => events.push(TraceEvent::TaskFailed {
                    time: Ts(num!(1, u64)),
                    task: TaskId(num!(2, u64)),
                    worker: WorkerId(num!(3, u16)),
                    version: VersionId(num!(4, u16)),
                    attempt: num!(5, u32),
                }),
                "xfer" => {
                    let from = parse_space(toks.get(4).ok_or_else(|| err("missing from"))?)
                        .map_err(|e| err(&e))?;
                    let to = parse_space(toks.get(5).ok_or_else(|| err("missing to"))?)
                        .map_err(|e| err(&e))?;
                    let by = match *toks.get(7).ok_or_else(|| err("missing by"))? {
                        "-" => None,
                        w => Some(WorkerId(w.parse().map_err(|_| err("bad by-worker"))?)),
                    };
                    events.push(TraceEvent::Transfer {
                        start: Ts(num!(1, u64)),
                        end: Ts(num!(2, u64)),
                        data: DataId(num!(3, u32)),
                        from,
                        to,
                        bytes: num!(6, u64),
                        by,
                    });
                }
                "nodelost" => events.push(TraceEvent::NodeLost {
                    time: Ts(num!(1, u64)),
                    node: num!(2, u16),
                }),
                "job+" => events.push(TraceEvent::JobAdmitted {
                    time: Ts(num!(1, u64)),
                    job: num!(2, u64),
                    tasks: num!(3, u64),
                }),
                "job-" => events.push(TraceEvent::JobCompleted {
                    time: Ts(num!(1, u64)),
                    job: num!(2, u64),
                    ok: num!(3, u8) != 0,
                }),
                other => return Err(err(&format!("unknown record {other:?}"))),
            }
        }
        if !saw_header {
            return Err("empty input (no `vtrace 1` header)".to_string());
        }
        Ok(Trace::new(meta, events, dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let meta = TraceMeta {
            engine: "sim".into(),
            workers: vec![
                WorkerMeta { id: WorkerId(0), device: "smp".into(), space: MemSpace::HOST, node: 0 },
                WorkerMeta { id: WorkerId(1), device: "cuda".into(), space: MemSpace::device(0), node: 0 },
            ],
            templates: vec![TemplateMeta {
                id: TemplateId(0),
                name: "matmul_tile".into(),
                versions: vec!["cublas".into(), "cblas".into()],
            }],
            lambda: Some(3),
        };
        Trace::new(
            meta,
            vec![
                TraceEvent::TaskCreated { time: Ts(0), task: TaskId(1), template: TemplateId(0) },
                TraceEvent::TaskReady { time: Ts(0), task: TaskId(1) },
                TraceEvent::Decision(DecisionRecord {
                    time: Ts(1),
                    task: TaskId(1),
                    template: TemplateId(0),
                    bucket: BucketKey(3),
                    job: Some(7),
                    phase: Phase::Reliable,
                    worker: WorkerId(1),
                    version: VersionId(0),
                    bids: vec![Bid {
                        worker: WorkerId(1),
                        version: VersionId(0),
                        busy: Duration::from_nanos(10),
                        mean: Duration::from_nanos(20),
                        transfer: Duration::from_nanos(5),
                        finish: Duration::from_nanos(35),
                    }],
                    candidates: vec![
                        CandidateRecord {
                            version: VersionId(0),
                            scheduled: 3,
                            count: 3,
                            mean: Some(Duration::from_nanos(20)),
                        },
                        CandidateRecord {
                            version: VersionId(1),
                            scheduled: 3,
                            count: 2,
                            mean: None,
                        },
                    ],
                    workers: vec![
                        WorkerSnapRecord {
                            worker: WorkerId(0),
                            pressure: 1,
                            busy: Duration::from_nanos(40),
                            transfer: Duration::ZERO,
                            runnable: vec![VersionId(1)],
                        },
                        WorkerSnapRecord {
                            worker: WorkerId(1),
                            pressure: 0,
                            busy: Duration::ZERO,
                            transfer: Duration::from_nanos(5),
                            runnable: vec![],
                        },
                    ],
                }),
                TraceEvent::Transfer {
                    start: Ts(1),
                    end: Ts(5),
                    data: DataId(9),
                    from: MemSpace::HOST,
                    to: MemSpace::device(0),
                    bytes: 4096,
                    by: Some(WorkerId(1)),
                },
                TraceEvent::TaskStart {
                    time: Ts(5),
                    task: TaskId(1),
                    worker: WorkerId(1),
                    version: VersionId(0),
                    template: TemplateId(0),
                    attempt: 1,
                },
                TraceEvent::TaskFailed {
                    time: Ts(9),
                    task: TaskId(1),
                    worker: WorkerId(1),
                    version: VersionId(0),
                    attempt: 1,
                },
                TraceEvent::TaskStart {
                    time: Ts(9),
                    task: TaskId(1),
                    worker: WorkerId(1),
                    version: VersionId(0),
                    template: TemplateId(0),
                    attempt: 2,
                },
                TraceEvent::TaskEnd { time: Ts(20), task: TaskId(1), worker: WorkerId(1), kernel_ns: 11 },
                TraceEvent::JobAdmitted { time: Ts(0), job: 7, tasks: 1 },
                TraceEvent::JobCompleted { time: Ts(21), job: 7, ok: true },
            ],
            2,
        )
    }

    #[test]
    fn round_trips() {
        let t = sample();
        let text = t.to_text();
        let back = Trace::parse(&text).expect("parse");
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.dropped, t.dropped);
        assert_eq!(back.events(), t.events());
        // And again, to be sure serialization is stable.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn cluster_records_round_trip() {
        let meta = TraceMeta {
            engine: "native".into(),
            workers: vec![
                WorkerMeta { id: WorkerId(0), device: "smp".into(), space: MemSpace::HOST, node: 0 },
                WorkerMeta {
                    id: WorkerId(1),
                    device: "smp".into(),
                    space: MemSpace::device(1),
                    node: 2,
                },
            ],
            templates: vec![],
            lambda: None,
        };
        let t = Trace::new(meta, vec![TraceEvent::NodeLost { time: Ts(9), node: 2 }], 0);
        let text = t.to_text();
        // Local workers keep the pre-cluster line shape; remote workers
        // get the trailing node token.
        assert!(text.contains("worker 0 smp host\n"), "{text}");
        assert!(text.contains("worker 1 smp dev1 n2\n"), "{text}");
        assert!(text.contains("nodelost 9 2\n"), "{text}");
        let back = Trace::parse(&text).expect("parse");
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "vtrace 1\n# a comment\n\nengine sim\ndropped 0\nready 5 12 # inline\n";
        let t = Trace::parse(text).expect("parse");
        assert_eq!(t.len(), 1);
        assert_eq!(t.meta.engine, "sim");
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("vtrace 2\n").is_err());
        assert!(Trace::parse("vtrace 1\nwhatsit 1 2\n").is_err());
        assert!(Trace::parse("vtrace 1\nend 1\n").is_err());
        assert!(Trace::parse("vtrace 1\nxfer 0 5 1 moon host 64 -\n").is_err());
    }
}
