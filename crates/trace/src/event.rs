//! The unified event model shared by the simulator, the native engine
//! and versa-serve.

use crate::meta::TraceMeta;
use std::time::Duration;
use versa_core::{BucketKey, TaskId, TemplateId, VersionId, WorkerId};
use versa_mem::{DataId, MemSpace};

/// A trace timestamp: nanoseconds since the run's epoch (virtual time for
/// the simulator, wall time since engine start for the native engine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ts(pub u64);

impl Ts {
    /// The run epoch.
    pub const ZERO: Ts = Ts(0);

    /// The timestamp as an offset from the epoch.
    #[inline]
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }
}

impl std::ops::Sub for Ts {
    type Output = Duration;
    fn sub(self, rhs: Ts) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add<Duration> for Ts {
    type Output = Ts;
    fn add(self, rhs: Duration) -> Ts {
        Ts(self.0 + rhs.as_nanos() as u64)
    }
}

impl std::fmt::Display for Ts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// Which regime the versioning scheduler was in when it made a decision
/// (paper §IV-B: learning phase vs reliable earliest-executor phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Still training some version for this (template, bucket).
    Learning,
    /// All versions profiled; earliest-executor bidding.
    Reliable,
    /// Profiles exhausted/quarantined; least-bad fallback.
    ReliableFallback,
}

impl Phase {
    /// Stable one-word label (used by the text format and reports).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Learning => "learning",
            Phase::Reliable => "reliable",
            Phase::ReliableFallback => "fallback",
        }
    }

    /// Inverse of [`Phase::label`].
    pub fn from_label(s: &str) -> Option<Phase> {
        match s {
            "learning" => Some(Phase::Learning),
            "reliable" => Some(Phase::Reliable),
            "fallback" => Some(Phase::ReliableFallback),
            _ => None,
        }
    }
}

/// One worker's bid in an earliest-executor auction: estimated finish =
/// current busy time + profiled mean + transfer penalty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bid {
    /// The bidding worker.
    pub worker: WorkerId,
    /// The version this worker would run.
    pub version: VersionId,
    /// Estimated queue drain time at bid time.
    pub busy: Duration,
    /// Profiled mean execution time of `version` in the task's bucket.
    pub mean: Duration,
    /// Estimated copy-in time for non-resident data.
    pub transfer: Duration,
    /// Total estimated finish time (the auction metric).
    pub finish: Duration,
}

/// Profile statistics of one candidate version as the scheduler saw them
/// immediately before a decision (before that decision's own bookkeeping)
/// — the per-version half of the policy input, recorded so decisions
/// replay offline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateRecord {
    /// The candidate version.
    pub version: VersionId,
    /// Assignments so far in this size group.
    pub scheduled: u64,
    /// Completed executions so far in this size group.
    pub count: u64,
    /// Mean execution time, once measured.
    pub mean: Option<Duration>,
}

/// One worker's load at decision time plus the versions its device can
/// run — the per-worker half of the policy input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerSnapRecord {
    /// The worker.
    pub worker: WorkerId,
    /// Queue pressure: queued tasks plus the running one.
    pub pressure: u64,
    /// Estimated queue drain time.
    pub busy: Duration,
    /// Estimated copy-in time for this task's non-resident data.
    pub transfer: Duration,
    /// Template versions the worker's device can run, in version order.
    pub runnable: Vec<VersionId>,
}

/// One scheduler decision: which worker/version won, in which phase, and
/// every bid considered — the data `versioning.rs` computes on every
/// assignment, preserved instead of thrown away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// When the decision was drained from the scheduler.
    pub time: Ts,
    /// The task assigned.
    pub task: TaskId,
    /// Its template.
    pub template: TemplateId,
    /// The size bucket its profile lookup used.
    pub bucket: BucketKey,
    /// Owning job, when running under versa-serve.
    pub job: Option<u64>,
    /// Scheduling regime.
    pub phase: Phase,
    /// Chosen worker.
    pub worker: WorkerId,
    /// Chosen version.
    pub version: VersionId,
    /// All bids considered (empty in the learning phase, which assigns
    /// round-robin to train untrained versions).
    pub bids: Vec<Bid>,
    /// Candidate versions with their pre-decision profile statistics
    /// (empty in traces recorded before the policy snapshot existed).
    pub candidates: Vec<CandidateRecord>,
    /// Per-worker load snapshots at decision time (empty in old traces).
    pub workers: Vec<WorkerSnapRecord>,
}

/// One traced event. Timestamps are [`Ts`] nanoseconds from the run
/// epoch; `Transfer` carries a span, everything else an instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task instance entered the graph (dependences still unresolved).
    TaskCreated {
        /// When.
        time: Ts,
        /// Which task.
        task: TaskId,
        /// Its template.
        template: TemplateId,
    },
    /// All of a task's dependences resolved; it entered the ready pool.
    TaskReady {
        /// When.
        time: Ts,
        /// Which task.
        task: TaskId,
    },
    /// The scheduler assigned a task (full bid ledger attached).
    Decision(DecisionRecord),
    /// A task attempt began executing on a worker.
    TaskStart {
        /// When.
        time: Ts,
        /// Which task.
        task: TaskId,
        /// On which worker.
        worker: WorkerId,
        /// As which implementation.
        version: VersionId,
        /// Its template.
        template: TemplateId,
        /// 1-based attempt number (> 1 after retries).
        attempt: u32,
    },
    /// A task attempt completed successfully.
    TaskEnd {
        /// When.
        time: Ts,
        /// Which task.
        task: TaskId,
        /// On which worker.
        worker: WorkerId,
        /// Measured kernel time in ns — the exact duration the engine
        /// reports to the scheduler and sums into `worker_busy`.
        kernel_ns: u64,
    },
    /// A task attempt failed (kernel fault or staging fault); the task
    /// will be retried or abort the run.
    TaskFailed {
        /// When.
        time: Ts,
        /// Which task.
        task: TaskId,
        /// On which worker.
        worker: WorkerId,
        /// As which implementation.
        version: VersionId,
        /// 1-based attempt number (this failure included).
        attempt: u32,
    },
    /// A data transfer occupied a link from `start` to `end`.
    Transfer {
        /// Transfer start.
        start: Ts,
        /// Transfer completion.
        end: Ts,
        /// The allocation moved.
        data: DataId,
        /// Source space.
        from: MemSpace,
        /// Destination space.
        to: MemSpace,
        /// Bytes moved.
        bytes: u64,
        /// Destination worker the copy staged for (`None` for flushes
        /// and eviction write-backs).
        by: Option<WorkerId>,
    },
    /// A cluster node became unreachable (heartbeat timeout or transport
    /// error). Workers hosted on the node are retired; their in-flight
    /// tasks fail with `NodeLost` and requeue onto survivors.
    NodeLost {
        /// When the loss was detected.
        time: Ts,
        /// Which node (1-based; 0 is the coordinator and never lost).
        node: u16,
    },
    /// versa-serve admitted a job into the runtime.
    JobAdmitted {
        /// When.
        time: Ts,
        /// Job id.
        job: u64,
        /// Tasks the job submitted.
        tasks: u64,
    },
    /// versa-serve finished a job.
    JobCompleted {
        /// When.
        time: Ts,
        /// Job id.
        job: u64,
        /// Whether it completed cleanly.
        ok: bool,
    },
}

impl TraceEvent {
    /// The event's (primary) timestamp, for ordering.
    pub fn time(&self) -> Ts {
        match self {
            TraceEvent::TaskCreated { time, .. }
            | TraceEvent::TaskReady { time, .. }
            | TraceEvent::TaskStart { time, .. }
            | TraceEvent::TaskEnd { time, .. }
            | TraceEvent::TaskFailed { time, .. }
            | TraceEvent::NodeLost { time, .. }
            | TraceEvent::JobAdmitted { time, .. }
            | TraceEvent::JobCompleted { time, .. } => *time,
            TraceEvent::Decision(d) => d.time,
            TraceEvent::Transfer { start, .. } => *start,
        }
    }

    /// Lifecycle rank used to break timestamp ties when merging lanes.
    /// Terminal events (`failed`/`end`) sort *before* `start` at equal
    /// timestamps: a retry can begin at the very instant the previous
    /// attempt failed (simulator requeue), and a chained task can start
    /// the instant its predecessor ends.
    pub(crate) fn order_rank(&self) -> u8 {
        match self {
            TraceEvent::JobAdmitted { .. } => 0,
            TraceEvent::TaskCreated { .. } => 1,
            TraceEvent::TaskReady { .. } => 2,
            TraceEvent::Decision(_) => 3,
            TraceEvent::Transfer { .. } => 4,
            // A node loss sorts before the task failures it causes.
            TraceEvent::NodeLost { .. } => 5,
            TraceEvent::TaskFailed { .. } => 6,
            TraceEvent::TaskEnd { .. } => 7,
            TraceEvent::TaskStart { .. } => 8,
            TraceEvent::JobCompleted { .. } => 9,
        }
    }
}

/// A merged, time-ordered trace: metadata naming workers and templates,
/// the event stream, and how many events overflowed the ring buffers.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Engine/topology/naming metadata.
    pub meta: TraceMeta,
    events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overflow (oldest dropped first).
    pub dropped: u64,
}

impl Trace {
    /// Build a trace, sorting events by `(time, lifecycle rank)` (stable,
    /// so intra-lane order is preserved for ties).
    pub fn new(meta: TraceMeta, mut events: Vec<TraceEvent>, dropped: u64) -> Trace {
        events.sort_by_key(|e| (e.time(), e.order_rank()));
        Trace { meta, events, dropped }
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Lifecycle events concerning one task (transfers and job events
    /// excluded).
    pub fn task_events(&self, task: TaskId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| match e {
            TraceEvent::TaskCreated { task: t, .. }
            | TraceEvent::TaskReady { task: t, .. }
            | TraceEvent::TaskStart { task: t, .. }
            | TraceEvent::TaskEnd { task: t, .. }
            | TraceEvent::TaskFailed { task: t, .. } => *t == task,
            TraceEvent::Decision(d) => d.task == task,
            _ => false,
        })
    }

    /// The scheduler decision ledger, in time order.
    pub fn decisions(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Decision(d) => Some(d),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn start(t: u64, task: u64, w: u16) -> TraceEvent {
        TraceEvent::TaskStart {
            time: Ts(t),
            task: TaskId(task),
            worker: WorkerId(w),
            version: VersionId(0),
            template: TemplateId(0),
            attempt: 1,
        }
    }

    #[test]
    fn events_sort_by_time_then_rank() {
        let evs = vec![
            TraceEvent::TaskEnd { time: Ts(10), task: TaskId(1), worker: WorkerId(0), kernel_ns: 10 },
            start(10, 2, 0),
            start(0, 1, 0),
            TraceEvent::TaskReady { time: Ts(0), task: TaskId(1) },
        ];
        let tr = Trace::new(TraceMeta::default(), evs, 0);
        // ready(0) < start(0) < end(10) < start(10): terminal events sort
        // before starts at equal timestamps.
        assert!(matches!(tr.events()[0], TraceEvent::TaskReady { .. }));
        assert!(matches!(tr.events()[1], TraceEvent::TaskStart { task: TaskId(1), .. }));
        assert!(matches!(tr.events()[2], TraceEvent::TaskEnd { .. }));
        assert!(matches!(tr.events()[3], TraceEvent::TaskStart { task: TaskId(2), .. }));
    }

    #[test]
    fn task_events_filters_by_task() {
        let tr = Trace::new(
            TraceMeta::default(),
            vec![
                start(0, 1, 0),
                start(0, 2, 1),
                TraceEvent::TaskEnd { time: Ts(5), task: TaskId(1), worker: WorkerId(0), kernel_ns: 5 },
            ],
            0,
        );
        assert_eq!(tr.task_events(TaskId(1)).count(), 2);
        assert_eq!(tr.task_events(TaskId(3)).count(), 0);
        assert_eq!(tr.len(), 3);
        assert!(!tr.is_empty());
    }

    #[test]
    fn phase_labels_round_trip() {
        for p in [Phase::Learning, Phase::Reliable, Phase::ReliableFallback] {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("bogus"), None);
    }

    #[test]
    fn ts_arithmetic() {
        assert_eq!(Ts(100) - Ts(40), Duration::from_nanos(60));
        assert_eq!(Ts(40) - Ts(100), Duration::ZERO); // saturating
        assert_eq!(Ts(40) + Duration::from_nanos(2), Ts(42));
        assert_eq!(Ts::ZERO.as_duration(), Duration::ZERO);
    }
}
