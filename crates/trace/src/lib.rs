//! # versa-trace — unified runtime tracing and decision-ledger observability
//!
//! The paper's whole evaluation is trace-shaped: per-version execution
//! counts (Table I), earliest-executor timelines (Fig. 5), and
//! bytes-transferred-per-category. This crate is the one event model both
//! execution engines record into, so a native trace and a simulated trace
//! of the same program are comparable event-for-event.
//!
//! * [`TraceEvent`] — the unified event model: task lifecycle (created →
//!   ready → running → done/failed/retried), scheduler [`DecisionRecord`]s
//!   (phase + every worker's bid), staging/transfer spans, and serve-level
//!   job admission events.
//! * [`TraceSink`] — a lock-light per-worker ring-buffer recorder:
//!   bounded memory, drop-counted overflow, one uncontended mutex per
//!   lane (each engine thread owns a lane, so locks never collide).
//! * [`Trace`] — the merged, time-ordered result with [`TraceMeta`]
//!   naming workers, templates and versions.
//! * [`analysis::TraceAnalysis`] — occupancy, per-category transfer
//!   volume, version counts, phase mix; the numbers reconcile exactly
//!   with the engine's `RunReport`.
//! * [`invariants::check`] — trace well-formedness (every start has one
//!   terminal event, spans never overlap per worker, retry attempts are
//!   monotonic).
//! * Exporters: [`chrome::to_chrome_json`] (chrome://tracing / Perfetto),
//!   [`analysis::to_csv`], and the `vtrace v1` text format
//!   ([`Trace::to_text`] / [`Trace::parse`]) consumed by the
//!   `versa-analyze` CLI.

pub mod analysis;
pub mod chrome;
mod event;
pub mod invariants;
pub mod json;
mod meta;
mod sink;
mod text;

pub use analysis::{TaskInterval, TraceAnalysis};
pub use event::{
    Bid, CandidateRecord, DecisionRecord, Phase, Trace, TraceEvent, Ts, WorkerSnapRecord,
};
pub use meta::{TemplateMeta, TraceMeta, WorkerMeta};
pub use sink::{TraceConfig, TraceSink};
