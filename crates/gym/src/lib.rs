//! # versa-gym — the trace-replay scheduler gym
//!
//! Every decision the versioning scheduler makes is recorded in the
//! trace's decision ledger together with its full policy input (per-
//! candidate profile statistics, per-worker load snapshots, λ). That
//! turns scheduler work into an offline eval loop:
//!
//! 1. **record** a production (or smoke) run's trace ([`record`]),
//! 2. **replay** the ledger through any [`Policy`] — the identity policy
//!    (`round-robin`) must reproduce the recorded decisions exactly
//!    ([`replay`]),
//! 3. **score** candidate policies against each other on makespan proxy,
//!    learning cost and decision agreement ([`score`]).
//!
//! The `versa-gym` binary wraps all three; CI runs it as the `gym-smoke`
//! job and the golden-trace tests in `tests/` gate the policy refactor
//! on decision-for-decision identity with pre-refactor recordings.
//!
//! [`Policy`]: versa_core::Policy

#![warn(missing_docs)]

pub mod record;
pub mod replay;
pub mod score;

pub use replay::{Ledger, Mismatch, Oracle, Replay, ReplayStep, Score};
pub use score::{gym_report, to_json, WorkloadScores};
