//! Scoreboard: replay every shipped policy over every workload's ledger
//! and render the results as the `gym_report` table plus a JSON blob for
//! committed benchmark artifacts.

use crate::replay::{replay, Ledger, Replay};
use versa_bench::{Cell, FigureResult};
use versa_core::PolicyKind;

/// All shipped policies replayed over one workload's ledger.
#[derive(Debug)]
pub struct WorkloadScores {
    /// Workload label, e.g. `mm_wide_sim`.
    pub name: String,
    /// Engine that recorded the ledger (`sim`/`native`).
    pub engine: String,
    /// One replay per shipped policy, in [`PolicyKind::shipped`] order.
    pub replays: Vec<Replay>,
}

/// Score every shipped policy against `ledger`.
pub fn score_workload(name: &str, engine: &str, ledger: &Ledger) -> WorkloadScores {
    WorkloadScores {
        name: name.to_string(),
        engine: engine.to_string(),
        replays: PolicyKind::shipped().into_iter().map(|k| replay(ledger, k)).collect(),
    }
}

/// Render the scoreboard as the `gym_report` figure table.
pub fn gym_report(scores: &[WorkloadScores]) -> FigureResult {
    let mut fig = FigureResult::new(
        "gym_report",
        "Scheduler gym: policy replay scores over recorded decision ledgers",
        &[
            "workload",
            "engine",
            "policy",
            "decisions",
            "ver-agree",
            "place-agree",
            "learning",
            "regret-ms",
            "makespan-ms",
        ],
    );
    for w in scores {
        for r in &w.replays {
            fig.push_row(vec![
                Cell::text(&w.name),
                Cell::text(&w.engine),
                Cell::text(&r.policy),
                Cell::num_p(r.score.decisions as f64, 0),
                Cell::num_p(r.score.version_agreement, 3),
                Cell::num_p(r.score.placement_agreement, 3),
                Cell::num_p(r.score.learning_decisions as f64, 0),
                Cell::num_p(r.score.learning_cost.as_secs_f64() * 1e3, 3),
                Cell::num_p(r.score.makespan_proxy.as_secs_f64() * 1e3, 3),
            ]);
        }
    }
    fig.note(
        "agreement = fraction of decisions matching the recorded ledger; \
         round-robin is the identity policy and must score 1.000 on both.",
    );
    fig.note(
        "regret = sum over decisions of oracle(chosen) - oracle(best candidate); \
         makespan = queueing-free per-worker clock proxy (ranking metric, not wall time).",
    );
    fig
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize the scoreboard as JSON (hand-rolled — the workspace carries
/// no serde), in the shape of the other committed `BENCH_*.json` files.
pub fn to_json(scores: &[WorkloadScores]) -> String {
    let mut out = String::from("{\n  \"bench\": \"gym_report\",\n  \"workloads\": [\n");
    for (wi, w) in scores.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"engine\": \"{}\", \"policies\": [\n",
            json_escape(&w.name),
            json_escape(&w.engine)
        ));
        for (ri, r) in w.replays.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"policy\": \"{}\", \"decisions\": {}, \
                 \"version_agreement\": {:.6}, \"placement_agreement\": {:.6}, \
                 \"learning_decisions\": {}, \"regret_ms\": {:.6}, \
                 \"makespan_proxy_ms\": {:.6}, \"mismatches\": {}}}{}\n",
                json_escape(&r.policy),
                r.score.decisions,
                r.score.version_agreement,
                r.score.placement_agreement,
                r.score.learning_decisions,
                r.score.learning_cost.as_secs_f64() * 1e3,
                r.score.makespan_proxy.as_secs_f64() * 1e3,
                r.mismatches.len(),
                if ri + 1 < w.replays.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if wi + 1 < scores.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record_sim;

    #[test]
    fn scoreboard_covers_all_shipped_policies_and_identity_is_exact() {
        let trace = record_sim("mm-wide").unwrap();
        let ledger = Ledger::from_trace(&trace).unwrap();
        let scores = vec![score_workload("mm_wide_sim", "sim", &ledger)];

        let shipped = PolicyKind::shipped().len();
        assert!(shipped >= 3, "ISSUE requires scoring at least 3 policies");
        assert_eq!(scores[0].replays.len(), shipped);
        let identity = &scores[0].replays[0];
        assert_eq!(identity.policy, "round-robin");
        assert_eq!(identity.score.version_agreement, 1.0);
        assert_eq!(identity.score.placement_agreement, 1.0);
        assert!(identity.mismatches.is_empty());

        let fig = gym_report(&scores);
        assert_eq!(fig.rows.len(), shipped);
        let json = to_json(&scores);
        assert!(json.contains("\"policy\": \"ucb1\""));
        assert!(json.contains("\"bench\": \"gym_report\""));
    }
}
