//! Replaying a recorded decision ledger through a [`Policy`].
//!
//! Each recorded decision carries the *inputs* the live scheduler saw —
//! per-candidate profile statistics and per-worker load snapshots,
//! captured immediately before any bookkeeping — so a policy can be
//! re-run over the ledger as a pure function, decision by decision, with
//! no runtime in the loop. The identity policy (`round-robin`, the
//! shipped scheduler behavior) must agree with the recording on every
//! decision; alternative policies diverge and get scored on what their
//! divergence would have cost ([`Score`]).

use std::collections::HashMap;
use std::time::Duration;
use versa_core::scheduler::DecisionPhase;
use versa_core::{
    BucketKey, CandidateStats, PolicyCtx, PolicyKind, TaskId, TemplateId, VersionId, WorkerId,
    WorkerSnap,
};
use versa_trace::{Phase, Trace, TraceEvent};

/// Default λ for traces recorded before the meta carried it.
const DEFAULT_LAMBDA: u64 = 3;

/// One recorded decision, lifted into the scheduler's own policy-input
/// types so it can be fed straight to [`Policy::decide`].
///
/// [`Policy::decide`]: versa_core::Policy::decide
#[derive(Debug, Clone)]
pub struct ReplayStep {
    /// Task the decision was for.
    pub task: TaskId,
    /// Task's template.
    pub template: TemplateId,
    /// Profile size bucket the task fell into.
    pub bucket: BucketKey,
    /// Owning job, when the task came in through the serving layer.
    pub job: Option<u64>,
    /// Per-candidate profile statistics at decision time.
    pub candidates: Vec<CandidateStats>,
    /// Per-worker load snapshots at decision time.
    pub workers: Vec<WorkerSnap>,
    /// What the live scheduler chose.
    pub recorded: (Phase, VersionId, WorkerId),
}

/// Per-`(template, bucket, version)` mean kernel durations mined from the
/// trace, used to price replayed choices.
///
/// Built from `TaskStart`/`TaskEnd` joins where the trace has them (the
/// actual measured kernel times), back-filled from the recorded
/// candidate statistics (the scheduler's own running means, taken from
/// each version's best-trained appearance in the ledger) for versions
/// the run never executed.
#[derive(Debug, Default)]
pub struct Oracle {
    means: HashMap<(TemplateId, BucketKey, VersionId), Duration>,
}

impl Oracle {
    /// Mean duration of `version` for `(template, bucket)`, if known.
    pub fn duration(&self, t: TemplateId, b: BucketKey, v: VersionId) -> Option<Duration> {
        self.means.get(&(t, b, v)).copied()
    }

    /// Worst known mean across versions of `(template, bucket)` — the
    /// pessimistic price for a choice the oracle has no data on.
    pub fn worst(&self, t: TemplateId, b: BucketKey) -> Option<Duration> {
        self.means
            .iter()
            .filter(|((mt, mb, _), _)| *mt == t && *mb == b)
            .map(|(_, &d)| d)
            .max()
    }

    /// Number of `(template, bucket, version)` entries.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Whether the oracle knows nothing at all.
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }
}

/// A parsed decision ledger: the replayable steps plus everything needed
/// to score a replay.
#[derive(Debug)]
pub struct Ledger {
    /// λ in effect during the recording (learning threshold).
    pub lambda: u64,
    /// The decisions, in the order the live scheduler made them.
    pub steps: Vec<ReplayStep>,
    /// Duration oracle mined from the same trace.
    pub oracle: Oracle,
}

impl Ledger {
    /// Lift a trace's decision ledger into replayable form.
    ///
    /// Fails when the trace has no decisions at all, or when any decision
    /// lacks the recorded policy inputs (traces recorded before the
    /// ledger carried candidate/worker snapshots can't be replayed).
    pub fn from_trace(trace: &Trace) -> Result<Ledger, String> {
        let lambda = trace.meta.lambda.unwrap_or(DEFAULT_LAMBDA);
        let mut steps = Vec::new();
        let mut bare = 0usize;
        for d in trace.decisions() {
            if d.candidates.is_empty() || d.workers.is_empty() {
                bare += 1;
                continue;
            }
            steps.push(ReplayStep {
                task: d.task,
                template: d.template,
                bucket: d.bucket,
                job: d.job,
                candidates: d
                    .candidates
                    .iter()
                    .map(|c| CandidateStats {
                        version: c.version,
                        scheduled: c.scheduled,
                        count: c.count,
                        mean: c.mean,
                    })
                    .collect(),
                workers: d
                    .workers
                    .iter()
                    .map(|w| WorkerSnap {
                        worker: w.worker,
                        pressure: w.pressure,
                        busy: w.busy,
                        transfer: w.transfer,
                        runnable: w.runnable.clone(),
                    })
                    .collect(),
                recorded: (d.phase, d.version, d.worker),
            });
        }
        if bare > 0 {
            return Err(format!(
                "{bare} decision(s) lack recorded policy inputs — \
                 re-record the trace with a current build"
            ));
        }
        if steps.is_empty() {
            return Err("trace has no decision ledger (was decision logging on?)".into());
        }
        let oracle = build_oracle(trace, &steps);
        Ok(Ledger { lambda, steps, oracle })
    }
}

/// Mine measured kernel means from `TaskStart`/`TaskEnd` pairs, keyed by
/// the `(template, bucket)` each task's decision recorded, then back-fill
/// versions the run never executed from the best-trained recorded
/// candidate means.
fn build_oracle(trace: &Trace, steps: &[ReplayStep]) -> Oracle {
    // Task -> (template, bucket) from its decision (re-decisions of a
    // retried task keep the same key, so last-wins is fine).
    let mut task_key: HashMap<TaskId, (TemplateId, BucketKey)> = HashMap::new();
    for s in steps {
        task_key.insert(s.task, (s.template, s.bucket));
    }

    // Join starts to ends to collect measured samples per (t, b, v).
    let mut live: HashMap<TaskId, VersionId> = HashMap::new();
    let mut samples: HashMap<(TemplateId, BucketKey, VersionId), (Duration, u32)> = HashMap::new();
    for e in trace.events() {
        match e {
            TraceEvent::TaskStart { task, version, .. } => {
                live.insert(*task, *version);
            }
            TraceEvent::TaskEnd { task, kernel_ns, .. } => {
                if let (Some(&(t, b)), Some(&v)) = (task_key.get(task), live.get(task)) {
                    let slot = samples.entry((t, b, v)).or_insert((Duration::ZERO, 0));
                    slot.0 += Duration::from_nanos(*kernel_ns);
                    slot.1 += 1;
                }
            }
            _ => {}
        }
    }
    let mut means: HashMap<_, _> =
        samples.into_iter().map(|(k, (sum, n))| (k, sum / n.max(1))).collect();

    // Back-fill from recorded candidate statistics: for each (t, b, v)
    // without a measured mean, use the recorded mean with the highest
    // sample count anywhere in the ledger.
    let mut best: HashMap<(TemplateId, BucketKey, VersionId), (u64, Duration)> = HashMap::new();
    for s in steps {
        for c in &s.candidates {
            if let Some(m) = c.mean {
                let k = (s.template, s.bucket, c.version);
                let e = best.entry(k).or_insert((c.count, m));
                if c.count > e.0 {
                    *e = (c.count, m);
                }
            }
        }
    }
    for (k, (_, m)) in best {
        means.entry(k).or_insert(m);
    }
    Oracle { means }
}

/// A replayed decision that differs from the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Index of the decision in ledger order.
    pub index: usize,
    /// Task the decision was for.
    pub task: TaskId,
    /// What the live scheduler chose: `(phase, version, worker)`.
    pub recorded: (Phase, VersionId, WorkerId),
    /// What the replayed policy chose.
    pub replayed: (Phase, VersionId, WorkerId),
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (rp, rv, rw) = self.recorded;
        let (pp, pv, pw) = self.replayed;
        write!(
            f,
            "decision #{} task {}: recorded {}/v{}@w{}, replayed {}/v{}@w{}",
            self.index,
            self.task.0,
            rp.label(),
            rv.0,
            rw.0,
            pp.label(),
            pv.0,
            pw.0
        )
    }
}

/// Aggregate replay metrics for one `(ledger, policy)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    /// Number of decisions replayed.
    pub decisions: usize,
    /// Fraction of decisions whose chosen *version* matched the recording.
    pub version_agreement: f64,
    /// Fraction whose `(version, worker)` pair matched the recording.
    pub placement_agreement: f64,
    /// Decisions the policy spent in its learning phase.
    pub learning_decisions: usize,
    /// Learning-cost regret: Σ over decisions of
    /// `oracle(chosen) − min over candidates of oracle(candidate)`.
    pub learning_cost: Duration,
    /// Makespan proxy: accumulate each chosen worker's clock by the
    /// choice's oracle duration plus that worker's recorded transfer
    /// estimate; report the max clock. A queueing-free lower bound, good
    /// for *ranking* policies on the same ledger, not for absolute time.
    pub makespan_proxy: Duration,
}

/// Result of replaying one ledger through one policy.
#[derive(Debug)]
pub struct Replay {
    /// The policy's label.
    pub policy: String,
    /// Decisions that diverged from the recording.
    pub mismatches: Vec<Mismatch>,
    /// Aggregate metrics.
    pub score: Score,
}

fn trace_phase(p: DecisionPhase) -> Phase {
    match p {
        DecisionPhase::Learning => Phase::Learning,
        DecisionPhase::Reliable => Phase::Reliable,
        DecisionPhase::ReliableFallback => Phase::ReliableFallback,
    }
}

/// Replay every decision in `ledger` through a fresh instance of `kind`.
pub fn replay(ledger: &Ledger, kind: PolicyKind) -> Replay {
    let mut policy = kind.build();
    let mut clocks: HashMap<WorkerId, Duration> = HashMap::new();
    let mut mismatches = Vec::new();
    let mut version_agree = 0usize;
    let mut placement_agree = 0usize;
    let mut learning = 0usize;
    let mut regret = Duration::ZERO;

    for (i, step) in ledger.steps.iter().enumerate() {
        let ctx = PolicyCtx {
            template: step.template,
            bucket: step.bucket,
            job: step.job,
            lambda: ledger.lambda,
            candidates: &step.candidates,
            workers: &step.workers,
        };
        let choice = policy.decide(&ctx);
        let replayed = (trace_phase(choice.phase), choice.version, choice.worker);
        if replayed == step.recorded {
            version_agree += 1;
            placement_agree += 1;
        } else {
            if choice.version == step.recorded.1 {
                version_agree += 1;
            }
            mismatches.push(Mismatch {
                index: i,
                task: step.task,
                recorded: step.recorded,
                replayed,
            });
        }
        if choice.phase == DecisionPhase::Learning {
            learning += 1;
        }

        let price = |v: VersionId| ledger.oracle.duration(step.template, step.bucket, v);
        let dur = price(choice.version)
            .or_else(|| ledger.oracle.worst(step.template, step.bucket))
            .unwrap_or(Duration::ZERO);
        let best = step.candidates.iter().filter_map(|c| price(c.version)).min().unwrap_or(dur);
        regret += dur.saturating_sub(best);

        let transfer = step
            .workers
            .iter()
            .find(|w| w.worker == choice.worker)
            .map(|w| w.transfer)
            .unwrap_or_default();
        *clocks.entry(choice.worker).or_default() += dur + transfer;
    }

    let n = ledger.steps.len();
    Replay {
        policy: kind.label().to_string(),
        mismatches,
        score: Score {
            decisions: n,
            version_agreement: version_agree as f64 / n.max(1) as f64,
            placement_agreement: placement_agree as f64 / n.max(1) as f64,
            learning_decisions: learning,
            learning_cost: regret,
            makespan_proxy: clocks.values().max().copied().unwrap_or_default(),
        },
    }
}

/// Replay through the identity policy (`round-robin`, the shipped
/// scheduler behavior) and demand decision-for-decision agreement with
/// the recording. Returns the number of decisions checked.
pub fn check_identity(ledger: &Ledger) -> Result<usize, String> {
    let r = replay(ledger, PolicyKind::RoundRobin);
    if r.mismatches.is_empty() {
        return Ok(r.score.decisions);
    }
    let shown: Vec<String> = r.mismatches.iter().take(5).map(|m| m.to_string()).collect();
    Err(format!(
        "identity replay diverged on {} of {} decisions:\n  {}",
        r.mismatches.len(),
        r.score.decisions,
        shown.join("\n  ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use versa_trace::{CandidateRecord, DecisionRecord, TraceMeta, Ts, WorkerSnapRecord};

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn decision(
        i: u64,
        phase: Phase,
        version: VersionId,
        worker: WorkerId,
        candidates: Vec<CandidateRecord>,
        workers: Vec<WorkerSnapRecord>,
    ) -> TraceEvent {
        TraceEvent::Decision(DecisionRecord {
            time: Ts(i),
            task: TaskId(i),
            template: TemplateId(0),
            bucket: BucketKey(0),
            job: None,
            phase,
            worker,
            version,
            bids: Vec::new(),
            candidates,
            workers,
        })
    }

    fn cand(v: u16, scheduled: u64, count: u64, mean: Option<Duration>) -> CandidateRecord {
        CandidateRecord { version: VersionId(v), scheduled, count, mean }
    }

    fn snap(w: u16, pressure: u64, busy: Duration, runnable: &[u16]) -> WorkerSnapRecord {
        WorkerSnapRecord {
            worker: WorkerId(w),
            pressure,
            busy,
            transfer: Duration::ZERO,
            runnable: runnable.iter().map(|&v| VersionId(v)).collect(),
        }
    }

    /// A 2-version, 2-worker ledger: λ=1, so decision 0 and 1 learn (one
    /// round-robin pass), decision 2 bids and picks the faster v0.
    fn tiny_trace() -> Trace {
        let meta = TraceMeta { lambda: Some(1), ..TraceMeta::default() };
        let both = |s0: u64, c0: u64, m0: Option<Duration>, s1: u64, c1, m1| {
            vec![cand(0, s0, c0, m0), cand(1, s1, c1, m1)]
        };
        let snaps = |b0: u64, b1: u64| vec![snap(0, 0, ms(b0), &[0, 1]), snap(1, 0, ms(b1), &[1])];
        let events = vec![
            decision(0, Phase::Learning, VersionId(0), WorkerId(0), both(0, 0, None, 0, 0, None), snaps(0, 0)),
            decision(
                1,
                Phase::Learning,
                VersionId(1),
                WorkerId(0),
                both(1, 0, None, 0, 0, None),
                snaps(0, 5),
            ),
            decision(
                2,
                Phase::Reliable,
                VersionId(0),
                WorkerId(0),
                both(1, 1, Some(ms(4)), 1, 1, Some(ms(9))),
                snaps(0, 0),
            ),
        ];
        Trace::new(meta, events, 0)
    }

    #[test]
    fn identity_replay_matches_recording() {
        let ledger = Ledger::from_trace(&tiny_trace()).unwrap();
        assert_eq!(ledger.lambda, 1);
        assert_eq!(check_identity(&ledger).unwrap(), 3);
    }

    #[test]
    fn oracle_prefers_measured_over_recorded_means() {
        let mut trace = tiny_trace();
        let mut events = trace.events().to_vec();
        events.push(TraceEvent::TaskStart {
            time: Ts(10),
            task: TaskId(0),
            worker: WorkerId(0),
            version: VersionId(0),
            template: TemplateId(0),
            attempt: 0,
        });
        events.push(TraceEvent::TaskEnd {
            time: Ts(11),
            task: TaskId(0),
            worker: WorkerId(0),
            kernel_ns: ms(6).as_nanos() as u64,
        });
        trace = Trace::new(trace.meta.clone(), events, 0);
        let ledger = Ledger::from_trace(&trace).unwrap();
        // v0 measured at 6ms (overrides the recorded 4ms mean); v1 only
        // ever recorded, back-filled at 9ms.
        let d = |v| ledger.oracle.duration(TemplateId(0), BucketKey(0), VersionId(v));
        assert_eq!(d(0), Some(ms(6)));
        assert_eq!(d(1), Some(ms(9)));
        assert_eq!(ledger.oracle.worst(TemplateId(0), BucketKey(0)), Some(ms(9)));
    }

    #[test]
    fn mismatches_are_reported_with_context() {
        let ledger = Ledger::from_trace(&tiny_trace()).unwrap();
        // UCB1 never round-robins, so it diverges somewhere on this
        // ledger; the mismatch list pinpoints where.
        let r = replay(&ledger, PolicyKind::Ucb1 { exploration: 0.5 });
        assert_eq!(r.score.decisions, 3);
        for m in &r.mismatches {
            assert!(m.to_string().contains("decision #"));
        }
        assert!(r.score.version_agreement <= 1.0);
    }

    #[test]
    fn bare_decisions_are_rejected() {
        let meta = TraceMeta { lambda: Some(1), ..TraceMeta::default() };
        let trace = Trace::new(
            meta,
            vec![decision(0, Phase::Learning, VersionId(0), WorkerId(0), Vec::new(), Vec::new())],
            0,
        );
        let err = Ledger::from_trace(&trace).unwrap_err();
        assert!(err.contains("lack recorded policy inputs"), "{err}");
    }

    #[test]
    fn empty_ledger_is_rejected() {
        let trace = Trace::new(TraceMeta::default(), Vec::new(), 0);
        assert!(Ledger::from_trace(&trace).unwrap_err().contains("no decision ledger"));
    }
}
