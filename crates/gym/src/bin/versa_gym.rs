//! `versa-gym` — record, replay, and score scheduler policies offline.
//!
//! ```text
//! versa-gym record [--out-dir DIR] [--native] [WORKLOAD...]
//! versa-gym replay [--policy NAME] [--check-identity] FILE.vtrace...
//! versa-gym score  [--out FILE.json] FILE.vtrace...
//! ```
//!
//! `record` runs the named workloads (default: all of them) with tracing
//! on and writes one `.vtrace` per `(workload, engine)` into `--out-dir`
//! (default `traces/`). `replay` re-runs one policy over each ledger and
//! reports agreement with the recording — `--check-identity` exits
//! non-zero on any divergence, which is the CI `gym-smoke` gate. `score`
//! replays every shipped policy and prints the `gym_report` table.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use versa_core::PolicyKind;
use versa_gym::{record, replay, score};
use versa_trace::Trace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: versa-gym record [--out-dir DIR] [--native] [WORKLOAD...]\n\
        \x20      versa-gym replay [--policy NAME] [--check-identity] FILE.vtrace...\n\
        \x20      versa-gym score  [--out FILE.json] FILE.vtrace...\n\
        workloads: {:?}\n\
        policies:  {:?}",
        record::WORKLOADS,
        PolicyKind::shipped().iter().map(|k| k.label()).collect::<Vec<_>>(),
    );
    ExitCode::from(2)
}

fn load_ledger(path: &Path) -> Result<(String, replay::Ledger), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let trace = Trace::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let ledger =
        replay::Ledger::from_trace(&trace).map_err(|e| format!("{}: {e}", path.display()))?;
    let name = path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
    Ok((format!("{name} [{}]", trace.meta.engine), ledger))
}

fn cmd_record(args: &[String]) -> ExitCode {
    let mut out_dir = PathBuf::from("traces");
    let mut native = false;
    let mut workloads: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out-dir" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--native" => native = true,
            w if !w.starts_with('-') => workloads.push(w.to_string()),
            _ => return usage(),
        }
    }
    if workloads.is_empty() {
        workloads = record::WORKLOADS.iter().map(|w| w.to_string()).collect();
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("versa-gym: create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    for w in &workloads {
        let (engine, traced) =
            if native { ("native", record::record_native(w)) } else { ("sim", record::record_sim(w)) };
        let trace = match traced {
            Ok(t) => t,
            Err(e) => {
                eprintln!("versa-gym: record {w}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = out_dir.join(format!("{}_{engine}.vtrace", w.replace('-', "_")));
        if let Err(e) = std::fs::write(&path, trace.to_text()) {
            eprintln!("versa-gym: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let decisions = trace.decisions().count();
        println!("recorded {} ({decisions} decisions, {} events)", path.display(), trace.len());
    }
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut kind = PolicyKind::RoundRobin;
    let mut check_identity = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--policy" => match it.next().and_then(|n| PolicyKind::parse(n)) {
                Some(k) => kind = k,
                None => return usage(),
            },
            "--check-identity" => check_identity = true,
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            _ => return usage(),
        }
    }
    if files.is_empty() {
        return usage();
    }
    let mut failed = false;
    for f in &files {
        let (name, ledger) = match load_ledger(f) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("versa-gym: {e}");
                return ExitCode::FAILURE;
            }
        };
        if check_identity {
            match replay::check_identity(&ledger) {
                Ok(n) => println!("{name}: identity OK over {n} decisions"),
                Err(e) => {
                    eprintln!("{name}: {e}");
                    failed = true;
                }
            }
        }
        let r = replay::replay(&ledger, kind.clone());
        println!(
            "{name}: {} over {} decisions — version agreement {:.3}, placement {:.3}, \
             {} mismatches, regret {:.3} ms, makespan proxy {:.3} ms",
            r.policy,
            r.score.decisions,
            r.score.version_agreement,
            r.score.placement_agreement,
            r.mismatches.len(),
            r.score.learning_cost.as_secs_f64() * 1e3,
            r.score.makespan_proxy.as_secs_f64() * 1e3,
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_score(args: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            _ => return usage(),
        }
    }
    if files.is_empty() {
        return usage();
    }
    let mut scores = Vec::new();
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("versa-gym: {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        let trace = match Trace::parse(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("versa-gym: {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        let ledger = match replay::Ledger::from_trace(&trace) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("versa-gym: {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        let name = f.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        scores.push(score::score_workload(&name, &trace.meta.engine, &ledger));
    }
    print!("{}", score::gym_report(&scores));
    if let Some(path) = out {
        let json = score::to_json(&scores);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("versa-gym: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("score") => cmd_score(&args[1..]),
        _ => usage(),
    }
}
