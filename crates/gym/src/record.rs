//! Recording gym workloads: run a workload with tracing + decision
//! logging on and hand back the resulting [`Trace`].
//!
//! The workload set is deliberately tiny — these are the fixtures the
//! golden-trace tests and the CI `gym-smoke` job replay, so they have to
//! finish in seconds on a laptop while still exercising both scheduler
//! phases (λ learning rounds, then reliable bidding) and, for `mm-wide`,
//! a five-version template.

use versa_apps::cholesky::{self, CholeskyConfig, CholeskyVariant};
use versa_apps::matmul::{self, MatmulConfig, MatmulVariant};
use versa_core::SchedulerKind;
use versa_runtime::{NativeConfig, RuntimeConfig};
use versa_sim::PlatformConfig;
use versa_trace::Trace;

/// Workloads `versa-gym record` knows how to run.
pub const WORKLOADS: &[&str] = &["mm-wide", "cholesky"];

/// A traced [`RuntimeConfig`] on the versioning scheduler — decision
/// logging rides along with tracing.
fn traced_rc() -> RuntimeConfig {
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.tracing.enabled = true;
    rc
}

/// Run `workload` on the simulated engine and return its trace.
///
/// Simulated runs are deterministic: recording the same workload twice
/// yields byte-identical ledgers, which is what lets the golden tests
/// compare a fresh run against a committed fixture.
pub fn record_sim(workload: &str) -> Result<Trace, String> {
    let report = match workload {
        "mm-wide" => matmul::run_sim_with(
            traced_rc(),
            MatmulConfig { n: 128, bs: 32 },
            MatmulVariant::Wide,
            PlatformConfig::minotauro(2, 1),
        ),
        "cholesky" => cholesky::run_sim_with(
            traced_rc(),
            CholeskyConfig { n: 1024, bs: 128 },
            CholeskyVariant::PotrfHybrid,
            PlatformConfig::minotauro(2, 1),
        ),
        other => return Err(format!("unknown workload `{other}` (try: {WORKLOADS:?})")),
    };
    report.trace.ok_or_else(|| format!("{workload}: traced run produced no trace"))
}

/// Run `workload` on the native engine (real OS threads, wall time) and
/// return its trace. Timings — and therefore decisions past the learning
/// phase — vary run to run; native fixtures are only good for replay
/// *identity* checks, which re-derive decisions from the recorded inputs.
pub fn record_native(workload: &str) -> Result<Trace, String> {
    let trace = match workload {
        "mm-wide" => {
            matmul::run_native_with(
                traced_rc(),
                MatmulConfig { n: 128, bs: 32 },
                MatmulVariant::Wide,
                NativeConfig::new(2, 1),
                7,
            )
            .0
            .trace
        }
        "cholesky" => {
            cholesky::run_native_with(
                traced_rc(),
                CholeskyConfig { n: 1024, bs: 128 },
                CholeskyVariant::PotrfHybrid,
                NativeConfig::new(2, 1),
                7,
            )
            .0
            .trace
        }
        other => return Err(format!("unknown workload `{other}` (try: {WORKLOADS:?})")),
    };
    trace.ok_or_else(|| format!("{workload}: traced run produced no trace"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_recording_is_deterministic() {
        let a = record_sim("mm-wide").unwrap();
        let b = record_sim("mm-wide").unwrap();
        assert_eq!(a.to_text(), b.to_text(), "two sim recordings of the same workload differ");
        assert!(a.decisions().next().is_some(), "recorded trace carries a decision ledger");
    }

    #[test]
    fn unknown_workload_is_an_error() {
        assert!(record_sim("nope").is_err());
        assert!(record_native("nope").is_err());
    }
}
