//! Golden-trace tests gating the `Policy`-trait extraction.
//!
//! The fixtures in `fixtures/` were recorded with the *pre-refactor*
//! `VersioningScheduler` (decision logic inlined in `assign`). Two
//! independent checks pin the refactored scheduler to that behavior:
//!
//! 1. **Replay identity** — feeding each recorded decision's snapshot
//!    through `RoundRobinLearning` reproduces the recorded
//!    `(phase, version, worker)` exactly, on all four fixtures (mm-wide
//!    and cholesky, sim and native engines).
//! 2. **Live identity** — re-running the sim workloads with the current
//!    scheduler yields traces byte-identical to the committed fixtures
//!    (the sim engine is deterministic, so any decision drift shows up
//!    as a text diff). Native runs are wall-time dependent and are
//!    covered by check 1 only.

use std::path::PathBuf;
use versa_gym::record;
use versa_gym::replay::{check_identity, Ledger};
use versa_trace::Trace;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn fixture_ledger(name: &str) -> Ledger {
    let trace = Trace::parse(&fixture(name)).expect("fixture parses");
    Ledger::from_trace(&trace).expect("fixture carries a replayable ledger")
}

#[test]
fn replay_identity_mm_wide_sim() {
    assert_eq!(check_identity(&fixture_ledger("mm_wide_sim.vtrace")).unwrap(), 64);
}

#[test]
fn replay_identity_mm_wide_native() {
    assert_eq!(check_identity(&fixture_ledger("mm_wide_native.vtrace")).unwrap(), 64);
}

#[test]
fn replay_identity_cholesky_sim() {
    assert_eq!(check_identity(&fixture_ledger("cholesky_sim.vtrace")).unwrap(), 120);
}

#[test]
fn replay_identity_cholesky_native() {
    assert_eq!(check_identity(&fixture_ledger("cholesky_native.vtrace")).unwrap(), 120);
}

#[test]
fn live_sim_run_is_byte_identical_to_prerefactor_fixture_mm_wide() {
    let trace = record::record_sim("mm-wide").unwrap();
    assert_eq!(
        trace.to_text(),
        fixture("mm_wide_sim.vtrace"),
        "post-refactor mm-wide sim run diverged from the pre-refactor recording"
    );
}

#[test]
fn live_sim_run_is_byte_identical_to_prerefactor_fixture_cholesky() {
    let trace = record::record_sim("cholesky").unwrap();
    assert_eq!(
        trace.to_text(),
        fixture("cholesky_sim.vtrace"),
        "post-refactor cholesky sim run diverged from the pre-refactor recording"
    );
}

#[test]
fn fixtures_carry_lambda_and_full_snapshots() {
    for name in
        ["mm_wide_sim.vtrace", "mm_wide_native.vtrace", "cholesky_sim.vtrace", "cholesky_native.vtrace"]
    {
        let trace = Trace::parse(&fixture(name)).unwrap();
        assert_eq!(trace.meta.lambda, Some(3), "{name}");
        assert!(
            trace.decisions().all(|d| !d.candidates.is_empty() && !d.workers.is_empty()),
            "{name}: every decision records its policy inputs"
        );
    }
}
