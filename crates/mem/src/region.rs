//! Named allocations and byte ranges within them.

use std::fmt;

/// Identifier of a runtime-managed allocation (an OmpSs "shared datum",
/// e.g. one matrix tile).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u32);

impl fmt::Debug for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A byte range inside one allocation.
///
/// OmpSs dependence clauses (`input([BS*BS]C)`, array sections, pointed
/// data) denote address ranges whose sizes are computed at run time;
/// regions are this runtime's equivalent. Dependence analysis detects
/// conflicts via [`Region::overlaps`]; the coherence [`Directory`]
/// operates on whole allocations.
///
/// [`Directory`]: crate::Directory
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// The allocation this range lives in.
    pub data: DataId,
    /// Byte offset of the range start.
    pub offset: u64,
    /// Length of the range in bytes. A zero-length region never overlaps
    /// anything (it denotes no data).
    pub len: u64,
}

impl Region {
    /// A region covering `len` bytes of allocation `data` from its start.
    #[inline]
    pub fn whole(data: DataId, len: u64) -> Region {
        Region { data, offset: 0, len }
    }

    /// A sub-range of an allocation.
    #[inline]
    pub fn range(data: DataId, offset: u64, len: u64) -> Region {
        Region { data, offset, len }
    }

    /// Exclusive end offset of the range.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether two regions denote intersecting bytes (always false across
    /// different allocations and for zero-length regions).
    #[inline]
    pub fn overlaps(&self, other: &Region) -> bool {
        self.data == other.data
            && self.len > 0
            && other.len > 0
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// Whether `other` is entirely contained in `self`.
    #[inline]
    pub fn contains(&self, other: &Region) -> bool {
        self.data == other.data && self.offset <= other.offset && other.end() <= self.end()
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}[{}..{}]", self.data, self.offset, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(data: u32, offset: u64, len: u64) -> Region {
        Region::range(DataId(data), offset, len)
    }

    #[test]
    fn overlap_same_allocation() {
        assert!(r(0, 0, 10).overlaps(&r(0, 5, 10)));
        assert!(r(0, 5, 10).overlaps(&r(0, 0, 10)));
        assert!(r(0, 0, 10).overlaps(&r(0, 0, 10)));
        assert!(r(0, 0, 10).overlaps(&r(0, 9, 1)));
    }

    #[test]
    fn adjacent_ranges_do_not_overlap() {
        assert!(!r(0, 0, 10).overlaps(&r(0, 10, 10)));
        assert!(!r(0, 10, 10).overlaps(&r(0, 0, 10)));
    }

    #[test]
    fn different_allocations_never_overlap() {
        assert!(!r(0, 0, 10).overlaps(&r(1, 0, 10)));
    }

    #[test]
    fn zero_length_never_overlaps() {
        assert!(!r(0, 5, 0).overlaps(&r(0, 0, 10)));
        assert!(!r(0, 0, 10).overlaps(&r(0, 5, 0)));
    }

    #[test]
    fn containment() {
        assert!(r(0, 0, 10).contains(&r(0, 2, 3)));
        assert!(r(0, 0, 10).contains(&r(0, 0, 10)));
        assert!(!r(0, 2, 3).contains(&r(0, 0, 10)));
        assert!(!r(0, 0, 10).contains(&r(1, 2, 3)));
    }

    #[test]
    fn whole_covers_from_zero() {
        let w = Region::whole(DataId(7), 64);
        assert_eq!(w.offset, 0);
        assert_eq!(w.end(), 64);
        assert!(w.contains(&r(7, 63, 1)));
    }
}
