//! Coherence directory.
//!
//! OmpSs replicates shared data across address spaces and manages coherence
//! transparently (paper §III: "Data can be replicated on different memory
//! spaces and coherency is transparently managed by the runtime"). This
//! module implements the decision side of that machinery: a directory that
//! tracks, for every allocation, the set of spaces currently holding the
//! *latest* value, and emits the minimal [`Transfer`]s needed before a task
//! may access the data in a given space.

use crate::{DataId, MemSpace, Region, Transfer};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Number of lock stripes the directory is split into. Entries are
/// keyed to a stripe by data id, so concurrent admissions and staging
/// touching different allocations proceed without contending on one
/// map-wide lock. Power of two so the modulo compiles to a mask.
const SHARDS: usize = 16;

/// How a task accesses a datum. Mirrors the OmpSs dependence clauses
/// `input` / `output` / `inout`, which with `copy_deps` also carry copy
/// semantics (`copy_in` / `copy_out` / `copy_inout`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessMode {
    /// `input`: the task reads the datum; a valid copy must be present.
    In,
    /// `output`: the task overwrites the datum entirely; no copy-in needed.
    Out,
    /// `inout`: read-modify-write; a valid copy must be present and all
    /// other copies become stale.
    InOut,
}

impl AccessMode {
    /// Whether this access needs the current value to be present.
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// Whether this access produces a new value.
    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

/// Directory entry for one allocation.
#[derive(Clone, Debug)]
pub struct HandleState {
    /// Size of the allocation in bytes.
    pub bytes: u64,
    /// Spaces currently holding the latest value. Invariant: non-empty.
    /// Kept sorted for determinism.
    valid: Vec<MemSpace>,
}

impl HandleState {
    /// Spaces currently holding the latest value.
    pub fn valid_spaces(&self) -> &[MemSpace] {
        &self.valid
    }

    fn insert(&mut self, space: MemSpace) {
        if let Err(pos) = self.valid.binary_search(&space) {
            self.valid.insert(pos, space);
        }
    }
}

/// The coherence directory: one [`HandleState`] per registered allocation.
///
/// The directory is a *decision* structure — it answers "what transfers
/// must happen for space S to access datum D?" and updates its validity
/// bookkeeping as if those transfers were performed. Execution engines are
/// responsible for actually carrying the transfers out (in virtual or real
/// time) before the task body runs.
///
/// The directory is lock-striped internally ([`SHARDS`] stripes keyed
/// by data id), so every method takes `&self` and concurrent callers
/// touching different allocations never serialize on a common lock.
///
/// ```
/// use versa_mem::{AccessMode, DataId, Directory, MemSpace};
///
/// let dir = Directory::new();
/// let tile = DataId(0);
/// dir.register(tile, 8 << 20, MemSpace::HOST);
///
/// // A GPU task reads the tile: one host→device copy (Input Tx).
/// let t = dir.acquire(tile, MemSpace::device(0), AccessMode::In).unwrap();
/// assert_eq!(t.from, MemSpace::HOST);
///
/// // It then updates the tile in place: the GPU copy becomes the only
/// // valid one, and a taskwait needs a write-back (Output Tx).
/// assert!(dir.acquire(tile, MemSpace::device(0), AccessMode::InOut).is_none());
/// assert!(!dir.valid_in(tile, MemSpace::HOST));
/// let wb = dir.flush_to_host(tile).unwrap();
/// assert_eq!(wb.to, MemSpace::HOST);
/// ```
#[derive(Debug)]
pub struct Directory {
    shards: Vec<Mutex<HashMap<DataId, HandleState>>>,
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Directory {
        Directory { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// The stripe holding `data`'s entry.
    fn shard(&self, data: DataId) -> MutexGuard<'_, HashMap<DataId, HandleState>> {
        self.shards[data.0 as usize % SHARDS].lock().expect("directory shard poisoned")
    }

    /// Register an allocation of `bytes` bytes whose initial valid copy
    /// lives in `home` (usually [`MemSpace::HOST`]).
    ///
    /// # Panics
    /// Panics if `data` is already registered.
    pub fn register(&self, data: DataId, bytes: u64, home: MemSpace) {
        let prev = self.shard(data).insert(data, HandleState { bytes, valid: vec![home] });
        assert!(prev.is_none(), "{data:?} registered twice");
    }

    /// Remove an allocation from the directory (user freed it).
    pub fn unregister(&self, data: DataId) {
        self.shard(data).remove(&data);
    }

    /// State of one allocation, if registered (a point-in-time copy —
    /// the entry lives behind a stripe lock).
    pub fn state(&self, data: DataId) -> Option<HandleState> {
        self.shard(data).get(&data).cloned()
    }

    /// Whether `space` holds the latest value of `data`.
    pub fn valid_in(&self, data: DataId, space: MemSpace) -> bool {
        self.shard(data)
            .get(&data)
            .map(|e| e.valid.binary_search(&space).is_ok())
            .unwrap_or(false)
    }

    /// Size in bytes of a registered allocation.
    ///
    /// # Panics
    /// Panics if `data` is not registered.
    pub fn bytes(&self, data: DataId) -> u64 {
        self.shard(data).get(&data).unwrap_or_else(|| panic!("{data:?} not registered")).bytes
    }

    /// Make `data` accessible in `space` for the given access mode,
    /// returning the transfer (if any) that must complete first.
    ///
    /// Source-selection policy when a copy-in is required: prefer the host
    /// if it holds a valid copy, otherwise the lowest-numbered valid device
    /// (deterministic). A device-to-device transfer is what the paper
    /// reports as *Device Tx*.
    ///
    /// # Panics
    /// Panics if `data` is not registered.
    pub fn acquire(&self, data: DataId, space: MemSpace, mode: AccessMode) -> Option<Transfer> {
        let mut shard = self.shard(data);
        let entry = shard.get_mut(&data).expect("acquire of unregistered data");
        let mut transfer = None;
        if mode.reads() && entry.valid.binary_search(&space).is_err() {
            // Need a copy-in. `valid` is sorted and HOST is the smallest
            // space id, so the first element implements "prefer host".
            let from = *entry.valid.first().expect("directory invariant: valid set non-empty");
            transfer = Some(Transfer { data, from, to: space, bytes: entry.bytes });
            entry.insert(space);
        }
        if mode.writes() {
            // The writer's copy becomes the only valid one (an `Out`
            // access needs no copy-in at all: the task produces the value).
            entry.valid.clear();
            entry.valid.push(space);
        }
        transfer
    }

    /// Drop the copy of `data` held by `space` (capacity eviction). If
    /// `space` holds the *only* valid copy, the caller must flush it to
    /// the host first — evicting a sole copy would lose the value, so
    /// this panics instead.
    ///
    /// # Panics
    /// Panics if `data` is unregistered, `space` holds no valid copy, or
    /// `space` holds the only valid copy.
    pub fn invalidate(&self, data: DataId, space: MemSpace) {
        let mut shard = self.shard(data);
        let entry = shard.get_mut(&data).expect("invalidate of unregistered data");
        let pos = entry
            .valid
            .binary_search(&space)
            .unwrap_or_else(|_| panic!("{data:?} has no valid copy in {space}"));
        assert!(
            entry.valid.len() > 1,
            "evicting the only valid copy of {data:?} from {space} — flush it first"
        );
        entry.valid.remove(pos);
    }

    /// Whether `space` holds the *only* valid copy of `data` (an
    /// eviction would require a write-back first).
    pub fn is_sole_copy(&self, data: DataId, space: MemSpace) -> bool {
        self.shard(data)
            .get(&data)
            .map(|e| e.valid.len() == 1 && e.valid[0] == space)
            .unwrap_or(false)
    }

    /// Ensure the host holds the latest value of `data` (an OmpSs
    /// `taskwait` flush), returning the transfer needed, if any.
    ///
    /// # Panics
    /// Panics if `data` is not registered.
    pub fn flush_to_host(&self, data: DataId) -> Option<Transfer> {
        let mut shard = self.shard(data);
        let entry = shard.get_mut(&data).expect("flush of unregistered data");
        if entry.valid.binary_search(&MemSpace::HOST).is_ok() {
            return None;
        }
        let from = *entry.valid.first().expect("directory invariant: valid set non-empty");
        entry.insert(MemSpace::HOST);
        Some(Transfer { data, from, to: MemSpace::HOST, bytes: entry.bytes })
    }

    /// Flush every allocation to the host, returning all needed transfers
    /// (a full `taskwait` without `noflush`). Ids are sorted before
    /// flushing so the transfer order stays deterministic regardless of
    /// stripe layout.
    pub fn flush_all_to_host(&self) -> Vec<Transfer> {
        let mut ids: Vec<DataId> = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.lock().expect("directory shard poisoned").keys().copied());
        }
        ids.sort_unstable();
        ids.into_iter().filter_map(|d| self.flush_to_host(d)).collect()
    }

    /// Copy of one allocation's full state, for exact restore after a
    /// failed optimistic update (async staging rollback of a writer's
    /// acquire — see `versa-runtime`'s native engine).
    pub fn snapshot(&self, data: DataId) -> Option<HandleState> {
        self.shard(data).get(&data).cloned()
    }

    /// Overwrite one allocation's state with a previously taken
    /// [`Directory::snapshot`]. No-op if the allocation was unregistered
    /// in the meantime.
    pub fn restore(&self, data: DataId, state: HandleState) {
        if let Some(e) = self.shard(data).get_mut(&data) {
            *e = state;
        }
    }

    /// Undo one optimistic read copy-in: drop `space` from the valid set
    /// of `data` *if* it is present and not the sole copy. Unlike
    /// [`Directory::invalidate`] this never panics — retracting is
    /// commutative across any number of failed concurrent copy-ins, and
    /// a retraction can never strand the value because the copy being
    /// retracted was planned *from* another valid space which the
    /// planner never removed (readers only add validity).
    pub fn retract(&self, data: DataId, space: MemSpace) {
        if let Some(e) = self.shard(data).get_mut(&data) {
            if e.valid.len() > 1 {
                if let Ok(pos) = e.valid.binary_search(&space) {
                    e.valid.remove(pos);
                }
            }
        }
    }

    /// Bytes that would have to be copied into `space` for a task with the
    /// given accesses to run there (the affinity scheduler's objective:
    /// "the amount of data that should be transferred to a certain device
    /// in order to execute the task", paper §V-A).
    ///
    /// Each accessed allocation is counted once even if it appears in
    /// several access entries, matching the paper's footnote 2.
    pub fn bytes_missing_for(&self, accesses: &[(Region, AccessMode)], space: MemSpace) -> u64 {
        let mut seen: Vec<DataId> = Vec::with_capacity(accesses.len());
        let mut total = 0;
        for (region, mode) in accesses {
            if !mode.reads() || seen.contains(&region.data) {
                continue;
            }
            seen.push(region.data);
            // One stripe lock per datum: read validity and size together.
            let shard = self.shard(region.data);
            match shard.get(&region.data) {
                Some(e) if e.valid.binary_search(&space).is_err() => total += e.bytes,
                Some(_) => {}
                None => panic!("{:?} not registered", region.data),
            }
        }
        total
    }

    /// Number of registered allocations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("directory shard poisoned").len()).sum()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir_with(data: DataId, bytes: u64) -> Directory {
        let d = Directory::new();
        d.register(data, bytes, MemSpace::HOST);
        d
    }

    #[test]
    fn read_in_home_space_needs_no_transfer() {
        let dir = dir_with(DataId(0), 64);
        assert_eq!(dir.acquire(DataId(0), MemSpace::HOST, AccessMode::In), None);
    }

    #[test]
    fn read_on_device_copies_from_host() {
        let dir = dir_with(DataId(0), 64);
        let t = dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In).unwrap();
        assert_eq!(t.from, MemSpace::HOST);
        assert_eq!(t.to, MemSpace::device(0));
        assert_eq!(t.bytes, 64);
        // Replicated: both copies valid, second read is free.
        assert!(dir.valid_in(DataId(0), MemSpace::HOST));
        assert!(dir.valid_in(DataId(0), MemSpace::device(0)));
        assert_eq!(dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In), None);
    }

    #[test]
    fn inout_invalidates_other_copies() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        let t = dir.acquire(DataId(0), MemSpace::device(0), AccessMode::InOut);
        assert_eq!(t, None); // already valid there
        assert!(!dir.valid_in(DataId(0), MemSpace::HOST));
        assert!(dir.valid_in(DataId(0), MemSpace::device(0)));
    }

    #[test]
    fn out_needs_no_copy_in_but_claims_ownership() {
        let dir = dir_with(DataId(0), 64);
        let t = dir.acquire(DataId(0), MemSpace::device(1), AccessMode::Out);
        assert_eq!(t, None);
        assert!(dir.valid_in(DataId(0), MemSpace::device(1)));
        assert!(!dir.valid_in(DataId(0), MemSpace::HOST));
    }

    #[test]
    fn device_to_device_transfer_when_host_is_stale() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::InOut);
        let t = dir.acquire(DataId(0), MemSpace::device(1), AccessMode::In).unwrap();
        assert_eq!(t.from, MemSpace::device(0));
        assert_eq!(t.to, MemSpace::device(1));
        assert_eq!(t.kind(), crate::TransferKind::Device);
    }

    #[test]
    fn prefers_host_source_when_host_valid() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        // Host and dev0 both valid; dev1 should pull from host.
        let t = dir.acquire(DataId(0), MemSpace::device(1), AccessMode::In).unwrap();
        assert_eq!(t.from, MemSpace::HOST);
    }

    #[test]
    fn flush_to_host_after_device_write() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::InOut);
        let t = dir.flush_to_host(DataId(0)).unwrap();
        assert_eq!(t.from, MemSpace::device(0));
        assert_eq!(t.to, MemSpace::HOST);
        assert!(dir.valid_in(DataId(0), MemSpace::HOST));
        // Device copy stays valid (flush replicates, doesn't invalidate).
        assert!(dir.valid_in(DataId(0), MemSpace::device(0)));
        assert_eq!(dir.flush_to_host(DataId(0)), None);
    }

    #[test]
    fn flush_all_covers_every_dirty_allocation() {
        let dir = Directory::new();
        dir.register(DataId(0), 10, MemSpace::HOST);
        dir.register(DataId(1), 20, MemSpace::HOST);
        dir.register(DataId(2), 30, MemSpace::HOST);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::InOut);
        dir.acquire(DataId(2), MemSpace::device(1), AccessMode::Out);
        let ts = dir.flush_all_to_host();
        assert_eq!(ts.len(), 2);
        assert!(ts.iter().all(|t| t.to == MemSpace::HOST));
        assert!((0..3).all(|i| dir.valid_in(DataId(i), MemSpace::HOST)));
    }

    #[test]
    fn bytes_missing_counts_each_allocation_once() {
        let dir = Directory::new();
        dir.register(DataId(0), 100, MemSpace::HOST);
        dir.register(DataId(1), 50, MemSpace::HOST);
        let accesses = [
            (Region::whole(DataId(0), 100), AccessMode::In),
            (Region::whole(DataId(0), 100), AccessMode::InOut), // same datum twice
            (Region::whole(DataId(1), 50), AccessMode::Out),    // write-only: no copy-in
        ];
        assert_eq!(dir.bytes_missing_for(&accesses, MemSpace::device(0)), 100);
        assert_eq!(dir.bytes_missing_for(&accesses, MemSpace::HOST), 0);
    }

    #[test]
    fn invalidate_drops_replicas() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        assert!(!dir.is_sole_copy(DataId(0), MemSpace::device(0)));
        dir.invalidate(DataId(0), MemSpace::device(0));
        assert!(!dir.valid_in(DataId(0), MemSpace::device(0)));
        assert!(dir.valid_in(DataId(0), MemSpace::HOST));
        assert!(dir.is_sole_copy(DataId(0), MemSpace::HOST));
    }

    #[test]
    #[should_panic(expected = "only valid copy")]
    fn invalidating_sole_copy_panics() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::InOut);
        assert!(dir.is_sole_copy(DataId(0), MemSpace::device(0)));
        dir.invalidate(DataId(0), MemSpace::device(0));
    }

    #[test]
    fn eviction_after_flush_is_legal() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::InOut);
        let wb = dir.flush_to_host(DataId(0)).unwrap();
        assert_eq!(wb.to, MemSpace::HOST);
        dir.invalidate(DataId(0), MemSpace::device(0));
        assert!(dir.is_sole_copy(DataId(0), MemSpace::HOST));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let dir = dir_with(DataId(0), 1);
        dir.register(DataId(0), 1, MemSpace::HOST);
    }

    #[test]
    fn snapshot_restore_roundtrip_undoes_a_write() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        let snap = dir.snapshot(DataId(0)).unwrap();
        dir.acquire(DataId(0), MemSpace::device(1), AccessMode::InOut);
        assert!(!dir.valid_in(DataId(0), MemSpace::HOST));
        dir.restore(DataId(0), snap);
        assert!(dir.valid_in(DataId(0), MemSpace::HOST));
        assert!(dir.valid_in(DataId(0), MemSpace::device(0)));
        assert!(!dir.valid_in(DataId(0), MemSpace::device(1)));
    }

    #[test]
    fn retract_undoes_a_read_copy_in() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        dir.retract(DataId(0), MemSpace::device(0));
        assert!(!dir.valid_in(DataId(0), MemSpace::device(0)));
        assert!(dir.is_sole_copy(DataId(0), MemSpace::HOST));
    }

    #[test]
    fn retract_never_strands_the_sole_copy() {
        let dir = dir_with(DataId(0), 64);
        // Sole copy: retract must be a no-op, not a panic.
        dir.retract(DataId(0), MemSpace::HOST);
        assert!(dir.valid_in(DataId(0), MemSpace::HOST));
        // Absent space / unregistered data: also no-ops.
        dir.retract(DataId(0), MemSpace::device(3));
        dir.retract(DataId(9), MemSpace::HOST);
        assert!(dir.is_sole_copy(DataId(0), MemSpace::HOST));
    }

    #[test]
    fn retract_is_commutative_across_failed_replicas() {
        let dir = dir_with(DataId(0), 64);
        dir.acquire(DataId(0), MemSpace::device(0), AccessMode::In);
        dir.acquire(DataId(0), MemSpace::device(1), AccessMode::In);
        // Both copies failed; either retraction order leaves only host.
        dir.retract(DataId(0), MemSpace::device(1));
        dir.retract(DataId(0), MemSpace::device(0));
        assert!(dir.is_sole_copy(DataId(0), MemSpace::HOST));
    }

    #[test]
    fn unregister_forgets_the_allocation() {
        let dir = dir_with(DataId(0), 1);
        assert_eq!(dir.len(), 1);
        dir.unregister(DataId(0));
        assert!(dir.is_empty());
        assert!(!dir.valid_in(DataId(0), MemSpace::HOST));
    }
}
