//! A planned data movement between two address spaces.

use crate::{DataId, MemSpace, TransferKind};

/// One data movement the runtime must perform before (or after) a task
/// executes: copy allocation `data` (`bytes` bytes) from space `from` to
/// space `to`.
///
/// Transfers are produced by the coherence [`Directory`](crate::Directory)
/// and consumed by an execution engine: the simulator charges them to a
/// link and a DMA engine; the native engine performs a real `memcpy`
/// between arenas. Both record them in a
/// [`TransferStats`](crate::TransferStats).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transfer {
    /// The allocation being moved.
    pub data: DataId,
    /// Source space (must hold a valid copy).
    pub from: MemSpace,
    /// Destination space.
    pub to: MemSpace,
    /// Size of the allocation in bytes.
    pub bytes: u64,
}

impl Transfer {
    /// The §V-A accounting category of this transfer.
    #[inline]
    pub fn kind(&self) -> TransferKind {
        TransferKind::classify(self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_follows_endpoints() {
        let t = Transfer {
            data: DataId(0),
            from: MemSpace::HOST,
            to: MemSpace::device(1),
            bytes: 8,
        };
        assert_eq!(t.kind(), TransferKind::Input);
        let t = Transfer { from: MemSpace::device(1), to: MemSpace::HOST, ..t };
        assert_eq!(t.kind(), TransferKind::Output);
        let t = Transfer { from: MemSpace::device(0), to: MemSpace::device(1), ..t };
        assert_eq!(t.kind(), TransferKind::Device);
    }
}
