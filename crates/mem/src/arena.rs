//! Native-mode backing store: real per-space byte buffers.
//!
//! In native execution every address space — the host and each emulated
//! accelerator — owns an [`Arena`]: a map from [`DataId`] to a real byte
//! buffer. Coherence transfers become `memcpy`s between arenas, and kernels
//! receive slices into the arena of the space they execute in, so a task
//! scheduled on an emulated GPU genuinely cannot see host memory.
//!
//! Buffers are reference-counted (`Arc<AlignedBuf>`): read-only kernel
//! arguments clone the `Arc` ([`Arena::read_arc`]) and view the bytes in
//! place with zero copies, while writers take the buffer out of the map
//! ([`Arena::with_buffers`]) and unwrap it to unique ownership. The task
//! graph's dependence tracking guarantees no reader/writer overlap on the
//! same allocation in the same space, so unwrap contention is limited to
//! the instants a transfer briefly holds a second reference.

use crate::{AlignedBuf, DataId, MemSpace, Transfer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

type SpaceMap = HashMap<DataId, Arc<AlignedBuf>>;

/// Number of lock stripes per space. Buffer operations are keyed to a
/// stripe by data id, so concurrent kernels, stagers, and admissions
/// touching different allocations in the same space never serialize on
/// one map-wide lock. Power of two so the modulo compiles to a mask.
const SHARDS: usize = 16;

/// One space's buffer pool, lock-striped by data id.
struct SpaceShards {
    shards: Vec<Mutex<SpaceMap>>,
}

impl SpaceShards {
    fn new() -> SpaceShards {
        SpaceShards { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// The stripe holding `data`'s buffer.
    fn shard(&self, data: DataId) -> MutexGuard<'_, SpaceMap> {
        self.shards[data.0 as usize % SHARDS].lock().expect("arena lock poisoned")
    }
}

/// Per-space buffer pools for native execution.
///
/// Buffers are lazily created in device spaces on first transfer. All
/// buffers for one allocation have the registered size; transfers always
/// move whole allocations (matching the [`Directory`](crate::Directory)'s
/// handle-granularity coherence).
///
/// Each space's map is lock-striped by data id ([`SHARDS`] stripes), so
/// operations on different allocations in the same space proceed
/// concurrently.
///
/// The space list can grow after construction ([`Arena::add_spaces`]) so
/// remote nodes attached mid-setup get local mirror spaces; existing
/// spaces are never removed or renumbered.
pub struct Arena {
    spaces: RwLock<Vec<Arc<SpaceShards>>>,
}

impl Arena {
    /// An arena covering the host plus `devices` device spaces.
    pub fn new(devices: usize) -> Arena {
        Arena {
            spaces: RwLock::new((0..devices + 1).map(|_| Arc::new(SpaceShards::new())).collect()),
        }
    }

    /// Number of spaces (host + devices).
    pub fn space_count(&self) -> usize {
        self.spaces.read().expect("arena lock poisoned").len()
    }

    /// Append `n` fresh empty spaces (mirror spaces for remote devices).
    /// Existing space indices are unaffected.
    pub fn add_spaces(&self, n: usize) {
        let mut spaces = self.spaces.write().expect("arena lock poisoned");
        for _ in 0..n {
            spaces.push(Arc::new(SpaceShards::new()));
        }
    }

    fn space_arc(&self, s: MemSpace) -> Arc<SpaceShards> {
        let spaces = self.spaces.read().expect("arena lock poisoned");
        spaces
            .get(s.index())
            .cloned()
            .unwrap_or_else(|| panic!("space {s} not present in arena"))
    }

    /// Run `f` holding the stripe of `data` in space `s`. The outer space
    /// list lock is released before `f` runs, so `add_spaces` never
    /// deadlocks against in-flight buffer operations.
    fn with_shard<R>(&self, s: MemSpace, data: DataId, f: impl FnOnce(&mut SpaceMap) -> R) -> R {
        let arc = self.space_arc(s);
        let mut guard = arc.shard(data);
        f(&mut guard)
    }

    /// Create the host buffer for `data`, initialized from `init`.
    ///
    /// # Panics
    /// Panics if `data` already has a host buffer.
    pub fn alloc_host(&self, data: DataId, init: &[u8]) {
        self.with_shard(MemSpace::HOST, data, |host| {
            let prev = host.insert(data, Arc::new(AlignedBuf::from_bytes(init)));
            assert!(prev.is_none(), "{data:?} allocated twice on host");
        })
    }

    /// Create a zero-filled host buffer of `len` bytes for `data`.
    pub fn alloc_host_zeroed(&self, data: DataId, len: usize) {
        self.with_shard(MemSpace::HOST, data, |host| {
            let prev = host.insert(data, Arc::new(AlignedBuf::zeroed(len)));
            assert!(prev.is_none(), "{data:?} allocated twice on host");
        })
    }

    /// Drop every buffer of `data` in every space.
    pub fn free(&self, data: DataId) {
        let spaces: Vec<Arc<SpaceShards>> =
            self.spaces.read().expect("arena lock poisoned").clone();
        for s in &spaces {
            s.shard(data).remove(&data);
        }
    }

    /// Perform a real copy for `t`, creating the destination buffer if
    /// needed.
    ///
    /// # Panics
    /// Panics if the source buffer does not exist or sizes mismatch.
    pub fn perform(&self, t: &Transfer) {
        assert_ne!(t.from, t.to, "degenerate transfer");
        let src = self.with_shard(t.from, t.data, |from| {
            let buf = from
                .get(&t.data)
                .unwrap_or_else(|| panic!("{:?} has no buffer in {}", t.data, t.from));
            assert_eq!(buf.len() as u64, t.bytes, "transfer size mismatch for {:?}", t.data);
            Arc::clone(buf)
        });
        // Deep copy outside the source lock: each space owns its bytes.
        let copy = Arc::new(AlignedBuf::clone(&src));
        self.with_shard(t.to, t.data, |to| {
            to.insert(t.data, copy);
        });
    }

    /// Read the bytes of `data` in `space` (copies out).
    ///
    /// # Panics
    /// Panics if no buffer exists there.
    pub fn read(&self, data: DataId, space: MemSpace) -> Vec<u8> {
        self.read_arc(data, space).as_bytes().to_vec()
    }

    /// Shared handle to the buffer of `data` in `space` — the zero-copy
    /// path for read-only kernel arguments.
    ///
    /// # Panics
    /// Panics if no buffer exists there.
    pub fn read_arc(&self, data: DataId, space: MemSpace) -> Arc<AlignedBuf> {
        self.with_shard(space, data, |sp| {
            sp.get(&data)
                .map(Arc::clone)
                .unwrap_or_else(|| panic!("{data:?} has no buffer in {space}"))
        })
    }

    /// Overwrite the bytes of `data` in `space`.
    ///
    /// # Panics
    /// Panics if no buffer exists there or the length differs.
    pub fn write(&self, data: DataId, space: MemSpace, bytes: &[u8]) {
        self.with_shard(space, data, |sp| {
            let arc = sp
                .get_mut(&data)
                .unwrap_or_else(|| panic!("{data:?} has no buffer in {space}"));
            assert_eq!(arc.len(), bytes.len(), "write size mismatch for {data:?}");
            // Clones only if a reader still holds the old version.
            Arc::make_mut(arc).as_bytes_mut().copy_from_slice(bytes);
        })
    }

    /// Whether `data` has a buffer in `space`.
    pub fn has(&self, data: DataId, space: MemSpace) -> bool {
        self.with_shard(space, data, |sp| sp.contains_key(&data))
    }

    /// Materialize a zero-filled buffer of `len` bytes for `data` in
    /// `space` if none exists yet. Needed for `output`-only accesses on
    /// devices: no copy-in happens, but the kernel still needs backing
    /// memory to write into.
    pub fn ensure(&self, data: DataId, space: MemSpace, len: usize) {
        self.with_shard(space, data, |sp| {
            sp.entry(data).or_insert_with(|| Arc::new(AlignedBuf::zeroed(len)));
        })
    }

    /// Run `f` with mutable access to the buffer of `data` in `space`.
    ///
    /// # Panics
    /// Panics if no buffer exists there.
    pub fn with_mut<R>(&self, data: DataId, space: MemSpace, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.with_shard(space, data, |sp| {
            let arc = sp
                .get_mut(&data)
                .unwrap_or_else(|| panic!("{data:?} has no buffer in {space}"));
            f(Arc::make_mut(arc).as_bytes_mut())
        })
    }

    /// Take the buffers of several allocations out of `space`, run `f`,
    /// and put them back. This allows a kernel to borrow multiple buffers
    /// mutably at once without holding the space lock while computing.
    ///
    /// If a transfer is mid-copy from one of the buffers, the take-out
    /// spins until the transient reference drops; the task graph's
    /// dependences rule out longer-lived readers.
    ///
    /// The buffers are restored even if `f` panics (the unwind carries
    /// whatever partial writes the kernel made), so a failed task can be
    /// retried with the data still materialized.
    ///
    /// # Panics
    /// Panics if any buffer is missing or an allocation is listed twice.
    pub fn with_buffers<R>(
        &self,
        space: MemSpace,
        ids: &[DataId],
        f: impl FnOnce(&mut [AlignedBuf]) -> R,
    ) -> R {
        // Take each buffer out of its own stripe: ids are distinct (a
        // duplicate trips the panic below on its second removal), so the
        // per-id locking order cannot deadlock.
        let shards = self.space_arc(space);
        let arcs: Vec<Arc<AlignedBuf>> = ids
            .iter()
            .map(|id| {
                shards.shard(*id).remove(id).unwrap_or_else(|| {
                    panic!("{id:?} has no buffer in {space} (or listed twice)")
                })
            })
            .collect();
        let bufs: Vec<AlignedBuf> = arcs
            .into_iter()
            .map(|mut arc| loop {
                match Arc::try_unwrap(arc) {
                    Ok(buf) => break buf,
                    Err(shared) => {
                        arc = shared;
                        std::thread::yield_now();
                    }
                }
            })
            .collect();

        /// Re-inserts the taken-out buffers on scope exit, unwind
        /// included — a panicking kernel must not leave the arena with
        /// missing allocations.
        struct Restore<'a> {
            arena: &'a Arena,
            space: MemSpace,
            ids: &'a [DataId],
            bufs: Vec<AlignedBuf>,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                let ids = self.ids;
                let bufs = std::mem::take(&mut self.bufs);
                for (id, buf) in ids.iter().zip(bufs) {
                    self.arena.with_shard(self.space, *id, |sp| {
                        sp.insert(*id, Arc::new(buf));
                    });
                }
            }
        }

        let mut restore = Restore { arena: self, space, ids, bufs };
        f(&mut restore.bufs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(data: DataId, from: MemSpace, to: MemSpace, bytes: u64) -> Transfer {
        Transfer { data, from, to, bytes }
    }

    #[test]
    fn alloc_and_read_host() {
        let a = Arena::new(2);
        a.alloc_host(DataId(0), &[1, 2, 3]);
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![1, 2, 3]);
        assert!(a.has(DataId(0), MemSpace::HOST));
        assert!(!a.has(DataId(0), MemSpace::device(0)));
    }

    #[test]
    fn transfer_copies_bytes_between_spaces() {
        let a = Arena::new(1);
        a.alloc_host(DataId(0), &[9, 8, 7, 6]);
        a.perform(&transfer(DataId(0), MemSpace::HOST, MemSpace::device(0), 4));
        assert_eq!(a.read(DataId(0), MemSpace::device(0)), vec![9, 8, 7, 6]);
        // Mutate on device, copy back.
        a.with_mut(DataId(0), MemSpace::device(0), |b| b[0] = 42);
        a.perform(&transfer(DataId(0), MemSpace::device(0), MemSpace::HOST, 4));
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![42, 8, 7, 6]);
    }

    #[test]
    fn transfers_deep_copy_not_alias() {
        let a = Arena::new(1);
        a.alloc_host(DataId(0), &[1, 2]);
        a.perform(&transfer(DataId(0), MemSpace::HOST, MemSpace::device(0), 2));
        a.with_mut(DataId(0), MemSpace::device(0), |b| b[0] = 99);
        // Host copy is unaffected: spaces own their bytes.
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![1, 2]);
    }

    #[test]
    fn read_arc_shares_until_write() {
        let a = Arena::new(0);
        a.alloc_host(DataId(0), &[5, 6]);
        let shared = a.read_arc(DataId(0), MemSpace::HOST);
        // A write while a reader holds the Arc must not mutate the
        // reader's view (copy-on-write via make_mut).
        a.write(DataId(0), MemSpace::HOST, &[7, 8]);
        assert_eq!(shared.as_bytes(), &[5, 6]);
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![7, 8]);
    }

    #[test]
    fn with_buffers_takes_and_restores() {
        let a = Arena::new(0);
        a.alloc_host(DataId(0), &[1, 1]);
        a.alloc_host(DataId(1), &[2, 2]);
        a.with_buffers(MemSpace::HOST, &[DataId(0), DataId(1)], |bufs| {
            assert_eq!(bufs.len(), 2);
            bufs[0].as_bytes_mut()[0] = 10;
            bufs[1].as_bytes_mut()[1] = 20;
        });
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![10, 1]);
        assert_eq!(a.read(DataId(1), MemSpace::HOST), vec![2, 20]);
    }

    #[test]
    fn with_buffers_waits_out_transient_readers() {
        let a = Arc::new(Arena::new(0));
        a.alloc_host(DataId(0), &[0; 8]);
        let reader = a.read_arc(DataId(0), MemSpace::HOST);
        let a2 = Arc::clone(&a);
        let t = std::thread::spawn(move || {
            a2.with_buffers(MemSpace::HOST, &[DataId(0)], |bufs| {
                bufs[0].as_bytes_mut()[0] = 1;
            });
        });
        // The writer spins until this reference drops.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(reader);
        t.join().unwrap();
        assert_eq!(a.read(DataId(0), MemSpace::HOST)[0], 1);
    }

    #[test]
    fn with_buffers_restores_on_panic() {
        let a = Arena::new(0);
        a.alloc_host(DataId(0), &[1, 2]);
        a.alloc_host(DataId(1), &[3, 4]);
        let unwind = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.with_buffers(MemSpace::HOST, &[DataId(0), DataId(1)], |bufs| {
                bufs[0].as_bytes_mut()[0] = 9;
                panic!("kernel blew up");
            })
        }));
        assert!(unwind.is_err());
        // Both buffers are back in the arena — a retry can still run —
        // and carry whatever the kernel wrote before panicking.
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![9, 2]);
        assert_eq!(a.read(DataId(1), MemSpace::HOST), vec![3, 4]);
    }

    #[test]
    fn free_drops_all_copies() {
        let a = Arena::new(1);
        a.alloc_host(DataId(0), &[5]);
        a.perform(&transfer(DataId(0), MemSpace::HOST, MemSpace::device(0), 1));
        a.free(DataId(0));
        assert!(!a.has(DataId(0), MemSpace::HOST));
        assert!(!a.has(DataId(0), MemSpace::device(0)));
    }

    #[test]
    fn zeroed_allocation() {
        let a = Arena::new(0);
        a.alloc_host_zeroed(DataId(3), 8);
        assert_eq!(a.read(DataId(3), MemSpace::HOST), vec![0; 8]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn transfer_size_mismatch_panics() {
        let a = Arena::new(1);
        a.alloc_host(DataId(0), &[1, 2]);
        a.perform(&transfer(DataId(0), MemSpace::HOST, MemSpace::device(0), 3));
    }

    #[test]
    #[should_panic(expected = "no buffer")]
    fn read_missing_buffer_panics() {
        let a = Arena::new(0);
        a.read(DataId(0), MemSpace::HOST);
    }

    #[test]
    fn add_spaces_grows_without_disturbing_existing_buffers() {
        let a = Arena::new(1);
        a.alloc_host(DataId(0), &[1, 2]);
        assert_eq!(a.space_count(), 2);
        a.add_spaces(2);
        assert_eq!(a.space_count(), 4);
        // New spaces are live transfer targets; old data is untouched.
        a.perform(&transfer(DataId(0), MemSpace::HOST, MemSpace::device(2), 2));
        assert_eq!(a.read(DataId(0), MemSpace::device(2)), vec![1, 2]);
        assert_eq!(a.read(DataId(0), MemSpace::HOST), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn out_of_range_space_panics() {
        let a = Arena::new(0);
        a.has(DataId(0), MemSpace::device(5));
    }
}
