//! # versa-mem — memory substrate for the versa runtime
//!
//! OmpSs assumes that *multiple physical address spaces may exist*: shared
//! data may live in memory that is not directly accessible from every
//! processing element, and the runtime transparently replicates data and
//! keeps the copies coherent (paper §III). This crate implements that
//! substrate:
//!
//! * [`MemSpace`] — a physical address space (the host, or a device memory).
//! * [`DataId`] / [`Region`] — named allocations and byte ranges within
//!   them; dependence analysis works on regions, coherence on whole
//!   allocations (tasks in the paper's applications always move whole
//!   tiles).
//! * [`Directory`] — a coherence directory tracking, per allocation, which
//!   spaces hold a valid copy and which single space (if any) holds the
//!   only modified copy. Acquiring data for a task yields the list of
//!   [`Transfer`]s that must be performed first.
//! * [`TransferStats`] — the paper's §V-A accounting: *Input Tx*
//!   (host→device), *Output Tx* (device→host) and *Device Tx*
//!   (device→device).
//! * [`Arena`] — native-mode backing store: per-space byte buffers that
//!   real kernels execute against.

#![warn(missing_docs)]

mod aligned;
mod arena;
mod cache;
mod directory;
mod region;
mod space;
mod staging;
mod stats;
mod transfer;

pub use aligned::AlignedBuf;
pub use arena::Arena;
pub use cache::DeviceCache;
pub use directory::{AccessMode, Directory, HandleState};
pub use region::{DataId, Region};
pub use space::MemSpace;
pub use staging::{ReadyCell, StagingLedger};
pub use stats::{TransferKind, TransferStats};
pub use transfer::Transfer;
