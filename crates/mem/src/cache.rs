//! Device-memory capacity tracking with LRU eviction.
//!
//! OmpSs manages device memory as a cache over host data ("the runtime
//! [may] implement different data caching and prefetching techniques",
//! paper §III). Real GPUs are finite — the paper's M2090s hold 6 GB — so
//! when a device space fills up, the runtime must evict replicated tiles
//! (drop them) or write back sole copies before new data can move in.
//!
//! [`DeviceCache`] is the bookkeeping half: it tracks residency and
//! picks LRU victims; the runtime decides whether a victim needs a
//! write-back (it holds the only valid copy) or can simply be dropped.

use crate::DataId;
use std::collections::HashMap;

/// LRU residency tracker for one device memory space.
///
/// ```
/// use versa_mem::{DataId, DeviceCache};
///
/// let mut cache = DeviceCache::new(100);
/// cache.insert(DataId(0), 60);
/// cache.insert(DataId(1), 60); // over capacity
/// // Evict to fit, but the current task's tile (d1) is pinned:
/// let victims = cache.evict_to_capacity(&[DataId(1)]);
/// assert_eq!(victims, vec![DataId(0)]);
/// assert_eq!(cache.used(), 60);
/// ```
#[derive(Debug)]
pub struct DeviceCache {
    capacity: u64,
    used: u64,
    bytes: HashMap<DataId, u64>,
    /// LRU order: front = least recently used.
    order: Vec<DataId>,
}

impl DeviceCache {
    /// Cache with `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> DeviceCache {
        DeviceCache { capacity, used: 0, bytes: HashMap::new(), order: Vec::new() }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether `data` is resident.
    pub fn contains(&self, data: DataId) -> bool {
        self.bytes.contains_key(&data)
    }

    /// Number of resident allocations.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn refresh(&mut self, data: DataId) {
        if let Some(pos) = self.order.iter().position(|&d| d == data) {
            self.order.remove(pos);
        }
        self.order.push(data);
    }

    /// Record that `data` (of `bytes` bytes) now resides here (or was
    /// touched again); refreshes its LRU position.
    ///
    /// # Panics
    /// Panics if a single allocation exceeds the device capacity — such
    /// a task set cannot run on this device at all.
    pub fn insert(&mut self, data: DataId, bytes: u64) {
        assert!(
            bytes <= self.capacity,
            "{data:?} ({bytes} B) exceeds device memory capacity ({} B)",
            self.capacity
        );
        // A re-insert with a different size must adjust usage by the
        // delta, not keep the stale contribution.
        let prev = self.bytes.insert(data, bytes);
        self.used = self.used - prev.unwrap_or(0) + bytes;
        self.refresh(data);
    }

    /// Drop `data` from the residency set (evicted or freed).
    pub fn remove(&mut self, data: DataId) {
        if let Some(b) = self.bytes.remove(&data) {
            self.used -= b;
            if let Some(pos) = self.order.iter().position(|&d| d == data) {
                self.order.remove(pos);
            }
        }
    }

    /// Choose LRU victims until usage fits the capacity, never evicting
    /// `pinned` allocations (the ones the current task needs). Victims
    /// are removed from the cache and returned in eviction order.
    ///
    /// # Panics
    /// Panics if capacity cannot be reached even after evicting every
    /// unpinned allocation (the pinned working set alone overflows the
    /// device).
    pub fn evict_to_capacity(&mut self, pinned: &[DataId]) -> Vec<DataId> {
        let mut victims = Vec::new();
        while self.used > self.capacity {
            let victim = self
                .order
                .iter()
                .copied()
                .find(|d| !pinned.contains(d))
                .unwrap_or_else(|| {
                    panic!(
                        "pinned working set ({} B across {} allocations) exceeds device capacity {} B",
                        self.used,
                        self.bytes.len(),
                        self.capacity
                    )
                });
            self.remove(victim);
            victims.push(victim);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DataId {
        DataId(i)
    }

    #[test]
    fn tracks_usage_and_residency() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 40);
        c.insert(d(1), 30);
        assert_eq!(c.used(), 70);
        assert!(c.contains(d(0)));
        assert_eq!(c.len(), 2);
        // Re-inserting the same datum does not double-count.
        c.insert(d(0), 40);
        assert_eq!(c.used(), 70);
    }

    #[test]
    fn reinsert_with_different_size_adjusts_usage() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 40);
        c.insert(d(1), 30);
        // Grow d0: usage must reflect the new size, not the stale one.
        c.insert(d(0), 60);
        assert_eq!(c.used(), 90);
        // Shrink d0 back down.
        c.insert(d(0), 10);
        assert_eq!(c.used(), 40);
        // Removing both returns usage to exactly zero (no drift).
        c.remove(d(0));
        c.remove(d(1));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 40);
        c.insert(d(1), 40);
        c.insert(d(0), 40); // touch 0: now 1 is LRU
        c.insert(d(2), 40); // 120 B used
        let victims = c.evict_to_capacity(&[]);
        assert_eq!(victims, vec![d(1)]);
        assert_eq!(c.used(), 80);
        assert!(!c.contains(d(1)));
    }

    #[test]
    fn pinned_allocations_are_never_evicted() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 60);
        c.insert(d(1), 60);
        let victims = c.evict_to_capacity(&[d(0)]);
        assert_eq!(victims, vec![d(1)], "LRU d0 is pinned, so d1 goes");
        assert!(c.contains(d(0)));
    }

    #[test]
    fn multiple_victims_until_fit() {
        let mut c = DeviceCache::new(100);
        for i in 0..5 {
            c.insert(d(i), 30); // 150 B
        }
        let victims = c.evict_to_capacity(&[]);
        assert_eq!(victims, vec![d(0), d(1)]);
        assert_eq!(c.used(), 90);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 70);
        c.remove(d(0));
        assert_eq!(c.used(), 0);
        assert!(c.is_empty());
        c.remove(d(0)); // idempotent
    }

    #[test]
    #[should_panic(expected = "exceeds device memory capacity")]
    fn oversized_allocation_rejected() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 101);
    }

    #[test]
    #[should_panic(expected = "pinned working set")]
    fn overflowing_pinned_set_panics() {
        let mut c = DeviceCache::new(100);
        c.insert(d(0), 60);
        c.insert(d(1), 60);
        let _ = c.evict_to_capacity(&[d(0), d(1)]);
    }
}
