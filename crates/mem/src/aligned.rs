//! 8-byte-aligned byte buffers.
//!
//! Native-mode kernels view raw task data as `&[f64]` / `&[f32]` slices.
//! Plain `Vec<u8>` allocations only guarantee 1-byte alignment, so arena
//! buffers are backed by `u64` words instead: every buffer start is
//! 8-byte aligned and the float reinterpretations in `KernelCtx` are
//! always valid (for offsets that are multiples of the element size,
//! which the runtime asserts).

/// A heap buffer of `len` bytes whose storage is 8-byte aligned.
#[derive(Clone, Debug)]
pub struct AlignedBuf {
    words: Box<[u64]>,
    len: usize,
}

impl AlignedBuf {
    /// Zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> AlignedBuf {
        AlignedBuf { words: vec![0u64; len.div_ceil(8)].into_boxed_slice(), len }
    }

    /// Buffer initialized from `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut buf = AlignedBuf::zeroed(bytes.len());
        buf.as_bytes_mut().copy_from_slice(bytes);
        buf
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes, immutably.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: the words allocation covers at least `len` bytes
        // (zeroed rounds up), u8 has alignment 1, and the lifetime is
        // tied to `&self`.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// The bytes, mutably.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `as_bytes`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for AlignedBuf {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_has_requested_len() {
        for len in [0usize, 1, 7, 8, 9, 64, 1000] {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.len(), len);
            assert!(b.as_bytes().iter().all(|&x| x == 0));
            assert_eq!(b.is_empty(), len == 0);
        }
    }

    #[test]
    fn from_bytes_roundtrips() {
        let data: Vec<u8> = (0..=255).collect();
        let b = AlignedBuf::from_bytes(&data);
        assert_eq!(b.as_bytes(), &data[..]);
    }

    #[test]
    fn mutation_is_visible() {
        let mut b = AlignedBuf::zeroed(16);
        b.as_bytes_mut()[3] = 42;
        assert_eq!(b.as_bytes()[3], 42);
    }

    #[test]
    fn start_is_8_aligned() {
        for len in [1usize, 5, 13, 100] {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.as_bytes().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn float_views_are_safe() {
        let values = [1.5f64, -2.25, 1e300];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_ne_bytes()).collect();
        let b = AlignedBuf::from_bytes(&bytes);
        let (pre, mid, post) = unsafe { b.as_bytes().align_to::<f64>() };
        assert!(pre.is_empty() && post.is_empty());
        assert_eq!(mid, &values[..]);
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(AlignedBuf::from_bytes(&[1, 2, 3]), AlignedBuf::from_bytes(&[1, 2, 3]));
        assert_ne!(AlignedBuf::from_bytes(&[1, 2, 3]), AlignedBuf::from_bytes(&[1, 2, 4]));
    }
}
