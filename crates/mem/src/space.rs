//! Physical address spaces.

use std::fmt;

/// A physical address space in the machine.
///
/// `MemSpace::HOST` is the main memory shared by all SMP workers; each
/// accelerator (GPU) owns one device space. Spaces are small integers so
/// they can index dense per-space tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemSpace(pub u16);

impl MemSpace {
    /// The host (main-memory) address space.
    pub const HOST: MemSpace = MemSpace(0);

    /// The address space of the `i`-th device (0-based).
    #[inline]
    pub fn device(i: u16) -> MemSpace {
        MemSpace(i + 1)
    }

    /// Whether this is the host space.
    #[inline]
    pub fn is_host(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a device space.
    #[inline]
    pub fn is_device(self) -> bool {
        self.0 != 0
    }

    /// The 0-based device index, if this is a device space.
    #[inline]
    pub fn device_index(self) -> Option<u16> {
        self.0.checked_sub(1)
    }

    /// Dense index usable for per-space tables (host = 0, device i = i+1).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_host() {
            write!(f, "host")
        } else {
            write!(f, "dev{}", self.0 - 1)
        }
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_is_space_zero() {
        assert!(MemSpace::HOST.is_host());
        assert!(!MemSpace::HOST.is_device());
        assert_eq!(MemSpace::HOST.index(), 0);
        assert_eq!(MemSpace::HOST.device_index(), None);
    }

    #[test]
    fn device_spaces_are_one_based() {
        let d0 = MemSpace::device(0);
        let d1 = MemSpace::device(1);
        assert!(d0.is_device());
        assert_eq!(d0.device_index(), Some(0));
        assert_eq!(d1.device_index(), Some(1));
        assert_eq!(d0.index(), 1);
        assert_ne!(d0, d1);
        assert_ne!(d0, MemSpace::HOST);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemSpace::HOST.to_string(), "host");
        assert_eq!(MemSpace::device(1).to_string(), "dev1");
    }
}
