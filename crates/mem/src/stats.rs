//! Transfer accounting in the paper's §V-A categories.

use crate::MemSpace;
use std::fmt;

/// Classification of a data transfer, following the paper's evaluation
/// methodology (§V-A):
///
/// * **Input Tx** — host memory → any device memory. If the same datum is
///   sent to two devices, both transfers count.
/// * **Output Tx** — any device memory → host memory.
/// * **Device Tx** — device memory → device memory (e.g. GPU↔GPU).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransferKind {
    /// Host → device.
    Input,
    /// Device → host.
    Output,
    /// Device → device.
    Device,
}

impl TransferKind {
    /// Classify a transfer by its endpoints.
    ///
    /// Host→host "transfers" never happen (all SMP workers share the host
    /// space); classifying one is a logic error.
    pub fn classify(from: MemSpace, to: MemSpace) -> TransferKind {
        match (from.is_host(), to.is_host()) {
            (true, false) => TransferKind::Input,
            (false, true) => TransferKind::Output,
            (false, false) => TransferKind::Device,
            (true, true) => panic!("host-to-host transfer is meaningless"),
        }
    }
}

impl fmt::Display for TransferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferKind::Input => write!(f, "Input Tx"),
            TransferKind::Output => write!(f, "Output Tx"),
            TransferKind::Device => write!(f, "Device Tx"),
        }
    }
}

/// Accumulated bytes and transfer counts per [`TransferKind`].
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Bytes moved host → device.
    pub input_bytes: u64,
    /// Bytes moved device → host.
    pub output_bytes: u64,
    /// Bytes moved device → device.
    pub device_bytes: u64,
    /// Number of host → device transfers.
    pub input_count: u64,
    /// Number of device → host transfers.
    pub output_count: u64,
    /// Number of device → device transfers.
    pub device_count: u64,
}

impl TransferStats {
    /// Record one transfer of `bytes` bytes of the given kind.
    pub fn record(&mut self, kind: TransferKind, bytes: u64) {
        match kind {
            TransferKind::Input => {
                self.input_bytes += bytes;
                self.input_count += 1;
            }
            TransferKind::Output => {
                self.output_bytes += bytes;
                self.output_count += 1;
            }
            TransferKind::Device => {
                self.device_bytes += bytes;
                self.device_count += 1;
            }
        }
    }

    /// Total bytes moved over all categories.
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes + self.device_bytes
    }

    /// Total number of transfers over all categories.
    pub fn total_count(&self) -> u64 {
        self.input_count + self.output_count + self.device_count
    }

    /// Bytes moved in one category.
    pub fn bytes(&self, kind: TransferKind) -> u64 {
        match kind {
            TransferKind::Input => self.input_bytes,
            TransferKind::Output => self.output_bytes,
            TransferKind::Device => self.device_bytes,
        }
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &TransferStats) {
        self.input_bytes += other.input_bytes;
        self.output_bytes += other.output_bytes;
        self.device_bytes += other.device_bytes;
        self.input_count += other.input_count;
        self.output_count += other.output_count;
        self.device_count += other.device_count;
    }
}

impl fmt::Debug for TransferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransferStats {{ input: {} B ({}x), output: {} B ({}x), device: {} B ({}x) }}",
            self.input_bytes,
            self.input_count,
            self.output_bytes,
            self.output_count,
            self.device_bytes,
            self.device_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_endpoints() {
        let h = MemSpace::HOST;
        let d0 = MemSpace::device(0);
        let d1 = MemSpace::device(1);
        assert_eq!(TransferKind::classify(h, d0), TransferKind::Input);
        assert_eq!(TransferKind::classify(d0, h), TransferKind::Output);
        assert_eq!(TransferKind::classify(d0, d1), TransferKind::Device);
    }

    #[test]
    #[should_panic(expected = "host-to-host")]
    fn classify_host_to_host_panics() {
        let _ = TransferKind::classify(MemSpace::HOST, MemSpace::HOST);
    }

    #[test]
    fn record_accumulates_per_category() {
        let mut s = TransferStats::default();
        s.record(TransferKind::Input, 100);
        s.record(TransferKind::Input, 50);
        s.record(TransferKind::Output, 30);
        s.record(TransferKind::Device, 7);
        assert_eq!(s.input_bytes, 150);
        assert_eq!(s.input_count, 2);
        assert_eq!(s.output_bytes, 30);
        assert_eq!(s.device_bytes, 7);
        assert_eq!(s.total_bytes(), 187);
        assert_eq!(s.total_count(), 4);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TransferStats::default();
        a.record(TransferKind::Input, 10);
        let mut b = TransferStats::default();
        b.record(TransferKind::Input, 5);
        b.record(TransferKind::Device, 3);
        a.merge(&b);
        assert_eq!(a.input_bytes, 15);
        assert_eq!(a.input_count, 2);
        assert_eq!(a.device_bytes, 3);
    }

    #[test]
    fn bytes_accessor_matches_fields() {
        let mut s = TransferStats::default();
        s.record(TransferKind::Output, 42);
        assert_eq!(s.bytes(TransferKind::Output), 42);
        assert_eq!(s.bytes(TransferKind::Input), 0);
    }
}
