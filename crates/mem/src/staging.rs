//! Readiness/epoch protocol for asynchronously staged transfers.
//!
//! The native engine's coordinator *plans* transfers (so every
//! [`crate::Directory`] state transition stays single-threaded and
//! deterministic) but the byte movement itself executes on per-worker
//! staging lanes. That split needs a small synchronization protocol:
//! when the coordinator plans a copy of datum `D` into space `S`, the
//! directory immediately marks `(D, S)` valid — optimistically — while
//! the bytes are still in flight. Any *other* staged copy that wants to
//! read `(D, S)` as its source, and any later task that was planned
//! while `(D, S)` was still in flight, must wait for the bytes to land.
//!
//! [`StagingLedger`] is the coordinator-owned map from `(DataId,
//! MemSpace)` to the [`ReadyCell`] guarding the most recent planned copy
//! into that space. Cells carry an *epoch* (per `(D, S)` key, bumped on
//! every planned copy) so a replanned copy — e.g. after a staging fault
//! rolled the first attempt back — is distinguishable from the failed
//! attempt: waiters that latched the old cell observe its failure and
//! requeue; the replan installs a fresh cell at the next epoch, and new
//! readers only ever latch the latest one.
//!
//! The protocol leans on two plan-order invariants (argued in
//! DESIGN.md §2.2):
//!
//! 1. **Writers never see pending cells.** The task graph serializes
//!    every writer of `D` against all earlier readers/writers of `D`, so
//!    by the time a writer is *planned*, every planned copy of `D` has
//!    been published (its task completed). Only concurrent *readers*
//!    create staging concurrency.
//! 2. **Waits point strictly backwards.** A cell a staged copy waits on
//!    was installed by a copy planned strictly earlier; on the same
//!    worker that copy is earlier in the same FIFO, on another worker it
//!    proceeds independently — so the wait graph is acyclic and the
//!    protocol is deadlock-free.

use crate::{DataId, MemSpace, Transfer};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Resolution state of one planned copy.
#[derive(Clone, Debug, PartialEq, Eq)]
enum CellState {
    /// Bytes still in flight.
    Pending,
    /// Bytes landed; the destination space really holds the value.
    Ready,
    /// The staging step panicked (or was abandoned); the destination
    /// space never received the value and the planner must roll back.
    Failed(String),
}

/// A one-shot readiness latch guarding one planned copy of one datum
/// into one space.
///
/// The coordinator creates the cell at plan time; the staging lane that
/// performs the copy publishes exactly once ([`ReadyCell::publish_ok`] /
/// [`ReadyCell::publish_failed`]); any number of staging lanes may
/// [`ReadyCell::wait`] for the resolution.
#[derive(Debug)]
pub struct ReadyCell {
    epoch: u64,
    state: Mutex<CellState>,
    cv: Condvar,
}

impl ReadyCell {
    fn new(epoch: u64) -> Arc<ReadyCell> {
        Arc::new(ReadyCell { epoch, state: Mutex::new(CellState::Pending), cv: Condvar::new() })
    }

    /// The epoch this cell was installed at (per `(DataId, MemSpace)`
    /// key, monotonically increasing across replans).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mark the copy as landed and wake all waiters.
    pub fn publish_ok(&self) {
        let mut st = self.state.lock().expect("ReadyCell mutex poisoned");
        debug_assert_eq!(*st, CellState::Pending, "ReadyCell published twice");
        *st = CellState::Ready;
        self.cv.notify_all();
    }

    /// Mark the copy as failed (staging panic or abandonment) and wake
    /// all waiters; they observe `Err(msg)`.
    pub fn publish_failed(&self, msg: impl Into<String>) {
        let mut st = self.state.lock().expect("ReadyCell mutex poisoned");
        if *st == CellState::Pending {
            *st = CellState::Failed(msg.into());
            self.cv.notify_all();
        }
    }

    /// Resolve the cell as failed only if nobody published it — used by
    /// drop guards so a copy that never ran (coordinator unwound with
    /// the plan still queued) cannot strand waiters forever.
    pub fn publish_failed_if_pending(&self, msg: &str) {
        self.publish_failed(msg);
    }

    /// Block until the copy resolves. `Ok(())` means the bytes are in
    /// place; `Err(msg)` means the copy failed and the caller must treat
    /// its own work as transitively failed.
    pub fn wait(&self) -> Result<(), String> {
        let mut st = self.state.lock().expect("ReadyCell mutex poisoned");
        while *st == CellState::Pending {
            st = self.cv.wait(st).expect("ReadyCell mutex poisoned");
        }
        match &*st {
            CellState::Ready => Ok(()),
            CellState::Failed(msg) => Err(msg.clone()),
            CellState::Pending => unreachable!(),
        }
    }

    /// Non-blocking probe: `true` once the copy landed successfully.
    pub fn is_ready(&self) -> bool {
        *self.state.lock().expect("ReadyCell mutex poisoned") == CellState::Ready
    }

    /// Non-blocking probe of the resolution, `None` while pending.
    pub fn poll(&self) -> Option<Result<(), String>> {
        match &*self.state.lock().expect("ReadyCell mutex poisoned") {
            CellState::Pending => None,
            CellState::Ready => Some(Ok(())),
            CellState::Failed(msg) => Some(Err(msg.clone())),
        }
    }
}

/// Coordinator-owned registry of in-flight staged copies.
///
/// Single-threaded by construction (only the coordinator touches it);
/// the [`ReadyCell`]s it hands out are the only shared state.
#[derive(Default, Debug)]
pub struct StagingLedger {
    cells: HashMap<(DataId, MemSpace), Arc<ReadyCell>>,
    epochs: HashMap<(DataId, MemSpace), u64>,
}

impl StagingLedger {
    /// Empty ledger.
    pub fn new() -> StagingLedger {
        StagingLedger::default()
    }

    /// Record a planned copy and return `(wait_src, publish)`:
    /// `wait_src` is the cell the copy must wait on before reading its
    /// source (if the source space's copy is itself still in flight),
    /// `publish` is the fresh cell the copy must resolve once its bytes
    /// land (or fail).
    pub fn plan_copy(&mut self, t: &Transfer) -> (Option<Arc<ReadyCell>>, Arc<ReadyCell>) {
        let wait_src = self.pending(t.data, t.from);
        let key = (t.data, t.to);
        let epoch = self.epochs.entry(key).or_insert(0);
        *epoch += 1;
        let cell = ReadyCell::new(*epoch);
        self.cells.insert(key, Arc::clone(&cell));
        (wait_src, cell)
    }

    /// The unresolved (or failed) cell guarding `(data, space)`, if any.
    /// Returns `None` once the copy landed successfully — readers then
    /// need no synchronization at all.
    pub fn pending(&self, data: DataId, space: MemSpace) -> Option<Arc<ReadyCell>> {
        self.cells.get(&(data, space)).filter(|c| !c.is_ready()).map(Arc::clone)
    }

    /// Latest epoch installed for `(data, space)` (0 if never staged).
    pub fn epoch(&self, data: DataId, space: MemSpace) -> u64 {
        self.epochs.get(&(data, space)).copied().unwrap_or(0)
    }

    /// Drop cells whose copies landed. Failed cells are kept until a
    /// write or replan supersedes them, so late planners still observe
    /// the failure conservatively.
    pub fn prune(&mut self) {
        self.cells.retain(|_, c| !c.is_ready());
    }

    /// A writer of `data` was planned: every staged copy of `data` is
    /// either published (invariant 1) or rolled back, so all remaining
    /// cells — in particular stale `Failed` ones whose rollback already
    /// ran — are moot and must not gate future readers.
    pub fn note_write(&mut self, data: DataId) {
        self.cells.retain(|(d, _), _| *d != data);
    }

    /// The allocation was freed: forget all staging state for it so a
    /// recycled `DataId` cannot observe stale cells or epochs.
    pub fn forget(&mut self, data: DataId) {
        self.cells.retain(|(d, _), _| *d != data);
        self.epochs.retain(|(d, _), _| *d != data);
    }

    /// Number of cells not yet resolved successfully (pending or
    /// failed) — diagnostic.
    pub fn unresolved(&self) -> usize {
        self.cells.values().filter(|c| !c.is_ready()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tx(data: u32, from: MemSpace, to: MemSpace) -> Transfer {
        Transfer { data: DataId(data), from, to, bytes: 64 }
    }

    #[test]
    fn plan_publish_wait_roundtrip() {
        let mut ledger = StagingLedger::new();
        let (wait_src, publish) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        assert!(wait_src.is_none(), "host source has no in-flight copy");
        assert!(!publish.is_ready());
        assert!(ledger.pending(DataId(0), MemSpace::device(0)).is_some());
        publish.publish_ok();
        assert!(publish.is_ready());
        assert_eq!(publish.wait(), Ok(()));
        assert!(ledger.pending(DataId(0), MemSpace::device(0)).is_none());
    }

    #[test]
    fn chained_copy_waits_on_in_flight_source() {
        let mut ledger = StagingLedger::new();
        let (_, first) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        // Second copy sources from dev0 while dev0's bytes are in flight.
        let (wait_src, _second) = ledger.plan_copy(&tx(0, MemSpace::device(0), MemSpace::device(1)));
        let src = wait_src.expect("must latch the in-flight source cell");
        assert!(Arc::ptr_eq(&src, &first));
    }

    #[test]
    fn epochs_increase_per_key_and_latest_cell_wins() {
        let mut ledger = StagingLedger::new();
        let (_, c1) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        c1.publish_failed("injected");
        let (_, c2) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        assert_eq!(c1.epoch(), 1);
        assert_eq!(c2.epoch(), 2);
        assert_eq!(ledger.epoch(DataId(0), MemSpace::device(0)), 2);
        // Readers latch the latest (pending) cell, not the failed one.
        let latest = ledger.pending(DataId(0), MemSpace::device(0)).unwrap();
        assert_eq!(latest.epoch(), 2);
        // Independent key keeps its own epoch counter.
        let (_, other) = ledger.plan_copy(&tx(1, MemSpace::HOST, MemSpace::device(0)));
        assert_eq!(other.epoch(), 1);
    }

    #[test]
    fn failed_cell_propagates_message_to_waiters() {
        let mut ledger = StagingLedger::new();
        let (_, cell) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        let waiter = Arc::clone(&cell);
        let h = std::thread::spawn(move || waiter.wait());
        std::thread::sleep(Duration::from_millis(10));
        cell.publish_failed("copy exploded");
        assert_eq!(h.join().unwrap(), Err("copy exploded".to_string()));
        // Failed cells survive prune (late planners must still see them)…
        ledger.prune();
        assert!(ledger.pending(DataId(0), MemSpace::device(0)).is_some());
        // …until a writer supersedes them.
        ledger.note_write(DataId(0));
        assert!(ledger.pending(DataId(0), MemSpace::device(0)).is_none());
    }

    #[test]
    fn forget_clears_cells_and_epochs() {
        let mut ledger = StagingLedger::new();
        let (_, cell) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        cell.publish_ok();
        ledger.forget(DataId(0));
        assert_eq!(ledger.epoch(DataId(0), MemSpace::device(0)), 0);
        assert!(ledger.pending(DataId(0), MemSpace::device(0)).is_none());
        // A recycled id starts a fresh epoch sequence.
        let (_, fresh) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        assert_eq!(fresh.epoch(), 1);
    }

    #[test]
    fn publish_failed_after_ok_is_a_noop() {
        let mut ledger = StagingLedger::new();
        let (_, cell) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        cell.publish_ok();
        cell.publish_failed_if_pending("dropped");
        assert_eq!(cell.wait(), Ok(()));
    }

    #[test]
    fn prune_drops_only_ready_cells() {
        let mut ledger = StagingLedger::new();
        let (_, a) = ledger.plan_copy(&tx(0, MemSpace::HOST, MemSpace::device(0)));
        let (_, _b) = ledger.plan_copy(&tx(1, MemSpace::HOST, MemSpace::device(0)));
        a.publish_ok();
        assert_eq!(ledger.unresolved(), 1);
        ledger.prune();
        assert!(ledger.pending(DataId(0), MemSpace::device(0)).is_none());
        assert!(ledger.pending(DataId(1), MemSpace::device(0)).is_some());
    }
}
