//! Directory-coherence and staging-protocol invariants under random
//! operation sequences and real thread interleavings.
//!
//! The async transfer pipeline leans on the directory behaving like a
//! textbook MSI-style validity set (single writer, additive readers) and
//! on the `ReadyCell` readiness protocol never dropping or inverting a
//! publication. These tests hammer both well beyond what the engine's
//! own integration tests reach.

use proptest::prelude::*;
use std::sync::Arc;
use versa_mem::{
    AccessMode, DataId, Directory, MemSpace, ReadyCell, StagingLedger, Transfer,
};

fn spaces() -> [MemSpace; 4] {
    [MemSpace::HOST, MemSpace::device(0), MemSpace::device(1), MemSpace::device(2)]
}

#[derive(Clone, Debug)]
enum Op {
    Acquire { data: u8, space: u8, mode: AccessMode },
    Retract { data: u8, space: u8 },
    SnapshotRestoreRoundtrip { data: u8 },
    FreeAndRecycle { data: u8 },
}

fn op_strategy(n_data: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_data, 0..4u8, prop_oneof![
            Just(AccessMode::In),
            Just(AccessMode::Out),
            Just(AccessMode::InOut)
        ])
            .prop_map(|(data, space, mode)| Op::Acquire { data, space, mode }),
        (0..n_data, 0..4u8).prop_map(|(data, space)| Op::Retract { data, space }),
        (0..n_data).prop_map(|data| Op::SnapshotRestoreRoundtrip { data }),
        (0..n_data).prop_map(|data| Op::FreeAndRecycle { data }),
    ]
}

proptest! {
    // Single-writer / additive-reader coherence: any sequence of
    // acquires, rollback retracts, snapshot/restore roundtrips and
    // free-recycle cycles keeps every validity set non-empty, sorted,
    // duplicate-free; a write acquire always collapses it to exactly
    // the writer's space; a read acquire only ever grows it.
    #[test]
    fn directory_validity_invariants_hold(ops in proptest::collection::vec(op_strategy(4), 1..64)) {
        let dir = Directory::new();
        for d in 0..4u32 {
            dir.register(DataId(d), 256, MemSpace::HOST);
        }
        for op in ops {
            match op {
                Op::Acquire { data, space, mode } => {
                    let (data, space) = (DataId(u32::from(data)), spaces()[usize::from(space)]);
                    let before: Vec<MemSpace> =
                        dir.state(data).unwrap().valid_spaces().to_vec();
                    let t = dir.acquire(data, space, mode);
                    let after: Vec<MemSpace> =
                        dir.state(data).unwrap().valid_spaces().to_vec();
                    if mode.writes() {
                        prop_assert_eq!(&after, &vec![space], "writer owns the only copy");
                    } else {
                        prop_assert!(after.contains(&space), "reader's space became valid");
                        for s in &before {
                            prop_assert!(after.contains(s), "read acquire never invalidates");
                        }
                        prop_assert_eq!(t.is_some(), !before.contains(&space),
                            "a copy is planned iff the space was missing the value");
                    }
                    if let Some(t) = t {
                        prop_assert_eq!(t.to, space);
                        prop_assert!(before.contains(&t.from), "source held a valid copy");
                    }
                }
                Op::Retract { data, space } => {
                    let (data, space) = (DataId(u32::from(data)), spaces()[usize::from(space)]);
                    dir.retract(data, space);
                }
                Op::SnapshotRestoreRoundtrip { data } => {
                    let data = DataId(u32::from(data));
                    let before: Vec<MemSpace> =
                        dir.state(data).unwrap().valid_spaces().to_vec();
                    let snap = dir.snapshot(data).unwrap();
                    // Mutate arbitrarily, then restore: exact undo.
                    dir.acquire(data, MemSpace::device(1), AccessMode::InOut);
                    dir.restore(data, snap);
                    let after: Vec<MemSpace> =
                        dir.state(data).unwrap().valid_spaces().to_vec();
                    prop_assert_eq!(before, after, "restore is an exact inverse");
                }
                Op::FreeAndRecycle { data } => {
                    // Free and immediately recycle the id: the fresh
                    // registration must see pristine state, never the
                    // old validity set (use-after-free guard).
                    let data = DataId(u32::from(data));
                    dir.unregister(data);
                    prop_assert!(dir.state(data).is_none(), "freed data is gone");
                    dir.register(data, 256, MemSpace::HOST);
                    prop_assert_eq!(
                        dir.state(data).unwrap().valid_spaces(),
                        &[MemSpace::HOST][..],
                        "recycled id starts from its home space only"
                    );
                }
            }
            // Global invariants after every op.
            for d in 0..4u32 {
                let state = dir.state(DataId(d)).unwrap();
                let valid = state.valid_spaces();
                prop_assert!(!valid.is_empty(), "the value always lives somewhere");
                let mut sorted = valid.to_vec();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(valid, &sorted[..], "validity set stays sorted and unique");
            }
        }
    }

    // Ledger epochs are per-key monotonic; `pending` always hands out
    // the latest-epoch cell; a write clears every cell of the datum but
    // preserves epoch counters (readers-see-latest-epoch).
    #[test]
    fn ledger_epochs_are_monotonic_and_latest_wins(
        plans in proptest::collection::vec((0..3u32, 1..4u8, (0..2u8).prop_map(|b| b == 1)), 1..40),
        write_at in proptest::collection::vec((0..2u8).prop_map(|b| b == 1), 1..40),
    ) {
        let mut ledger = StagingLedger::new();
        let mut last_epoch = std::collections::HashMap::new();
        for ((data, space, publish_ok), write) in plans.into_iter().zip(write_at) {
            let (data, space) = (DataId(data), spaces()[usize::from(space)]);
            let t = Transfer { data, from: MemSpace::HOST, to: space, bytes: 64 };
            let (_, cell) = ledger.plan_copy(&t);
            let prev = last_epoch.insert((data, space), cell.epoch()).unwrap_or(0);
            prop_assert!(cell.epoch() > prev, "epochs strictly increase per key");
            prop_assert_eq!(ledger.epoch(data, space), cell.epoch());
            if publish_ok {
                cell.publish_ok();
                prop_assert!(ledger.pending(data, space).is_none(),
                    "landed copies need no synchronization");
            } else {
                cell.publish_failed("injected");
                let latest = ledger.pending(data, space).unwrap();
                prop_assert_eq!(latest.epoch(), cell.epoch(), "latest cell wins");
            }
            if write {
                ledger.note_write(data);
                for s in spaces() {
                    prop_assert!(ledger.pending(data, s).is_none(),
                        "a planned writer supersedes all cells of its datum");
                }
                prop_assert_eq!(ledger.epoch(data, space), cell.epoch(),
                    "note_write keeps epoch counters");
            }
            ledger.prune();
        }
    }
}

/// A simple deterministic PRNG so the thread stress is reproducible.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Readiness-protocol stress: chains of staged copies across real
/// threads, where each link waits on its upstream cell and publishes its
/// own (ok, or failed — by seed or by upstream propagation, exactly as a
/// staging lane would). Every chain's tail must observe failure iff any
/// link upstream failed, across many seeds and interleavings.
#[test]
fn readiness_chains_propagate_exactly_the_injected_failures() {
    for seed in 0..24u64 {
        let mut rng = Lcg(0x9E3779B97F4A7C15 ^ seed);
        let chain_len = 2 + (rng.next() % 7) as usize;
        let mut ledger = StagingLedger::new();

        // Plan the chain: host → dev0 → dev1 → dev0 → … each link
        // sourcing from the previous link's in-flight destination.
        let mut links: Vec<(Option<Arc<ReadyCell>>, Arc<ReadyCell>, bool)> = Vec::new();
        let mut expect_failure = false;
        for i in 0..chain_len {
            let from = if i == 0 { MemSpace::HOST } else { MemSpace::device((i as u16 - 1) % 2) };
            let to = MemSpace::device(i as u16 % 2);
            let t = Transfer { data: DataId(0), from, to, bytes: 64 };
            let (wait_src, publish) = ledger.plan_copy(&t);
            if i > 0 {
                assert!(wait_src.is_some(), "chained copy must latch its in-flight source");
            }
            let fail_here = rng.next().is_multiple_of(4);
            expect_failure |= fail_here;
            links.push((wait_src, publish, fail_here));
        }
        let tail = Arc::clone(&links.last().unwrap().1);

        // Execute every link on its own thread, in scrambled spawn order
        // with seeded start jitter, like staging lanes racing each other.
        std::thread::scope(|scope| {
            let mut order: Vec<usize> = (0..links.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, (rng.next() % (i as u64 + 1)) as usize);
            }
            let jitter: Vec<u64> = order.iter().map(|_| rng.next() % 3).collect();
            for (&idx, &j) in order.iter().zip(&jitter) {
                let (wait_src, publish, fail_here) = &links[idx];
                scope.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(j * 100));
                    let upstream_failed =
                        wait_src.as_ref().map(|c| c.wait().is_err()).unwrap_or(false);
                    if upstream_failed {
                        publish.publish_failed("upstream failed");
                    } else if *fail_here {
                        publish.publish_failed("injected");
                    } else {
                        publish.publish_ok();
                    }
                });
            }
        });

        assert_eq!(
            tail.wait().is_err(),
            expect_failure,
            "seed {seed}: tail must fail iff some link failed (chain {chain_len})"
        );
        // Publication is sticky: re-observing yields the same outcome.
        assert_eq!(tail.poll().unwrap().is_err(), expect_failure);
    }
}

/// Many concurrent waiters on one cell all observe the single
/// publication — none hang, none see a stale pending state.
#[test]
fn every_waiter_observes_the_publication() {
    for &fail in &[false, true] {
        let mut ledger = StagingLedger::new();
        let (_, cell) = ledger.plan_copy(&Transfer {
            data: DataId(0),
            from: MemSpace::HOST,
            to: MemSpace::device(0),
            bytes: 64,
        });
        std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..16)
                .map(|_| {
                    let c = Arc::clone(&cell);
                    scope.spawn(move || c.wait())
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(2));
            if fail {
                cell.publish_failed("boom");
            } else {
                cell.publish_ok();
            }
            for w in waiters {
                assert_eq!(w.join().unwrap().is_err(), fail);
            }
        });
    }
}
