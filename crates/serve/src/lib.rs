//! # versa-serve — a persistent multi-job task service
//!
//! The paper's runtime (and [`versa_runtime::Runtime`]) is one-shot:
//! build a DAG, `run()`, read the report. Everything the versioning
//! scheduler learns — per-size version profiles, quarantine state,
//! device residency — lives in that runtime, so the natural deployment
//! is a *service* that keeps one runtime alive and feeds it a stream of
//! jobs. That is this crate:
//!
//! * **Admission control** — a bounded queue in front of the service;
//!   [`Client::submit`] returns [`SubmitOutcome::Accepted`] with a
//!   [`JobTicket`], `Rejected(QueueFull)` backpressure, or
//!   [`SubmitOutcome::Shed`] when a job's deadline is already
//!   infeasible given the live backlog estimate.
//! * **Fair multi-job interleaving** — the service drives the runtime
//!   in bounded *waves* ([`Runtime::run_bounded`]) and turns on
//!   weighted start-time fair queuing over job tags
//!   ([`RuntimeConfig::fair_scheduling`]), so concurrent jobs share the
//!   workers instead of running FIFO; [`JobClass`] sets priority and
//!   weight per job.
//! * **Cross-job profile warmth** — one scheduler serves every job, so
//!   profiles learned by job *n* schedule job *n+1*; `warm_start`
//!   hints seed templates incrementally as jobs register them.
//! * **Live metrics** — [`Client::metrics`] snapshots
//!   jobs accepted/rejected/shed/completed, queue depth, live tasks,
//!   per-version execution counts and per-worker busy time at any
//!   moment, including mid-job.
//!
//! ```
//! use versa_runtime::{Runtime, RuntimeConfig};
//! use versa_serve::{JobSpec, Service, ServeConfig};
//! use versa_sim::PlatformConfig;
//! use versa_core::DeviceKind;
//!
//! let mut rt = Runtime::simulated(RuntimeConfig::default(), PlatformConfig::minotauro(2, 1));
//! let tpl = rt.template("t").main("t_smp", &[DeviceKind::Smp]).register();
//! rt.bind_cost(tpl, versa_core::VersionId(0), |_| std::time::Duration::from_millis(1));
//! let service = Service::start(rt, ServeConfig::default());
//! let client = service.client();
//! let ticket = client
//!     .submit(JobSpec::fire_and_forget("hello", move |rt| {
//!         let d = rt.alloc_bytes(1024);
//!         rt.task(tpl).read_write(d).submit();
//!     }))
//!     .accepted()
//!     .expect("queue has room");
//! let report = ticket.wait();
//! assert_eq!(report.tasks, 1);
//! assert!(report.outcome.is_ok());
//! let rt = service.shutdown();
//! assert!(rt.graph().len() >= 1);
//! ```
//!
//! [`Runtime`]: versa_runtime::Runtime
//! [`Runtime::run_bounded`]: versa_runtime::Runtime::run_bounded
//! [`RuntimeConfig::fair_scheduling`]: versa_runtime::RuntimeConfig

#![warn(missing_docs)]

mod job;
mod metrics;
mod service;

pub use job::{
    BuildFn, FinishFn, JobClass, JobId, JobReport, JobSpec, JobTicket, RejectReason,
    SubmitOutcome,
};
pub use metrics::MetricsSnapshot;
pub use service::{Client, ServeConfig, Service};
