//! Job descriptions, admission outcomes, tickets and reports.

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;
use versa_core::{TemplateId, VersionId};
use versa_runtime::Runtime;

/// Service-assigned job identifier (monotonically increasing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Scheduling class of a job: a strict priority level plus a weight for
/// proportional sharing *within* the level. Tasks of a higher-priority
/// job always dispatch before lower-priority ones; among equal-priority
/// jobs, a job with weight `w` gets `w` dispatch slots for every slot a
/// weight-1 job gets (start-time fair queuing over the ready pool).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobClass {
    /// Strict priority level (higher dispatches first).
    pub priority: u8,
    /// Proportional share within the priority level (≥ 1).
    pub weight: u32,
}

impl JobClass {
    /// The default class: priority 1, weight 1.
    pub fn normal() -> JobClass {
        JobClass { priority: 1, weight: 1 }
    }

    /// Below-normal priority — runs only when nothing normal is ready.
    pub fn batch() -> JobClass {
        JobClass { priority: 0, weight: 1 }
    }

    /// Above-normal priority — preempts normal dispatch order.
    pub fn interactive() -> JobClass {
        JobClass { priority: 2, weight: 1 }
    }

    /// Same priority, different proportional share.
    pub fn with_weight(self, weight: u32) -> JobClass {
        JobClass { weight: weight.max(1), ..self }
    }
}

impl Default for JobClass {
    fn default() -> Self {
        JobClass::normal()
    }
}

/// Finalizer run on the service thread once every task of the job is
/// done: read results back, verify, free the job's allocations. Its
/// `Err` is recorded as the job's outcome (the service keeps running).
pub type FinishFn = Box<dyn FnOnce(&mut Runtime) -> Result<(), String> + Send>;

/// Build closure: registers templates (idempotently — reuse
/// [`TemplateRegistry::by_name`](versa_core::TemplateRegistry::by_name)
/// so repeated jobs share one template and its learned profile),
/// allocates data and submits the job's task DAG, then returns the
/// [`FinishFn`] to run at completion.
pub type BuildFn = Box<dyn FnOnce(&mut Runtime) -> FinishFn + Send>;

/// Everything the service needs to admit and run one job.
pub struct JobSpec {
    /// Human-readable name (echoed in the [`JobReport`]).
    pub name: String,
    /// Tenant the job belongs to (free-form; carried on the job tag).
    pub tenant: u32,
    /// Priority/weight class.
    pub class: JobClass,
    /// Complete-by budget measured from submission. Admission sheds the
    /// job up front when the backlog estimate already exceeds it; `None`
    /// disables shedding.
    pub deadline: Option<Duration>,
    /// Rough task count of the job, used only for the deadline
    /// feasibility estimate (0 = unknown, never shed).
    pub est_tasks: u64,
    pub(crate) build: BuildFn,
}

impl JobSpec {
    /// A normal-class job from a build closure.
    pub fn new(
        name: impl Into<String>,
        build: impl FnOnce(&mut Runtime) -> FinishFn + Send + 'static,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            tenant: 0,
            class: JobClass::normal(),
            deadline: None,
            est_tasks: 0,
            build: Box::new(build),
        }
    }

    /// A job with no finalizer (nothing to read back or free).
    pub fn fire_and_forget(
        name: impl Into<String>,
        build: impl FnOnce(&mut Runtime) + Send + 'static,
    ) -> JobSpec {
        JobSpec::new(name, move |rt| {
            build(rt);
            Box::new(|_| Ok(()))
        })
    }

    /// Set the tenant id.
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Set the scheduling class.
    pub fn class(mut self, class: JobClass) -> Self {
        self.class = class;
        self
    }

    /// Set the deadline and the task-count estimate backing its
    /// feasibility check.
    pub fn deadline(mut self, deadline: Duration, est_tasks: u64) -> Self {
        self.deadline = Some(deadline);
        self.est_tasks = est_tasks;
        self
    }
}

/// Why a submission was turned away at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is full — back off and retry.
    QueueFull,
    /// The service is shutting down (or its thread is gone).
    ShuttingDown,
}

/// Result of [`Client::submit`](crate::Client::submit).
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Admitted to the queue; redeem the ticket for the [`JobReport`].
    Accepted(JobTicket),
    /// Turned away; nothing was enqueued.
    Rejected(RejectReason),
    /// Shed by admission control: the current-backlog completion
    /// estimate already exceeds the job's deadline.
    Shed {
        /// Estimated completion latency at submission time.
        estimated: Duration,
        /// The deadline that estimate violates.
        deadline: Duration,
    },
}

impl SubmitOutcome {
    /// The ticket, if accepted.
    pub fn accepted(self) -> Option<JobTicket> {
        match self {
            SubmitOutcome::Accepted(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the submission was rejected with a full queue.
    pub fn is_queue_full(&self) -> bool {
        matches!(self, SubmitOutcome::Rejected(RejectReason::QueueFull))
    }
}

/// Claim check for an accepted job: blocks (or polls) for its report.
#[derive(Debug)]
pub struct JobTicket {
    /// The service-assigned id of the job.
    pub id: JobId,
    pub(crate) rx: mpsc::Receiver<JobReport>,
}

impl JobTicket {
    /// Block until the job completes. If the service died before
    /// reporting, a synthetic report with an `Err` outcome is returned.
    pub fn wait(self) -> JobReport {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| JobReport::service_gone(id))
    }

    /// The report, if the job already completed.
    pub fn try_wait(&self) -> Option<JobReport> {
        self.rx.try_recv().ok()
    }
}

/// What happened to one completed job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The service-assigned job id.
    pub job: JobId,
    /// The name from its [`JobSpec`].
    pub name: String,
    /// Tasks the job submitted.
    pub tasks: u64,
    /// Submission → admission (time spent queued).
    pub wait: Duration,
    /// Admission → completion (time in the runtime).
    pub exec: Duration,
    /// Submission → completion.
    pub turnaround: Duration,
    /// Waves the service had completed when the job was admitted.
    pub admitted_wave: u64,
    /// 1-based index of the wave that completed the job. Two jobs A and
    /// B overlapped iff `A.admitted_wave < B.completed_wave` and
    /// `B.admitted_wave < A.completed_wave`.
    pub completed_wave: u64,
    /// Executions per (template, version) — this job's tasks only.
    pub version_counts: HashMap<(TemplateId, VersionId), u64>,
    /// This job's tasks per worker, indexed by worker id.
    pub worker_task_counts: Vec<u64>,
    /// `Ok` or the finalizer's / service's failure description.
    pub outcome: Result<(), String>,
}

impl JobReport {
    pub(crate) fn service_gone(id: JobId) -> JobReport {
        JobReport {
            job: id,
            name: String::new(),
            tasks: 0,
            wait: Duration::ZERO,
            exec: Duration::ZERO,
            turnaround: Duration::ZERO,
            admitted_wave: 0,
            completed_wave: 0,
            version_counts: HashMap::new(),
            worker_task_counts: Vec::new(),
            outcome: Err("service shut down before the job completed".into()),
        }
    }

    /// Executions of `version` of `template` by this job's tasks.
    pub fn version_count(&self, template: TemplateId, version: VersionId) -> u64 {
        self.version_counts.get(&(template, version)).copied().unwrap_or(0)
    }
}
