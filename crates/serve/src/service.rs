//! The service itself: one thread owning the [`Runtime`], a bounded
//! admission queue in front of it, and a wave loop interleaving every
//! admitted job through the shared scheduler.

use crate::job::{FinishFn, JobId, JobReport, JobSpec, RejectReason, SubmitOutcome};
use crate::metrics::{MetricsSnapshot, Shared, DECISION_TAIL, JOB_EVENT_TAIL};
use crate::JobTicket;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use versa_core::profile::{apply_hints, parse_hints, HintsFile};
use versa_core::{JobTag, TaskId};
use versa_runtime::{graph::TaskState, RunReport, Runtime};
use versa_trace::{TraceEvent, Ts};

/// Offset from the service epoch as a trace timestamp.
fn service_ts(shared: &Shared) -> Ts {
    Ts(shared.started.elapsed().as_nanos() as u64)
}

/// Publish a job's accumulated lifecycle events into the shared ring in
/// one lock acquisition, keeping the ring bounded.
fn publish_job_events(shared: &Shared, events: Vec<TraceEvent>) {
    let mut ring = shared.job_events.lock().expect("job-event ring poisoned");
    for ev in events {
        if ring.len() >= JOB_EVENT_TAIL {
            ring.pop_front();
        }
        ring.push_back(ev);
    }
}

/// Service knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Capacity of the bounded admission queue; a full queue makes
    /// [`Client::submit`] return `Rejected(QueueFull)` immediately
    /// (backpressure, not blocking).
    pub queue_capacity: usize,
    /// Dispatch budget per wave: how many tasks the runtime may hand to
    /// workers between two admission points. Smaller = fresher admission
    /// and fairer interleaving; larger = less coordination overhead.
    pub wave_dispatch: u64,
    /// Hints-v2 text (from [`Runtime::save_hints`]) to warm the
    /// versioning scheduler with. Applied *incrementally*: whenever a
    /// job registers a template the hints mention, that template's
    /// records are seeded — once — so late-arriving job types still get
    /// their warm start, and profiles learned while serving are never
    /// overwritten by a re-apply.
    pub warm_start: Option<String>,
    /// How long the idle service sleeps between queue polls.
    pub idle_poll: Duration,
    /// Publish a fresh profile-hints snapshot after every wave
    /// ([`Client::hints_snapshot`]). This is the outbound half of
    /// cluster profile gossip (DESIGN.md §7): a coordinator serving
    /// jobs can warm a newly joining `versa-net` worker with what the
    /// service has learned *so far*, without shutting it down.
    pub gossip_hints: bool,
    /// Recycle task-graph storage between waves: completed jobs' nodes
    /// are pruned from the graph window and their fair-queue accounts
    /// dropped, so steady-state admission allocates O(active jobs), not
    /// O(jobs ever served). On by default; turn off only to inspect the
    /// full graph post-mortem.
    pub recycle_graph: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 16,
            wave_dispatch: 32,
            warm_start: None,
            idle_poll: Duration::from_millis(2),
            gossip_hints: false,
            recycle_graph: true,
        }
    }
}

struct Submission {
    id: u64,
    spec: JobSpec,
    submitted: Instant,
    report_tx: mpsc::Sender<JobReport>,
}

struct ActiveJob {
    id: u64,
    name: String,
    range: Range<u64>,
    finish: Option<FinishFn>,
    submitted: Instant,
    admitted: Instant,
    admitted_wave: u64,
    report_tx: mpsc::Sender<JobReport>,
    /// Lifecycle events accumulated privately by the service thread and
    /// published to the shared ring when the job completes — metrics
    /// recording never takes a shared lock per event.
    events: Vec<TraceEvent>,
}

/// A cloneable submission handle. Clones share the same queue and
/// metrics; hand one to each client thread.
#[derive(Clone)]
pub struct Client {
    tx: mpsc::SyncSender<Submission>,
    shared: Arc<Shared>,
}

impl Client {
    /// Submit a job. Never blocks: the outcome is decided immediately —
    /// admission-queue backpressure (`Rejected(QueueFull)`), deadline
    /// shedding (`Shed`), or acceptance with a [`JobTicket`] to redeem
    /// for the [`JobReport`].
    pub fn submit(&self, spec: JobSpec) -> SubmitOutcome {
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        if !self.shared.accepting.load(Ordering::Acquire) {
            self.shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Rejected(RejectReason::ShuttingDown);
        }
        if let Some(deadline) = spec.deadline {
            let ewma = self.shared.ewma_task_ns.load(Ordering::Relaxed);
            if ewma > 0 && spec.est_tasks > 0 {
                let backlog = self.shared.live_tasks.load(Ordering::Relaxed) + spec.est_tasks;
                let estimated =
                    Duration::from_nanos(backlog * ewma / self.shared.workers.max(1) as u64);
                if estimated > deadline {
                    self.shared.shed_deadline.fetch_add(1, Ordering::Relaxed);
                    return SubmitOutcome::Shed { estimated, deadline };
                }
            }
        }
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        let (report_tx, report_rx) = mpsc::channel();
        let sub = Submission { id, spec, submitted: Instant::now(), report_tx };
        // Count the queue slot *before* offering the submission: the
        // service thread decrements on admission, and an increment after
        // a successful `try_send` can land after that decrement — a lost
        // update that wraps the unsigned depth counter.
        self.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(sub) {
            Ok(()) => {
                self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Accepted(JobTicket { id: JobId(id), rx: report_rx })
            }
            Err(mpsc::TrySendError::Full(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Rejected(RejectReason::QueueFull)
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Rejected(RejectReason::ShuttingDown)
            }
        }
    }

    /// A live snapshot of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// The latest profile-hints snapshot the serve loop published —
    /// `None` until a wave has run with [`ServeConfig::gossip_hints`]
    /// set (or when the scheduler has nothing to save). Feed this to a
    /// joining remote worker's welcome gossip or to another service's
    /// `warm_start`. The `Arc` is swapped in whole by the publisher, so
    /// this clones a pointer — never the hints text — under the lock.
    pub fn hints_snapshot(&self) -> Option<Arc<str>> {
        self.shared.hints.lock().expect("hints mutex poisoned").clone()
    }
}

/// A running job service. Construct with [`Service::start`], submit
/// through [`Client`] handles, stop with [`Service::shutdown`].
pub struct Service {
    client: Client,
    handle: std::thread::JoinHandle<Runtime>,
}

impl Service {
    /// Move `runtime` onto a service thread and start serving. The
    /// runtime keeps its registered templates, bound kernels/costs and
    /// — crucially — its scheduler's learned profiles: every job the
    /// service runs trains the profiles the next job is scheduled with.
    pub fn start(runtime: Runtime, config: ServeConfig) -> Service {
        let shared = Arc::new(Shared::new(runtime.workers().len()));
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("versa-serve".into())
            .spawn(move || serve_loop(runtime, config, rx, thread_shared))
            .expect("failed to spawn service thread");
        Service { client: Client { tx, shared }, handle }
    }

    /// A new submission handle (cheap; clone freely across threads).
    pub fn client(&self) -> Client {
        self.client.clone()
    }

    /// A live snapshot of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.client.metrics()
    }

    /// Stop accepting new jobs, drain everything already admitted or
    /// queued, and hand the runtime back — with everything its scheduler
    /// learned, ready for [`Runtime::save_hints`] or another service.
    pub fn shutdown(self) -> Runtime {
        self.client.shared.accepting.store(false, Ordering::Release);
        drop(self.client);
        self.handle.join().expect("service thread panicked")
    }
}

fn serve_loop(
    mut rt: Runtime,
    config: ServeConfig,
    rx: mpsc::Receiver<Submission>,
    shared: Arc<Shared>,
) -> Runtime {
    let saved_flush = rt.config().flush_on_wait;
    let saved_fair = rt.config().fair_scheduling;
    rt.config_mut().fair_scheduling = true;
    // Waves must not flush device data home: jobs overlap, and residency
    // is part of the cross-job warmth the service exists to preserve.
    rt.config_mut().flush_on_wait = false;

    let warm: Option<HintsFile> =
        config.warm_start.as_deref().and_then(|text| parse_hints(text).ok());
    let mut seeded: HashSet<String> = HashSet::new();
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut wave: u64 = 0;

    loop {
        while let Ok(sub) = rx.try_recv() {
            admit(&mut rt, sub, &mut active, &shared, warm.as_ref(), &mut seeded, wave);
        }
        if active.is_empty() {
            if !shared.accepting.load(Ordering::Acquire) {
                break;
            }
            match rx.recv_timeout(config.idle_poll) {
                Ok(sub) => {
                    admit(&mut rt, sub, &mut active, &shared, warm.as_ref(), &mut seeded, wave);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            continue;
        }

        wave += 1;
        match rt.run_bounded(Some(config.wave_dispatch)) {
            Ok(report) => {
                assert!(
                    report.tasks_executed > 0 || report.completed,
                    "service stalled: no task of the {} active job(s) can run on any worker",
                    active.len()
                );
                note_wave(&shared, &report);
                if config.gossip_hints {
                    if let Some(hints) = rt.save_hints() {
                        *shared.hints.lock().expect("hints mutex poisoned") =
                            Some(Arc::from(hints));
                    }
                }
            }
            Err(err) => {
                // A task exhausted its retries: the runtime cannot be
                // driven further. Fail every in-flight job and stop.
                note_wave(&shared, &err.report);
                let msg = err.to_string();
                for mut job in active.drain(..) {
                    shared.active_jobs.fetch_sub(1, Ordering::Relaxed);
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    let mut events = std::mem::take(&mut job.events);
                    events.push(TraceEvent::JobCompleted {
                        time: service_ts(&shared),
                        job: job.id,
                        ok: false,
                    });
                    publish_job_events(&shared, events);
                    let mut report = JobReport::service_gone(JobId(job.id));
                    report.name = job.name;
                    report.outcome = Err(format!("service aborted: {msg}"));
                    let _ = job.report_tx.send(report);
                }
                shared.accepting.store(false, Ordering::Release);
                break;
            }
        }

        let mut still = Vec::with_capacity(active.len());
        for job in active.drain(..) {
            if job_done(&rt, &job.range) {
                let id = job.id;
                finalize(&mut rt, job, &shared, wave);
                if config.recycle_graph {
                    rt.forget_job(id);
                }
            } else {
                still.push(job);
            }
        }
        active = still;
        if config.recycle_graph {
            // Everything below the earliest still-active job is finalized
            // and safe to recycle.
            let keep = active.iter().map(|j| j.range.start).min().unwrap_or(rt.graph().len() as u64);
            rt.prune_done_tasks(TaskId(keep));
        }
    }

    rt.config_mut().flush_on_wait = saved_flush;
    rt.config_mut().fair_scheduling = saved_fair;
    rt
}

fn admit(
    rt: &mut Runtime,
    sub: Submission,
    active: &mut Vec<ActiveJob>,
    shared: &Shared,
    warm: Option<&HintsFile>,
    seeded: &mut HashSet<String>,
    wave: u64,
) {
    shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
    let admitted = Instant::now();
    let Submission { id, spec, submitted, report_tx } = sub;
    let before = rt.graph().len() as u64;
    rt.set_job_tag(Some(JobTag {
        job: id,
        tenant: spec.tenant,
        class: spec.class.priority,
        weight: spec.class.weight,
    }));
    let finish = (spec.build)(rt);
    rt.set_job_tag(None);
    let after = rt.graph().len() as u64;
    if let Some(file) = warm {
        seed_new_templates(rt, file, seeded);
    }
    shared.live_tasks.fetch_add(after - before, Ordering::Relaxed);
    shared.active_jobs.fetch_add(1, Ordering::Relaxed);
    active.push(ActiveJob {
        id,
        name: spec.name,
        range: before..after,
        finish: Some(finish),
        submitted,
        admitted,
        admitted_wave: wave,
        report_tx,
        events: vec![TraceEvent::JobAdmitted {
            time: service_ts(shared),
            job: id,
            tasks: after - before,
        }],
    });
}

/// Seed warm-start hints for templates that exist now but were not
/// seeded yet. Each template is seeded at most once, so profiles keep
/// anything they learned afterwards.
fn seed_new_templates(rt: &mut Runtime, file: &HintsFile, seeded: &mut HashSet<String>) {
    let fresh: Vec<&str> = file
        .records
        .iter()
        .map(|r| r.template.as_str())
        .chain(file.quarantine.iter().map(|q| q.template.as_str()))
        .filter(|name| !seeded.contains(*name) && rt.templates().by_name(name).is_some())
        .collect();
    if fresh.is_empty() {
        return;
    }
    let sub = HintsFile {
        policy: file.policy,
        records: file.records.iter().filter(|r| fresh.contains(&r.template.as_str())).cloned().collect(),
        quarantine: file
            .quarantine
            .iter()
            .filter(|q| fresh.contains(&q.template.as_str()))
            .cloned()
            .collect(),
    };
    let templates = rt.templates().clone();
    if let Some(v) = rt.versioning_mut() {
        // A policy mismatch just skips warm start; serving continues.
        let _ = apply_hints(v.profiles_mut(), &templates, &sub);
    }
    seeded.extend(fresh.into_iter().map(str::to_owned));
}

fn note_wave(shared: &Shared, report: &RunReport) {
    shared.waves.fetch_add(1, Ordering::Relaxed);
    shared.tasks_executed.fetch_add(report.tasks_executed, Ordering::Relaxed);
    shared.live_tasks.fetch_sub(report.tasks_executed, Ordering::Relaxed);
    if report.tasks_executed > 0 {
        let busy: Duration = report.worker_busy.iter().sum();
        let mean_ns = (busy.as_nanos() / u128::from(report.tasks_executed)).min(u128::from(u64::MAX)) as u64;
        let old = shared.ewma_task_ns.load(Ordering::Relaxed);
        let next = if old == 0 { mean_ns } else { (old * 7 + mean_ns) / 8 };
        shared.ewma_task_ns.store(next.max(1), Ordering::Relaxed);
    }
    if !report.version_counts.is_empty() {
        let mut counts = shared.version_counts.lock().expect("version-count metrics poisoned");
        for (key, n) in &report.version_counts {
            *counts.entry(*key).or_insert(0) += n;
        }
    }
    for (i, stat) in shared.worker_stats.iter().enumerate() {
        let mut s = stat.lock().expect("worker metrics poisoned");
        s.busy += report.worker_busy[i];
        s.tasks += report.worker_task_counts[i];
        s.transfers.merge(&report.worker_transfers[i]);
    }
    // Harvest the wave's trace, when the runtime records one: the
    // decision ledger tail, per-(job, phase) decision counts, and ring
    // drop counters all surface through `MetricsSnapshot`.
    if let Some(trace) = &report.trace {
        let mut log = shared.decisions.lock().expect("decision metrics poisoned");
        log.dropped += trace.dropped;
        for ev in trace.events() {
            if let TraceEvent::Decision(d) = ev {
                *log.phases.entry((d.job, d.phase)).or_insert(0) += 1;
                if log.tail.len() >= DECISION_TAIL {
                    log.tail.pop_front();
                }
                log.tail.push_back(d.clone());
            }
        }
    }
}

fn job_done(rt: &Runtime, range: &Range<u64>) -> bool {
    range.clone().all(|i| rt.graph().node(TaskId(i)).state == TaskState::Done)
}

fn finalize(rt: &mut Runtime, mut job: ActiveJob, shared: &Shared, wave: u64) {
    let mut version_counts = HashMap::new();
    let mut worker_task_counts = vec![0u64; shared.workers];
    for i in job.range.clone() {
        let node = rt.graph().node(TaskId(i));
        let a = node.assignment.expect("done task has an assignment");
        *version_counts.entry((node.instance.template, a.version)).or_insert(0) += 1;
        worker_task_counts[a.worker.index()] += 1;
    }
    let outcome = match job.finish.take() {
        Some(f) => f(rt),
        None => Ok(()),
    };
    shared.active_jobs.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok(()) => shared.completed.fetch_add(1, Ordering::Relaxed),
        Err(_) => shared.failed.fetch_add(1, Ordering::Relaxed),
    };
    let finished = Instant::now();
    let mut events = std::mem::take(&mut job.events);
    events.push(TraceEvent::JobCompleted {
        time: service_ts(shared),
        job: job.id,
        ok: outcome.is_ok(),
    });
    publish_job_events(shared, events);
    let report = JobReport {
        job: JobId(job.id),
        name: job.name,
        tasks: job.range.end - job.range.start,
        wait: job.admitted.duration_since(job.submitted),
        exec: finished.duration_since(job.admitted),
        turnaround: finished.duration_since(job.submitted),
        admitted_wave: job.admitted_wave,
        completed_wave: wave,
        version_counts,
        worker_task_counts,
        outcome,
    };
    // The client may have dropped its ticket; that is fine.
    let _ = job.report_tx.send(report);
}
