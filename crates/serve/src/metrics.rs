//! Live service metrics: lock-free counters updated by the service
//! thread and the clients, queryable at any time — including while jobs
//! are in flight.
//!
//! Non-scalar state is split into independent fine-grained locks — one
//! per metric family, one per worker — so a snapshot reader never stalls
//! the serve loop for longer than a single family's copy, and a panic
//! while holding one lock poisons only that family, not every metric.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use versa_core::{TemplateId, VersionId};
use versa_runtime::WorkerTransferStats;
use versa_trace::{DecisionRecord, Phase, TraceEvent};

/// How many recent scheduler decisions the service keeps for inspection.
pub(crate) const DECISION_TAIL: usize = 64;
/// How many job admission/completion events the service keeps.
pub(crate) const JOB_EVENT_TAIL: usize = 256;

/// State shared between the service thread and every client handle.
pub(crate) struct Shared {
    /// Every `submit` call, whatever its outcome — the accounting
    /// identity `submitted == accepted + rejected_queue_full +
    /// rejected_shutdown + shed_deadline` must hold at quiescence.
    pub submitted: AtomicU64,
    pub accepted: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub shed_deadline: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    /// Submissions accepted but not yet admitted by the service thread.
    pub queue_depth: AtomicU64,
    /// Jobs admitted and not yet completed.
    pub active_jobs: AtomicU64,
    /// Tasks admitted and not yet executed.
    pub live_tasks: AtomicU64,
    pub tasks_executed: AtomicU64,
    pub waves: AtomicU64,
    /// EWMA of per-task kernel time in ns (0 = no sample yet); feeds the
    /// deadline-feasibility estimate on the client side.
    pub ewma_task_ns: AtomicU64,
    /// False once shutdown begins: clients stop submitting.
    pub accepting: AtomicBool,
    pub next_job: AtomicU64,
    pub workers: usize,
    /// Service epoch — job events and decision tails are stamped with
    /// offsets from it, matching the trace timestamp convention.
    pub started: Instant,
    /// Executions per (template, version) across all jobs.
    pub version_counts: Mutex<HashMap<(TemplateId, VersionId), u64>>,
    /// Per-worker accumulators, one lock per worker: wave merges touch
    /// each worker's stripe independently of snapshot readers.
    pub worker_stats: Vec<Mutex<WorkerStat>>,
    /// Decision ledger tail, per-(job, phase) histogram and trace drop
    /// counter (populated only when the runtime traces its waves).
    pub decisions: Mutex<DecisionLog>,
    /// Last [`JOB_EVENT_TAIL`] job admission/completion events. Jobs
    /// accumulate their events privately and publish them here in one
    /// lock acquisition when they complete.
    pub job_events: Mutex<VecDeque<TraceEvent>>,
    /// Latest profile-hints snapshot published by the serve loop (only
    /// with `ServeConfig::gossip_hints`): lets a cluster coordinator
    /// gossip live warmth to joining workers mid-service. Held as an
    /// `Arc` so readers clone a pointer, not the whole hints text, under
    /// the lock.
    pub hints: Mutex<Option<Arc<str>>>,
}

/// Per-worker accumulated execution statistics.
#[derive(Default)]
pub(crate) struct WorkerStat {
    pub busy: Duration,
    pub tasks: u64,
    pub transfers: WorkerTransferStats,
}

/// Scheduler-decision telemetry harvested from wave traces.
#[derive(Default)]
pub(crate) struct DecisionLog {
    /// Last [`DECISION_TAIL`] scheduler decisions observed in wave
    /// traces (empty unless the runtime runs with tracing enabled).
    pub tail: VecDeque<DecisionRecord>,
    /// Decisions per (job, phase) across all traced waves.
    pub phases: HashMap<(Option<u64>, Phase), u64>,
    /// Trace events lost to ring overflow across all traced waves.
    pub dropped: u64,
}

impl Shared {
    pub fn new(workers: usize) -> Shared {
        Shared {
            submitted: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            active_jobs: AtomicU64::new(0),
            live_tasks: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            ewma_task_ns: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            next_job: AtomicU64::new(0),
            workers,
            started: Instant::now(),
            version_counts: Mutex::new(HashMap::new()),
            worker_stats: (0..workers).map(|_| Mutex::new(WorkerStat::default())).collect(),
            decisions: Mutex::new(DecisionLog::default()),
            job_events: Mutex::new(VecDeque::new()),
            hints: Mutex::new(None),
        }
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let version_counts =
            self.version_counts.lock().expect("version-count metrics poisoned").clone();
        let mut worker_busy = Vec::with_capacity(self.workers);
        let mut worker_task_counts = Vec::with_capacity(self.workers);
        let mut worker_transfers = Vec::with_capacity(self.workers);
        for stat in &self.worker_stats {
            let s = stat.lock().expect("worker metrics poisoned");
            worker_busy.push(s.busy);
            worker_task_counts.push(s.tasks);
            worker_transfers.push(s.transfers.clone());
        }
        let (last_decisions, decision_phases, trace_dropped) = {
            let log = self.decisions.lock().expect("decision metrics poisoned");
            (log.tail.iter().cloned().collect(), log.phases.clone(), log.dropped)
        };
        let job_events =
            self.job_events.lock().expect("job-event ring poisoned").iter().cloned().collect();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            active_jobs: self.active_jobs.load(Ordering::Relaxed),
            live_tasks: self.live_tasks.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            mean_task: {
                let ns = self.ewma_task_ns.load(Ordering::Relaxed);
                (ns > 0).then(|| Duration::from_nanos(ns))
            },
            version_counts,
            worker_busy,
            worker_task_counts,
            worker_transfers,
            last_decisions,
            decision_phases,
            trace_dropped,
            job_events,
        }
    }
}

/// A point-in-time copy of the service counters — consistent enough for
/// monitoring (scalar counters are read individually, not atomically as
/// a group).
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Every submission attempt, whatever its outcome. At quiescence
    /// `submitted == accepted + rejected_queue_full + rejected_shutdown
    /// + shed_deadline`: no submission is lost to the books.
    pub submitted: u64,
    /// Submissions accepted into the queue.
    pub accepted: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected because the service was shutting down (or
    /// already gone).
    pub rejected_shutdown: u64,
    /// Submissions shed because their deadline looked infeasible.
    pub shed_deadline: u64,
    /// Jobs completed with an `Ok` outcome.
    pub completed: u64,
    /// Jobs completed with an `Err` outcome (finalizer failure or
    /// service abort).
    pub failed: u64,
    /// Submissions accepted but not yet admitted by the service thread.
    pub queue_depth: u64,
    /// Jobs admitted and not yet completed.
    pub active_jobs: u64,
    /// Tasks admitted and not yet executed.
    pub live_tasks: u64,
    /// Tasks executed since the service started.
    pub tasks_executed: u64,
    /// Waves the service has run.
    pub waves: u64,
    /// Smoothed per-task kernel time, once at least one wave executed
    /// something.
    pub mean_task: Option<Duration>,
    /// Executions per (template, version) across all jobs.
    pub version_counts: HashMap<(TemplateId, VersionId), u64>,
    /// Accumulated kernel time per worker.
    pub worker_busy: Vec<Duration>,
    /// Tasks executed per worker.
    pub worker_task_counts: Vec<u64>,
    /// Accumulated per-worker transfer staging breakdown (bytes staged,
    /// staging vs compute time, overlap) across all waves.
    pub worker_transfers: Vec<WorkerTransferStats>,
    /// The most recent scheduler decisions (oldest first, at most
    /// `DECISION_TAIL`), harvested from wave traces. Empty unless the
    /// service's runtime was built with `RuntimeConfig::tracing` on.
    pub last_decisions: Vec<DecisionRecord>,
    /// Decisions per (job, scheduling phase) across all traced waves.
    pub decision_phases: HashMap<(Option<u64>, Phase), u64>,
    /// Trace events lost to ring overflow across all traced waves — a
    /// non-zero value means the lane capacity is too small for the
    /// service's wave size.
    pub trace_dropped: u64,
    /// Recent job admission/completion events
    /// ([`TraceEvent::JobAdmitted`] / [`TraceEvent::JobCompleted`]),
    /// stamped with offsets from service start. Each job accumulates its
    /// events privately and publishes them when it completes, so a job
    /// still in flight is visible through `active_jobs`, not here.
    pub job_events: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// Per-worker utilization over `elapsed` (busy time / wall time),
    /// clamped to 1.
    pub fn utilization(&self, elapsed: Duration) -> Vec<f64> {
        let wall = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        self.worker_busy.iter().map(|b| (b.as_secs_f64() / wall).min(1.0)).collect()
    }
}
