//! Integration tests: admission control, multi-job interleaving on both
//! engines, cross-job profile warmth, warm start, and live metrics.

use std::time::{Duration, Instant};
use versa_core::{DeviceKind, SchedulerKind, VersionId};
use versa_runtime::{NativeConfig, Runtime, RuntimeConfig};
use versa_serve::{JobSpec, RejectReason, ServeConfig, Service, SubmitOutcome};
use versa_sim::PlatformConfig;
use versa_trace::TraceEvent;

/// Simulated runtime with a 3-version template: fast GPU main (1 ms),
/// slower GPU alternate (2 ms), slow SMP fallback (20 ms). The alternate
/// GPU version can only ever run during the learning phase — on any
/// given worker the main version's estimate beats it — which makes its
/// execution count a clean "did this job pay for learning?" probe.
fn sim_runtime() -> (Runtime, versa_core::TemplateId) {
    let mut rt = Runtime::simulated(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        PlatformConfig::minotauro(2, 1),
    );
    let tpl = rt
        .template("mm")
        .main("mm_cublas", &[DeviceKind::Cuda])
        .version("mm_cuda", &[DeviceKind::Cuda])
        .version("mm_cblas", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(2));
    rt.bind_cost(tpl, VersionId(2), |_| Duration::from_millis(20));
    (rt, tpl)
}

/// `tasks` independent tasks over fresh same-size allocations (one size
/// group), leaked on purpose — sim data is contentless.
fn sim_job(tpl: versa_core::TemplateId, tasks: usize) -> JobSpec {
    JobSpec::fire_and_forget(format!("sim-{tasks}"), move |rt| {
        for _ in 0..tasks {
            let d = rt.alloc_bytes(1 << 16);
            rt.task(tpl).read_write(d).submit();
        }
    })
}

#[test]
fn two_clients_interleave_on_the_sim_engine() {
    let (rt, tpl) = sim_runtime();
    let service =
        Service::start(rt, ServeConfig { wave_dispatch: 4, ..ServeConfig::default() });
    let c1 = service.client();
    let c2 = service.client();
    let h1 = std::thread::spawn(move || {
        c1.submit(sim_job(tpl, 128)).accepted().expect("queue has room").wait()
    });
    let h2 = std::thread::spawn(move || {
        c2.submit(sim_job(tpl, 128)).accepted().expect("queue has room").wait()
    });
    let r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();

    for r in [&r1, &r2] {
        assert_eq!(r.tasks, 128);
        assert!(r.outcome.is_ok());
        assert_eq!(r.worker_task_counts.iter().sum::<u64>(), 128);
        assert!(r.turnaround >= r.wait);
    }
    // Both jobs were in flight at the same time: each was admitted
    // before the other's completing wave.
    assert!(
        r1.admitted_wave < r2.completed_wave && r2.admitted_wave < r1.completed_wave,
        "jobs did not overlap: {r1:?} vs {r2:?}"
    );

    let m = service.metrics();
    assert_eq!(m.accepted, 2);
    assert_eq!(m.completed, 2);
    assert_eq!(m.tasks_executed, 256);
    assert_eq!(m.active_jobs, 0);
    assert_eq!(m.live_tasks, 0);
    assert!(m.waves >= 2, "a 4-task budget cannot drain 256 tasks in one wave");
    assert!(m.mean_task.is_some());
    assert!(m.version_counts.values().sum::<u64>() >= 256);
    service.shutdown();
}

#[test]
fn profiles_stay_warm_across_jobs_and_across_services() {
    // Cold service: the first job pays the learning phase (the alternate
    // GPU version runs at least λ = 3 times)...
    let (rt, tpl) = sim_runtime();
    let service = Service::start(rt, ServeConfig::default());
    let client = service.client();
    let cold = client.submit(sim_job(tpl, 64)).accepted().unwrap().wait();
    assert!(
        cold.version_count(tpl, VersionId(1)) >= 3,
        "cold job should pay the learning phase: {:?}",
        cold.version_counts
    );
    // ...and the second job on the same service does not: the profiles
    // it is scheduled with were learned by the first job.
    let second = client.submit(sim_job(tpl, 64)).accepted().unwrap().wait();
    assert_eq!(
        second.version_count(tpl, VersionId(1)),
        0,
        "second job re-entered learning: {:?}",
        second.version_counts
    );
    drop(client);
    let rt = service.shutdown();
    let hints = rt.save_hints().expect("versioning scheduler active");

    // A brand-new service warm-started from those hints skips learning
    // from its very first job.
    let (rt2, tpl2) = sim_runtime();
    let warm_service = Service::start(
        rt2,
        ServeConfig { warm_start: Some(hints), ..ServeConfig::default() },
    );
    let warm = warm_service.client().submit(sim_job(tpl2, 64)).accepted().unwrap().wait();
    assert_eq!(
        warm.version_count(tpl2, VersionId(1)),
        0,
        "warm-started job re-entered learning: {:?}",
        warm.version_counts
    );
    warm_service.shutdown();
}

#[test]
fn gossip_hints_publishes_live_warmth_mid_service() {
    // Off by default: no snapshot is ever published.
    let (rt, tpl) = sim_runtime();
    let service = Service::start(rt, ServeConfig::default());
    let client = service.client();
    client.submit(sim_job(tpl, 64)).accepted().unwrap().wait();
    assert!(client.hints_snapshot().is_none(), "gossip_hints is off by default");
    drop(client);
    service.shutdown();

    // On: after the first job's waves a snapshot is available *without*
    // shutting the service down — the outbound half of cluster gossip.
    let (rt, tpl) = sim_runtime();
    let service =
        Service::start(rt, ServeConfig { gossip_hints: true, ..ServeConfig::default() });
    let client = service.client();
    client.submit(sim_job(tpl, 64)).accepted().unwrap().wait();
    let hints = client.hints_snapshot().expect("published after the first wave");

    // The live snapshot carries real warmth: a second service
    // warm-started from it skips the learning phase entirely.
    let (rt2, tpl2) = sim_runtime();
    let warm_service =
        Service::start(rt2, ServeConfig { warm_start: Some(hints.to_string()), ..ServeConfig::default() });
    let warm = warm_service.client().submit(sim_job(tpl2, 64)).accepted().unwrap().wait();
    assert_eq!(
        warm.version_count(tpl2, VersionId(1)),
        0,
        "job warmed from a live snapshot re-entered learning: {:?}",
        warm.version_counts
    );
    warm_service.shutdown();
    drop(client);
    service.shutdown();
}

#[test]
fn infeasible_deadlines_are_shed() {
    let (rt, tpl) = sim_runtime();
    let service = Service::start(rt, ServeConfig::default());
    let client = service.client();
    // First job trains the per-task time estimate.
    client.submit(sim_job(tpl, 16)).accepted().unwrap().wait();
    assert!(service.metrics().mean_task.is_some());
    // A million estimated tasks against a 1 µs deadline: shed at the door.
    let spec = sim_job(tpl, 16).deadline(Duration::from_micros(1), 1_000_000);
    match client.submit(spec) {
        SubmitOutcome::Shed { estimated, deadline } => {
            assert!(estimated > deadline);
        }
        other => panic!("expected Shed, got {other:?}"),
    }
    assert_eq!(service.metrics().shed_deadline, 1);
    // Without a deadline the same job sails through.
    let r = client.submit(sim_job(tpl, 16)).accepted().unwrap().wait();
    assert!(r.outcome.is_ok());
    service.shutdown();
}

#[test]
fn admission_accounting_is_lossless_under_concurrent_clients() {
    // The accounting identity: every submission lands in exactly one
    // bucket — accepted, rejected (queue full / shutting down), or shed
    // — even with clients hammering a tiny queue from several threads.
    let (rt, tpl) = sim_runtime();
    let service = Service::start(
        rt,
        ServeConfig { queue_capacity: 2, wave_dispatch: 4, ..ServeConfig::default() },
    );

    const CLIENTS: u64 = 4;
    const SUBMITS: u64 = 25;
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let c = service.client();
        handles.push(std::thread::spawn(move || {
            let mut accepted = 0u64;
            let mut rejected = 0u64;
            let mut tickets = Vec::new();
            for _ in 0..SUBMITS {
                match c.submit(sim_job(tpl, 8)) {
                    SubmitOutcome::Accepted(t) => {
                        accepted += 1;
                        tickets.push(t);
                    }
                    SubmitOutcome::Rejected(RejectReason::QueueFull) => rejected += 1,
                    other => panic!("unexpected outcome mid-run: {other:?}"),
                }
                // The depth counter must never wrap, however the client
                // increment races the service thread's decrement.
                assert!(
                    c.metrics().queue_depth <= CLIENTS * SUBMITS,
                    "queue_depth wrapped below zero"
                );
            }
            for t in tickets {
                assert!(t.wait().outcome.is_ok());
            }
            (accepted, rejected)
        }));
    }
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (a, r) = h.join().unwrap();
        accepted += a;
        rejected += r;
    }

    // One shed submission (the per-task estimate is trained by now)...
    let client = service.client();
    match client.submit(sim_job(tpl, 16).deadline(Duration::from_micros(1), 1_000_000)) {
        SubmitOutcome::Shed { .. } => {}
        other => panic!("expected Shed, got {other:?}"),
    }
    // ...and one rejected by shutdown; both must be on the books.
    service.shutdown();
    match client.submit(sim_job(tpl, 4)) {
        SubmitOutcome::Rejected(RejectReason::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }

    let m = client.metrics();
    assert_eq!(m.submitted, CLIENTS * SUBMITS + 2);
    assert_eq!(m.accepted, accepted);
    assert_eq!(m.rejected_queue_full, rejected);
    assert_eq!(m.shed_deadline, 1);
    assert_eq!(m.rejected_shutdown, 1);
    assert_eq!(
        m.submitted,
        m.accepted + m.rejected_queue_full + m.rejected_shutdown + m.shed_deadline,
        "a submission fell off the books: {m:?}"
    );
    assert_eq!(m.completed, m.accepted, "every accepted job completed");
    assert_eq!(m.failed, 0);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.active_jobs, 0);
    assert_eq!(m.live_tasks, 0);
}

#[test]
fn shutdown_rejects_new_submissions() {
    let (rt, tpl) = sim_runtime();
    let service = Service::start(rt, ServeConfig::default());
    let client = service.client();
    let rt = service.shutdown();
    assert!(rt.graph().is_empty());
    match client.submit(sim_job(tpl, 4)) {
        SubmitOutcome::Rejected(RejectReason::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

/// Native job: `tasks` single-datum kernels that each bump their datum
/// by 1.0 and sleep, so waves take real wall time. The finalizer reads
/// every datum back, checks the kernel ran exactly once, and frees it.
fn sleepy_job(tpl: versa_core::TemplateId, tasks: usize, kernel_ms: u64) -> JobSpec {
    JobSpec::new(format!("sleepy-{tasks}"), move |rt| {
        let data: Vec<_> = (0..tasks)
            .map(|_| {
                let d = rt.alloc_from_f64(&[0.0]);
                rt.task(tpl).read_write(d).submit();
                d
            })
            .collect();
        let _ = kernel_ms;
        Box::new(move |rt: &mut Runtime| {
            let mut result = Ok(());
            for &d in &data {
                let v = rt.read_f64(d);
                if v != [1.0] {
                    result = Err(format!("expected [1.0], got {v:?}"));
                }
                rt.free(d);
            }
            result
        }) as versa_serve::FinishFn
    })
}

#[test]
fn native_backpressure_live_metrics_and_correct_results() {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        NativeConfig { smp_workers: 1, gpus: 0, gpu_lanes: 1, link_bandwidth: None },
    );
    let tpl = rt.template("sleepy").main("sleepy_smp", &[DeviceKind::Smp]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        ctx.f64_mut(0)[0] += 1.0;
        std::thread::sleep(Duration::from_millis(15));
    });
    let service = Service::start(
        rt,
        ServeConfig { queue_capacity: 1, wave_dispatch: 8, ..ServeConfig::default() },
    );
    let client = service.client();

    // One 8-task job = one ≥120 ms wave on the single worker.
    let first = client.submit(sleepy_job(tpl, 8, 15)).accepted().expect("empty queue");
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.metrics().active_jobs == 0 {
        assert!(Instant::now() < deadline, "job was never admitted");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Burst while the wave runs: capacity 1 → at most one fits, the
    // rest bounce off the full queue.
    let mut tickets = vec![first];
    let mut rejected = 0u64;
    for _ in 0..6 {
        match client.submit(sleepy_job(tpl, 2, 15)) {
            SubmitOutcome::Accepted(t) => tickets.push(t),
            o if o.is_queue_full() => rejected += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(rejected >= 1, "a 1-slot queue absorbed 6 instant submissions");

    // Metrics are queryable while the job is mid-flight.
    let m = service.metrics();
    assert!(m.active_jobs >= 1);
    assert!(m.live_tasks >= 1);
    assert!(m.queue_depth <= 1);

    let accepted = tickets.len() as u64;
    for t in tickets {
        let r = t.wait();
        assert!(r.outcome.is_ok(), "job failed: {:?}", r.outcome);
    }
    let m = service.metrics();
    assert_eq!(m.completed, accepted);
    assert_eq!(m.rejected_queue_full, rejected);
    assert_eq!(m.active_jobs, 0);
    assert!(m.worker_busy[0] >= Duration::from_millis(100));
    assert!(m.utilization(Duration::from_secs(3600))[0] > 0.0);
    service.shutdown();
}

#[test]
fn native_jobs_from_two_threads_interleave() {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::DepAware),
        NativeConfig { smp_workers: 2, gpus: 0, gpu_lanes: 1, link_bandwidth: None },
    );
    let tpl = rt.template("sleepy").main("sleepy_smp", &[DeviceKind::Smp]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        ctx.f64_mut(0)[0] += 1.0;
        std::thread::sleep(Duration::from_millis(10));
    });
    let service = Service::start(
        rt,
        ServeConfig { wave_dispatch: 4, ..ServeConfig::default() },
    );
    let c1 = service.client();
    let c2 = service.client();
    let h1 = std::thread::spawn(move || {
        c1.submit(sleepy_job(tpl, 12, 10)).accepted().unwrap().wait()
    });
    let h2 = std::thread::spawn(move || {
        c2.submit(sleepy_job(tpl, 12, 10)).accepted().unwrap().wait()
    });
    let r1 = h1.join().unwrap();
    let r2 = h2.join().unwrap();
    for r in [&r1, &r2] {
        assert_eq!(r.tasks, 12);
        assert!(r.outcome.is_ok(), "job failed: {:?}", r.outcome);
    }
    // 12 tasks × 10 ms each per job on 2 workers: the second submission
    // lands (µs later) long before the first job's ~60 ms of waves end,
    // so the jobs must have overlapped.
    assert!(
        r1.admitted_wave < r2.completed_wave && r2.admitted_wave < r1.completed_wave,
        "jobs did not overlap: {r1:?} vs {r2:?}"
    );
    assert_eq!(service.metrics().completed, 2);
    service.shutdown();
}

#[test]
fn traced_service_exposes_decision_ledger_and_job_events() {
    let mut rc = RuntimeConfig::with_scheduler(SchedulerKind::versioning());
    rc.tracing.enabled = true;
    let mut rt = Runtime::simulated(rc, PlatformConfig::minotauro(2, 1));
    let tpl = rt
        .template("mm")
        .main("mm_cublas", &[DeviceKind::Cuda])
        .version("mm_cblas", &[DeviceKind::Smp])
        .register();
    rt.bind_cost(tpl, VersionId(0), |_| Duration::from_millis(1));
    rt.bind_cost(tpl, VersionId(1), |_| Duration::from_millis(20));
    let service = Service::start(rt, ServeConfig::default());
    let report = service
        .client()
        .submit(sim_job(tpl, 32))
        .accepted()
        .expect("queue has room")
        .wait();
    assert!(report.outcome.is_ok());

    let m = service.metrics();
    assert_eq!(m.trace_dropped, 0);
    assert!(!m.last_decisions.is_empty(), "wave traces feed the decision tail");
    // Every decision the service saw belongs to the one admitted job,
    // and the phase histogram accounts for all of them.
    assert!(m.last_decisions.iter().all(|d| d.job == Some(report.job.0)));
    let phase_total: u64 = m.decision_phases.values().sum();
    assert!(phase_total >= m.last_decisions.len() as u64);
    assert!(m.decision_phases.keys().all(|(job, _)| *job == Some(report.job.0)));

    // Job lifecycle events are recorded even though they come from the
    // service itself, not the runtime trace.
    let admitted = m.job_events.iter().any(
        |ev| matches!(ev, TraceEvent::JobAdmitted { job, tasks, .. } if *job == report.job.0 && *tasks == 32),
    );
    let completed = m.job_events.iter().any(
        |ev| matches!(ev, TraceEvent::JobCompleted { job, ok, .. } if *job == report.job.0 && *ok),
    );
    assert!(admitted, "missing JobAdmitted: {:?}", m.job_events);
    assert!(completed, "missing JobCompleted: {:?}", m.job_events);
    service.shutdown();
}
