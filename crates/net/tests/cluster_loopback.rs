//! End-to-end cluster tests over real loopback TCP: coordinator +
//! worker threads speaking the actual wire protocol. These cover what
//! the in-process `RemoteNode` mocks in versa-runtime can't: framing,
//! the mux, the handshake, profile gossip, hint caching, membership
//! probation, and clean shutdown.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use versa_core::scheduler::DecisionPhase;
use versa_core::{DeviceKind, SchedulerKind, VersionId};
use versa_mem::DataId;
use versa_net::{Cluster, WorkerConfig};
use versa_runtime::{NativeConfig, Runtime, RuntimeConfig};

/// Register the shared test template on a runtime (coordinator and
/// workers must agree, like real applications sharing `register_native`).
fn register_scale2(rt: &mut Runtime) {
    let tpl = rt.template("scale2").main("smp", &[DeviceKind::Smp]).register();
    rt.bind_native(tpl, VersionId(0), |ctx| {
        for v in ctx.f64_mut(0) {
            *v *= 2.0;
        }
    });
}

fn coordinator() -> Runtime {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(2, 0),
    );
    register_scale2(&mut rt);
    rt
}

fn submit_and_run(rt: &mut Runtime, bufs: usize, rounds: usize) -> Vec<Vec<f64>> {
    let tpl = rt.templates().by_name("scale2").expect("scale2 is registered");
    let ids: Vec<DataId> =
        (0..bufs).map(|i| rt.alloc_from_f64(&[i as f64 + 1.0, -0.5, 3.25])).collect();
    for _ in 0..rounds {
        for &id in &ids {
            rt.task(tpl).read_write(id).submit();
        }
    }
    rt.run().expect("run failed");
    ids.iter().map(|&id| rt.read_f64(id)).collect()
}

/// A unique temp path for hint caches (no global state, test-name keyed).
fn temp_hints_path(key: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "versa-net-hints-{}-{key}-{n}.txt",
        std::process::id()
    ))
}

#[test]
fn tcp_cluster_matches_single_process() {
    let mut single = coordinator();
    let expected = submit_and_run(&mut single, 8, 3);

    let mut rt = coordinator();
    let mut cluster = Cluster::listen("127.0.0.1:0").unwrap();
    let addr = cluster.local_addr().unwrap().to_string();

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut cfg = WorkerConfig::new(addr, 2);
                cfg.name = format!("w{i}");
                versa_net::run_worker(cfg, register_scale2)
            })
        })
        .collect();

    let j1 = cluster.accept_node(&mut rt).unwrap();
    let j2 = cluster.accept_node(&mut rt).unwrap();
    let mut ids = [j1.node_id, j2.node_id];
    ids.sort_unstable();
    assert_eq!(ids, [1, 2]);
    assert!(!j1.probation && !j2.probation, "fresh names never start on probation");
    assert_eq!(rt.workers().len(), 6, "2 local + 2×2 remote workers");

    let got = submit_and_run(&mut rt, 8, 3);
    assert_eq!(got, expected, "TCP cluster must be numerically identical");

    cluster.shutdown(&rt);
    let mut total_execs = 0;
    for w in workers {
        let report = w.join().unwrap().expect("worker must shut down cleanly");
        total_execs += report.execs;
    }
    assert!(total_execs > 0, "remote workers never executed a task");
}

#[test]
fn shutdown_gossip_warms_the_next_join() {
    // Life 1: a cold coordinator + one worker caching hints at shutdown.
    let cache = temp_hints_path("warm");
    let _ = std::fs::remove_file(&cache);

    let mut rt = coordinator();
    let mut cluster = Cluster::listen("127.0.0.1:0").unwrap();
    let addr = cluster.local_addr().unwrap().to_string();
    let cache1 = cache.clone();
    let w = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut cfg = WorkerConfig::new(addr, 1);
            cfg.hints_cache = Some(cache1);
            versa_net::run_worker(cfg, register_scale2)
        }
    });
    let join1 = cluster.accept_node(&mut rt).unwrap();
    assert_eq!(join1.hints_applied, 0, "nothing cached yet: the worker joins cold");
    submit_and_run(&mut rt, 6, 4);
    cluster.shutdown(&rt);
    let report1 = w.join().unwrap().unwrap();
    assert_eq!(report1.hints_applied, 0, "coordinator was cold at welcome time");
    assert!(cache.exists(), "shutdown gossip must be cached to disk");

    // Life 2: a FRESH coordinator, warmed only by the worker's cached
    // gossip. The pre-warmed template must skip the learning phase
    // entirely: zero Learning-phase decisions.
    let mut rt2 = coordinator();
    rt2.versioning_mut().unwrap().set_decision_logging(true);
    let mut cluster2 = Cluster::listen("127.0.0.1:0").unwrap();
    let addr2 = cluster2.local_addr().unwrap().to_string();
    let cache2 = cache.clone();
    let w2 = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(addr2, 1);
        cfg.hints_cache = Some(cache2);
        versa_net::run_worker(cfg, register_scale2)
    });
    let join2 = cluster2.accept_node(&mut rt2).unwrap();
    assert!(
        join2.hints_applied > 0,
        "the rejoining worker's cached hints must warm the fresh coordinator"
    );
    submit_and_run(&mut rt2, 6, 4);
    let decisions = rt2.versioning_mut().unwrap().drain_decisions();
    assert!(!decisions.is_empty(), "decision logging was on");
    let learning = decisions
        .iter()
        .filter(|d| d.phase == DecisionPhase::Learning)
        .count();
    assert_eq!(
        learning, 0,
        "a gossip-warmed coordinator must record zero learning-phase decisions"
    );

    cluster2.shutdown(&rt2);
    w2.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn abrupt_disconnect_is_reaped_and_rejoin_enters_probation() {
    use versa_net::protocol::{read_frame, write_frame, Frame};

    let mut rt = coordinator();
    let mut cluster = Cluster::listen("127.0.0.1:0").unwrap();
    let addr = cluster.local_addr().unwrap();

    // A hand-rolled worker that registers, then drops the connection.
    let t = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write_frame(
            &mut s,
            &Frame::Hello {
                name: "flaky".into(),
                smp_workers: 1,
                simd_tier: "scalar".into(),
                hints: String::new(),
            },
            0,
        )
        .unwrap();
        let (frame, _) = read_frame(&mut s).unwrap().unwrap();
        assert!(matches!(frame, Frame::Welcome { node_id: 1, .. }));
        // Connection dropped here: the coordinator must notice.
    });
    let join = cluster.accept_node(&mut rt).unwrap();
    assert_eq!(join.name, "flaky");
    assert!(!join.probation);
    t.join().unwrap();

    // The reader thread sees EOF and kills the link; reap records the loss.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut lost = Vec::new();
    while lost.is_empty() && std::time::Instant::now() < deadline {
        lost = cluster.reap();
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(lost, vec!["flaky".to_string()]);
    assert_eq!(cluster.membership.record("flaky").unwrap().losses, 1);

    // The same name rejoining is flagged as on probation.
    let addr2 = cluster.local_addr().unwrap().to_string();
    let w = std::thread::spawn(move || {
        let mut cfg = WorkerConfig::new(addr2, 1);
        cfg.name = "flaky".into();
        versa_net::run_worker(cfg, register_scale2)
    });
    let rejoin = cluster.accept_node(&mut rt).unwrap();
    assert!(rejoin.probation, "a name with recorded losses rejoins on probation");
    assert_eq!(rejoin.node_id, 2);
    cluster.shutdown(&rt);
    w.join().unwrap().unwrap();
}
