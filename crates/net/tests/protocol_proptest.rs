//! Wire-protocol property tests: every frame type round-trips through
//! encode/decode, and no malformed input — truncation at any length,
//! corrupted bytes, bad magic/version/length/type — ever panics or
//! decodes to a wrong frame. Decoding returns typed [`ProtoError`]s.

use proptest::prelude::*;
use versa_net::protocol::{
    crc32, decode_frame, encode_frame, read_frame, Frame, ProtoError, WireAccess, HEADER_LEN,
    MAGIC, MAX_PAYLOAD, VERSION,
};

fn small_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..128, 0..24)
        .prop_map(|v| v.into_iter().map(|b| (b % 26 + b'a') as char).collect())
}

fn small_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..255, 0..64)
}

fn access_strategy() -> impl Strategy<Value = WireAccess> {
    (0u32..1000, 0u64..4096, 0u64..4096, 0u64..8192, 0u8..3).prop_map(
        |(data, offset, len, alloc_len, mode)| WireAccess { data, offset, len, alloc_len, mode },
    )
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (small_string(), 0u32..64, small_string(), small_string()).prop_map(
            |(name, smp_workers, simd_tier, hints)| Frame::Hello {
                name,
                smp_workers,
                simd_tier,
                hints
            }
        ),
        (0u16..256, small_string()).prop_map(|(node_id, hints)| Frame::Welcome { node_id, hints }),
        (0u32..1000, small_bytes()).prop_map(|(data, bytes)| Frame::Ship { data, bytes }),
        Just(Frame::ShipAck),
        (
            0u64..10_000,
            small_string(),
            0u16..8,
            1u32..5,
            proptest::collection::vec(access_strategy(), 0..5)
        )
            .prop_map(|(task, template, version, attempt, accesses)| Frame::Exec {
                task,
                template,
                version,
                attempt,
                accesses
            }),
        (0u64..u64::MAX, proptest::collection::vec((0u32..1000, small_bytes()), 0..4))
            .prop_map(|(kernel_ns, writes)| Frame::ExecOk { kernel_ns, writes }),
        small_string().prop_map(|message| Frame::ExecErr { message }),
        Just(Frame::Heartbeat),
        Just(Frame::HeartbeatAck),
        small_string().prop_map(|hints| Frame::Shutdown { hints }),
        Just(Frame::ShutdownAck),
    ]
}

proptest! {
    // Round-trip: every frame type, any tag, decodes back to itself and
    // consumes exactly the encoded length.
    #[test]
    fn every_frame_round_trips(frame in frame_strategy(), tag in 0u64..u64::MAX) {
        let wire = encode_frame(&frame, tag);
        let (got, got_tag, used) = decode_frame(&wire).expect("well-formed frame must decode");
        prop_assert_eq!(got, frame);
        prop_assert_eq!(got_tag, tag);
        prop_assert_eq!(used, wire.len());
    }

    // Truncation at EVERY prefix length is a typed error, never a panic
    // and never a bogus decode.
    #[test]
    fn every_truncation_is_rejected(frame in frame_strategy(), tag in 0u64..1000) {
        let wire = encode_frame(&frame, tag);
        for cut in 0..wire.len() {
            match decode_frame(&wire[..cut]) {
                Err(_) => {}
                Ok((_, _, used)) => prop_assert!(
                    used <= cut,
                    "decode consumed {} bytes from a {}-byte prefix",
                    used, cut
                ),
            }
        }
    }

    // Flipping any single byte is rejected (or decodes to the original
    // only when the flip landed in the tag, which the checksum doesn't
    // cover by design — the tag is routing metadata, not payload).
    #[test]
    fn single_byte_corruption_is_detected(
        frame in frame_strategy(),
        pos_seed in 0usize..10_000,
        flip in 1u8..255,
    ) {
        let wire = encode_frame(&frame, 42);
        let pos = pos_seed % wire.len();
        let mut bad = wire.clone();
        bad[pos] ^= flip;
        match decode_frame(&bad) {
            Err(_) => {} // typed rejection: the common case
            Ok((got, _, _)) => {
                // A flip inside the tag field (bytes 5..13) still decodes —
                // everything else must be caught by a field check or the CRC.
                prop_assert!(
                    (5..13).contains(&pos),
                    "corruption at byte {} decoded silently to {:?}", pos, got
                );
                prop_assert_eq!(got, frame);
            }
        }
    }

    // Arbitrary garbage never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        let _ = decode_frame(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor);
    }
}

#[test]
fn version_mismatch_is_typed() {
    let mut wire = encode_frame(&Frame::Heartbeat, 1);
    wire[2..4].copy_from_slice(&2u16.to_le_bytes());
    assert_eq!(decode_frame(&wire), Err(ProtoError::BadVersion(2)));
}

#[test]
fn bad_magic_is_typed() {
    let mut wire = encode_frame(&Frame::Heartbeat, 1);
    wire[0] = b'X';
    assert_eq!(decode_frame(&wire), Err(ProtoError::BadMagic));
}

#[test]
fn oversized_length_is_typed() {
    let mut wire = encode_frame(&Frame::Heartbeat, 1);
    wire[13..17].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert_eq!(decode_frame(&wire), Err(ProtoError::BadLength(MAX_PAYLOAD + 1)));
}

#[test]
fn unknown_frame_type_is_typed() {
    // Type 200 with an empty payload and a correct checksum: only the
    // frame-type check can object.
    let mut wire = Vec::new();
    wire.extend_from_slice(&MAGIC);
    wire.extend_from_slice(&VERSION.to_le_bytes());
    wire.push(200);
    wire.extend_from_slice(&7u64.to_le_bytes());
    wire.extend_from_slice(&0u32.to_le_bytes());
    wire.extend_from_slice(&crc32(b"").to_le_bytes());
    assert_eq!(decode_frame(&wire), Err(ProtoError::BadFrameType(200)));
}

#[test]
fn checksum_flip_is_typed() {
    let mut wire = encode_frame(&Frame::ExecErr { message: "boom".into() }, 3);
    // Flip a payload byte without re-sealing the CRC.
    wire[HEADER_LEN] ^= 0xFF;
    assert_eq!(decode_frame(&wire), Err(ProtoError::BadChecksum));
}

#[test]
fn bad_utf8_in_string_field_is_typed() {
    // An ExecErr whose string bytes are invalid UTF-8, re-sealed so the
    // CRC passes and only the UTF-8 check can object.
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]);
    let mut wire = Vec::new();
    wire.extend_from_slice(&MAGIC);
    wire.extend_from_slice(&VERSION.to_le_bytes());
    wire.push(7);
    wire.extend_from_slice(&0u64.to_le_bytes());
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    wire.extend_from_slice(&crc32(&payload).to_le_bytes());
    assert_eq!(decode_frame(&wire), Err(ProtoError::BadUtf8));
}
