//! The remote worker process: connect, handshake, serve.
//!
//! A worker owns no task graph and no scheduler — it is a kernel
//! execution service. It registers the *same templates and kernels* as
//! the coordinator (both call the application's registration function,
//! e.g. `versa_apps::matmul::register_native`), so the template names
//! the coordinator dispatches resolve to real closures here.
//!
//! Serve loop semantics:
//!
//! * `Ship` — store the bytes in the local arena (host space), ack.
//!   Handled inline: shipments are ordered with respect to the
//!   executions the coordinator issues after them.
//! * `Exec` — spawned onto its own thread, so a node with N advertised
//!   workers really executes N tasks concurrently and heartbeats keep
//!   being answered while kernels run. Kernel panics are caught and
//!   reported as `ExecErr` — the connection survives.
//! * `Heartbeat` — acked inline.
//! * `Shutdown` — cache the coordinator's gossiped hints to the
//!   configured file (warmth for the next join), ack, exit.

use crate::protocol::{read_frame, write_frame, Frame, ProtoError};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use versa_core::{SchedulerKind, VersionId};
use versa_mem::{AccessMode, DataId, MemSpace, Region};
use versa_runtime::{DetachedExecutor, NativeConfig, Runtime, RuntimeConfig};

/// How a worker process joins a cluster.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address to dial (`host:port`).
    pub connect: String,
    /// Self-reported node name (empty = let the coordinator use the
    /// peer address).
    pub name: String,
    /// SMP workers to advertise (the coordinator schedules this many
    /// concurrent tasks onto the node).
    pub smp_workers: usize,
    /// Where to cache gossiped profile hints across memberships
    /// (`None` = don't cache).
    pub hints_cache: Option<PathBuf>,
}

impl WorkerConfig {
    /// A worker dialing `connect` with `smp_workers` advertised workers.
    pub fn new(connect: impl Into<String>, smp_workers: usize) -> WorkerConfig {
        WorkerConfig {
            connect: connect.into(),
            name: String::new(),
            smp_workers,
            hints_cache: None,
        }
    }
}

/// What a worker did during one membership.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// The node id the coordinator assigned.
    pub node_id: u16,
    /// Profile-hint records applied from the coordinator's welcome
    /// gossip (0 = the coordinator was cold).
    pub hints_applied: usize,
    /// Tasks executed.
    pub execs: u64,
    /// Shipments received.
    pub ships: u64,
}

/// Run a worker to completion: dial the coordinator, serve until it
/// sends `Shutdown` (or drops the connection), return what happened.
///
/// `register` binds the application's templates and kernels onto the
/// worker's runtime — it must match what the coordinator registered, or
/// dispatched templates will fail with `ExecErr`.
pub fn run_worker(
    cfg: WorkerConfig,
    register: impl FnOnce(&mut Runtime),
) -> Result<WorkerReport, ProtoError> {
    let mut rt = Runtime::native(
        RuntimeConfig::with_scheduler(SchedulerKind::versioning()),
        NativeConfig::new(cfg.smp_workers.max(1), 0),
    );
    register(&mut rt);

    let cached = cfg
        .hints_cache
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .unwrap_or_default();

    let mut stream = TcpStream::connect(&cfg.connect)?;
    stream.set_nodelay(true).ok();
    write_frame(
        &mut stream,
        &Frame::Hello {
            name: cfg.name.clone(),
            smp_workers: cfg.smp_workers as u32,
            simd_tier: versa_kernels_tier(),
            hints: cached,
        },
        0,
    )?;
    let (frame, _) = read_frame(&mut stream)?.ok_or(ProtoError::Truncated)?;
    let Frame::Welcome { node_id, hints } = frame else {
        return Err(ProtoError::BadPayload);
    };
    let hints_applied =
        if hints.is_empty() { 0 } else { rt.load_hints(&hints).map(|(a, _)| a).unwrap_or(0) };

    let executor = Arc::new(rt.detach_executor().expect("native runtime has an executor"));
    serve(stream, executor, &cfg, node_id, hints_applied)
}

fn versa_kernels_tier() -> String {
    versa_kernels::simd::active_tier().name().to_string()
}

fn serve(
    stream: TcpStream,
    executor: Arc<DetachedExecutor>,
    cfg: &WorkerConfig,
    node_id: u16,
    hints_applied: usize,
) -> Result<WorkerReport, ProtoError> {
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    let execs = Arc::new(AtomicU64::new(0));
    let mut ships = 0u64;

    // Loop ends when the coordinator sends Shutdown, or drops the
    // connection without one — from this side the latter is a normal
    // (if abrupt) end of service.
    while let Some((frame, tag)) = read_frame(&mut reader)? {
        match frame {
            Frame::Ship { data, bytes } => {
                let arena = executor.arena();
                arena.ensure(DataId(data), MemSpace::HOST, bytes.len());
                arena.write(DataId(data), MemSpace::HOST, &bytes);
                ships += 1;
                write_frame(&mut *writer.lock().unwrap(), &Frame::ShipAck, tag)?;
            }
            Frame::Heartbeat => {
                write_frame(&mut *writer.lock().unwrap(), &Frame::HeartbeatAck, tag)?;
            }
            Frame::Exec { template, version, accesses, .. } => {
                let executor = Arc::clone(&executor);
                let writer = Arc::clone(&writer);
                let execs = Arc::clone(&execs);
                std::thread::spawn(move || {
                    let reply = run_exec(&executor, &template, version, &accesses);
                    execs.fetch_add(1, Ordering::SeqCst);
                    let _ = write_frame(&mut *writer.lock().unwrap(), &reply, tag);
                });
            }
            Frame::Shutdown { hints } => {
                if let Some(path) = &cfg.hints_cache {
                    if !hints.is_empty() {
                        let _ = std::fs::write(path, &hints);
                    }
                }
                write_frame(&mut *writer.lock().unwrap(), &Frame::ShutdownAck, tag)?;
                break;
            }
            // A worker never receives responses or handshake frames;
            // tolerate and ignore rather than dying mid-job.
            _ => {}
        }
    }

    Ok(WorkerReport { node_id, hints_applied, execs: execs.load(Ordering::SeqCst), ships })
}

/// Execute one dispatched task against the local arena and build the
/// response frame (never panics — kernel panics become `ExecErr`).
fn run_exec(
    executor: &DetachedExecutor,
    template: &str,
    version: u16,
    accesses: &[crate::protocol::WireAccess],
) -> Frame {
    let arena = executor.arena();
    let mut typed = Vec::with_capacity(accesses.len());
    for a in accesses {
        let mode = match a.mode {
            0 => AccessMode::In,
            1 => AccessMode::Out,
            _ => AccessMode::InOut,
        };
        // Output-only allocations were never shipped; materialize them
        // zeroed at full length so the kernel has a buffer to fill.
        arena.ensure(DataId(a.data), MemSpace::HOST, a.alloc_len as usize);
        typed.push((Region { data: DataId(a.data), offset: a.offset, len: a.len }, mode));
    }
    match executor.execute(template, VersionId(version), &typed) {
        Ok(kernel_time) => {
            let writes = typed
                .iter()
                .filter(|(_, mode)| *mode != AccessMode::In)
                .map(|(region, _)| {
                    let bytes = arena.read_arc(region.data, MemSpace::HOST).as_bytes().to_vec();
                    (region.data.0, bytes)
                })
                .collect();
            Frame::ExecOk { kernel_ns: kernel_time.as_nanos() as u64, writes }
        }
        Err(message) => Frame::ExecErr { message },
    }
}
