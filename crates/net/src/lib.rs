//! versa-net: the multi-node distributed runtime (DESIGN.md §7).
//!
//! One coordinator process owns the task graph, the scheduler and the
//! canonical data; remote worker processes contribute SMP workers over
//! TCP. A remote node's workers are ordinary schedulable workers behind
//! a [`versa_runtime::RemoteNode`] transport: tiles ship to the node's
//! *mirror space* inside the engine's timed transfer window, so the
//! per-destination bandwidth EWMA learns NIC links exactly like PCIe
//! links, and the versioning scheduler prices remote placement with the
//! same earliest-finish bids it uses locally.
//!
//! Crate layout:
//!
//! * [`protocol`] — the versioned, checksummed wire format (pure
//!   encode/decode; property-tested against malformed input).
//! * [`link`] — [`Mux`]: one TCP connection multiplexed by request tag,
//!   with a heartbeat thread for liveness.
//! * [`node`] — [`TcpRemoteNode`]: the coordinator-side
//!   [`versa_runtime::RemoteNode`] transport.
//! * [`cluster`] — coordinator membership: listen, handshake, profile
//!   gossip, loss accounting with rejoin probation.
//! * [`worker`] — the remote worker process: serve loop, kernel
//!   execution, hint caching.

#![warn(missing_docs)]

pub mod cluster;
pub mod link;
pub mod node;
pub mod protocol;
pub mod worker;

pub use cluster::{Cluster, JoinInfo, Membership, NodeRecord};
pub use link::{HeartbeatConfig, Mux};
pub use node::TcpRemoteNode;
pub use protocol::{decode_frame, encode_frame, Frame, ProtoError, WireAccess};
pub use worker::{run_worker, WorkerConfig, WorkerReport};
