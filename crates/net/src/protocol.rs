//! The versa-net wire protocol: versioned, checksummed, length-prefixed
//! binary frames (DESIGN.md §7.1).
//!
//! Every frame is
//!
//! ```text
//! magic "VN" (2) | version u16 (2) | type u8 (1) | tag u64 (8) |
//! len u32 (4) | payload (len) | crc32(payload) u32 (4)
//! ```
//!
//! all little-endian. The `tag` multiplexes concurrent requests over one
//! connection: a response carries the tag of the request it answers.
//! The CRC covers the payload only (the header is validated field by
//! field), using the IEEE polynomial.
//!
//! Encoding and decoding are pure functions over byte slices —
//! [`encode_frame`] / [`decode_frame`] — so the property tests can
//! round-trip and mutate frames without sockets. Decoding NEVER panics:
//! every malformed input maps to a typed [`ProtoError`].

use std::fmt;

/// Protocol magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"VN";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Frame header length (everything before the payload).
pub const HEADER_LEN: usize = 2 + 2 + 1 + 8 + 4;

/// Hard cap on payload length (1 GiB): a corrupt length field must not
/// turn into an unbounded allocation.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Why a frame failed to decode. Every variant is a *protocol* error:
/// decoding malformed bytes returns one of these, never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the header + declared payload + checksum need.
    Truncated,
    /// The first two bytes are not `"VN"`.
    BadMagic,
    /// The version field differs from [`VERSION`].
    BadVersion(u16),
    /// The payload checksum does not match.
    BadChecksum,
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    BadLength(u32),
    /// Unknown frame type byte.
    BadFrameType(u8),
    /// The payload is structurally malformed for its frame type.
    BadPayload,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Transport-level I/O failure (connect, read, write).
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::BadMagic => write!(f, "bad magic (not a versa-net frame)"),
            ProtoError::BadVersion(v) => write!(f, "protocol version mismatch (got {v}, want {VERSION})"),
            ProtoError::BadChecksum => write!(f, "payload checksum mismatch"),
            ProtoError::BadLength(n) => write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}"),
            ProtoError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::BadPayload => write!(f, "malformed payload"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e.to_string())
    }
}

/// One access clause of an [`Frame::Exec`] request, in wire form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireAccess {
    /// Allocation id.
    pub data: u32,
    /// Byte offset of the accessed range.
    pub offset: u64,
    /// Length of the accessed range.
    pub len: u64,
    /// Full length of the backing allocation (the worker materializes
    /// output-only buffers it never received bytes for).
    pub alloc_len: u64,
    /// Access mode: 0 = In, 1 = Out, 2 = InOut.
    pub mode: u8,
}

/// Every message that crosses the wire (DESIGN.md §7.1 frame table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator, first frame on a connection: advertise
    /// capabilities and gossip any cached profile hints (empty = none).
    Hello {
        /// Node name (host:port or a user label).
        name: String,
        /// SMP workers the node contributes.
        smp_workers: u32,
        /// SIMD tier the node's kernels dispatch to (informational).
        simd_tier: String,
        /// Profile-hints text cached from a previous membership.
        hints: String,
    },
    /// Coordinator → worker: membership granted. Carries the node's
    /// dense id and the coordinator's current profile hints (the warm
    /// gossip that lets a joining node skip the learning phase).
    Welcome {
        /// Dense node id (1-based; 0 is the coordinator).
        node_id: u16,
        /// Coordinator profile-hints text (empty = cold).
        hints: String,
    },
    /// Coordinator → worker: the full bytes of one allocation.
    Ship {
        /// Allocation id.
        data: u32,
        /// The bytes.
        bytes: Vec<u8>,
    },
    /// Worker → coordinator: shipment received and stored.
    ShipAck,
    /// Coordinator → worker: run one task.
    Exec {
        /// Task id (logging only; the worker holds no graph).
        task: u64,
        /// Template name, resolved against the worker's own registry.
        template: String,
        /// Version to run.
        version: u16,
        /// Attempt number (1-based).
        attempt: u32,
        /// Access clauses.
        accesses: Vec<WireAccess>,
    },
    /// Worker → coordinator: task succeeded.
    ExecOk {
        /// Measured kernel time on the worker, nanoseconds.
        kernel_ns: u64,
        /// `(allocation, full bytes)` for every written allocation.
        writes: Vec<(u32, Vec<u8>)>,
    },
    /// Worker → coordinator: the task's kernel failed (panic or typed
    /// error). The *connection* is still healthy.
    ExecErr {
        /// Human-readable failure.
        message: String,
    },
    /// Liveness probe, either direction.
    Heartbeat,
    /// Liveness reply.
    HeartbeatAck,
    /// Coordinator → worker: leave cleanly. Carries the coordinator's
    /// final hints so the worker can cache warmth for its next join.
    Shutdown {
        /// Final profile-hints text (empty = none).
        hints: String,
    },
    /// Worker → coordinator: shutting down.
    ShutdownAck,
}

impl Frame {
    /// The frame's wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Welcome { .. } => 2,
            Frame::Ship { .. } => 3,
            Frame::ShipAck => 4,
            Frame::Exec { .. } => 5,
            Frame::ExecOk { .. } => 6,
            Frame::ExecErr { .. } => 7,
            Frame::Heartbeat => 8,
            Frame::HeartbeatAck => 9,
            Frame::Shutdown { .. } => 10,
            Frame::ShutdownAck => 11,
        }
    }
}

// ---------------------------------------------------------------- crc32

/// IEEE CRC-32 table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- encoding

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A bounds-checked little-endian reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::BadPayload)?;
        if end > self.buf.len() {
            return Err(ProtoError::BadPayload);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()?;
        Ok(self.take(n as usize)?.to_vec())
    }
    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()?;
        let raw = self.take(n as usize)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    /// The whole payload must be consumed: trailing garbage is malformed.
    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload)
        }
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        Frame::Hello { name, smp_workers, simd_tier, hints } => {
            put_str(&mut p, name);
            put_u32(&mut p, *smp_workers);
            put_str(&mut p, simd_tier);
            put_str(&mut p, hints);
        }
        Frame::Welcome { node_id, hints } => {
            put_u16(&mut p, *node_id);
            put_str(&mut p, hints);
        }
        Frame::Ship { data, bytes } => {
            put_u32(&mut p, *data);
            put_bytes(&mut p, bytes);
        }
        Frame::ShipAck | Frame::Heartbeat | Frame::HeartbeatAck | Frame::ShutdownAck => {}
        Frame::Exec { task, template, version, attempt, accesses } => {
            put_u64(&mut p, *task);
            put_str(&mut p, template);
            put_u16(&mut p, *version);
            put_u32(&mut p, *attempt);
            put_u32(&mut p, accesses.len() as u32);
            for a in accesses {
                put_u32(&mut p, a.data);
                put_u64(&mut p, a.offset);
                put_u64(&mut p, a.len);
                put_u64(&mut p, a.alloc_len);
                p.push(a.mode);
            }
        }
        Frame::ExecOk { kernel_ns, writes } => {
            put_u64(&mut p, *kernel_ns);
            put_u32(&mut p, writes.len() as u32);
            for (data, bytes) in writes {
                put_u32(&mut p, *data);
                put_bytes(&mut p, bytes);
            }
        }
        Frame::ExecErr { message } => put_str(&mut p, message),
        Frame::Shutdown { hints } => put_str(&mut p, hints),
    }
    p
}

fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut r = Reader::new(payload);
    let frame = match ty {
        1 => Frame::Hello {
            name: r.string()?,
            smp_workers: r.u32()?,
            simd_tier: r.string()?,
            hints: r.string()?,
        },
        2 => Frame::Welcome { node_id: r.u16()?, hints: r.string()? },
        3 => Frame::Ship { data: r.u32()?, bytes: r.bytes()? },
        4 => Frame::ShipAck,
        5 => {
            let task = r.u64()?;
            let template = r.string()?;
            let version = r.u16()?;
            let attempt = r.u32()?;
            let n = r.u32()?;
            // Each access is 29 bytes; reject counts the payload can't hold.
            if (n as usize).saturating_mul(29) > payload.len() {
                return Err(ProtoError::BadPayload);
            }
            let mut accesses = Vec::with_capacity(n as usize);
            for _ in 0..n {
                accesses.push(WireAccess {
                    data: r.u32()?,
                    offset: r.u64()?,
                    len: r.u64()?,
                    alloc_len: r.u64()?,
                    mode: match r.u8()? {
                        m @ 0..=2 => m,
                        _ => return Err(ProtoError::BadPayload),
                    },
                });
            }
            Frame::Exec { task, template, version, attempt, accesses }
        }
        6 => {
            let kernel_ns = r.u64()?;
            let n = r.u32()?;
            if (n as usize).saturating_mul(8) > payload.len() {
                return Err(ProtoError::BadPayload);
            }
            let mut writes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                writes.push((r.u32()?, r.bytes()?));
            }
            Frame::ExecOk { kernel_ns, writes }
        }
        7 => Frame::ExecErr { message: r.string()? },
        8 => Frame::Heartbeat,
        9 => Frame::HeartbeatAck,
        10 => Frame::Shutdown { hints: r.string()? },
        11 => Frame::ShutdownAck,
        t => return Err(ProtoError::BadFrameType(t)),
    };
    r.finish()?;
    Ok(frame)
}

/// Encode `frame` with request tag `tag` into a self-contained wire
/// frame (header + payload + checksum).
pub fn encode_frame(frame: &Frame, tag: u64) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out.push(frame.type_byte());
    put_u64(&mut out, tag);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc32(&payload));
    out
}

/// Decode one frame from the front of `buf`. Returns the frame, its
/// tag, and the number of bytes consumed. `Err(Truncated)` means "feed
/// me more bytes"; every other error is a permanent protocol violation.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, u64, usize), ProtoError> {
    if buf.len() < HEADER_LEN {
        return Err(ProtoError::Truncated);
    }
    if buf[0..2] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes(buf[2..4].try_into().unwrap());
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let ty = buf[4];
    let tag = u64::from_le_bytes(buf[5..13].try_into().unwrap());
    let len = u32::from_le_bytes(buf[13..17].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtoError::BadLength(len));
    }
    let total = HEADER_LEN + len as usize + 4;
    if buf.len() < total {
        return Err(ProtoError::Truncated);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len as usize];
    let declared = u32::from_le_bytes(buf[total - 4..total].try_into().unwrap());
    if crc32(payload) != declared {
        return Err(ProtoError::BadChecksum);
    }
    let frame = decode_payload(ty, payload)?;
    Ok((frame, tag, total))
}

// --------------------------------------------------------- stream framing

/// Read exactly one frame from a blocking stream. Distinguishes a clean
/// EOF *between* frames (`Ok(None)`) from truncation *inside* one
/// (`Err(Truncated)`).
pub fn read_frame(stream: &mut impl std::io::Read) -> Result<Option<(Frame, u64)>, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte decides clean-EOF vs truncated.
    match stream.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    stream.read_exact(&mut header[1..]).map_err(map_eof)?;
    if header[0..2] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes(header[2..4].try_into().unwrap());
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let len = u32::from_le_bytes(header[13..17].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ProtoError::BadLength(len));
    }
    let mut rest = vec![0u8; len as usize + 4];
    stream.read_exact(&mut rest).map_err(map_eof)?;
    let mut whole = Vec::with_capacity(HEADER_LEN + rest.len());
    whole.extend_from_slice(&header);
    whole.extend_from_slice(&rest);
    let (frame, tag, _) = decode_frame(&whole)?;
    Ok(Some((frame, tag)))
}

fn map_eof(e: std::io::Error) -> ProtoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ProtoError::Truncated
    } else {
        e.into()
    }
}

/// Write one frame to a blocking stream.
pub fn write_frame(
    stream: &mut impl std::io::Write,
    frame: &Frame,
    tag: u64,
) -> Result<(), ProtoError> {
    stream.write_all(&encode_frame(frame, tag))?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic "123456789" IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_payload_frames_round_trip() {
        for f in [Frame::ShipAck, Frame::Heartbeat, Frame::HeartbeatAck, Frame::ShutdownAck] {
            let wire = encode_frame(&f, 7);
            let (got, tag, used) = decode_frame(&wire).unwrap();
            assert_eq!(got, f);
            assert_eq!(tag, 7);
            assert_eq!(used, wire.len());
        }
    }

    #[test]
    fn exec_frame_round_trips() {
        let f = Frame::Exec {
            task: 42,
            template: "matmul_tile".into(),
            version: 3,
            attempt: 2,
            accesses: vec![
                WireAccess { data: 1, offset: 0, len: 64, alloc_len: 64, mode: 0 },
                WireAccess { data: 2, offset: 8, len: 56, alloc_len: 128, mode: 2 },
            ],
        };
        let wire = encode_frame(&f, u64::MAX);
        assert_eq!(decode_frame(&wire).unwrap(), (f, u64::MAX, wire.len()));
    }

    #[test]
    fn bad_mode_is_rejected() {
        let f = Frame::Exec {
            task: 1,
            template: "t".into(),
            version: 0,
            attempt: 1,
            accesses: vec![WireAccess { data: 0, offset: 0, len: 8, alloc_len: 8, mode: 0 }],
        };
        let mut wire = encode_frame(&f, 0);
        // The mode byte is the last payload byte; corrupt it and re-seal
        // the checksum so only the mode check can object.
        let plen = wire.len() - 4 - HEADER_LEN;
        let last = HEADER_LEN + plen - 1;
        wire[last] = 9;
        let crc = crc32(&wire[HEADER_LEN..HEADER_LEN + plen]);
        let n = wire.len();
        wire[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&wire), Err(ProtoError::BadPayload));
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let mut payload = encode_payload(&Frame::Heartbeat);
        payload.push(0xAB);
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&VERSION.to_le_bytes());
        wire.push(8);
        wire.extend_from_slice(&0u64.to_le_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        wire.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert_eq!(decode_frame(&wire), Err(ProtoError::BadPayload));
    }

    #[test]
    fn stream_read_write_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Ship { data: 9, bytes: vec![1, 2, 3] }, 5).unwrap();
        write_frame(&mut buf, &Frame::ShipAck, 5).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let (f1, t1) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((f1, t1), (Frame::Ship { data: 9, bytes: vec![1, 2, 3] }, 5));
        let (f2, _) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(f2, Frame::ShipAck);
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn eof_inside_frame_is_truncated() {
        let wire = encode_frame(&Frame::Heartbeat, 1);
        let mut cursor = std::io::Cursor::new(&wire[..wire.len() - 2]);
        assert_eq!(read_frame(&mut cursor), Err(ProtoError::Truncated));
    }
}
