//! [`TcpRemoteNode`]: the coordinator-side transport implementing
//! [`RemoteNode`] over a [`Mux`].
//!
//! The engine's worker-shim threads call [`RemoteNode::ship`] and
//! [`RemoteNode::exec`] concurrently; the mux interleaves them on one
//! socket. Transport failures (dead link, timeout, protocol violation)
//! map to [`RemoteError::Lost`] — the engine retires the node and
//! requeues its tasks — while a kernel failure reported by the worker
//! maps to [`RemoteError::Task`], charged to the version like a local
//! panic.

use crate::link::Mux;
use crate::protocol::{Frame, WireAccess};
use std::sync::Arc;
use std::time::Duration;
use versa_mem::{AccessMode, DataId};
use versa_runtime::{RemoteCaps, RemoteDone, RemoteError, RemoteExec, RemoteNode};

/// A remote worker process reached over TCP.
pub struct TcpRemoteNode {
    caps: RemoteCaps,
    mux: Arc<Mux>,
}

impl TcpRemoteNode {
    /// Wrap an established, handshaken link.
    pub fn new(caps: RemoteCaps, mux: Arc<Mux>) -> TcpRemoteNode {
        TcpRemoteNode { caps, mux }
    }

    /// Whether the link to the node is still up.
    pub fn is_alive(&self) -> bool {
        self.mux.is_alive()
    }

    /// Clean shutdown carrying the coordinator's final profile hints
    /// (the worker caches them for a warm rejoin). Waits briefly for the
    /// ack, then tears the link down either way.
    pub fn shutdown_with_hints(&self, hints: &str) {
        let _ = self.mux.request_timeout(
            &Frame::Shutdown { hints: hints.to_string() },
            Some(Duration::from_secs(2)),
        );
        self.mux.kill();
    }
}

fn mode_byte(mode: AccessMode) -> u8 {
    match mode {
        AccessMode::In => 0,
        AccessMode::Out => 1,
        AccessMode::InOut => 2,
    }
}

impl RemoteNode for TcpRemoteNode {
    fn caps(&self) -> RemoteCaps {
        self.caps.clone()
    }

    fn ship(&self, data: DataId, bytes: &[u8]) -> Result<(), RemoteError> {
        match self.mux.request(&Frame::Ship { data: data.0, bytes: bytes.to_vec() }) {
            Ok(Frame::ShipAck) => Ok(()),
            Ok(other) => Err(RemoteError::Lost(format!(
                "protocol violation: expected ShipAck, got frame type {}",
                other.type_byte()
            ))),
            Err(e) => Err(RemoteError::Lost(e.to_string())),
        }
    }

    fn exec(&self, req: &RemoteExec) -> Result<RemoteDone, RemoteError> {
        let frame = Frame::Exec {
            task: req.task.0,
            template: req.template.clone(),
            version: req.version.0,
            attempt: req.attempt,
            accesses: req
                .accesses
                .iter()
                .map(|a| WireAccess {
                    data: a.region.data.0,
                    offset: a.region.offset,
                    len: a.region.len,
                    alloc_len: a.alloc_len,
                    mode: mode_byte(a.mode),
                })
                .collect(),
        };
        match self.mux.request(&frame) {
            Ok(Frame::ExecOk { kernel_ns, writes }) => Ok(RemoteDone {
                kernel_time: Duration::from_nanos(kernel_ns),
                writes: writes.into_iter().map(|(d, b)| (DataId(d), b)).collect(),
            }),
            Ok(Frame::ExecErr { message }) => Err(RemoteError::Task(message)),
            Ok(other) => Err(RemoteError::Lost(format!(
                "protocol violation: expected ExecOk/ExecErr, got frame type {}",
                other.type_byte()
            ))),
            Err(e) => Err(RemoteError::Lost(e.to_string())),
        }
    }

    fn shutdown(&self) {
        self.shutdown_with_hints("");
    }
}
