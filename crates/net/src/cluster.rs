//! Coordinator-side cluster membership: listen, handshake, profile
//! gossip, loss accounting.
//!
//! The coordinator owns a [`Cluster`] next to its [`Runtime`]. Each
//! accepted connection runs the hello/welcome handshake on the raw
//! stream (before any multiplexing):
//!
//! 1. worker → [`Frame::Hello`]: name, capabilities, and any profile
//!    hints cached from a previous membership — *inbound gossip* that
//!    warms the coordinator's scheduler;
//! 2. coordinator → [`Frame::Welcome`]: the node's dense id plus the
//!    coordinator's current hints — *outbound gossip* that lets the
//!    joining node cache warmth for its next life.
//!
//! The stream is then wrapped in a heartbeating [`Mux`] and attached to
//! the runtime via [`Runtime::attach_remote_node`]: the node's workers
//! become schedulable, its mirror space becomes a transfer destination.
//!
//! [`Membership`] persists across joins: a node that was lost mid-job
//! and rejoins is flagged `probation` (its prior losses are on record),
//! so operators — and the `cluster_bench`/CI harnesses — can see flaky
//! nodes re-enter rather than silently churn.

use crate::link::{HeartbeatConfig, Mux};
use crate::node::TcpRemoteNode;
use crate::protocol::{read_frame, write_frame, Frame, ProtoError};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use versa_runtime::{RemoteCaps, Runtime};

/// What [`Membership`] remembers about one node name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeRecord {
    /// How many times a node with this name joined.
    pub joins: u32,
    /// How many times it was declared lost.
    pub losses: u32,
}

/// Per-name join/loss history, persisting across reconnects.
#[derive(Default)]
pub struct Membership {
    records: HashMap<String, NodeRecord>,
}

impl Membership {
    /// Record a join; returns `true` when the node enters on probation
    /// (it has prior losses on record).
    pub fn on_join(&mut self, name: &str) -> bool {
        let rec = self.records.entry(name.to_string()).or_default();
        rec.joins += 1;
        rec.losses > 0
    }

    /// Record a loss.
    pub fn on_loss(&mut self, name: &str) {
        self.records.entry(name.to_string()).or_default().losses += 1;
    }

    /// The history for `name`, if any.
    pub fn record(&self, name: &str) -> Option<&NodeRecord> {
        self.records.get(name)
    }
}

/// The outcome of one accepted join.
#[derive(Clone, Debug)]
pub struct JoinInfo {
    /// The node's self-reported name.
    pub name: String,
    /// Its dense node id (1-based).
    pub node_id: u16,
    /// SMP workers it contributed.
    pub smp_workers: usize,
    /// Whether it rejoined with prior losses on record.
    pub probation: bool,
    /// Profile-hint records the node's inbound gossip applied to the
    /// coordinator's scheduler (0 = it joined cold).
    pub hints_applied: usize,
}

/// One attached node, coordinator-side.
struct ClusterNode {
    name: String,
    node_id: u16,
    transport: Arc<TcpRemoteNode>,
    /// Set once this node's loss has been recorded (reap idempotence).
    reaped: bool,
}

/// The coordinator's view of the cluster: listener + membership +
/// attached nodes.
pub struct Cluster {
    listener: TcpListener,
    heartbeat: Option<HeartbeatConfig>,
    /// Join/loss history across reconnects.
    pub membership: Membership,
    nodes: Vec<ClusterNode>,
}

impl Cluster {
    /// Bind the coordinator's listening socket.
    pub fn listen(addr: &str) -> Result<Cluster, ProtoError> {
        let listener = TcpListener::bind(addr)?;
        Ok(Cluster {
            listener,
            heartbeat: Some(HeartbeatConfig::default()),
            membership: Membership::default(),
            nodes: Vec::new(),
        })
    }

    /// Override the heartbeat cadence (`None` disables liveness probing
    /// — deterministic tests drive loss by dropping connections).
    pub fn set_heartbeat(&mut self, hb: Option<HeartbeatConfig>) {
        self.heartbeat = hb;
    }

    /// The bound address (port 0 resolves here).
    pub fn local_addr(&self) -> Result<SocketAddr, ProtoError> {
        Ok(self.listener.local_addr()?)
    }

    /// Block for one worker connection, run the handshake, and attach
    /// its workers to `rt`.
    pub fn accept_node(&mut self, rt: &mut Runtime) -> Result<JoinInfo, ProtoError> {
        let (mut stream, peer) = self.listener.accept()?;
        stream.set_nodelay(true).ok();

        let (frame, tag) = read_frame(&mut stream)?.ok_or(ProtoError::Truncated)?;
        let Frame::Hello { name, smp_workers, simd_tier, hints } = frame else {
            return Err(ProtoError::BadPayload);
        };
        let name = if name.is_empty() { peer.to_string() } else { name };

        // Inbound gossip: a rejoining worker hands back the profile it
        // cached at its last shutdown.
        let hints_applied = if hints.is_empty() {
            0
        } else {
            rt.load_hints(&hints).map(|(applied, _)| applied).unwrap_or(0)
        };

        let node_id = (self.nodes.len() + 1) as u16;
        // Outbound gossip: whatever the coordinator has learned so far.
        let welcome_hints = rt.save_hints().unwrap_or_default();
        write_frame(&mut stream, &Frame::Welcome { node_id, hints: welcome_hints }, tag)?;

        let caps = RemoteCaps { name: name.clone(), smp_workers: smp_workers as usize, simd_tier };
        let mux = Mux::spawn(stream, self.heartbeat)?;
        let transport = Arc::new(TcpRemoteNode::new(caps, mux));
        let attached = rt.attach_remote_node(transport.clone());
        debug_assert_eq!(attached, node_id, "cluster and runtime node ids must agree");

        let probation = self.membership.on_join(&name);
        self.nodes.push(ClusterNode { name: name.clone(), node_id, transport, reaped: false });
        Ok(JoinInfo {
            name,
            node_id,
            smp_workers: smp_workers as usize,
            probation,
            hints_applied,
        })
    }

    /// Number of attached nodes (alive or lost).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node ever attached.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Record losses for nodes whose links died since the last call.
    /// Returns the names newly declared lost.
    pub fn reap(&mut self) -> Vec<String> {
        let mut lost = Vec::new();
        for n in &mut self.nodes {
            if !n.reaped && !n.transport.is_alive() {
                n.reaped = true;
                self.membership.on_loss(&n.name);
                lost.push(n.name.clone());
            }
        }
        lost
    }

    /// Cleanly shut down every live node, gossiping `rt`'s final hints
    /// so workers cache warmth for their next join.
    pub fn shutdown(&mut self, rt: &Runtime) {
        let hints = rt.save_hints().unwrap_or_default();
        for n in &self.nodes {
            if n.transport.is_alive() {
                n.transport.shutdown_with_hints(&hints);
            }
        }
        self.reap();
    }

    /// The node id attached for `name`, if any.
    pub fn node_id(&self, name: &str) -> Option<u16> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.node_id)
    }
}
