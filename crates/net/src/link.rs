//! One TCP connection, many concurrent requests: the coordinator-side
//! link multiplexer.
//!
//! Every request carries a unique tag; the peer echoes the tag on its
//! response. A dedicated reader thread routes incoming frames to the
//! requester blocked on that tag, so any number of worker-shim threads
//! can share one socket — shipments and executions interleave freely.
//!
//! Liveness: an optional heartbeat thread sends [`Frame::Heartbeat`]
//! every `interval` and expects the ack within `timeout`. A missed ack,
//! a read error, or a write error *kills* the link: the socket is shut
//! down, every pending requester gets an error, and all later requests
//! fail fast. The engine maps those errors to
//! [`RemoteError::Lost`](versa_runtime::RemoteError) — node retirement
//! and task requeue, never a hang.

use crate::protocol::{read_frame, write_frame, Frame, ProtoError};
use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Heartbeat cadence for a [`Mux`].
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// How often to probe.
    pub interval: Duration,
    /// How long to wait for the ack before declaring the node lost.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig { interval: Duration::from_millis(500), timeout: Duration::from_secs(2) }
    }
}

/// A tag-multiplexed request/response link over one TCP stream.
pub struct Mux {
    writer: Mutex<TcpStream>,
    /// Kept for `shutdown(Both)` on kill (unblocks the reader thread).
    stream: TcpStream,
    pending: Mutex<HashMap<u64, mpsc::Sender<Result<Frame, ProtoError>>>>,
    next_tag: AtomicU64,
    alive: AtomicBool,
}

impl Mux {
    /// Wrap `stream`, spawning the reader thread and (when `heartbeat`
    /// is set) the heartbeat thread.
    pub fn spawn(stream: TcpStream, heartbeat: Option<HeartbeatConfig>) -> Result<Arc<Mux>, ProtoError> {
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut reader = stream.try_clone()?;
        let mux = Arc::new(Mux {
            writer: Mutex::new(writer),
            stream,
            pending: Mutex::new(HashMap::new()),
            // Tag 0 is reserved for the pre-mux handshake.
            next_tag: AtomicU64::new(1),
            alive: AtomicBool::new(true),
        });

        let m = Arc::clone(&mux);
        std::thread::Builder::new()
            .name("versa-net-reader".into())
            .spawn(move || {
                while let Ok(Some((frame, tag))) = read_frame(&mut reader) {
                    m.deliver(tag, Ok(frame));
                }
                m.kill();
            })
            .expect("spawn reader thread");

        if let Some(hb) = heartbeat {
            let m = Arc::clone(&mux);
            std::thread::Builder::new()
                .name("versa-net-heartbeat".into())
                .spawn(move || {
                    while m.is_alive() {
                        std::thread::sleep(hb.interval);
                        if !m.is_alive() {
                            break;
                        }
                        match m.request_timeout(&Frame::Heartbeat, Some(hb.timeout)) {
                            Ok(Frame::HeartbeatAck) => {}
                            _ => {
                                m.kill();
                                break;
                            }
                        }
                    }
                })
                .expect("spawn heartbeat thread");
        }

        Ok(mux)
    }

    /// Whether the link is still up.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Send `frame` and block until the peer's response arrives.
    pub fn request(&self, frame: &Frame) -> Result<Frame, ProtoError> {
        self.request_timeout(frame, None)
    }

    /// [`Mux::request`] with an optional response deadline. A timeout
    /// kills the link (the peer is presumed gone).
    pub fn request_timeout(
        &self,
        frame: &Frame,
        timeout: Option<Duration>,
    ) -> Result<Frame, ProtoError> {
        if !self.is_alive() {
            return Err(ProtoError::Io("link is down".into()));
        }
        let tag = self.next_tag.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        self.pending.lock().unwrap().insert(tag, tx);

        if let Err(e) = write_frame(&mut *self.writer.lock().unwrap(), frame, tag) {
            self.pending.lock().unwrap().remove(&tag);
            self.kill();
            return Err(e);
        }

        let res = match timeout {
            None => rx.recv().map_err(|_| ProtoError::Io("connection lost".into()))?,
            Some(t) => match rx.recv_timeout(t) {
                Ok(r) => r,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    self.pending.lock().unwrap().remove(&tag);
                    self.kill();
                    return Err(ProtoError::Io("response timeout".into()));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ProtoError::Io("connection lost".into()))
                }
            },
        };
        res
    }

    /// Fire-and-forget send (best-effort; used for `Shutdown` when the
    /// caller won't wait).
    pub fn send(&self, frame: &Frame) -> Result<(), ProtoError> {
        if !self.is_alive() {
            return Err(ProtoError::Io("link is down".into()));
        }
        let tag = self.next_tag.fetch_add(1, Ordering::SeqCst);
        write_frame(&mut *self.writer.lock().unwrap(), frame, tag)
    }

    /// Tear the link down: shut the socket, fail every pending request.
    /// Idempotent.
    pub fn kill(&self) {
        if self.alive.swap(false, Ordering::SeqCst) {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            let pending: Vec<_> = self.pending.lock().unwrap().drain().collect();
            for (_, tx) in pending {
                let _ = tx.send(Err(ProtoError::Io("connection lost".into())));
            }
        }
    }

    fn deliver(&self, tag: u64, res: Result<Frame, ProtoError>) {
        if let Some(tx) = self.pending.lock().unwrap().remove(&tag) {
            let _ = tx.send(res);
        }
    }
}

impl Drop for Mux {
    fn drop(&mut self) {
        self.kill();
    }
}
