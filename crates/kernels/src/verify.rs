//! Reference helpers for the kernel test suites: deterministic matrix
//! generators and tolerance-based comparisons.

/// Deterministic splitmix64 stream: full 2⁶⁴ period from any seed, no
/// external dependency. Only used to synthesize reproducible test data.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[-1, 1)`.
    fn next_signed_unit(&mut self) -> f64 {
        2.0 * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) - 1.0
    }
}

/// Deterministic random row-major `n × n` matrix with entries in
/// `[-1, 1)`.
pub fn random_matrix_f64(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix(seed);
    (0..n * n).map(|_| rng.next_signed_unit()).collect()
}

/// `f32` variant of [`random_matrix_f64`].
pub fn random_matrix_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix(seed);
    (0..n * n).map(|_| rng.next_signed_unit() as f32).collect()
}

/// Deterministic symmetric positive-definite matrix: `M·Mᵀ + n·I`.
pub fn spd_matrix_f64(n: usize, seed: u64) -> Vec<f64> {
    let m = random_matrix_f64(n, seed);
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut dot = 0.0;
            for k in 0..n {
                dot += m[i * n + k] * m[j * n + k];
            }
            a[i * n + j] = dot;
        }
        a[i * n + i] += n as f64;
    }
    a
}

/// `f32` variant of [`spd_matrix_f64`].
pub fn spd_matrix_f32(n: usize, seed: u64) -> Vec<f32> {
    spd_matrix_f64(n, seed).into_iter().map(|v| v as f32).collect()
}

/// Largest absolute element-wise difference between two slices.
///
/// # Panics
/// Panics if lengths differ.
pub fn max_abs_diff_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// `f32` variant of [`max_abs_diff_f64`].
pub fn max_abs_diff_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Assert element-wise closeness within `tol`.
///
/// # Panics
/// Panics (with the max deviation) if any element differs by more than
/// `tol`, or if lengths differ.
pub fn assert_close_f64(a: &[f64], b: &[f64], tol: f64) {
    let d = max_abs_diff_f64(a, b);
    assert!(d <= tol, "max abs diff {d} exceeds tolerance {tol}");
}

/// `f32` variant of [`assert_close_f64`].
pub fn assert_close_f32(a: &[f32], b: &[f32], tol: f32) {
    let d = max_abs_diff_f32(a, b);
    assert!(d <= tol, "max abs diff {d} exceeds tolerance {tol}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_matrix_f64(10, 1), random_matrix_f64(10, 1));
        assert_ne!(random_matrix_f64(10, 1), random_matrix_f64(10, 2));
    }

    #[test]
    fn spd_matrix_is_symmetric_with_dominant_diagonal() {
        let n = 12;
        let a = spd_matrix_f64(n, 9);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(a[i * n + j], a[j * n + i]);
            }
            assert!(a[i * n + i] >= n as f64, "diagonal boosted by n");
        }
    }

    #[test]
    fn diff_helpers() {
        assert_eq!(max_abs_diff_f64(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_close_f64(&[1.0], &[1.0 + 1e-12], 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds tolerance")]
    fn assert_close_fails_loudly() {
        assert_close_f32(&[1.0], &[2.0], 0.5);
    }
}
