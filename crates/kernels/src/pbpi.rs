//! PBPI computational loops.
//!
//! PBPI (paper §V-B3) is "a parallel implementation of a Bayesian
//! phylogenetic inference method for DNA sequence data" built on Markov
//! chain Monte Carlo sampling. Its per-generation run time is dominated
//! by three computational loops over the site-pattern arrays; the paper
//! taskifies the first two (GPU + SMP versions) and keeps the third on
//! the SMP.
//!
//! The loops implemented here preserve the *computational shape* that
//! drives the paper's result — loop 3 consumes loop 2's output on the
//! host every generation, forcing data back from the GPU:
//!
//! 1. [`loop1_propagate`] — per-site conditional-likelihood propagation
//!    along a branch: each site's 4-state vector is multiplied by a 4×4
//!    transition matrix.
//! 2. [`loop2_combine`] — pointwise combination of two children's
//!    partials into the parent's partial.
//! 3. [`loop3_loglik`] — log-likelihood reduction over sites (the paper's
//!    SMP-only loop): `Σ log(Σ_s π_s · partial[site][s])`.

use crate::chunk_ranges;
use crate::exec::{LaneExec, ScopedExec};

/// Number of nucleotide states.
pub const STATES: usize = 4;

/// A 4×4 transition-probability matrix for one branch (row-major).
pub type TransitionMatrix = [f64; STATES * STATES];

/// Build a Jukes–Cantor-style transition matrix for branch length `t`.
/// Rows sum to 1 for any `t ≥ 0`.
pub fn jukes_cantor(t: f64) -> TransitionMatrix {
    assert!(t >= 0.0, "branch length must be non-negative");
    let e = (-4.0 / 3.0 * t).exp();
    let same = 0.25 + 0.75 * e;
    let diff = 0.25 - 0.25 * e;
    let mut m = [diff; STATES * STATES];
    for s in 0..STATES {
        m[s * STATES + s] = same;
    }
    m
}

/// Loop 1: propagate conditional likelihoods along a branch.
/// `out[site][s] = Σ_z p[s][z] · input[site][z]`, banded over `exec`'s
/// lanes.
///
/// # Panics
/// Panics if slices are shorter than `sites * STATES`.
pub fn loop1_propagate_on(
    exec: &dyn LaneExec,
    p: &TransitionMatrix,
    input: &[f64],
    out: &mut [f64],
    sites: usize,
) {
    assert!(input.len() >= sites * STATES && out.len() >= sites * STATES);
    let body = |input: &[f64], out: &mut [f64], range: std::ops::Range<usize>| {
        for site in range {
            let v = &input[site * STATES..site * STATES + STATES];
            let o = &mut out[site * STATES..site * STATES + STATES];
            for s in 0..STATES {
                let row = &p[s * STATES..s * STATES + STATES];
                o[s] = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
            }
        }
    };
    if exec.lanes() <= 1 || sites < 1024 {
        return body(input, out, 0..sites);
    }
    let body = &body;
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    let mut rest: &mut [f64] = &mut out[..sites * STATES];
    for band in chunk_ranges(sites, exec.lanes()) {
        let rows = band.len();
        let (mine, r) = rest.split_at_mut(rows * STATES);
        rest = r;
        let inp = &input[band.start * STATES..band.end * STATES];
        jobs.push(Box::new(move || body(inp, mine, 0..rows)));
    }
    exec.run_batch(jobs);
}

/// Loop 1 over `lanes` ad-hoc scoped threads — the legacy entry point for
/// callers without a persistent lane pool.
///
/// # Panics
/// Panics if slices are shorter than `sites * STATES`.
pub fn loop1_propagate(
    p: &TransitionMatrix,
    input: &[f64],
    out: &mut [f64],
    sites: usize,
    lanes: usize,
) {
    loop1_propagate_on(&ScopedExec::new(lanes), p, input, out, sites)
}

/// Loop 2: combine two children's partials into the parent:
/// `out[site][s] = left[site][s] · right[site][s]`, banded over `exec`'s
/// lanes.
///
/// # Panics
/// Panics if slices are shorter than `sites * STATES`.
pub fn loop2_combine_on(
    exec: &dyn LaneExec,
    left: &[f64],
    right: &[f64],
    out: &mut [f64],
    sites: usize,
) {
    let n = sites * STATES;
    assert!(left.len() >= n && right.len() >= n && out.len() >= n);
    if exec.lanes() <= 1 || sites < 1024 {
        for i in 0..n {
            out[i] = left[i] * right[i];
        }
        return;
    }
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    let mut rest: &mut [f64] = &mut out[..n];
    for band in chunk_ranges(sites, exec.lanes()) {
        let lo = band.start * STATES;
        let hi = band.end * STATES;
        let (mine, r) = rest.split_at_mut(hi - lo);
        rest = r;
        let (l, rgt) = (&left[lo..hi], &right[lo..hi]);
        jobs.push(Box::new(move || {
            for i in 0..mine.len() {
                mine[i] = l[i] * rgt[i];
            }
        }));
    }
    exec.run_batch(jobs);
}

/// Loop 2 over `lanes` ad-hoc scoped threads — the legacy entry point for
/// callers without a persistent lane pool.
///
/// # Panics
/// Panics if slices are shorter than `sites * STATES`.
pub fn loop2_combine(left: &[f64], right: &[f64], out: &mut [f64], sites: usize, lanes: usize) {
    loop2_combine_on(&ScopedExec::new(lanes), left, right, out, sites)
}

/// Loop 3: log-likelihood reduction over sites with uniform stationary
/// frequencies: `Σ_site ln(0.25 · Σ_s partial[site][s])`. Sites whose
/// likelihood underflows to zero are clamped to `f64::MIN_POSITIVE`.
///
/// # Panics
/// Panics if `partial.len() < sites * STATES`.
pub fn loop3_loglik(partial: &[f64], sites: usize) -> f64 {
    assert!(partial.len() >= sites * STATES);
    let mut acc = 0.0;
    for site in 0..sites {
        let v = &partial[site * STATES..site * STATES + STATES];
        let site_lik = 0.25 * (v[0] + v[1] + v[2] + v[3]);
        acc += site_lik.max(f64::MIN_POSITIVE).ln();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_partials(sites: usize) -> Vec<f64> {
        vec![0.25; sites * STATES]
    }

    #[test]
    fn jukes_cantor_rows_are_distributions() {
        for t in [0.0, 0.01, 0.1, 1.0, 100.0] {
            let m = jukes_cantor(t);
            for s in 0..STATES {
                let row_sum: f64 = m[s * STATES..s * STATES + STATES].iter().sum();
                assert!((row_sum - 1.0).abs() < 1e-12, "t={t}: row {s} sums to {row_sum}");
                assert!(m[s * STATES..s * STATES + STATES].iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn zero_branch_length_is_identity() {
        let m = jukes_cantor(0.0);
        let input: Vec<f64> = (0..8).map(|i| i as f64 / 10.0).collect();
        let mut out = vec![0.0; 8];
        loop1_propagate(&m, &input, &mut out, 2, 1);
        for i in 0..8 {
            assert!((out[i] - input[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn infinite_branch_goes_to_equilibrium() {
        let m = jukes_cantor(1000.0);
        let input = [1.0, 0.0, 0.0, 0.0]; // site certainly in state A
        let mut out = [0.0; 4];
        loop1_propagate(&m, &input, &mut out, 1, 1);
        for (s, &v) in out.iter().enumerate() {
            assert!((v - 0.25).abs() < 1e-6, "state {s}: {v}");
        }
    }

    #[test]
    fn loop1_parallel_matches_serial() {
        let sites = 5000;
        let m = jukes_cantor(0.3);
        let input: Vec<f64> = (0..sites * STATES).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        let mut a = vec![0.0; sites * STATES];
        let mut b = vec![0.0; sites * STATES];
        loop1_propagate(&m, &input, &mut a, sites, 1);
        loop1_propagate(&m, &input, &mut b, sites, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn loop2_is_pointwise_product() {
        let sites = 3;
        let l: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let r = vec![2.0; 12];
        let mut out = vec![0.0; 12];
        loop2_combine(&l, &r, &mut out, sites, 1);
        for i in 0..12 {
            assert_eq!(out[i], l[i] * 2.0);
        }
    }

    #[test]
    fn loop2_parallel_matches_serial() {
        let sites = 4096;
        let l: Vec<f64> = (0..sites * STATES).map(|i| (i % 13) as f64).collect();
        let r: Vec<f64> = (0..sites * STATES).map(|i| (i % 7) as f64).collect();
        let mut a = vec![0.0; sites * STATES];
        let mut b = vec![0.0; sites * STATES];
        loop2_combine(&l, &r, &mut a, sites, 1);
        loop2_combine(&l, &r, &mut b, sites, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn loop3_of_uniform_partials() {
        let sites = 100;
        // Each site: 0.25 * (4 * 0.25) = 0.25 → ln(0.25) per site.
        let ll = loop3_loglik(&uniform_partials(sites), sites);
        assert!((ll - 100.0 * 0.25f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn loop3_clamps_underflow() {
        let partial = vec![0.0; STATES];
        let ll = loop3_loglik(&partial, 1);
        assert!(ll.is_finite());
        assert!(ll < -700.0, "clamped to ln(MIN_POSITIVE) ≈ -744");
    }

    #[test]
    fn full_generation_pipeline_is_sane() {
        // loop1 on both children → loop2 → loop3; likelihood must be a
        // finite negative number and improve as branches shorten.
        let sites = 256;
        let tip: Vec<f64> = uniform_partials(sites);
        let eval = |t: f64| {
            let m = jukes_cantor(t);
            let mut left = vec![0.0; sites * STATES];
            let mut right = vec![0.0; sites * STATES];
            loop1_propagate(&m, &tip, &mut left, sites, 1);
            loop1_propagate(&m, &tip, &mut right, sites, 1);
            let mut parent = vec![0.0; sites * STATES];
            loop2_combine(&left, &right, &mut parent, sites, 1);
            loop3_loglik(&parent, sites)
        };
        let ll = eval(0.1);
        assert!(ll.is_finite() && ll < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_branch_length_rejected() {
        let _ = jukes_cantor(-0.5);
    }
}
