//! Cholesky factorization of one tile: `A = L·Lᵀ` (lower triangular).
//!
//! `potrf` is the Cholesky bottleneck task of the paper's §V-B2: "there
//! are some points where all the following tasks depend on the potrf
//! task", which is why the paper gives it both an SMP (CBLAS) and a GPU
//! (MAGMA) version.

/// Error returned when the input tile is not positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the failing diagonal element.
    pub at: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {} <= 0)", self.at)
    }
}

impl std::error::Error for NotPositiveDefinite {}

macro_rules! potrf_impl {
    ($t:ty, $name:ident) => {
        /// In-place lower Cholesky of a row-major `n × n` tile. On return
        /// the lower triangle (including diagonal) holds `L`; the strict
        /// upper triangle is zeroed.
        ///
        /// # Errors
        /// [`NotPositiveDefinite`] if a pivot is non-positive; the tile is
        /// left partially factored in that case.
        ///
        /// # Panics
        /// Panics if `a.len() < n * n`.
        pub fn $name(a: &mut [$t], n: usize) -> Result<(), NotPositiveDefinite> {
            assert!(a.len() >= n * n);
            for j in 0..n {
                let mut diag = a[j * n + j];
                for k in 0..j {
                    diag -= a[j * n + k] * a[j * n + k];
                }
                if diag <= 0.0 {
                    return Err(NotPositiveDefinite { at: j });
                }
                let ljj = diag.sqrt();
                a[j * n + j] = ljj;
                for i in (j + 1)..n {
                    let mut v = a[i * n + j];
                    for k in 0..j {
                        v -= a[i * n + k] * a[j * n + k];
                    }
                    a[i * n + j] = v / ljj;
                }
                for i in 0..j {
                    a[i * n + j] = 0.0; // zero the strict upper triangle
                }
            }
            Ok(())
        }
    };
}

potrf_impl!(f32, spotrf);
potrf_impl!(f64, dpotrf);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f32, assert_close_f64, spd_matrix_f32, spd_matrix_f64};

    fn reconstruct_f64(l: &[f64], n: usize) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i * n + j] += l[i * n + k] * l[j * n + k];
                }
            }
        }
        a
    }

    #[test]
    fn factorization_reconstructs_the_input_f64() {
        for n in [1usize, 2, 5, 16, 33] {
            let a = spd_matrix_f64(n, 42);
            let mut l = a.clone();
            dpotrf(&mut l, n).unwrap();
            assert_close_f64(&reconstruct_f64(&l, n), &a, 1e-8);
        }
    }

    #[test]
    fn factorization_reconstructs_the_input_f32() {
        let n = 24;
        let a = spd_matrix_f32(n, 7);
        let mut l = a.clone();
        spotrf(&mut l, n).unwrap();
        let mut recon = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    recon[i * n + j] += l[i * n + k] * l[j * n + k];
                }
            }
        }
        assert_close_f32(&recon, &a, 1e-2);
    }

    #[test]
    fn result_is_lower_triangular() {
        let n = 10;
        let mut l = spd_matrix_f64(n, 3);
        dpotrf(&mut l, n).unwrap();
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(l[i * n + j], 0.0, "upper triangle must be zeroed");
            }
            assert!(l[i * n + i] > 0.0, "diagonal must be positive");
        }
    }

    #[test]
    fn identity_factors_to_identity() {
        let n = 6;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        dpotrf(&mut a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_eq!(a[i * n + j], expect);
            }
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = vec![1.0, 0.0, 0.0, -1.0]; // eigenvalues 1, -1
        let err = dpotrf(&mut a, 2).unwrap_err();
        assert_eq!(err.at, 1);
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn zero_matrix_is_rejected_at_first_pivot() {
        let mut a = vec![0.0f32; 9];
        assert_eq!(spotrf(&mut a, 3).unwrap_err().at, 0);
    }
}
