//! Panel packing for the register-blocked GEMM core.
//!
//! The packed GEMM (see [`crate::microkernel`]) follows the classic
//! BLIS/GotoBLAS decomposition: the `k` dimension is cut into `KC`-deep
//! panels, rows of `A` into `MC`-tall blocks, and within a block/panel
//! pair the data is rearranged once into the exact streaming order the
//! micro-kernel consumes:
//!
//! * An **A micro-panel** holds `MR` rows k-major: element `(r, p)` lives
//!   at `p·MR + r`, so each step of the micro-kernel's `k` loop reads one
//!   contiguous `MR`-vector.
//! * A **B micro-panel** holds `NR` columns k-major: element `(p, c)`
//!   lives at `p·NR + c`.
//!
//! Ragged edges are zero-padded to the full `MR`/`NR` width, so the
//! micro-kernel never branches on tile shape; the driver simply writes
//! back only the `rows × cols` corner that exists.

/// Depth (`k` extent) of one packed panel. Sized so an A block
/// (`MC × KC` f64) and the B panel rows stay cache-resident.
pub(crate) const KC: usize = 256;

/// Row-block height of packed `A`. A multiple of both micro-tile heights.
pub(crate) const MC: usize = 128;

/// Pack the `mc × kc` block of `a` starting at `(i0, p0)` into `MR`-row
/// k-major micro-panels, zero-padding the last panel to `mr` rows.
/// `a` is row-major with row stride `lda`; `out` must hold at least
/// `mc.next_multiple_of(mr) * kc` elements.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a<T: Copy + Default>(
    a: &[T],
    lda: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    mr: usize,
    out: &mut [T],
) {
    let mut w = 0;
    let mut ir = 0;
    while ir < mc {
        let rows = mr.min(mc - ir);
        for p in 0..kc {
            for r in 0..mr {
                out[w] = if r < rows { a[(i0 + ir + r) * lda + p0 + p] } else { T::default() };
                w += 1;
            }
        }
        ir += mr;
    }
}

/// Pack the `kc × nc` block of the *logical* matrix `B` starting at
/// `(p0, j0)` into `NR`-column k-major micro-panels, zero-padded to `nr`
/// columns. When `trans` is false the logical `B[p][j]` is
/// `b[p * ldb + j]`; when true it is `b[j * ldb + p]` (i.e. the packed
/// operand is `bᵀ`, which is how the `C −= A·Bᵀ` Cholesky update and
/// `syrk` reuse the same core).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_b<T: Copy + Default>(
    b: &[T],
    ldb: usize,
    trans: bool,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    nr: usize,
    out: &mut [T],
) {
    let mut w = 0;
    let mut jr = 0;
    while jr < nc {
        let cols = nr.min(nc - jr);
        for p in 0..kc {
            for c in 0..nr {
                out[w] = if c < cols {
                    let (row, col) =
                        if trans { (j0 + jr + c, p0 + p) } else { (p0 + p, j0 + jr + c) };
                    b[row * ldb + col]
                } else {
                    T::default()
                };
                w += 1;
            }
        }
        jr += nr;
    }
}

/// A whole `k × n` operand packed once up front: consecutive `KC`-deep
/// panels, each `kc × n_round` (`n` rounded up to a multiple of `nr`).
/// Sharable across row-band workers, so a parallel GEMM packs `B`
/// exactly once.
pub(crate) struct PackedB<T> {
    data: Vec<T>,
    /// Total `k` extent.
    pub k: usize,
    /// Micro-panel width the data was packed with.
    pub nr: usize,
    /// `n` rounded up to a multiple of `nr`.
    pub n_round: usize,
}

impl<T: Copy + Default> PackedB<T> {
    /// Pack all of logical `B` (`k × n`, see [`pack_b`] for `trans`).
    pub fn pack(b: &[T], ldb: usize, trans: bool, k: usize, n: usize, nr: usize) -> PackedB<T> {
        let n_round = n.div_ceil(nr) * nr;
        let mut data = vec![T::default(); k * n_round];
        let mut p0 = 0;
        while p0 < k {
            let kc = KC.min(k - p0);
            pack_b(b, ldb, trans, p0, kc, 0, n, nr, &mut data[p0 * n_round..(p0 + kc) * n_round]);
            p0 += KC;
        }
        PackedB { data, k, nr, n_round }
    }

    /// The packed panel covering depth `p0..p0 + kc` (`p0` a multiple of
    /// `KC`). Within it, the micro-panel for columns `jr..jr + nr` starts
    /// at `(jr / nr) * (kc * nr)`.
    pub fn panel(&self, p0: usize, kc: usize) -> &[T] {
        debug_assert!(p0.is_multiple_of(KC) && kc <= KC);
        &self.data[p0 * self.n_round..(p0 + kc) * self.n_round]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_is_k_major_with_zero_padding() {
        // 3×2 block of a 4×4 matrix, MR = 2: two micro-panels, the
        // second padded with a zero row.
        let a: Vec<f64> = (0..16).map(|v| v as f64).collect();
        let mut out = vec![-1.0; 4 * 2];
        pack_a(&a, 4, 1, 3, 2, 2, 2, &mut out);
        // Micro-panel 0: rows 1,2 of cols 2,3 → (p=0: a[1][2], a[2][2]), (p=1: a[1][3], a[2][3]).
        // Micro-panel 1: row 3 + pad     → (p=0: a[3][2], 0), (p=1: a[3][3], 0).
        assert_eq!(out, vec![6.0, 10.0, 7.0, 11.0, 14.0, 0.0, 15.0, 0.0]);
    }

    #[test]
    fn pack_b_normal_and_transposed() {
        // 2×3 logical block of a 4×4 matrix, NR = 2.
        let b: Vec<f64> = (0..16).map(|v| v as f64).collect();
        let mut out = vec![-1.0; 2 * 4];
        pack_b(&b, 4, false, 1, 2, 0, 3, 2, &mut out);
        // Cols {0,1} k-major, then col {2} zero-padded.
        assert_eq!(out, vec![4.0, 5.0, 8.0, 9.0, 6.0, 0.0, 10.0, 0.0]);

        let mut out_t = vec![-1.0; 2 * 4];
        pack_b(&b, 4, true, 1, 2, 0, 3, 2, &mut out_t);
        // Logical B[p][j] = b[j][p]: col j at depth p is b[j*4+p].
        assert_eq!(out_t, vec![1.0, 5.0, 2.0, 6.0, 9.0, 0.0, 10.0, 0.0]);
    }

    #[test]
    fn packed_b_panels_tile_the_depth() {
        let k = KC + 7;
        let n = 5;
        let b: Vec<f32> = (0..k * n).map(|v| (v % 97) as f32).collect();
        let pb = PackedB::pack(&b, n, false, k, n, 4);
        assert_eq!(pb.n_round, 8);
        let head = pb.panel(0, KC);
        let tail = pb.panel(KC, 7);
        assert_eq!(head.len(), KC * 8);
        assert_eq!(tail.len(), 7 * 8);
        // Spot-check: element (p, j) of the first micro-panel (<= NR cols)
        // sits at p*nr + j.
        assert_eq!(head[3 * 4 + 2], b[3 * n + 2]);
        assert_eq!(tail[2 * 4 + 1], b[(KC + 2) * n + 1]);
        // Padding columns are zero.
        let second_micro = &head[KC * 4..];
        assert_eq!(second_micro[0], b[4]); // (p=0, j=4)
        assert_eq!(second_micro[1], 0.0); // (p=0, j=5) — padded
    }

    #[test]
    fn empty_operand_packs_to_nothing() {
        let pb = PackedB::<f64>::pack(&[], 1, false, 0, 0, 4);
        assert_eq!(pb.k, 0);
        assert_eq!(pb.n_round, 0);
    }
}
