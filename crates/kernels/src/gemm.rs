//! Dense matrix multiplication: `C += A · B` on square row-major tiles.
//!
//! The implementation tiers mirror (and now widen) the paper's matmul
//! task versions (§V-B1):
//!
//! 1. **naive** (`dgemm_naive`) — a straightforward triple loop; the
//!    "CBLAS on one core" stand-in and the small-tile dispatch target.
//! 2. **packed scalar** (`dgemm_packed_scalar`) — the portable
//!    register-blocked, panel-packed core from [`crate::microkernel`],
//!    preserved bit-for-bit as the pre-SIMD tier.
//! 3. **packed SIMD** (`dgemm_blocked` / `dgemm_packed`) — the same core
//!    driven by the [`crate::simd`] runtime-dispatched AVX2/AVX-512
//!    micro-kernel (scalar where unavailable).
//! 4. **packed multi-lane** (`dgemm_parallel` / `dgemm_parallel_on`) —
//!    the same core with its `MC` loop parallelized over a [`LaneExec`]'s
//!    lanes: `B` is packed once and shared, each lane packs the `A`
//!    panels of its own row band, and bands are `MC`-granular so the lane
//!    pool's queue load-balances them dynamically.
//!
//! Whatever the tier or banding, per-element accumulation order is
//! identical (see `crate::microkernel`'s bitwise contract), so every
//! packed variant agrees **bitwise** with every other.
//!
//! The seed's 64×64 cache-blocked loop survives as `*gemm_blocked64`: a
//! fixed baseline that `perf_baseline` measures the packed core against.

use crate::exec::{LaneExec, ScopedExec};
use crate::microkernel::{drive, par_bands};
use crate::pack::PackedB;
use crate::simd::{self, Tier};

/// Below this dimension the packed core's packing overhead outweighs its
/// register blocking and the plain triple loop wins. Measured against the
/// SIMD tiers with `perf_baseline --crossover` (this machine, avx512):
/// naive wins through n = 12 (7.5 vs 4.8 GFLOP/s), packed wins from
/// n = 16 up (8.0 vs 6.7) and is ~2× naive by n = 24 — so the old 64
/// cutoff was costing tiles in 16..64 up to ~2.5×. The 64×64 loop
/// (`*gemm_blocked64`) is never the best tier at any size and is no
/// longer on the dispatch path at all.
const PACK_MIN_N: usize = 16;

/// Below this dimension banding across lanes costs more than it saves.
const PAR_MIN_N: usize = 128;

macro_rules! gemm_impls {
    ($t:ty, $naive:ident, $blocked:ident, $blocked64:ident, $packed:ident, $packed_scalar:ident,
     $packed_tier:ident, $parallel:ident, $parallel_on:ident, $rect:ident,
     $kernel:path, $kernel_for:path) => {
        /// Rectangular 64×64-blocked core: `C[rows×n] += A[rows×n] · B[n×n]`.
        fn $rect(a: &[$t], b: &[$t], c: &mut [$t], rows: usize, n: usize) {
            assert!(a.len() >= rows * n && b.len() >= n * n && c.len() >= rows * n);
            const BS: usize = 64;
            for ii in (0..rows).step_by(BS) {
                for kk in (0..n).step_by(BS) {
                    for jj in (0..n).step_by(BS) {
                        let (ie, ke, je) =
                            ((ii + BS).min(rows), (kk + BS).min(n), (jj + BS).min(n));
                        for i in ii..ie {
                            for k in kk..ke {
                                let aik = a[i * n + k];
                                for j in jj..je {
                                    c[i * n + j] += aik * b[k * n + j];
                                }
                            }
                        }
                    }
                }
            }
        }

        /// `C += A · B`, naive i-k-j triple loop.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $naive(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            for i in 0..n {
                for k in 0..n {
                    let aik = a[i * n + k];
                    let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }

        /// `C += A · B`, the seed's 64×64 cache-blocked loop. Kept as a
        /// fixed perf baseline the packed core is measured against.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $blocked64(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            $rect(a, b, c, n, n);
        }

        /// `C += A · B` through the packed register-blocked core with the
        /// runtime-dispatched (SIMD where available) micro-kernel,
        /// regardless of size.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $packed(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            let mk = $kernel();
            let pb = PackedB::pack(b, n, false, n, n, mk.nr);
            drive(mk, a, n, c, n, n, n, &pb, false);
        }

        /// `C += A · B` through the packed core with the **portable
        /// scalar** micro-kernel, regardless of CPU features or override
        /// knobs — the pre-SIMD tier, exposed as its own task version and
        /// as the reference the equivalence tests compare bitwise against.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $packed_scalar(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            let mk = $kernel_for(Tier::Scalar).expect("scalar kernel always available");
            let pb = PackedB::pack(b, n, false, n, n, mk.nr);
            drive(mk, a, n, c, n, n, n, &pb, false);
        }

        /// `C += A · B` through the packed core with an explicitly chosen
        /// SIMD tier. Returns `false` (leaving `C` untouched) if this CPU
        /// does not support the tier. For benches and equivalence tests;
        /// production callers use the auto-dispatched entry points.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $packed_tier(tier: Tier, a: &[$t], b: &[$t], c: &mut [$t], n: usize) -> bool {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            match $kernel_for(tier) {
                Some(mk) => {
                    let pb = PackedB::pack(b, n, false, n, n, mk.nr);
                    drive(mk, a, n, c, n, n, n, &pb, false);
                    true
                }
                None => false,
            }
        }

        /// `C += A · B`, single-core blocked tier: the packed SIMD core,
        /// falling back to the triple loop for tiles too small to
        /// amortize packing (cutoff measured, not guessed — see
        /// `PACK_MIN_N`).
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $blocked(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            if n < PACK_MIN_N {
                $naive(a, b, c, n)
            } else {
                $packed(a, b, c, n)
            }
        }

        /// `C += A · B` with the packed core's `MC` loop parallelized
        /// over `exec`'s lanes (this is what an emulated GPU runs). `B`
        /// is packed once and shared by every lane; each band packs its
        /// own `A` panels and bands are `MC`-granular, so the pool's
        /// queue balances them dynamically. The result is bitwise
        /// identical to the serial packed tier.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $parallel_on(exec: &dyn LaneExec, a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            if exec.lanes() <= 1 || n < PAR_MIN_N {
                return $blocked(a, b, c, n);
            }
            let mk = $kernel();
            let pb = PackedB::pack(b, n, false, n, n, mk.nr);
            let pb = &pb;
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut rest: &mut [$t] = &mut c[..n * n];
            for band in par_bands(n, exec.lanes(), mk.mr) {
                let rows = band.len();
                let (mine, r) = rest.split_at_mut(rows * n);
                rest = r;
                let a_band = &a[band.start * n..band.end * n];
                jobs.push(Box::new(move || drive(mk, a_band, n, mine, n, rows, n, pb, false)));
            }
            exec.run_batch(jobs);
        }

        /// `C += A · B` over `lanes` ad-hoc scoped threads — the legacy
        /// entry point for callers without a persistent lane pool.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $parallel(a: &[$t], b: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            $parallel_on(&ScopedExec::new(lanes), a, b, c, n)
        }
    };
}

gemm_impls!(
    f64,
    dgemm_naive,
    dgemm_blocked,
    dgemm_blocked64,
    dgemm_packed,
    dgemm_packed_scalar,
    dgemm_packed_tier,
    dgemm_parallel,
    dgemm_parallel_on,
    dgemm_rect,
    simd::kernel_f64,
    simd::kernel_f64_for
);
gemm_impls!(
    f32,
    sgemm_naive,
    sgemm_blocked,
    sgemm_blocked64,
    sgemm_packed,
    sgemm_packed_scalar,
    sgemm_packed_tier,
    sgemm_parallel,
    sgemm_parallel_on,
    sgemm_rect,
    simd::kernel_f32,
    simd::kernel_f32_for
);

macro_rules! gemm_nt_sub_impls {
    ($t:ty, $serial:ident, $packed:ident, $par:ident, $par_on:ident, $rect:ident,
     $kernel:path) => {
        /// Rectangular dot-product core: `C[rows×n] −= A[rows×n] · Bᵀ`.
        fn $rect(a: &[$t], b: &[$t], c: &mut [$t], rows: usize, n: usize) {
            assert!(a.len() >= rows * n && b.len() >= n * n && c.len() >= rows * n);
            for i in 0..rows {
                for j in 0..n {
                    let mut dot: $t = 0.0;
                    for k in 0..n {
                        dot += a[i * n + k] * b[j * n + k];
                    }
                    c[i * n + j] -= dot;
                }
            }
        }

        /// `C ← C − A·Bᵀ` through the packed core (`B` packed
        /// transposed), regardless of size.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $packed(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            let mk = $kernel();
            let pb = PackedB::pack(b, n, true, n, n, mk.nr);
            drive(mk, a, n, c, n, n, n, &pb, true);
        }

        /// `C ← C − A·Bᵀ` — the trailing update of the tiled Cholesky
        /// (`A[i][j] −= A[i][k]·A[j][k]ᵀ`). Dispatches to the packed core
        /// above the small-tile threshold.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $serial(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            if n < PACK_MIN_N {
                $rect(a, b, c, n, n)
            } else {
                $packed(a, b, c, n)
            }
        }

        /// Multi-lane NT update with the `MC` loop banded over `exec`'s
        /// lanes; `B` is packed once (transposed) and shared.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $par_on(exec: &dyn LaneExec, a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            if exec.lanes() <= 1 || n < PAR_MIN_N {
                return $serial(a, b, c, n);
            }
            let mk = $kernel();
            let pb = PackedB::pack(b, n, true, n, n, mk.nr);
            let pb = &pb;
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut rest: &mut [$t] = &mut c[..n * n];
            for band in par_bands(n, exec.lanes(), mk.mr) {
                let rows = band.len();
                let (mine, r) = rest.split_at_mut(rows * n);
                rest = r;
                let a_band = &a[band.start * n..band.end * n];
                jobs.push(Box::new(move || drive(mk, a_band, n, mine, n, rows, n, pb, true)));
            }
            exec.run_batch(jobs);
        }

        /// Multi-lane NT update over `lanes` ad-hoc scoped threads.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $par(a: &[$t], b: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            $par_on(&ScopedExec::new(lanes), a, b, c, n)
        }
    };
}

gemm_nt_sub_impls!(
    f32,
    sgemm_nt_sub,
    sgemm_nt_sub_packed,
    sgemm_nt_sub_par,
    sgemm_nt_sub_par_on,
    sgemm_nt_rect,
    simd::kernel_f32
);
gemm_nt_sub_impls!(
    f64,
    dgemm_nt_sub,
    dgemm_nt_sub_packed,
    dgemm_nt_sub_par,
    dgemm_nt_sub_par_on,
    dgemm_nt_rect,
    simd::kernel_f64
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f32, assert_close_f64, random_matrix_f32, random_matrix_f64};

    #[test]
    fn naive_matches_hand_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50], starting from C = I.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [1.0, 0.0, 0.0, 1.0];
        dgemm_naive(&a, &b, &mut c, 2);
        assert_eq!(c, [20.0, 22.0, 43.0, 51.0]);
    }

    #[test]
    fn blocked_matches_naive_f64() {
        for n in [1usize, 7, 23, 24, 63, 64, 65, 130] {
            let a = random_matrix_f64(n, 1);
            let b = random_matrix_f64(n, 2);
            let mut c1 = random_matrix_f64(n, 3);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_blocked(&a, &b, &mut c2, n);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn blocked64_matches_naive_f64() {
        for n in [7usize, 64, 130] {
            let a = random_matrix_f64(n, 31);
            let b = random_matrix_f64(n, 32);
            let mut c1 = random_matrix_f64(n, 33);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_blocked64(&a, &b, &mut c2, n);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn packed_scalar_matches_naive_f64() {
        for n in [8usize, 65, 130] {
            let a = random_matrix_f64(n, 51);
            let b = random_matrix_f64(n, 52);
            let mut c1 = random_matrix_f64(n, 53);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_packed_scalar(&a, &b, &mut c2, n);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn forced_tier_matches_packed_scalar_bitwise() {
        let n = 100;
        let a = random_matrix_f64(n, 54);
        let b = random_matrix_f64(n, 55);
        let c0 = random_matrix_f64(n, 56);
        let mut reference = c0.clone();
        dgemm_packed_scalar(&a, &b, &mut reference, n);
        for tier in crate::simd::detected_tiers() {
            let mut c = c0.clone();
            if dgemm_packed_tier(tier, &a, &b, &mut c, n) {
                assert_eq!(c, reference, "tier {tier} diverged bitwise");
            }
        }
        // An unavailable tier must leave C untouched. (On x86-64 CPUs all
        // tiers may be available; the scalar tier at least always is.)
        assert!(dgemm_packed_tier(Tier::Scalar, &a, &b, &mut c0.clone(), n));
    }

    #[test]
    fn parallel_matches_naive_f64() {
        for lanes in [1usize, 2, 3, 4, 8] {
            let n = 150;
            let a = random_matrix_f64(n, 4);
            let b = random_matrix_f64(n, 5);
            let mut c1 = random_matrix_f64(n, 6);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_parallel(&a, &b, &mut c2, n, lanes);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn parallel_is_bitwise_equal_to_packed() {
        // Same microkernel, same k-order per element — banding must not
        // change a single bit, including with MC-granular bands (n large
        // enough for several MC blocks).
        for (n, lanes) in [(200usize, 3usize), (300, 2), (520, 4)] {
            let a = random_matrix_f64(n, 40);
            let b = random_matrix_f64(n, 41);
            let mut c1 = random_matrix_f64(n, 42);
            let mut c2 = c1.clone();
            dgemm_packed(&a, &b, &mut c1, n);
            dgemm_parallel(&a, &b, &mut c2, n, lanes);
            assert_eq!(c1, c2, "n={n} lanes={lanes}");
        }
    }

    #[test]
    fn blocked_matches_naive_f32() {
        let n = 90;
        let a = random_matrix_f32(n, 7);
        let b = random_matrix_f32(n, 8);
        let mut c1 = vec![0.0f32; n * n];
        let mut c2 = vec![0.0f32; n * n];
        sgemm_naive(&a, &b, &mut c1, n);
        sgemm_blocked(&a, &b, &mut c2, n);
        assert_close_f32(&c1, &c2, 1e-3);
    }

    #[test]
    fn packed_scalar_and_tiers_match_naive_f32() {
        let n = 70;
        let a = random_matrix_f32(n, 17);
        let b = random_matrix_f32(n, 18);
        let mut expect = vec![0.25f32; n * n];
        sgemm_naive(&a, &b, &mut expect, n);
        let mut scalar = vec![0.25f32; n * n];
        sgemm_packed_scalar(&a, &b, &mut scalar, n);
        assert_close_f32(&expect, &scalar, 1e-3);
        for tier in crate::simd::detected_tiers() {
            let mut c = vec![0.25f32; n * n];
            if sgemm_packed_tier(tier, &a, &b, &mut c, n) {
                assert_eq!(c, scalar, "f32 tier {tier} diverged bitwise");
            }
        }
    }

    #[test]
    fn parallel_matches_naive_f32() {
        let n = 140;
        let a = random_matrix_f32(n, 9);
        let b = random_matrix_f32(n, 10);
        let mut c1 = vec![0.5f32; n * n];
        let mut c2 = vec![0.5f32; n * n];
        sgemm_naive(&a, &b, &mut c1, n);
        sgemm_parallel(&a, &b, &mut c2, n, 4);
        assert_close_f32(&c1, &c2, 1e-3);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let n = 8;
        let a = random_matrix_f64(n, 11);
        let b = random_matrix_f64(n, 12);
        let mut c = vec![0.0; n * n];
        dgemm_naive(&a, &b, &mut c, n);
        let after_one = c.clone();
        dgemm_naive(&a, &b, &mut c, n);
        for i in 0..n * n {
            assert!((c[i] - 2.0 * after_one[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_dimension_is_a_noop() {
        let mut c: [f64; 0] = [];
        dgemm_naive(&[], &[], &mut c, 0);
        dgemm_blocked(&[], &[], &mut c, 0);
        dgemm_packed(&[], &[], &mut c, 0);
        dgemm_packed_scalar(&[], &[], &mut c, 0);
        dgemm_parallel(&[], &[], &mut c, 0, 4);
    }

    #[test]
    fn nt_sub_matches_manual_transpose() {
        let n = 40;
        let a = random_matrix_f64(n, 20);
        let b = random_matrix_f64(n, 21);
        let c0 = random_matrix_f64(n, 22);
        // Reference: C -= A * B^T via naive gemm on transposed B.
        let mut bt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                bt[i * n + j] = b[j * n + i];
            }
        }
        let mut expect = c0.clone();
        let mut prod = vec![0.0; n * n];
        dgemm_naive(&a, &bt, &mut prod, n);
        for i in 0..n * n {
            expect[i] -= prod[i];
        }
        for f in [dgemm_nt_sub, dgemm_nt_sub_packed] {
            let mut got = c0.clone();
            f(&a, &b, &mut got, n);
            assert_close_f64(&expect, &got, 1e-10);
        }
    }

    #[test]
    fn nt_sub_parallel_matches_serial() {
        let n = 160;
        let a = random_matrix_f64(n, 23);
        let b = random_matrix_f64(n, 24);
        let mut c1 = random_matrix_f64(n, 25);
        let mut c2 = c1.clone();
        dgemm_nt_sub(&a, &b, &mut c1, n);
        dgemm_nt_sub_par(&a, &b, &mut c2, n, 5);
        assert_close_f64(&c1, &c2, 1e-12);
        // f32 variant smoke.
        let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let mut cf1 = vec![0.0f32; n * n];
        let mut cf2 = vec![0.0f32; n * n];
        sgemm_nt_sub(&af, &bf, &mut cf1, n);
        sgemm_nt_sub_par(&af, &bf, &mut cf2, n, 3);
        crate::verify::assert_close_f32(&cf1, &cf2, 1e-4);
    }

    #[test]
    #[should_panic]
    fn short_slice_panics() {
        let mut c = vec![0.0f64; 3];
        dgemm_naive(&[0.0; 4], &[0.0; 4], &mut c, 2);
    }
}
