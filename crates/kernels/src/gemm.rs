//! Dense matrix multiplication: `C += A · B` on square row-major tiles.
//!
//! Three implementation tiers mirror the paper's three matmul task
//! versions (§V-B1):
//!
//! 1. **naive** (`dgemm_naive`) — a straightforward triple loop; the
//!    "CBLAS on one core" stand-in.
//! 2. **packed single-core** (`dgemm_blocked`) — the register-blocked,
//!    panel-packed core from [`crate::microkernel`]; the "hand-coded
//!    CUDA" stand-in.
//! 3. **packed multi-lane** (`dgemm_parallel` / `dgemm_parallel_on`) —
//!    the same core banded over a [`LaneExec`]'s lanes with `B` packed
//!    once and shared; the "CUBLAS" stand-in for emulated GPUs.
//!
//! The seed's 64×64 cache-blocked loop survives as `*gemm_blocked64`: it
//! is the dispatch target for tiny tiles and the fixed baseline that
//! `perf_baseline` measures the packed core against.

use crate::chunk_ranges;
use crate::exec::{LaneExec, ScopedExec};
use crate::microkernel::{drive_f32, drive_f64, NR_F32, NR_F64};
use crate::pack::PackedB;

/// Below this dimension the packed core's packing overhead outweighs its
/// register blocking and the 64×64 blocked loop wins.
const PACK_MIN_N: usize = 64;

/// Below this dimension banding across lanes costs more than it saves.
const PAR_MIN_N: usize = 128;

macro_rules! gemm_impls {
    ($t:ty, $naive:ident, $blocked:ident, $blocked64:ident, $packed:ident, $parallel:ident,
     $parallel_on:ident, $rect:ident, $drive:ident, $nr:expr) => {
        /// Rectangular 64×64-blocked core: `C[rows×n] += A[rows×n] · B[n×n]`.
        fn $rect(a: &[$t], b: &[$t], c: &mut [$t], rows: usize, n: usize) {
            assert!(a.len() >= rows * n && b.len() >= n * n && c.len() >= rows * n);
            const BS: usize = 64;
            for ii in (0..rows).step_by(BS) {
                for kk in (0..n).step_by(BS) {
                    for jj in (0..n).step_by(BS) {
                        let (ie, ke, je) =
                            ((ii + BS).min(rows), (kk + BS).min(n), (jj + BS).min(n));
                        for i in ii..ie {
                            for k in kk..ke {
                                let aik = a[i * n + k];
                                for j in jj..je {
                                    c[i * n + j] += aik * b[k * n + j];
                                }
                            }
                        }
                    }
                }
            }
        }

        /// `C += A · B`, naive i-k-j triple loop.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $naive(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            for i in 0..n {
                for k in 0..n {
                    let aik = a[i * n + k];
                    let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }

        /// `C += A · B`, the seed's 64×64 cache-blocked loop. Kept as the
        /// small-tile tier and as the fixed perf baseline the packed core
        /// is measured against.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $blocked64(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            $rect(a, b, c, n, n);
        }

        /// `C += A · B` through the packed register-blocked core,
        /// regardless of size.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $packed(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            let pb = PackedB::pack(b, n, false, n, n, $nr);
            $drive(a, n, c, n, n, n, &pb, false);
        }

        /// `C += A · B`, single-core blocked tier: the packed
        /// register-blocked core, falling back to the 64×64 blocked loop
        /// for tiles too small to amortize packing.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $blocked(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            if n < PACK_MIN_N {
                $blocked64(a, b, c, n)
            } else {
                $packed(a, b, c, n)
            }
        }

        /// `C += A · B` banded over `exec`'s lanes (this is what an
        /// emulated GPU runs). `B` is packed once and shared by every
        /// lane; each lane drives the packed core over its own row band,
        /// so the result is bitwise identical to the serial packed tier.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $parallel_on(exec: &dyn LaneExec, a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            if exec.lanes() <= 1 || n < PAR_MIN_N {
                return $blocked(a, b, c, n);
            }
            let pb = PackedB::pack(b, n, false, n, n, $nr);
            let pb = &pb;
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut rest: &mut [$t] = &mut c[..n * n];
            for band in chunk_ranges(n, exec.lanes()) {
                let rows = band.len();
                let (mine, r) = rest.split_at_mut(rows * n);
                rest = r;
                let a_band = &a[band.start * n..band.end * n];
                jobs.push(Box::new(move || $drive(a_band, n, mine, n, rows, n, pb, false)));
            }
            exec.run_batch(jobs);
        }

        /// `C += A · B` over `lanes` ad-hoc scoped threads — the legacy
        /// entry point for callers without a persistent lane pool.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $parallel(a: &[$t], b: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            $parallel_on(&ScopedExec::new(lanes), a, b, c, n)
        }
    };
}

gemm_impls!(
    f64,
    dgemm_naive,
    dgemm_blocked,
    dgemm_blocked64,
    dgemm_packed,
    dgemm_parallel,
    dgemm_parallel_on,
    dgemm_rect,
    drive_f64,
    NR_F64
);
gemm_impls!(
    f32,
    sgemm_naive,
    sgemm_blocked,
    sgemm_blocked64,
    sgemm_packed,
    sgemm_parallel,
    sgemm_parallel_on,
    sgemm_rect,
    drive_f32,
    NR_F32
);

macro_rules! gemm_nt_sub_impls {
    ($t:ty, $serial:ident, $packed:ident, $par:ident, $par_on:ident, $rect:ident, $drive:ident,
     $nr:expr) => {
        /// Rectangular dot-product core: `C[rows×n] −= A[rows×n] · Bᵀ`.
        fn $rect(a: &[$t], b: &[$t], c: &mut [$t], rows: usize, n: usize) {
            assert!(a.len() >= rows * n && b.len() >= n * n && c.len() >= rows * n);
            for i in 0..rows {
                for j in 0..n {
                    let mut dot: $t = 0.0;
                    for k in 0..n {
                        dot += a[i * n + k] * b[j * n + k];
                    }
                    c[i * n + j] -= dot;
                }
            }
        }

        /// `C ← C − A·Bᵀ` through the packed core (`B` packed
        /// transposed), regardless of size.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $packed(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            let pb = PackedB::pack(b, n, true, n, n, $nr);
            $drive(a, n, c, n, n, n, &pb, true);
        }

        /// `C ← C − A·Bᵀ` — the trailing update of the tiled Cholesky
        /// (`A[i][j] −= A[i][k]·A[j][k]ᵀ`). Dispatches to the packed core
        /// above the small-tile threshold.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $serial(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            if n < PACK_MIN_N {
                $rect(a, b, c, n, n)
            } else {
                $packed(a, b, c, n)
            }
        }

        /// Multi-lane NT update banded over `exec`'s lanes; `B` is packed
        /// once and shared.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $par_on(exec: &dyn LaneExec, a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            if exec.lanes() <= 1 || n < PAR_MIN_N {
                return $serial(a, b, c, n);
            }
            let pb = PackedB::pack(b, n, true, n, n, $nr);
            let pb = &pb;
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut rest: &mut [$t] = &mut c[..n * n];
            for band in chunk_ranges(n, exec.lanes()) {
                let rows = band.len();
                let (mine, r) = rest.split_at_mut(rows * n);
                rest = r;
                let a_band = &a[band.start * n..band.end * n];
                jobs.push(Box::new(move || $drive(a_band, n, mine, n, rows, n, pb, true)));
            }
            exec.run_batch(jobs);
        }

        /// Multi-lane NT update over `lanes` ad-hoc scoped threads.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $par(a: &[$t], b: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            $par_on(&ScopedExec::new(lanes), a, b, c, n)
        }
    };
}

gemm_nt_sub_impls!(
    f32,
    sgemm_nt_sub,
    sgemm_nt_sub_packed,
    sgemm_nt_sub_par,
    sgemm_nt_sub_par_on,
    sgemm_nt_rect,
    drive_f32,
    NR_F32
);
gemm_nt_sub_impls!(
    f64,
    dgemm_nt_sub,
    dgemm_nt_sub_packed,
    dgemm_nt_sub_par,
    dgemm_nt_sub_par_on,
    dgemm_nt_rect,
    drive_f64,
    NR_F64
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f32, assert_close_f64, random_matrix_f32, random_matrix_f64};

    #[test]
    fn naive_matches_hand_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50], starting from C = I.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [1.0, 0.0, 0.0, 1.0];
        dgemm_naive(&a, &b, &mut c, 2);
        assert_eq!(c, [20.0, 22.0, 43.0, 51.0]);
    }

    #[test]
    fn blocked_matches_naive_f64() {
        for n in [1usize, 7, 63, 64, 65, 130] {
            let a = random_matrix_f64(n, 1);
            let b = random_matrix_f64(n, 2);
            let mut c1 = random_matrix_f64(n, 3);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_blocked(&a, &b, &mut c2, n);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn blocked64_matches_naive_f64() {
        for n in [7usize, 64, 130] {
            let a = random_matrix_f64(n, 31);
            let b = random_matrix_f64(n, 32);
            let mut c1 = random_matrix_f64(n, 33);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_blocked64(&a, &b, &mut c2, n);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn parallel_matches_naive_f64() {
        for lanes in [1usize, 2, 3, 4, 8] {
            let n = 150;
            let a = random_matrix_f64(n, 4);
            let b = random_matrix_f64(n, 5);
            let mut c1 = random_matrix_f64(n, 6);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_parallel(&a, &b, &mut c2, n, lanes);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn parallel_is_bitwise_equal_to_packed() {
        // Same microkernel, same k-order per element — banding must not
        // change a single bit.
        let n = 200;
        let a = random_matrix_f64(n, 40);
        let b = random_matrix_f64(n, 41);
        let mut c1 = random_matrix_f64(n, 42);
        let mut c2 = c1.clone();
        dgemm_packed(&a, &b, &mut c1, n);
        dgemm_parallel(&a, &b, &mut c2, n, 3);
        assert_eq!(c1, c2);
    }

    #[test]
    fn blocked_matches_naive_f32() {
        let n = 90;
        let a = random_matrix_f32(n, 7);
        let b = random_matrix_f32(n, 8);
        let mut c1 = vec![0.0f32; n * n];
        let mut c2 = vec![0.0f32; n * n];
        sgemm_naive(&a, &b, &mut c1, n);
        sgemm_blocked(&a, &b, &mut c2, n);
        assert_close_f32(&c1, &c2, 1e-3);
    }

    #[test]
    fn parallel_matches_naive_f32() {
        let n = 140;
        let a = random_matrix_f32(n, 9);
        let b = random_matrix_f32(n, 10);
        let mut c1 = vec![0.5f32; n * n];
        let mut c2 = vec![0.5f32; n * n];
        sgemm_naive(&a, &b, &mut c1, n);
        sgemm_parallel(&a, &b, &mut c2, n, 4);
        assert_close_f32(&c1, &c2, 1e-3);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let n = 8;
        let a = random_matrix_f64(n, 11);
        let b = random_matrix_f64(n, 12);
        let mut c = vec![0.0; n * n];
        dgemm_naive(&a, &b, &mut c, n);
        let after_one = c.clone();
        dgemm_naive(&a, &b, &mut c, n);
        for i in 0..n * n {
            assert!((c[i] - 2.0 * after_one[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_dimension_is_a_noop() {
        let mut c: [f64; 0] = [];
        dgemm_naive(&[], &[], &mut c, 0);
        dgemm_blocked(&[], &[], &mut c, 0);
        dgemm_packed(&[], &[], &mut c, 0);
        dgemm_parallel(&[], &[], &mut c, 0, 4);
    }

    #[test]
    fn nt_sub_matches_manual_transpose() {
        let n = 40;
        let a = random_matrix_f64(n, 20);
        let b = random_matrix_f64(n, 21);
        let c0 = random_matrix_f64(n, 22);
        // Reference: C -= A * B^T via naive gemm on transposed B.
        let mut bt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                bt[i * n + j] = b[j * n + i];
            }
        }
        let mut expect = c0.clone();
        let mut prod = vec![0.0; n * n];
        dgemm_naive(&a, &bt, &mut prod, n);
        for i in 0..n * n {
            expect[i] -= prod[i];
        }
        for f in [dgemm_nt_sub, dgemm_nt_sub_packed] {
            let mut got = c0.clone();
            f(&a, &b, &mut got, n);
            assert_close_f64(&expect, &got, 1e-10);
        }
    }

    #[test]
    fn nt_sub_parallel_matches_serial() {
        let n = 160;
        let a = random_matrix_f64(n, 23);
        let b = random_matrix_f64(n, 24);
        let mut c1 = random_matrix_f64(n, 25);
        let mut c2 = c1.clone();
        dgemm_nt_sub(&a, &b, &mut c1, n);
        dgemm_nt_sub_par(&a, &b, &mut c2, n, 5);
        assert_close_f64(&c1, &c2, 1e-12);
        // f32 variant smoke.
        let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let mut cf1 = vec![0.0f32; n * n];
        let mut cf2 = vec![0.0f32; n * n];
        sgemm_nt_sub(&af, &bf, &mut cf1, n);
        sgemm_nt_sub_par(&af, &bf, &mut cf2, n, 3);
        crate::verify::assert_close_f32(&cf1, &cf2, 1e-4);
    }

    #[test]
    #[should_panic]
    fn short_slice_panics() {
        let mut c = vec![0.0f64; 3];
        dgemm_naive(&[0.0; 4], &[0.0; 4], &mut c, 2);
    }
}
