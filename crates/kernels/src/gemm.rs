//! Dense matrix multiplication: `C += A · B` on square row-major tiles.
//!
//! Three implementation tiers mirror the paper's three matmul task
//! versions (§V-B1): a straightforward triple loop (the "CBLAS on one
//! core" stand-in), a cache-blocked single-core variant (the "hand-coded
//! CUDA" stand-in), and a multi-lane parallel blocked variant (the
//! "CUBLAS" stand-in for emulated GPUs).

use crate::chunk_ranges;

macro_rules! gemm_impls {
    ($t:ty, $naive:ident, $blocked:ident, $parallel:ident, $rect:ident) => {
        /// Rectangular blocked core: `C[rows×n] += A[rows×n] · B[n×n]`.
        fn $rect(a: &[$t], b: &[$t], c: &mut [$t], rows: usize, n: usize) {
            assert!(a.len() >= rows * n && b.len() >= n * n && c.len() >= rows * n);
            const BS: usize = 64;
            for ii in (0..rows).step_by(BS) {
                for kk in (0..n).step_by(BS) {
                    for jj in (0..n).step_by(BS) {
                        let (ie, ke, je) =
                            ((ii + BS).min(rows), (kk + BS).min(n), (jj + BS).min(n));
                        for i in ii..ie {
                            for k in kk..ke {
                                let aik = a[i * n + k];
                                for j in jj..je {
                                    c[i * n + j] += aik * b[k * n + j];
                                }
                            }
                        }
                    }
                }
            }
        }
        /// `C += A · B`, naive i-k-j triple loop.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $naive(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            for i in 0..n {
                for k in 0..n {
                    let aik = a[i * n + k];
                    let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
                    for j in 0..n {
                        crow[j] += aik * brow[j];
                    }
                }
            }
        }

        /// `C += A · B`, cache-blocked (64×64 blocks).
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $blocked(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            $rect(a, b, c, n, n);
        }

        /// `C += A · B`, blocked and parallelized over `lanes` scoped
        /// threads by row bands (this is what an emulated GPU runs).
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $parallel(a: &[$t], b: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            if lanes <= 1 || n < 128 {
                return $blocked(a, b, c, n);
            }
            let bands = chunk_ranges(n, lanes);
            // Split C into disjoint row bands; each lane owns one band.
            let mut c_rest: &mut [$t] = &mut c[..n * n];
            std::thread::scope(|scope| {
                for band in bands {
                    let rows = band.len();
                    let (c_band, rest) = c_rest.split_at_mut(rows * n);
                    c_rest = rest;
                    let a_band = &a[band.start * n..band.end * n];
                    scope.spawn(move || $rect(a_band, b, c_band, rows, n));
                }
            });
        }
    };
}

gemm_impls!(f64, dgemm_naive, dgemm_blocked, dgemm_parallel, dgemm_rect);
gemm_impls!(f32, sgemm_naive, sgemm_blocked, sgemm_parallel, sgemm_rect);

macro_rules! gemm_nt_sub_impls {
    ($t:ty, $serial:ident, $par:ident, $rect:ident) => {
        /// Rectangular core: `C[rows×n] −= A[rows×n] · Bᵀ` (`B` is `n×n`).
        fn $rect(a: &[$t], b: &[$t], c: &mut [$t], rows: usize, n: usize) {
            assert!(a.len() >= rows * n && b.len() >= n * n && c.len() >= rows * n);
            for i in 0..rows {
                for j in 0..n {
                    let mut dot: $t = 0.0;
                    for k in 0..n {
                        dot += a[i * n + k] * b[j * n + k];
                    }
                    c[i * n + j] -= dot;
                }
            }
        }

        /// `C ← C − A·Bᵀ` — the trailing update of the tiled Cholesky
        /// (`A[i][j] −= A[i][k]·A[j][k]ᵀ`).
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $serial(a: &[$t], b: &[$t], c: &mut [$t], n: usize) {
            $rect(a, b, c, n, n);
        }

        /// Multi-lane variant of the NT update, parallel over row bands.
        ///
        /// # Panics
        /// Panics if any slice is shorter than `n * n`.
        pub fn $par(a: &[$t], b: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            assert!(a.len() >= n * n && b.len() >= n * n && c.len() >= n * n);
            if lanes <= 1 || n < 128 {
                return $serial(a, b, c, n);
            }
            let mut rest: &mut [$t] = &mut c[..n * n];
            std::thread::scope(|scope| {
                for band in chunk_ranges(n, lanes) {
                    let rows = band.len();
                    let (mine, r) = rest.split_at_mut(rows * n);
                    rest = r;
                    let a_band = &a[band.start * n..band.end * n];
                    scope.spawn(move || $rect(a_band, b, mine, rows, n));
                }
            });
        }
    };
}

gemm_nt_sub_impls!(f32, sgemm_nt_sub, sgemm_nt_sub_par, sgemm_nt_rect);
gemm_nt_sub_impls!(f64, dgemm_nt_sub, dgemm_nt_sub_par, dgemm_nt_rect);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f32, assert_close_f64, random_matrix_f32, random_matrix_f64};

    #[test]
    fn naive_matches_hand_example() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50], starting from C = I.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [1.0, 0.0, 0.0, 1.0];
        dgemm_naive(&a, &b, &mut c, 2);
        assert_eq!(c, [20.0, 22.0, 43.0, 51.0]);
    }

    #[test]
    fn blocked_matches_naive_f64() {
        for n in [1usize, 7, 63, 64, 65, 130] {
            let a = random_matrix_f64(n, 1);
            let b = random_matrix_f64(n, 2);
            let mut c1 = random_matrix_f64(n, 3);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_blocked(&a, &b, &mut c2, n);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn parallel_matches_naive_f64() {
        for lanes in [1usize, 2, 3, 4, 8] {
            let n = 150;
            let a = random_matrix_f64(n, 4);
            let b = random_matrix_f64(n, 5);
            let mut c1 = random_matrix_f64(n, 6);
            let mut c2 = c1.clone();
            dgemm_naive(&a, &b, &mut c1, n);
            dgemm_parallel(&a, &b, &mut c2, n, lanes);
            assert_close_f64(&c1, &c2, 1e-10);
        }
    }

    #[test]
    fn blocked_matches_naive_f32() {
        let n = 90;
        let a = random_matrix_f32(n, 7);
        let b = random_matrix_f32(n, 8);
        let mut c1 = vec![0.0f32; n * n];
        let mut c2 = vec![0.0f32; n * n];
        sgemm_naive(&a, &b, &mut c1, n);
        sgemm_blocked(&a, &b, &mut c2, n);
        assert_close_f32(&c1, &c2, 1e-3);
    }

    #[test]
    fn parallel_matches_naive_f32() {
        let n = 140;
        let a = random_matrix_f32(n, 9);
        let b = random_matrix_f32(n, 10);
        let mut c1 = vec![0.5f32; n * n];
        let mut c2 = vec![0.5f32; n * n];
        sgemm_naive(&a, &b, &mut c1, n);
        sgemm_parallel(&a, &b, &mut c2, n, 4);
        assert_close_f32(&c1, &c2, 1e-3);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let n = 8;
        let a = random_matrix_f64(n, 11);
        let b = random_matrix_f64(n, 12);
        let mut c = vec![0.0; n * n];
        dgemm_naive(&a, &b, &mut c, n);
        let after_one = c.clone();
        dgemm_naive(&a, &b, &mut c, n);
        for i in 0..n * n {
            assert!((c[i] - 2.0 * after_one[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_dimension_is_a_noop() {
        let mut c: [f64; 0] = [];
        dgemm_naive(&[], &[], &mut c, 0);
        dgemm_blocked(&[], &[], &mut c, 0);
        dgemm_parallel(&[], &[], &mut c, 0, 4);
    }

    #[test]
    fn nt_sub_matches_manual_transpose() {
        let n = 40;
        let a = random_matrix_f64(n, 20);
        let b = random_matrix_f64(n, 21);
        let c0 = random_matrix_f64(n, 22);
        // Reference: C -= A * B^T via naive gemm on transposed B.
        let mut bt = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                bt[i * n + j] = b[j * n + i];
            }
        }
        let mut expect = c0.clone();
        let mut prod = vec![0.0; n * n];
        dgemm_naive(&a, &bt, &mut prod, n);
        for i in 0..n * n {
            expect[i] -= prod[i];
        }
        let mut got = c0.clone();
        dgemm_nt_sub(&a, &b, &mut got, n);
        assert_close_f64(&expect, &got, 1e-10);
    }

    #[test]
    fn nt_sub_parallel_matches_serial() {
        let n = 160;
        let a = random_matrix_f64(n, 23);
        let b = random_matrix_f64(n, 24);
        let mut c1 = random_matrix_f64(n, 25);
        let mut c2 = c1.clone();
        dgemm_nt_sub(&a, &b, &mut c1, n);
        dgemm_nt_sub_par(&a, &b, &mut c2, n, 5);
        assert_close_f64(&c1, &c2, 1e-12);
        // f32 variant smoke.
        let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let mut cf1 = vec![0.0f32; n * n];
        let mut cf2 = vec![0.0f32; n * n];
        sgemm_nt_sub(&af, &bf, &mut cf1, n);
        sgemm_nt_sub_par(&af, &bf, &mut cf2, n, 3);
        crate::verify::assert_close_f32(&cf1, &cf2, 1e-4);
    }

    #[test]
    #[should_panic]
    fn short_slice_panics() {
        let mut c = vec![0.0f64; 3];
        dgemm_naive(&[0.0; 4], &[0.0; 4], &mut c, 2);
    }
}
