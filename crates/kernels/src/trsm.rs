//! Triangular solve: `A ← A · L⁻ᵀ` (right side, lower triangular,
//! transposed) — the panel-update task of the tiled Cholesky.
//!
//! After `potrf` factors the diagonal tile `A_kk = L·Lᵀ`, every tile
//! below it is updated as `A_ik ← A_ik · L⁻ᵀ`, which is exactly BLAS
//! `trsm(side=R, uplo=L, trans=T, diag=N)`.

use crate::chunk_ranges;
use crate::exec::{LaneExec, ScopedExec};

macro_rules! trsm_impl {
    ($t:ty, $name:ident, $par:ident, $par_on:ident) => {
        /// Solve `X · Lᵀ = A` in place (`A ← A · L⁻ᵀ`) for a row-major
        /// `n × n` tile `A` and lower-triangular `L`.
        ///
        /// # Panics
        /// Panics if either slice is shorter than `n * n` or `L` has a
        /// zero diagonal element.
        pub fn $name(l: &[$t], a: &mut [$t], n: usize) {
            assert!(l.len() >= n * n && a.len() >= n * n);
            for i in 0..n {
                let row = &mut a[i * n..i * n + n];
                trsm_row(l, row, n);
            }
        }

        /// Multi-lane variant of the same solve: rows of `A` are
        /// independent, so they are banded over `exec`'s lanes.
        ///
        /// # Panics
        /// As the serial variant.
        pub fn $par_on(exec: &dyn LaneExec, l: &[$t], a: &mut [$t], n: usize) {
            assert!(l.len() >= n * n && a.len() >= n * n);
            if exec.lanes() <= 1 || n < 64 {
                return $name(l, a, n);
            }
            let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut rest: &mut [$t] = &mut a[..n * n];
            for band in chunk_ranges(n, exec.lanes()) {
                let rows = band.len();
                let (mine, r) = rest.split_at_mut(rows * n);
                rest = r;
                jobs.push(Box::new(move || {
                    for i in 0..rows {
                        trsm_row(l, &mut mine[i * n..i * n + n], n);
                    }
                }));
            }
            exec.run_batch(jobs);
        }

        /// Multi-lane solve over `lanes` ad-hoc scoped threads — the
        /// legacy entry point for callers without a persistent lane pool.
        ///
        /// # Panics
        /// As the serial variant.
        pub fn $par(l: &[$t], a: &mut [$t], n: usize, lanes: usize) {
            $par_on(&ScopedExec::new(lanes), l, a, n)
        }
    };
}

/// Solve one row: `x · Lᵀ = a` i.e. forward substitution in j.
fn trsm_row<T>(l: &[T], row: &mut [T], n: usize)
where
    T: Copy
        + std::ops::Mul<Output = T>
        + std::ops::Sub<Output = T>
        + std::ops::Div<Output = T>
        + PartialEq
        + Default,
{
    for j in 0..n {
        let mut v = row[j];
        for k in 0..j {
            v = v - row[k] * l[j * n + k];
        }
        let diag = l[j * n + j];
        assert!(diag != T::default(), "singular triangular factor");
        row[j] = v / diag;
    }
}

trsm_impl!(f32, strsm_right_lower_trans, strsm_right_lower_trans_par, strsm_right_lower_trans_par_on);
trsm_impl!(f64, dtrsm_right_lower_trans, dtrsm_right_lower_trans_par, dtrsm_right_lower_trans_par_on);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f64, random_matrix_f64, spd_matrix_f64};
    use crate::potrf::dpotrf;

    /// Check `X · Lᵀ == A` after the solve.
    fn check_solution(l: &[f64], x: &[f64], a: &[f64], n: usize, tol: f64) {
        let mut recon = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    recon[i * n + j] += x[i * n + k] * l[j * n + k]; // (Lᵀ)[k][j] = L[j][k]
                }
            }
        }
        assert_close_f64(&recon, a, tol);
    }

    fn lower_factor(n: usize, seed: u64) -> Vec<f64> {
        let mut l = spd_matrix_f64(n, seed);
        dpotrf(&mut l, n).unwrap();
        l
    }

    #[test]
    fn solves_against_identity() {
        let n = 8;
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            l[i * n + i] = 2.0;
        }
        let a: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut x = a.clone();
        dtrsm_right_lower_trans(&l, &mut x, n);
        for i in 0..n * n {
            assert!((x[i] - a[i] / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solution_satisfies_the_equation() {
        for n in [1usize, 3, 10, 40] {
            let l = lower_factor(n, 5);
            let a = random_matrix_f64(n, 6);
            let mut x = a.clone();
            dtrsm_right_lower_trans(&l, &mut x, n);
            check_solution(&l, &x, &a, n, 1e-8);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 96;
        let l = lower_factor(n, 8);
        let a = random_matrix_f64(n, 9);
        let mut x1 = a.clone();
        let mut x2 = a.clone();
        dtrsm_right_lower_trans(&l, &mut x1, n);
        dtrsm_right_lower_trans_par(&l, &mut x2, n, 4);
        assert_close_f64(&x1, &x2, 1e-12);
    }

    #[test]
    fn f32_variant_solves() {
        let n = 4;
        let mut l = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..=i {
                l[i * n + j] = if i == j { 3.0 } else { 1.0 };
            }
        }
        let a = vec![1.0f32; n * n];
        let mut x = a.clone();
        strsm_right_lower_trans(&l, &mut x, n);
        // Verify X · Lᵀ = A.
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0f32;
                for k in 0..n {
                    v += x[i * n + k] * l[j * n + k];
                }
                assert!((v - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn zero_diagonal_panics() {
        let l = vec![0.0f64; 4];
        let mut a = vec![1.0f64; 4];
        dtrsm_right_lower_trans(&l, &mut a, 2);
    }
}
