//! Symmetric rank-k update: `C ← C − A·Aᵀ` (lower triangle) — the
//! diagonal-tile update of the tiled Cholesky.

use crate::chunk_ranges;

macro_rules! syrk_impl {
    ($t:ty, $name:ident, $par:ident) => {
        /// `C ← C − A·Aᵀ`, updating only the lower triangle (the upper
        /// triangle mirrors it so the tile stays a full symmetric matrix,
        /// which keeps downstream `potrf`/reference checks simple).
        ///
        /// # Panics
        /// Panics if either slice is shorter than `n * n`.
        pub fn $name(a: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && c.len() >= n * n);
            for i in 0..n {
                for j in 0..=i {
                    let mut dot: $t = 0.0;
                    for k in 0..n {
                        dot += a[i * n + k] * a[j * n + k];
                    }
                    c[i * n + j] -= dot;
                    if i != j {
                        c[j * n + i] = c[i * n + j];
                    }
                }
            }
        }

        /// Multi-lane variant: rows of the lower triangle are distributed
        /// over `lanes` scoped threads; the mirror pass runs serially.
        ///
        /// # Panics
        /// Panics if either slice is shorter than `n * n`.
        pub fn $par(a: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            assert!(a.len() >= n * n && c.len() >= n * n);
            if lanes <= 1 || n < 64 {
                return $name(a, c, n);
            }
            let mut rest: &mut [$t] = &mut c[..n * n];
            let mut offset = 0usize;
            std::thread::scope(|scope| {
                for band in chunk_ranges(n, lanes) {
                    let rows = band.len();
                    let (mine, r) = rest.split_at_mut(rows * n);
                    rest = r;
                    let start = offset;
                    offset += rows;
                    scope.spawn(move || {
                        for (li, i) in (start..start + rows).enumerate() {
                            for j in 0..=i {
                                let mut dot: $t = 0.0;
                                for k in 0..n {
                                    dot += a[i * n + k] * a[j * n + k];
                                }
                                mine[li * n + j] -= dot;
                            }
                        }
                    });
                }
            });
            // Mirror to the upper triangle.
            for i in 0..n {
                for j in 0..i {
                    c[j * n + i] = c[i * n + j];
                }
            }
        }
    };
}

syrk_impl!(f32, ssyrk_lower, ssyrk_lower_par);
syrk_impl!(f64, dsyrk_lower, dsyrk_lower_par);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f64, random_matrix_f64};

    /// Reference: full `C − A·Aᵀ` via gemm with B = Aᵀ.
    fn reference(a: &[f64], c0: &[f64], n: usize) -> Vec<f64> {
        let mut out = c0.to_vec();
        for i in 0..n {
            for j in 0..n {
                let mut dot = 0.0;
                for k in 0..n {
                    dot += a[i * n + k] * a[j * n + k];
                }
                out[i * n + j] -= dot;
            }
        }
        out
    }

    fn symmetric_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut m = random_matrix_f64(n, seed);
        for i in 0..n {
            for j in 0..i {
                m[j * n + i] = m[i * n + j];
            }
        }
        m
    }

    #[test]
    fn matches_reference() {
        for n in [1usize, 4, 17, 50] {
            let a = random_matrix_f64(n, 1);
            let c0 = symmetric_matrix(n, 2);
            let mut c = c0.clone();
            dsyrk_lower(&a, &mut c, n);
            assert_close_f64(&c, &reference(&a, &c0, n), 1e-9);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 100;
        let a = random_matrix_f64(n, 3);
        let c0 = symmetric_matrix(n, 4);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        dsyrk_lower(&a, &mut c1, n);
        dsyrk_lower_par(&a, &mut c2, n, 4);
        assert_close_f64(&c1, &c2, 1e-12);
    }

    #[test]
    fn result_stays_symmetric() {
        let n = 12;
        let a = random_matrix_f64(n, 5);
        let mut c = symmetric_matrix(n, 6);
        dsyrk_lower(&a, &mut c, n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(c[i * n + j], c[j * n + i]);
            }
        }
    }

    #[test]
    fn f32_smoke() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let mut c = vec![5.0f32, 0.0, 0.0, 5.0];
        ssyrk_lower(&a, &mut c, 2);
        assert_eq!(c, vec![4.0, 0.0, 0.0, 4.0]);
    }
}
