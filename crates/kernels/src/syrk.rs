//! Symmetric rank-k update: `C ← C − A·Aᵀ` (lower triangle) — the
//! diagonal-tile update of the tiled Cholesky.
//!
//! Above the small-tile threshold the update runs through the packed
//! register-blocked core: `A` is packed once *transposed* (so the core
//! computes `A·Aᵀ`), then driven over row bands — at least `MC`-granular —
//! with the column count clipped to each band's trailing edge. The
//! computed region is the lower trapezoid rounded up to band boundaries,
//! and a final mirror pass restores the full-symmetric-tile contract.

use crate::exec::{LaneExec, ScopedExec, SerialExec};
use crate::microkernel::{drive, par_bands};
use crate::pack::PackedB;

/// Below this dimension the dot-product loop beats packing. Re-measured
/// against the SIMD tiers: the packed core wins from n = 16 up (0.9 vs
/// 1.9 µs/call) and is ~5× faster by n = 48, so the old 64 cutoff left
/// mid-size Cholesky diagonal tiles on the slow path.
const PACK_MIN_N: usize = 16;

macro_rules! syrk_impl {
    ($t:ty, $name:ident, $par:ident, $par_on:ident, $legacy:ident, $kernel:path) => {
        /// Dot-product rank-k update of the lower triangle (small tiles).
        fn $legacy(a: &[$t], c: &mut [$t], n: usize) {
            for i in 0..n {
                for j in 0..=i {
                    let mut dot: $t = 0.0;
                    for k in 0..n {
                        dot += a[i * n + k] * a[j * n + k];
                    }
                    c[i * n + j] -= dot;
                }
            }
        }

        /// `C ← C − A·Aᵀ`, updating only the lower triangle (the upper
        /// triangle mirrors it so the tile stays a full symmetric matrix,
        /// which keeps downstream `potrf`/reference checks simple).
        /// Dispatches to the packed register-blocked core above the
        /// small-tile threshold.
        ///
        /// # Panics
        /// Panics if either slice is shorter than `n * n`.
        pub fn $name(a: &[$t], c: &mut [$t], n: usize) {
            $par_on(&SerialExec, a, c, n)
        }

        /// Rank-k update banded over `exec`'s lanes: each lane owns a row
        /// band of the lower trapezoid (columns clipped to the band's
        /// trailing edge), sharing one transposed packing of `A`; the
        /// mirror pass runs serially afterwards. Per-element accumulation
        /// order never depends on the banding, so any lane count produces
        /// bitwise-identical tiles.
        ///
        /// # Panics
        /// Panics if either slice is shorter than `n * n`.
        pub fn $par_on(exec: &dyn LaneExec, a: &[$t], c: &mut [$t], n: usize) {
            assert!(a.len() >= n * n && c.len() >= n * n);
            if n < PACK_MIN_N {
                // Dot-product tier; banding it isn't worth a wake-up.
                $legacy(a, c, n);
            } else {
                let mk = $kernel();
                let pa = PackedB::pack(a, n, true, n, n, mk.nr);
                let pa = &pa;
                let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                let mut rest: &mut [$t] = &mut c[..n * n];
                let mut consumed = 0usize;
                // MC-granular bands whenever work is plentiful, so the
                // column clip skips the upper triangle's work even on a
                // single lane and the pool load-balances ragged bands.
                for band in par_bands(n, exec.lanes(), mk.mr) {
                    let rows = band.len();
                    let (mine, r) = rest.split_at_mut(rows * n);
                    rest = r;
                    let a_band = &a[band.start * n..];
                    let ncols = band.end;
                    jobs.push(Box::new(move || {
                        drive(mk, a_band, n, mine, n, rows, ncols, pa, true)
                    }));
                    consumed += rows;
                }
                debug_assert_eq!(consumed, n);
                exec.run_batch(jobs);
            }
            // Mirror the lower triangle to the upper.
            for i in 0..n {
                for j in 0..i {
                    c[j * n + i] = c[i * n + j];
                }
            }
        }

        /// Multi-lane variant over `lanes` ad-hoc scoped threads — the
        /// legacy entry point for callers without a persistent lane pool.
        ///
        /// # Panics
        /// Panics if either slice is shorter than `n * n`.
        pub fn $par(a: &[$t], c: &mut [$t], n: usize, lanes: usize) {
            $par_on(&ScopedExec::new(lanes), a, c, n)
        }
    };
}

syrk_impl!(f32, ssyrk_lower, ssyrk_lower_par, ssyrk_lower_par_on, ssyrk_rows, crate::simd::kernel_f32);
syrk_impl!(f64, dsyrk_lower, dsyrk_lower_par, dsyrk_lower_par_on, dsyrk_rows, crate::simd::kernel_f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_close_f64, random_matrix_f64};

    /// Reference: full `C − A·Aᵀ` via gemm with B = Aᵀ.
    fn reference(a: &[f64], c0: &[f64], n: usize) -> Vec<f64> {
        let mut out = c0.to_vec();
        for i in 0..n {
            for j in 0..n {
                let mut dot = 0.0;
                for k in 0..n {
                    dot += a[i * n + k] * a[j * n + k];
                }
                out[i * n + j] -= dot;
            }
        }
        out
    }

    fn symmetric_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut m = random_matrix_f64(n, seed);
        for i in 0..n {
            for j in 0..i {
                m[j * n + i] = m[i * n + j];
            }
        }
        m
    }

    #[test]
    fn matches_reference() {
        // 1..4 take the dot-product tier, 17..130 the packed tier.
        for n in [1usize, 4, 15, 17, 50, 64, 80, 130] {
            let a = random_matrix_f64(n, 1);
            let c0 = symmetric_matrix(n, 2);
            let mut c = c0.clone();
            dsyrk_lower(&a, &mut c, n);
            assert_close_f64(&c, &reference(&a, &c0, n), 1e-9);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let n = 100;
        let a = random_matrix_f64(n, 3);
        let c0 = symmetric_matrix(n, 4);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        dsyrk_lower(&a, &mut c1, n);
        dsyrk_lower_par(&a, &mut c2, n, 4);
        assert_close_f64(&c1, &c2, 1e-12);
        // Banding must not change per-element accumulation order.
        assert_eq!(c1, c2);
    }

    #[test]
    fn result_stays_symmetric() {
        for n in [12usize, 96] {
            let a = random_matrix_f64(n, 5);
            let mut c = symmetric_matrix(n, 6);
            dsyrk_lower(&a, &mut c, n);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(c[i * n + j], c[j * n + i]);
                }
            }
        }
    }

    #[test]
    fn f32_smoke() {
        let a = vec![1.0f32, 0.0, 0.0, 1.0];
        let mut c = vec![5.0f32, 0.0, 0.0, 5.0];
        ssyrk_lower(&a, &mut c, 2);
        assert_eq!(c, vec![4.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn f32_packed_matches_dot_tier() {
        let n = 72;
        let a: Vec<f32> = random_matrix_f64(n, 7).iter().map(|&v| v as f32).collect();
        let c0: Vec<f32> = symmetric_matrix(n, 8).iter().map(|&v| v as f32).collect();
        let mut got = c0.clone();
        ssyrk_lower(&a, &mut got, n);
        let expect64 = reference(
            &a.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            &c0.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            n,
        );
        for i in 0..n {
            for j in 0..=i {
                let e = expect64[i * n + j] as f32;
                assert!((got[i * n + j] - e).abs() <= 1e-2 * e.abs().max(1.0));
            }
        }
    }
}
