//! Runtime SIMD feature dispatch and the explicit `std::arch`
//! micro-kernels.
//!
//! The packed GEMM core (see [`crate::microkernel`]) is driven through a
//! [`MicroKernel`] chosen **once per process** and cached: the first call
//! probes the CPU with `is_x86_feature_detected!` (honoring the override
//! knobs below) and every subsequent call costs one atomic load. Three
//! tiers exist:
//!
//! | tier | f64 tile | f32 tile | requires |
//! |---|---|---|---|
//! | `scalar` | 8×4 | 8×8 | nothing — the portable pre-SIMD tier |
//! | `avx2` | 8×4 | 8×8 | AVX2 + FMA |
//! | `avx512` | 16×8 | 16×8 | AVX-512F |
//!
//! The SIMD tiles hold one accumulator register per *column* spanning the
//! tile's rows, so each `k` step is one (or two) packed-`A` loads plus
//! one broadcast-FMA per column — with enough independent accumulator
//! chains to keep both FMA ports saturated. Every tier preserves the
//! bitwise contract of [`crate::microkernel`]: per-element fused
//! multiply-add in ascending `k` order, so **all tiers produce
//! bitwise-identical results** and tests can compare them with `==`.
//!
//! # Override knobs
//!
//! * `VERSA_SIMD=scalar|avx2|avx512|auto` — pin the dispatch to one tier
//!   (used by the forced-scalar CI leg and the equivalence tests). A tier
//!   the CPU lacks falls back to the best available one with a warning.
//! * `VERSA_FORCE_SCALAR=1` — shorthand for `VERSA_SIMD=scalar`.
//!
//! Both are read once, at first kernel use.

use crate::microkernel::{MicroKernel, SCALAR_F32, SCALAR_F64};
use std::sync::OnceLock;

/// A SIMD dispatch tier. `Ord` follows capability: wider is greater.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Tier {
    /// Portable scalar micro-kernels (auto-vectorized by LLVM).
    Scalar,
    /// Explicit AVX2 + FMA micro-kernels.
    Avx2,
    /// Explicit AVX-512F micro-kernels.
    Avx512,
}

impl Tier {
    /// The tier's name as used by `VERSA_SIMD`, benches and docs.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tiers the running CPU supports, widest first. Always ends with
/// [`Tier::Scalar`].
pub fn detected_tiers() -> Vec<Tier> {
    let mut tiers = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            tiers.push(Tier::Avx512);
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            tiers.push(Tier::Avx2);
        }
    }
    tiers.push(Tier::Scalar);
    tiers
}

/// What the environment asked for: a pinned tier, or auto-detection.
fn requested() -> Option<Tier> {
    if let Ok(v) = std::env::var("VERSA_SIMD") {
        return match v.to_ascii_lowercase().as_str() {
            "scalar" => Some(Tier::Scalar),
            "avx2" => Some(Tier::Avx2),
            "avx512" => Some(Tier::Avx512),
            "" | "auto" => None,
            other => {
                eprintln!("versa-kernels: unknown VERSA_SIMD value {other:?}; using auto");
                None
            }
        };
    }
    match std::env::var("VERSA_FORCE_SCALAR") {
        Ok(v) if matches!(v.as_str(), "1" | "true" | "yes" | "on") => Some(Tier::Scalar),
        _ => None,
    }
}

/// The tier dispatch settles on: the widest detected tier, clamped to a
/// `VERSA_SIMD`/`VERSA_FORCE_SCALAR` request. Cached after the first call.
pub fn active_tier() -> Tier {
    static ACTIVE: OnceLock<Tier> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let available = detected_tiers();
        let best = available[0];
        match requested() {
            None => best,
            Some(want) if available.contains(&want) => want,
            Some(want) => {
                eprintln!(
                    "versa-kernels: VERSA_SIMD={} not supported by this CPU; using {}",
                    want.name(),
                    best.name()
                );
                best
            }
        }
    })
}

/// The `f64` micro-kernel for an explicit tier, if this CPU supports it.
pub(crate) fn kernel_f64_for(tier: Tier) -> Option<&'static MicroKernel<f64>> {
    match tier {
        Tier::Scalar => Some(&SCALAR_F64),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") => {
            Some(&x86::AVX2_F64)
        }
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 if is_x86_feature_detected!("avx512f") => Some(&x86::AVX512_F64),
        _ => None,
    }
}

/// The `f32` micro-kernel for an explicit tier, if this CPU supports it.
pub(crate) fn kernel_f32_for(tier: Tier) -> Option<&'static MicroKernel<f32>> {
    match tier {
        Tier::Scalar => Some(&SCALAR_F32),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") => {
            Some(&x86::AVX2_F32)
        }
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 if is_x86_feature_detected!("avx512f") => Some(&x86::AVX512_F32),
        _ => None,
    }
}

/// The dispatched `f64` micro-kernel (cached function pointer).
pub(crate) fn kernel_f64() -> &'static MicroKernel<f64> {
    static ACTIVE: OnceLock<&'static MicroKernel<f64>> = OnceLock::new();
    ACTIVE.get_or_init(|| kernel_f64_for(active_tier()).unwrap_or(&SCALAR_F64))
}

/// The dispatched `f32` micro-kernel (cached function pointer).
pub(crate) fn kernel_f32() -> &'static MicroKernel<f32> {
    static ACTIVE: OnceLock<&'static MicroKernel<f32>> = OnceLock::new();
    ACTIVE.get_or_init(|| kernel_f32_for(active_tier()).unwrap_or(&SCALAR_F32))
}

/// One-line description of the active dispatch, e.g.
/// `"avx512 (f64 8x8, f32 16x8)"` — used by benches and diagnostics.
pub fn active_description() -> String {
    let (k64, k32) = (kernel_f64(), kernel_f32());
    format!("{} (f64 {}x{}, f32 {}x{})", k64.name, k64.mr, k64.nr, k32.mr, k32.nr)
}

/// Apply a column-major accumulator buffer (`colbuf[j · mr + r]`) to the
/// `rows × cols` corner of `c`. Shared writeback of every SIMD tile.
///
/// # Safety
/// The `rows × cols` corner at `c` with row stride `ldc` must be
/// writable, and `colbuf` must hold `cols` columns of `mr` rows.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn apply_cols<T>(colbuf: &[T], mr: usize, c: *mut T, ldc: usize, rows: usize, cols: usize, sub: bool)
where
    T: Copy + std::ops::Add<Output = T> + std::ops::Sub<Output = T>,
{
    for r in 0..rows {
        for j in 0..cols {
            let v = colbuf[j * mr + r];
            // SAFETY: caller guarantees the corner is writable.
            unsafe {
                let dst = c.add(r * ldc + j);
                *dst = if sub { *dst - v } else { *dst + v };
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
// The 8-argument signature is the shared micro-kernel ABI, and the
// `acc[j]` loops index lockstep with raw-pointer arithmetic on the
// packed panels — iterator rewrites would obscure the stride contract.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
mod x86 {
    //! The explicit x86-64 micro-kernels.
    //!
    //! Each `*_impl` carries `#[target_feature]` so LLVM emits the wide
    //! instructions regardless of the crate's base target. `make_driver!`
    //! wraps each one in its own monomorphized BLIS loop nest, and the
    //! dispatch table stores that *driver* — calling a kernel whose
    //! features the CPU lacks is the driver's safety precondition, which
    //! dispatch upholds by only handing out kernels after
    //! `is_x86_feature_detected!` confirms the features.

    use super::apply_cols;
    use crate::microkernel::{make_driver, MicroKernel};
    use std::arch::x86_64::*;

    /// AVX2+FMA f64 8×4 tile: two 4-wide row vectors per `k` step, one
    /// broadcast-FMA pair per column — 8 independent accumulator chains.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn avx2_f64_impl(
        kc: usize,
        ap: &[f64],
        bp: &[f64],
        c: *mut f64,
        ldc: usize,
        rows: usize,
        cols: usize,
        sub: bool,
    ) {
        debug_assert!(ap.len() >= kc * 8 && bp.len() >= kc * 4);
        let mut acc = [[_mm256_setzero_pd(); 2]; 4];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        // SAFETY: panel lengths checked above; loads stay within them.
        unsafe {
            for _ in 0..kc {
                let a0 = _mm256_loadu_pd(a);
                let a1 = _mm256_loadu_pd(a.add(4));
                for j in 0..4 {
                    let bb = _mm256_set1_pd(*b.add(j));
                    acc[j][0] = _mm256_fmadd_pd(a0, bb, acc[j][0]);
                    acc[j][1] = _mm256_fmadd_pd(a1, bb, acc[j][1]);
                }
                a = a.add(8);
                b = b.add(4);
            }
            let mut colbuf = [0.0f64; 8 * 4];
            for j in 0..4 {
                _mm256_storeu_pd(colbuf.as_mut_ptr().add(j * 8), acc[j][0]);
                _mm256_storeu_pd(colbuf.as_mut_ptr().add(j * 8 + 4), acc[j][1]);
            }
            apply_cols(&colbuf, 8, c, ldc, rows, cols, sub);
        }
    }

    /// AVX2+FMA f32 8×8 tile: one 8-wide row vector per `k` step, one
    /// broadcast-FMA per column — 8 chains, AVX2 f32 peak.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn avx2_f32_impl(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
        sub: bool,
    ) {
        debug_assert!(ap.len() >= kc * 8 && bp.len() >= kc * 8);
        let mut acc = [_mm256_setzero_ps(); 8];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        // SAFETY: panel lengths checked above; loads stay within them.
        unsafe {
            for _ in 0..kc {
                let av = _mm256_loadu_ps(a);
                for j in 0..8 {
                    let bb = _mm256_set1_ps(*b.add(j));
                    acc[j] = _mm256_fmadd_ps(av, bb, acc[j]);
                }
                a = a.add(8);
                b = b.add(8);
            }
            let mut colbuf = [0.0f32; 8 * 8];
            for j in 0..8 {
                _mm256_storeu_ps(colbuf.as_mut_ptr().add(j * 8), acc[j]);
            }
            apply_cols(&colbuf, 8, c, ldc, rows, cols, sub);
        }
    }

    /// AVX-512F f64 16×8 tile: two 8-wide row vectors per `k` step, one
    /// broadcast plus two FMAs per column — 16 zmm accumulator chains,
    /// enough to cover FMA latency × dual-port throughput.
    #[target_feature(enable = "avx512f")]
    unsafe fn avx512_f64_impl(
        kc: usize,
        ap: &[f64],
        bp: &[f64],
        c: *mut f64,
        ldc: usize,
        rows: usize,
        cols: usize,
        sub: bool,
    ) {
        debug_assert!(ap.len() >= kc * 16 && bp.len() >= kc * 8);
        let mut acc = [[_mm512_setzero_pd(); 2]; 8];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        // SAFETY: panel lengths checked above; loads stay within them.
        unsafe {
            for _ in 0..kc {
                let a0 = _mm512_loadu_pd(a);
                let a1 = _mm512_loadu_pd(a.add(8));
                for j in 0..8 {
                    let bb = _mm512_set1_pd(*b.add(j));
                    acc[j][0] = _mm512_fmadd_pd(a0, bb, acc[j][0]);
                    acc[j][1] = _mm512_fmadd_pd(a1, bb, acc[j][1]);
                }
                a = a.add(16);
                b = b.add(8);
            }
            let mut colbuf = [0.0f64; 16 * 8];
            for j in 0..8 {
                _mm512_storeu_pd(colbuf.as_mut_ptr().add(j * 16), acc[j][0]);
                _mm512_storeu_pd(colbuf.as_mut_ptr().add(j * 16 + 8), acc[j][1]);
            }
            apply_cols(&colbuf, 16, c, ldc, rows, cols, sub);
        }
    }

    /// AVX-512F f32 16×8 tile: one 16-wide row vector per `k` step, one
    /// embedded-broadcast FMA per column — 8 zmm chains, f32 peak.
    #[target_feature(enable = "avx512f")]
    unsafe fn avx512_f32_impl(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: *mut f32,
        ldc: usize,
        rows: usize,
        cols: usize,
        sub: bool,
    ) {
        debug_assert!(ap.len() >= kc * 16 && bp.len() >= kc * 8);
        let mut acc = [_mm512_setzero_ps(); 8];
        let mut a = ap.as_ptr();
        let mut b = bp.as_ptr();
        // SAFETY: panel lengths checked above; loads stay within them.
        unsafe {
            for _ in 0..kc {
                let av = _mm512_loadu_ps(a);
                for j in 0..8 {
                    let bb = _mm512_set1_ps(*b.add(j));
                    acc[j] = _mm512_fmadd_ps(av, bb, acc[j]);
                }
                a = a.add(16);
                b = b.add(8);
            }
            let mut colbuf = [0.0f32; 16 * 8];
            for j in 0..8 {
                _mm512_storeu_ps(colbuf.as_mut_ptr().add(j * 16), acc[j]);
            }
            apply_cols(&colbuf, 16, c, ldc, rows, cols, sub);
        }
    }

    make_driver!(f64, drive_avx2_f64, avx2_f64_impl, 8, 4);
    make_driver!(f32, drive_avx2_f32, avx2_f32_impl, 8, 8);
    make_driver!(f64, drive_avx512_f64, avx512_f64_impl, 16, 8);
    make_driver!(f32, drive_avx512_f32, avx512_f32_impl, 16, 8);

    pub(crate) static AVX2_F64: MicroKernel<f64> =
        MicroKernel { name: "avx2", mr: 8, nr: 4, drive: drive_avx2_f64 };
    pub(crate) static AVX2_F32: MicroKernel<f32> =
        MicroKernel { name: "avx2", mr: 8, nr: 8, drive: drive_avx2_f32 };
    pub(crate) static AVX512_F64: MicroKernel<f64> =
        MicroKernel { name: "avx512", mr: 16, nr: 8, drive: drive_avx512_f64 };
    pub(crate) static AVX512_F32: MicroKernel<f32> =
        MicroKernel { name: "avx512", mr: 16, nr: 8, drive: drive_avx512_f32 };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microkernel::drive;
    use crate::pack::PackedB;
    use crate::verify::{random_matrix_f32, random_matrix_f64};

    #[test]
    fn detection_always_offers_scalar_last() {
        let tiers = detected_tiers();
        assert_eq!(*tiers.last().unwrap(), Tier::Scalar);
        // Widest first.
        let mut sorted = tiers.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(tiers, sorted);
    }

    #[test]
    fn scalar_kernel_is_always_available() {
        assert!(kernel_f64_for(Tier::Scalar).is_some());
        assert!(kernel_f32_for(Tier::Scalar).is_some());
        assert!(active_description().contains(kernel_f64().name));
    }

    /// Every available tier must produce *bitwise* the same result as the
    /// portable scalar kernel — the contract documented in
    /// `crate::microkernel`.
    #[test]
    fn every_tier_is_bitwise_equal_to_scalar_f64() {
        // Odd shape: ragged MR/NR edges and a second KC panel.
        let (rows, k, n) = (29usize, 300usize, 21usize);
        let a = random_matrix_f64(rows.max(k), 1)[..rows * k].to_vec();
        let b = random_matrix_f64(k.max(n), 2)[..k * n].to_vec();
        let c0: Vec<f64> = (0..rows * n).map(|v| (v % 13) as f64 - 6.0).collect();
        let reference = {
            let mk = kernel_f64_for(Tier::Scalar).unwrap();
            let pb = PackedB::pack(&b, n, false, k, n, mk.nr);
            let mut c = c0.clone();
            drive(mk, &a, k, &mut c, n, rows, n, &pb, false);
            c
        };
        for tier in detected_tiers() {
            let Some(mk) = kernel_f64_for(tier) else { continue };
            let pb = PackedB::pack(&b, n, false, k, n, mk.nr);
            let mut c = c0.clone();
            drive(mk, &a, k, &mut c, n, rows, n, &pb, false);
            assert_eq!(c, reference, "tier {} diverged bitwise (f64)", tier.name());
        }
    }

    #[test]
    fn every_tier_is_bitwise_equal_to_scalar_f32() {
        let (rows, k, n) = (19usize, 70usize, 11usize);
        let a = random_matrix_f32(rows.max(k), 3)[..rows * k].to_vec();
        let b = random_matrix_f32(k.max(n), 4)[..k * n].to_vec();
        let c0: Vec<f32> = (0..rows * n).map(|v| (v % 7) as f32 - 3.0).collect();
        let reference = {
            let mk = kernel_f32_for(Tier::Scalar).unwrap();
            let pb = PackedB::pack(&b, n, false, k, n, mk.nr);
            let mut c = c0.clone();
            drive(mk, &a, k, &mut c, n, rows, n, &pb, true);
            c
        };
        for tier in detected_tiers() {
            let Some(mk) = kernel_f32_for(tier) else { continue };
            let pb = PackedB::pack(&b, n, false, k, n, mk.nr);
            let mut c = c0.clone();
            drive(mk, &a, k, &mut c, n, rows, n, &pb, true);
            assert_eq!(c, reference, "tier {} diverged bitwise (f32)", tier.name());
        }
    }
}
