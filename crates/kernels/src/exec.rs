//! Lane executors: how multi-lane kernels obtain their parallelism.
//!
//! Kernels never spawn OS threads themselves. Each parallel kernel splits
//! its work into independent closures ("jobs", typically one per row
//! band) and hands them to a [`LaneExec`]. The trait has three
//! implementations:
//!
//! * [`SerialExec`] — runs jobs inline; what SMP workers use.
//! * [`ScopedExec`] — a `std::thread::scope` per batch; keeps the legacy
//!   `(…, lanes)` kernel signatures working for callers without a pool.
//! * `LanePool` (in `versa-runtime`) — persistent parked lane threads
//!   owned by an emulated-GPU worker; batches reuse the same threads, so
//!   a kernel call costs a wake-up instead of a `thread::spawn`.

/// An executor that runs a batch of independent jobs across lanes.
///
/// # Contract
/// `run_batch` must not return until every job has either run to
/// completion or been dropped — implementations may not let a job outlive
/// the call. This is what makes it sound for callers to pass closures
/// borrowing local state (the `'scope` lifetime below).
pub trait LaneExec: Sync {
    /// Number of lanes jobs may be spread over (≥ 1).
    fn lanes(&self) -> usize;

    /// Run all jobs, returning once every one has finished. If a job
    /// panics, the panic is propagated to the caller (after the batch
    /// has drained, so borrowed state is never left aliased).
    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>);
}

/// Runs every job inline on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExec;

impl LaneExec for SerialExec {
    fn lanes(&self) -> usize {
        1
    }

    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        for job in jobs {
            job();
        }
    }
}

/// Spawns a fresh `std::thread::scope` per batch.
///
/// This is the no-pool fallback, kept for the legacy `(…, lanes)` kernel
/// entry points and for callers outside the native engine. A batch may
/// hold many more jobs than lanes (kernels enqueue `MC`-granular bands so
/// pools can load-balance them), so the scope spawns at most `lanes − 1`
/// threads that drain a shared queue — never one thread per job. The
/// calling thread drains alongside them; panics are captured per job and
/// the first one is re-thrown after the batch is fully drained, so
/// borrowed state is never left aliased.
#[derive(Clone, Copy, Debug)]
pub struct ScopedExec {
    lanes: usize,
}

impl ScopedExec {
    /// Executor claiming `lanes` lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> ScopedExec {
        ScopedExec { lanes: lanes.max(1) }
    }
}

impl LaneExec for ScopedExec {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        use std::collections::VecDeque;
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        use std::sync::Mutex;

        if jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let helpers = (self.lanes - 1).min(jobs.len() - 1);
        let queue: Mutex<VecDeque<Box<dyn FnOnce() + Send + 'scope>>> =
            Mutex::new(jobs.into_iter().collect());
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let drain = |queue: &Mutex<VecDeque<Box<dyn FnOnce() + Send + 'scope>>>| {
            loop {
                let Some(job) = queue.lock().unwrap().pop_front() else { break };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    let mut slot = first_panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..helpers {
                scope.spawn(|| drain(&queue));
            }
            drain(&queue);
        });
        if let Some(payload) = first_panic.into_inner().unwrap() {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sum_with(exec: &dyn LaneExec, jobs: usize) -> usize {
        let hits = AtomicUsize::new(0);
        let batch: Vec<Box<dyn FnOnce() + Send + '_>> = (0..jobs)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(i + 1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run_batch(batch);
        hits.load(Ordering::Relaxed)
    }

    #[test]
    fn serial_runs_everything() {
        assert_eq!(sum_with(&SerialExec, 5), 15);
        assert_eq!(SerialExec.lanes(), 1);
    }

    #[test]
    fn scoped_runs_everything() {
        let exec = ScopedExec::new(4);
        assert_eq!(exec.lanes(), 4);
        assert_eq!(sum_with(&exec, 7), 28);
        assert_eq!(sum_with(&exec, 1), 1);
        assert_eq!(sum_with(&exec, 0), 0);
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        assert_eq!(ScopedExec::new(0).lanes(), 1);
    }

    #[test]
    fn jobs_may_borrow_mutable_disjoint_state() {
        let mut data = vec![0u64; 8];
        let exec = ScopedExec::new(2);
        let (lo, hi) = data.split_at_mut(4);
        exec.run_batch(vec![
            Box::new(move || lo.iter_mut().for_each(|v| *v = 1)),
            Box::new(move || hi.iter_mut().for_each(|v| *v = 2)),
        ]);
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn scoped_never_uses_more_threads_than_lanes() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let exec = ScopedExec::new(3);
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..24)
            .map(|_| {
                let seen = &seen;
                Box::new(move || {
                    seen.lock().unwrap().insert(std::thread::current().id());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run_batch(jobs);
        // 24 jobs over 3 lanes: at most 3 distinct threads ever touch them.
        assert!(seen.lock().unwrap().len() <= 3);
    }

    #[test]
    #[should_panic(expected = "lane job failed")]
    fn scoped_propagates_panics() {
        let exec = ScopedExec::new(2);
        // The first job runs inline on the caller, so its panic payload
        // unwinds through `run_batch` unchanged.
        exec.run_batch(vec![
            Box::new(|| panic!("lane job failed")),
            Box::new(|| {}),
        ]);
    }
}
