//! Lane executors: how multi-lane kernels obtain their parallelism.
//!
//! Kernels never spawn OS threads themselves. Each parallel kernel splits
//! its work into independent closures ("jobs", typically one per row
//! band) and hands them to a [`LaneExec`]. The trait has three
//! implementations:
//!
//! * [`SerialExec`] — runs jobs inline; what SMP workers use.
//! * [`ScopedExec`] — a `std::thread::scope` per batch; keeps the legacy
//!   `(…, lanes)` kernel signatures working for callers without a pool.
//! * `LanePool` (in `versa-runtime`) — persistent parked lane threads
//!   owned by an emulated-GPU worker; batches reuse the same threads, so
//!   a kernel call costs a wake-up instead of a `thread::spawn`.

/// An executor that runs a batch of independent jobs across lanes.
///
/// # Contract
/// `run_batch` must not return until every job has either run to
/// completion or been dropped — implementations may not let a job outlive
/// the call. This is what makes it sound for callers to pass closures
/// borrowing local state (the `'scope` lifetime below).
pub trait LaneExec: Sync {
    /// Number of lanes jobs may be spread over (≥ 1).
    fn lanes(&self) -> usize;

    /// Run all jobs, returning once every one has finished. If a job
    /// panics, the panic is propagated to the caller (after the batch
    /// has drained, so borrowed state is never left aliased).
    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>);
}

/// Runs every job inline on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExec;

impl LaneExec for SerialExec {
    fn lanes(&self) -> usize {
        1
    }

    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        for job in jobs {
            job();
        }
    }
}

/// Spawns a fresh `std::thread::scope` per batch.
///
/// This is the pre-pool behavior, kept for the legacy `(…, lanes)` kernel
/// entry points and for callers outside the native engine. The first job
/// runs on the calling thread; the rest get scoped threads.
#[derive(Clone, Copy, Debug)]
pub struct ScopedExec {
    lanes: usize,
}

impl ScopedExec {
    /// Executor claiming `lanes` lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> ScopedExec {
        ScopedExec { lanes: lanes.max(1) }
    }
}

impl LaneExec for ScopedExec {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn run_batch<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut jobs = jobs.into_iter();
            let first = jobs.next().expect("len checked above");
            for job in jobs {
                scope.spawn(job);
            }
            first();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sum_with(exec: &dyn LaneExec, jobs: usize) -> usize {
        let hits = AtomicUsize::new(0);
        let batch: Vec<Box<dyn FnOnce() + Send + '_>> = (0..jobs)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(i + 1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        exec.run_batch(batch);
        hits.load(Ordering::Relaxed)
    }

    #[test]
    fn serial_runs_everything() {
        assert_eq!(sum_with(&SerialExec, 5), 15);
        assert_eq!(SerialExec.lanes(), 1);
    }

    #[test]
    fn scoped_runs_everything() {
        let exec = ScopedExec::new(4);
        assert_eq!(exec.lanes(), 4);
        assert_eq!(sum_with(&exec, 7), 28);
        assert_eq!(sum_with(&exec, 1), 1);
        assert_eq!(sum_with(&exec, 0), 0);
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        assert_eq!(ScopedExec::new(0).lanes(), 1);
    }

    #[test]
    fn jobs_may_borrow_mutable_disjoint_state() {
        let mut data = vec![0u64; 8];
        let exec = ScopedExec::new(2);
        let (lo, hi) = data.split_at_mut(4);
        exec.run_batch(vec![
            Box::new(move || lo.iter_mut().for_each(|v| *v = 1)),
            Box::new(move || hi.iter_mut().for_each(|v| *v = 2)),
        ]);
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "lane job failed")]
    fn scoped_propagates_panics() {
        let exec = ScopedExec::new(2);
        // The first job runs inline on the caller, so its panic payload
        // unwinds through `run_batch` unchanged.
        exec.run_batch(vec![
            Box::new(|| panic!("lane job failed")),
            Box::new(|| {}),
        ]);
    }
}
