//! Register-blocked GEMM micro-kernels and the packed block driver.
//!
//! The micro-kernel computes one `MR × NR` tile of `C` as a sum over the
//! packed k-major micro-panels produced by [`crate::pack`]: per `k` step
//! it reads one `MR`-vector of `A` and one `NR`-vector of `B` and updates
//! an `MR × NR` accumulator held in local arrays. The tile shapes —
//! 8×4 for `f64`, 8×8 for `f32` — are chosen so the accumulator fits the
//! vector register file, and the loops are written over fixed-size
//! `chunks_exact` slices so LLVM auto-vectorizes them without any
//! `unsafe` or intrinsics (`.cargo/config.toml` builds with
//! `target-cpu=native` to give it the wide units). `mul_add` maps to a
//! hardware FMA on every target this repo builds for.
//!
//! The [`packed drivers`](self) then walk the BLIS loop nest around the
//! micro-kernel: `KC`-deep panels outermost, `MC`-tall packed blocks of
//! `A`, then `NR`-wide micro-panels of `B` and `MR`-tall micro-panels of
//! `A` innermost. The accumulation order over `k` for a given `(i, j)` is
//! identical regardless of how callers band rows across lanes, so serial
//! and parallel packed GEMMs agree bitwise.

use crate::pack::{pack_a, PackedB, KC, MC};

/// Micro-tile height (`f64`).
pub(crate) const MR_F64: usize = 8;
/// Micro-tile width (`f64`).
pub(crate) const NR_F64: usize = 4;
/// Micro-tile height (`f32`).
pub(crate) const MR_F32: usize = 8;
/// Micro-tile width (`f32`).
pub(crate) const NR_F32: usize = 8;

macro_rules! microkernel_impls {
    ($t:ty, $micro:ident, $drive:ident, $mr:expr, $nr:expr) => {
        /// `acc[r][c] += Σ_p ap[p·MR + r] · bp[p·NR + c]` over `kc` steps.
        #[inline]
        fn $micro(kc: usize, ap: &[$t], bp: &[$t], acc: &mut [[$t; $nr]; $mr]) {
            for (av, bv) in ap.chunks_exact($mr).zip(bp.chunks_exact($nr)).take(kc) {
                for r in 0..$mr {
                    let ar = av[r];
                    for c in 0..$nr {
                        acc[r][c] = ar.mul_add(bv[c], acc[r][c]);
                    }
                }
            }
        }

        /// Packed-block driver: `C[rows × ncols] ±= A[rows × k] · B`,
        /// where `B` is prepacked (`pb`, logical `k × ≥ncols`), `a` is
        /// row-major with row stride `lda` and `c` row-major with row
        /// stride `ldc`. `sub` selects `-=` (the Cholesky NT update)
        /// instead of `+=`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $drive(
            a: &[$t],
            lda: usize,
            c: &mut [$t],
            ldc: usize,
            rows: usize,
            ncols: usize,
            pb: &PackedB<$t>,
            sub: bool,
        ) {
            debug_assert_eq!(pb.nr, $nr);
            debug_assert!(ncols <= pb.n_round);
            let k = pb.k;
            let mut apack = vec![0.0 as $t; MC * KC];
            let mut p0 = 0;
            while p0 < k {
                let kc = KC.min(k - p0);
                let panel = pb.panel(p0, kc);
                let mut i0 = 0;
                while i0 < rows {
                    let mc = MC.min(rows - i0);
                    let mc_round = mc.next_multiple_of($mr);
                    pack_a(a, lda, i0, mc, p0, kc, $mr, &mut apack[..mc_round * kc]);
                    let mut jr = 0;
                    while jr < ncols {
                        let cols = $nr.min(ncols - jr);
                        let bmicro = &panel[(jr / $nr) * (kc * $nr)..][..kc * $nr];
                        let mut ir = 0;
                        while ir < mc {
                            let rrows = $mr.min(mc - ir);
                            let amicro = &apack[(ir / $mr) * (kc * $mr)..][..kc * $mr];
                            let mut acc = [[0.0 as $t; $nr]; $mr];
                            $micro(kc, amicro, bmicro, &mut acc);
                            for r in 0..rrows {
                                let crow = &mut c[(i0 + ir + r) * ldc + jr..][..cols];
                                if sub {
                                    for (dst, v) in crow.iter_mut().zip(&acc[r]) {
                                        *dst -= v;
                                    }
                                } else {
                                    for (dst, v) in crow.iter_mut().zip(&acc[r]) {
                                        *dst += v;
                                    }
                                }
                            }
                            ir += $mr;
                        }
                        jr += $nr;
                    }
                    i0 += MC;
                }
                p0 += KC;
            }
        }
    };
}

microkernel_impls!(f64, micro_f64, drive_f64, MR_F64, NR_F64);
microkernel_impls!(f32, micro_f32, drive_f32, MR_F32, NR_F32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_matches_triple_loop_on_odd_shapes() {
        // rows=13, k=KC+3, ncols=6: exercises ragged MR/NR/KC edges.
        let (rows, k, n) = (13usize, KC + 3, 6usize);
        let a: Vec<f64> = (0..rows * k).map(|v| ((v * 31 % 17) as f64) - 8.0).collect();
        let b: Vec<f64> = (0..k * n).map(|v| ((v * 13 % 11) as f64) - 5.0).collect();
        let pb = PackedB::pack(&b, n, false, k, n, NR_F64);
        let mut c = vec![1.0; rows * n];
        drive_f64(&a, k, &mut c, n, rows, n, &pb, false);
        for i in 0..rows {
            for j in 0..n {
                let mut expect = 1.0;
                for p in 0..k {
                    expect += a[i * k + p] * b[p * n + j];
                }
                let got = c[i * n + j];
                assert!(
                    (got - expect).abs() < 1e-9 * expect.abs().max(1.0),
                    "({i},{j}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn sub_mode_subtracts() {
        let (rows, k, n) = (3usize, 4usize, 3usize);
        let a = vec![1.0f32; rows * k];
        let b = vec![2.0f32; k * n];
        let pb = PackedB::pack(&b, n, false, k, n, NR_F32);
        let mut c = vec![10.0f32; rows * n];
        drive_f32(&a, k, &mut c, n, rows, n, &pb, true);
        assert!(c.iter().all(|&v| v == 10.0 - 8.0));
    }
}
