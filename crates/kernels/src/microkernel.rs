//! Register-blocked GEMM micro-kernels and the packed block driver.
//!
//! A micro-kernel computes one `mr × nr` tile of `C` as a sum over the
//! packed k-major micro-panels produced by [`crate::pack`]: per `k` step
//! it reads one `mr`-vector of `A` and one `nr`-vector of `B` and updates
//! an `mr × nr` accumulator held in registers. Several micro-kernels
//! exist — the portable scalar tiles below plus the explicit AVX2/AVX-512
//! tiles in [`crate::simd`] — and each is wrapped by [`make_driver!`]
//! into a **monomorphized driver**: the full BLIS loop nest (`KC`-deep
//! panels outermost, `MC`-tall packed blocks of `A`, then `nr`-wide
//! micro-panels of `B` and `mr`-tall micro-panels of `A` innermost) with
//! a *direct* call to its micro-kernel, so the hot tile loop inlines.
//! Dispatch (see [`crate::simd`]) is a single cached function pointer at
//! the whole-driver level — paid once per GEMM band, not once per
//! micro-tile, which measurably matters for the scalar tier.
//!
//! # The bitwise contract
//!
//! Every micro-kernel — scalar or SIMD, whatever its `mr × nr` shape —
//! accumulates each `C[i][j]` element as a chain of *fused* multiply-adds
//! in ascending `k` order (`KC`-panel split first, then `k` within the
//! panel), and applies the finished accumulator to `C` with a single
//! `±`. Tile shape only changes *which* elements share a register tile,
//! never the per-element operation sequence, so **all micro-kernels
//! produce bitwise-identical results** — and so does any row banding a
//! parallel caller applies on top. The scalar tiles are the portable
//! fallback and are preserved exactly as the pre-SIMD tier.

use crate::pack::{PackedB, MC};

/// Micro-tile height of the portable scalar `f64` kernel.
pub(crate) const MR_F64: usize = 8;
/// Micro-tile width of the portable scalar `f64` kernel.
pub(crate) const NR_F64: usize = 4;
/// Micro-tile height of the portable scalar `f32` kernel.
pub(crate) const MR_F32: usize = 8;
/// Micro-tile width of the portable scalar `f32` kernel.
pub(crate) const NR_F32: usize = 8;

/// A monomorphized packed-block driver produced by [`make_driver!`]:
/// `C[rows × ncols] ±= A[rows × k] · B` with `B` prepacked for the
/// driver's micro-tile width.
///
/// # Safety
/// `pb` must have been packed with the driver's `nr`; `a` must hold
/// `rows × pb.k` at row stride `lda` and `c` must hold `rows × ncols` at
/// row stride `ldc` (the shared [`drive`] wrapper asserts both). SIMD
/// drivers additionally require the CPU features their micro-kernel was
/// compiled for — guaranteed by [`crate::simd`]'s dispatch, which only
/// hands out a kernel after `is_x86_feature_detected!` confirms them.
pub(crate) type DriveFn<T> = unsafe fn(
    a: &[T],
    lda: usize,
    c: &mut [T],
    ldc: usize,
    rows: usize,
    ncols: usize,
    pb: &PackedB<T>,
    sub: bool,
);

/// A micro-kernel implementation: its tile shape and monomorphized driver.
///
/// The packing layer uses `mr`/`nr` to shape the micro-panels, so a
/// [`PackedB`] is only valid for drivers using the same `nr`.
pub(crate) struct MicroKernel<T: 'static> {
    /// Dispatch-tier name (`"scalar"`, `"avx2"`, `"avx512"`).
    pub name: &'static str,
    /// Micro-tile height (rows of `A` per register tile).
    pub mr: usize,
    /// Micro-tile width (columns of `B` per register tile).
    pub nr: usize,
    /// The full loop nest around this micro-kernel; see [`DriveFn`].
    pub drive: DriveFn<T>,
}

/// Generate the BLIS loop-nest driver for one micro-kernel.
///
/// `$micro` is an `unsafe fn(kc, ap, bp, c, ldc, rows, cols, sub)` that
/// accumulates `kc` steps of the packed micro-panels `ap` (`kc × mr`,
/// k-major) and `bp` (`kc × nr`, k-major) and applies the `rows × cols`
/// corner of the accumulator to `c` (row stride `ldc`), adding or
/// subtracting per `sub`. The call is direct, so a plain-Rust micro
/// kernel inlines into the nest.
macro_rules! make_driver {
    ($t:ty, $name:ident, $micro:path, $mr:expr, $nr:expr) => {
        /// See `DriveFn` for the contract; shape is
        #[doc = concat!("`", stringify!($mr), "×", stringify!($nr), "` `", stringify!($t), "`.")]
        #[allow(clippy::too_many_arguments)]
        pub(crate) unsafe fn $name(
            a: &[$t],
            lda: usize,
            c: &mut [$t],
            ldc: usize,
            rows: usize,
            ncols: usize,
            pb: &$crate::pack::PackedB<$t>,
            sub: bool,
        ) {
            const MR: usize = $mr;
            const NR: usize = $nr;
            debug_assert_eq!(pb.nr, NR, "PackedB packed for a different micro-kernel shape");
            let k = pb.k;
            // Size the A-pack buffer to the actual block extent so small
            // tiles don't pay an MC × KC zero-fill per call.
            let apack_rows = $crate::pack::MC.min(rows.next_multiple_of(MR));
            let mut apack = vec![0.0 as $t; apack_rows * $crate::pack::KC.min(k.max(1))];
            let mut p0 = 0;
            while p0 < k {
                let kc = $crate::pack::KC.min(k - p0);
                let panel = pb.panel(p0, kc);
                let mut i0 = 0;
                while i0 < rows {
                    let mc = $crate::pack::MC.min(rows - i0);
                    let mc_round = mc.next_multiple_of(MR);
                    $crate::pack::pack_a(a, lda, i0, mc, p0, kc, MR, &mut apack[..mc_round * kc]);
                    let mut jr = 0;
                    while jr < ncols {
                        let cols = NR.min(ncols - jr);
                        let bmicro = &panel[(jr / NR) * (kc * NR)..][..kc * NR];
                        let mut ir = 0;
                        while ir < mc {
                            let rrows = MR.min(mc - ir);
                            let amicro = &apack[(ir / MR) * (kc * MR)..][..kc * MR];
                            // SAFETY: the micro-kernel writes only the
                            // rrows × cols corner at this offset with row
                            // stride ldc, which `drive`'s length asserts
                            // keep inside `c`; the packed panels hold kc
                            // full micro-panels; and any CPU features the
                            // micro-kernel needs are this driver's own
                            // safety precondition (see `DriveFn`).
                            unsafe {
                                $micro(
                                    kc,
                                    amicro,
                                    bmicro,
                                    c.as_mut_ptr().add((i0 + ir) * ldc + jr),
                                    ldc,
                                    rrows,
                                    cols,
                                    sub,
                                );
                            }
                            ir += MR;
                        }
                        jr += NR;
                    }
                    i0 += $crate::pack::MC;
                }
                p0 += $crate::pack::KC;
            }
        }
    };
}
pub(crate) use make_driver;

macro_rules! scalar_micro {
    ($t:ty, $micro:ident, $mr:expr, $nr:expr) => {
        /// Portable micro-tile: `acc[r][c] += Σ_p ap[p·mr + r] · bp[p·nr + c]`
        /// over `kc` steps, then `C ±= acc` on the live corner. `mul_add`
        /// is a fused multiply-add on every target this repo builds for,
        /// which is what keeps scalar and SIMD tiers bitwise identical.
        /// `#[inline]` so the driver's direct call folds it into the nest
        /// and LLVM auto-vectorizes the fixed-shape loops.
        // The 8-argument signature is the shared micro-kernel ABI every
        // tier implements; bundling it into a struct would cost the hot
        // path for style.
        #[allow(clippy::too_many_arguments)]
        #[inline]
        unsafe fn $micro(
            kc: usize,
            ap: &[$t],
            bp: &[$t],
            c: *mut $t,
            ldc: usize,
            rows: usize,
            cols: usize,
            sub: bool,
        ) {
            let mut acc = [[0.0 as $t; $nr]; $mr];
            for (av, bv) in ap.chunks_exact($mr).zip(bp.chunks_exact($nr)).take(kc) {
                for r in 0..$mr {
                    let ar = av[r];
                    for j in 0..$nr {
                        acc[r][j] = ar.mul_add(bv[j], acc[r][j]);
                    }
                }
            }
            for r in 0..rows {
                // SAFETY: the caller guarantees the rows × cols corner at
                // `c` with row stride `ldc` is writable.
                let crow = unsafe { std::slice::from_raw_parts_mut(c.add(r * ldc), cols) };
                if sub {
                    for (dst, v) in crow.iter_mut().zip(&acc[r]) {
                        *dst -= *v;
                    }
                } else {
                    for (dst, v) in crow.iter_mut().zip(&acc[r]) {
                        *dst += *v;
                    }
                }
            }
        }
    };
}

scalar_micro!(f64, micro_scalar_f64, MR_F64, NR_F64);
scalar_micro!(f32, micro_scalar_f32, MR_F32, NR_F32);
make_driver!(f64, drive_scalar_f64, micro_scalar_f64, 8, 4);
make_driver!(f32, drive_scalar_f32, micro_scalar_f32, 8, 8);

/// The portable scalar `f64` kernel — the pre-SIMD packed tier, kept
/// bit-for-bit as the fallback and as its own task version.
pub(crate) static SCALAR_F64: MicroKernel<f64> =
    MicroKernel { name: "scalar", mr: MR_F64, nr: NR_F64, drive: drive_scalar_f64 };

/// The portable scalar `f32` kernel.
pub(crate) static SCALAR_F32: MicroKernel<f32> =
    MicroKernel { name: "scalar", mr: MR_F32, nr: NR_F32, drive: drive_scalar_f32 };

/// Packed-block driver entry point: `C[rows × ncols] ±= A[rows × k] · B`,
/// where `B` is prepacked (`pb`, logical `k × ≥ncols`, packed with `mk`'s
/// `nr`), `a` is row-major with row stride `lda` and `c` row-major with
/// row stride `ldc`. `sub` selects `-=` (the Cholesky NT update) instead
/// of `+=`. Asserts the slice geometry, then runs `mk`'s monomorphized
/// loop nest.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive<T>(
    mk: &MicroKernel<T>,
    a: &[T],
    lda: usize,
    c: &mut [T],
    ldc: usize,
    rows: usize,
    ncols: usize,
    pb: &PackedB<T>,
    sub: bool,
) {
    assert_eq!(pb.nr, mk.nr, "PackedB was packed for a different micro-kernel shape");
    assert!(ncols <= pb.n_round);
    if rows > 0 && ncols > 0 {
        assert!(c.len() >= (rows - 1) * ldc + ncols, "C too short for rows × ncols at ldc");
        assert!(a.len() >= (rows - 1) * lda + pb.k, "A too short for rows × k at lda");
    }
    // SAFETY: geometry asserted above; `mk` is either a scalar kernel
    // (no CPU requirements) or was handed out by `crate::simd` only
    // after feature detection confirmed its requirements.
    unsafe { (mk.drive)(a, lda, c, ldc, rows, ncols, pb, sub) }
}

/// Row bands for parallelizing the `MC` loop of a packed GEMM across
/// lanes. When there is enough work, every band is exactly one `MC`
/// row-block, so a lane pool's queue load-balances the `MC` loop
/// dynamically (more bands than lanes); otherwise rows are split
/// lanes-ways rounded up to the micro-tile height so no band creates a
/// padded micro-panel in the middle of the matrix.
pub(crate) fn par_bands(
    n: usize,
    lanes: usize,
    granule: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> {
    let lanes = lanes.max(1);
    let granule = granule.max(1);
    let per = if n >= lanes * MC { MC } else { n.div_ceil(lanes).next_multiple_of(granule) };
    let per = per.max(granule);
    (0..n).step_by(per).map(move |s| s..(s + per).min(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::KC;

    #[test]
    fn driver_matches_triple_loop_on_odd_shapes() {
        // rows=13, k=KC+3, ncols=6: exercises ragged MR/NR/KC edges.
        let (rows, k, n) = (13usize, KC + 3, 6usize);
        let a: Vec<f64> = (0..rows * k).map(|v| ((v * 31 % 17) as f64) - 8.0).collect();
        let b: Vec<f64> = (0..k * n).map(|v| ((v * 13 % 11) as f64) - 5.0).collect();
        let pb = PackedB::pack(&b, n, false, k, n, NR_F64);
        let mut c = vec![1.0; rows * n];
        drive(&SCALAR_F64, &a, k, &mut c, n, rows, n, &pb, false);
        for i in 0..rows {
            for j in 0..n {
                let mut expect = 1.0;
                for p in 0..k {
                    expect += a[i * k + p] * b[p * n + j];
                }
                let got = c[i * n + j];
                assert!(
                    (got - expect).abs() < 1e-9 * expect.abs().max(1.0),
                    "({i},{j}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn sub_mode_subtracts() {
        let (rows, k, n) = (3usize, 4usize, 3usize);
        let a = vec![1.0f32; rows * k];
        let b = vec![2.0f32; k * n];
        let pb = PackedB::pack(&b, n, false, k, n, NR_F32);
        let mut c = vec![10.0f32; rows * n];
        drive(&SCALAR_F32, &a, k, &mut c, n, rows, n, &pb, true);
        assert!(c.iter().all(|&v| v == 10.0 - 8.0));
    }

    #[test]
    #[should_panic(expected = "different micro-kernel shape")]
    fn mismatched_packing_is_rejected() {
        // Packed with nr=8, driven by the nr=4 scalar f64 kernel.
        let b = vec![0.0f64; 16];
        let pb = PackedB::pack(&b, 4, false, 4, 4, 8);
        let mut c = vec![0.0f64; 16];
        drive(&SCALAR_F64, &[0.0; 16], 4, &mut c, 4, 4, 4, &pb, false);
    }

    #[test]
    fn par_bands_cover_rows_exactly_once() {
        for n in [0usize, 7, 64, 127, 128, 300, 1024, 1025] {
            for lanes in [1usize, 2, 4, 8] {
                let mut next = 0;
                for band in par_bands(n, lanes, 8) {
                    assert_eq!(band.start, next);
                    assert!(!band.is_empty());
                    next = band.end;
                }
                assert_eq!(next, n, "gap for n={n} lanes={lanes}");
            }
        }
    }

    #[test]
    fn par_bands_are_mc_blocks_when_work_is_plentiful() {
        let bands: Vec<_> = par_bands(1024, 4, 8).collect();
        assert_eq!(bands.len(), 1024 / MC);
        assert!(bands.iter().all(|b| b.len() == MC));
    }

    #[test]
    fn par_bands_split_small_problems_lanes_ways_on_granule() {
        let bands: Vec<_> = par_bands(256, 4, 8).collect();
        assert_eq!(bands.len(), 4);
        assert!(bands.iter().all(|b| b.len() == 64));
        // Non-multiple sizes round the band to the granule.
        let bands: Vec<_> = par_bands(150, 4, 8).collect();
        assert!(bands.iter().all(|b| b.len().is_multiple_of(8) || b.end == 150));
    }
}
