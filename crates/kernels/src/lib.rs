//! # versa-kernels — pure-Rust computational kernels
//!
//! The kernels behind the paper's three applications, implemented from
//! scratch so the native engine executes real work:
//!
//! * [`gemm`] — dense matrix multiply (`C += A·B`) in naive, cache-blocked
//!   and multi-lane parallel variants, `f32` and `f64`. The variants play
//!   the roles of the paper's CBLAS / hand-coded CUDA / CUBLAS versions:
//!   only their *relative speeds* matter to the scheduler.
//! * [`potrf`], [`trsm`], [`syrk`] — the four building blocks of the tiled
//!   right-looking Cholesky factorization (paper §V-B2).
//! * [`pbpi`] — the three computational loops of the PBPI Bayesian
//!   phylogenetic inference application (paper §V-B3): per-site partial
//!   likelihood propagation, partial combination, and the log-likelihood
//!   reduction.
//! * [`verify`] — reference implementations, matrix generators and
//!   comparison helpers used by the test suite.
//!
//! All matrices are dense, square, **row-major** tiles of dimension `n`.

#![warn(missing_docs)]

pub mod exec;
pub mod gemm;
pub(crate) mod microkernel;
pub(crate) mod pack;
pub mod pbpi;
pub mod potrf;
pub mod simd;
pub mod syrk;
pub mod trsm;
pub mod verify;

/// Split `0..n` into at most `lanes` contiguous chunks, one per lane of a
/// parallel kernel. Every element is covered exactly once, empty chunks
/// are skipped, and `lanes == 0` is treated as 1, so the result is never
/// empty for `n > 0` and chunk sizes differ by at most one.
pub fn chunk_ranges(n: usize, lanes: usize) -> Vec<std::ops::Range<usize>> {
    let lanes = lanes.max(1).min(n.max(1));
    let base = n / lanes;
    let extra = n % lanes;
    let mut out = Vec::with_capacity(lanes);
    let mut start = 0;
    for i in 0..lanes {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for lanes in [1usize, 2, 3, 4, 7, 200] {
                let ranges = chunk_ranges(n, lanes);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "index {i} covered twice (n={n}, lanes={lanes})");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap in coverage (n={n}, lanes={lanes})");
                assert!(ranges.len() <= lanes.max(1));
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let ranges = chunk_ranges(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn more_lanes_than_elements_yields_singletons() {
        let ranges = chunk_ranges(3, 8);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_lanes_behaves_like_one() {
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
        assert_eq!(chunk_ranges(0, 0), Vec::<std::ops::Range<usize>>::new());
    }

    #[test]
    fn exact_partition_when_lanes_divide_n() {
        let ranges = chunk_ranges(12, 4);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..12]);
    }
}
