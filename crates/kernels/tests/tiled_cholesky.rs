//! Cross-kernel integration: composing `potrf` + `trsm` + `syrk` +
//! `gemm_nt` tile-by-tile must equal the full-matrix factorization —
//! the numerical foundation the Cholesky application rests on.

use proptest::prelude::*;
use versa_kernels::verify::{assert_close_f64, max_abs_diff_f64, spd_matrix_f64};
use versa_kernels::{gemm, potrf, syrk, trsm};

/// Right-looking tiled Cholesky over `nb × nb` tiles of `bs × bs`.
fn tiled_cholesky(full: &[f64], n: usize, bs: usize) -> Vec<f64> {
    assert_eq!(n % bs, 0);
    let nb = n / bs;
    // Cut into tiles.
    let mut tiles: Vec<Vec<f64>> = (0..nb * nb)
        .map(|idx| {
            let (ti, tj) = (idx / nb, idx % nb);
            let mut t = vec![0.0; bs * bs];
            for r in 0..bs {
                let src = (ti * bs + r) * n + tj * bs;
                t[r * bs..r * bs + bs].copy_from_slice(&full[src..src + bs]);
            }
            t
        })
        .collect();

    for k in 0..nb {
        {
            let t = &mut tiles[k * nb + k];
            potrf::dpotrf(t, bs).expect("diagonal tile must stay positive definite");
        }
        for i in (k + 1)..nb {
            let l = tiles[k * nb + k].clone();
            trsm::dtrsm_right_lower_trans(&l, &mut tiles[i * nb + k], bs);
        }
        for i in (k + 1)..nb {
            let a = tiles[i * nb + k].clone();
            syrk::dsyrk_lower(&a, &mut tiles[i * nb + i], bs);
            for j in (k + 1)..i {
                let b = tiles[j * nb + k].clone();
                gemm::dgemm_nt_sub(&a, &b, &mut tiles[i * nb + j], bs);
            }
        }
    }

    // Reassemble the lower triangle.
    let mut l = vec![0.0; n * n];
    for ti in 0..nb {
        for tj in 0..=ti {
            let t = &tiles[ti * nb + tj];
            for r in 0..bs {
                for c in 0..bs {
                    let (gi, gj) = (ti * bs + r, tj * bs + c);
                    if gj <= gi {
                        l[gi * n + gj] = t[r * bs + c];
                    }
                }
            }
        }
    }
    l
}

fn full_cholesky(full: &[f64], n: usize) -> Vec<f64> {
    let mut l = full.to_vec();
    potrf::dpotrf(&mut l, n).expect("SPD input");
    // Keep only the lower triangle (dpotrf already zeroes the upper).
    l
}

#[test]
fn tiled_equals_full_factorization() {
    for (n, bs) in [(8usize, 2usize), (16, 4), (32, 8), (48, 16), (64, 16)] {
        let a = spd_matrix_f64(n, 1000 + n as u64);
        let tiled = tiled_cholesky(&a, n, bs);
        let full = full_cholesky(&a, n);
        let err = max_abs_diff_f64(&tiled, &full);
        assert!(err < 1e-8, "n={n} bs={bs}: tiled vs full deviates by {err}");
    }
}

#[test]
fn tiled_factor_reconstructs_the_input() {
    let (n, bs) = (32, 8);
    let a = spd_matrix_f64(n, 7);
    let l = tiled_cholesky(&a, n, bs);
    let mut recon = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            for k in 0..=i.min(j) {
                recon[i * n + j] += l[i * n + k] * l[j * n + k];
            }
        }
    }
    assert_close_f64(&recon, &a, 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    #[test]
    fn tiled_cholesky_property(seed in 0u64..10_000, nb in 1usize..5) {
        let bs = 4;
        let n = nb * bs;
        let a = spd_matrix_f64(n, seed);
        let tiled = tiled_cholesky(&a, n, bs);
        let full = full_cholesky(&a, n);
        prop_assert!(max_abs_diff_f64(&tiled, &full) < 1e-8);
    }

    #[test]
    fn gemm_variants_agree(seed in 0u64..10_000, n in 1usize..40) {
        use versa_kernels::verify::random_matrix_f64;
        let a = random_matrix_f64(n, seed);
        let b = random_matrix_f64(n, seed + 1);
        let c0 = random_matrix_f64(n, seed + 2);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        let mut c3 = c0.clone();
        gemm::dgemm_naive(&a, &b, &mut c1, n);
        gemm::dgemm_blocked(&a, &b, &mut c2, n);
        gemm::dgemm_parallel(&a, &b, &mut c3, n, 3);
        prop_assert!(max_abs_diff_f64(&c1, &c2) < 1e-10);
        prop_assert!(max_abs_diff_f64(&c1, &c3) < 1e-10);
    }

    #[test]
    fn trsm_inverts_what_gemm_applies(seed in 0u64..10_000, n in 1usize..24) {
        use versa_kernels::verify::random_matrix_f64;
        // X := A · L^{-T}; then X · L^T must give back A.
        let mut l = spd_matrix_f64(n, seed);
        potrf::dpotrf(&mut l, n).unwrap();
        let a = random_matrix_f64(n, seed + 9);
        let mut x = a.clone();
        trsm::dtrsm_right_lower_trans(&l, &mut x, n);
        // recon = X · L^T  (i.e. recon[i][j] = Σ_k x[i][k] · l[j][k]).
        let mut recon = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    recon[i * n + j] += x[i * n + k] * l[j * n + k];
                }
            }
        }
        prop_assert!(max_abs_diff_f64(&recon, &a) < 1e-7);
    }
}
