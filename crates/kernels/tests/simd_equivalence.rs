//! Property tests pinning the SIMD micro-kernel tiers to the naive
//! reference and to each other.
//!
//! Two layers of guarantee:
//!
//! * **Numerical** — every *detected* tier (scalar, avx2, avx512) agrees
//!   with `dgemm_naive`/`sgemm_naive` within floating-point tolerance on
//!   adversarially-shaped problems.
//! * **Bitwise** — every detected tier produces *bit-identical* output
//!   to the forced-scalar packed core, and the multi-lane driver is
//!   bit-identical at any lane count. All micro-kernels accumulate each
//!   element as fused multiply-adds in ascending-k order, so tier choice
//!   and row banding must never change a single bit.
//!
//! Sizes straddle every blocking boundary of the widest tile (the 16×8
//! avx512 f64 kernel) plus `MC = 128` / `KC = 256`. The whole file also
//! runs in CI under `VERSA_SIMD=scalar`, which exercises the same
//! properties with dispatch pinned to the portable fallback.

use proptest::prelude::*;
use versa_kernels::gemm::{
    dgemm_blocked, dgemm_naive, dgemm_packed, dgemm_packed_scalar, dgemm_packed_tier,
    dgemm_parallel, sgemm_naive, sgemm_packed, sgemm_packed_scalar, sgemm_packed_tier,
};
use versa_kernels::simd::{self, Tier};
use versa_kernels::verify::{random_matrix_f32, random_matrix_f64};

/// Sizes around the micro-tile edges (8, 16), the dispatch threshold
/// (16), MC (128) and KC (256), each ±1, plus a uniform small range.
fn adversarial_n() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(7usize),
        Just(8usize),
        Just(9usize),
        Just(15usize),
        Just(16usize),
        Just(17usize),
        Just(31usize),
        Just(33usize),
        Just(127usize),
        Just(128usize),
        Just(129usize),
        Just(255usize),
        Just(257usize),
        (1usize..48).prop_map(|v| v),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    // Every detected tier matches the naive triple loop numerically.
    #[test]
    fn every_tier_matches_naive_f64(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f64(n, seed);
        let b = random_matrix_f64(n, seed.wrapping_add(1));
        let mut want = random_matrix_f64(n, seed.wrapping_add(2));
        let c0 = want.clone();
        dgemm_naive(&a, &b, &mut want, n);
        for tier in simd::detected_tiers() {
            let mut got = c0.clone();
            prop_assert!(dgemm_packed_tier(tier, &a, &b, &mut got, n));
            for i in 0..n * n {
                let tol = 1e-11 * want[i].abs().max(1.0);
                prop_assert!(
                    (want[i] - got[i]).abs() <= tol,
                    "tier {:?} n={} elem {}: naive {} vs tier {}",
                    tier, n, i, want[i], got[i]
                );
            }
        }
    }

    // Every detected tier matches the naive triple loop numerically (f32).
    #[test]
    fn every_tier_matches_naive_f32(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f32(n, seed);
        let b = random_matrix_f32(n, seed.wrapping_add(1));
        let mut want = vec![0.25f32; n * n];
        let c0 = want.clone();
        sgemm_naive(&a, &b, &mut want, n);
        for tier in simd::detected_tiers() {
            let mut got = c0.clone();
            prop_assert!(sgemm_packed_tier(tier, &a, &b, &mut got, n));
            for i in 0..n * n {
                let tol = 5e-3 * want[i].abs().max(1.0);
                prop_assert!(
                    (want[i] - got[i]).abs() <= tol,
                    "tier {:?} n={} elem {}: naive {} vs tier {}",
                    tier, n, i, want[i], got[i]
                );
            }
        }
    }

    // The bitwise contract: every detected SIMD tier is bit-identical
    // to the forced-scalar packed core on every shape.
    #[test]
    fn tiers_are_bitwise_identical_f64(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f64(n, seed);
        let b = random_matrix_f64(n, seed.wrapping_add(1));
        let c0 = random_matrix_f64(n, seed.wrapping_add(2));
        let mut scalar = c0.clone();
        dgemm_packed_scalar(&a, &b, &mut scalar, n);
        for tier in simd::detected_tiers() {
            let mut got = c0.clone();
            prop_assert!(dgemm_packed_tier(tier, &a, &b, &mut got, n));
            prop_assert_eq!(&scalar, &got, "tier {:?} diverged bitwise at n={}", tier, n);
        }
        // The dispatched entry point (whatever tier is active, including
        // env-pinned runs) honours the same contract.
        let mut dispatched = c0.clone();
        dgemm_packed(&a, &b, &mut dispatched, n);
        prop_assert_eq!(&scalar, &dispatched);
    }

    // The bitwise contract for f32 tiers and the dispatched entry.
    #[test]
    fn tiers_are_bitwise_identical_f32(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f32(n, seed);
        let b = random_matrix_f32(n, seed.wrapping_add(1));
        let c0 = random_matrix_f32(n, seed.wrapping_add(2));
        let mut scalar = c0.clone();
        sgemm_packed_scalar(&a, &b, &mut scalar, n);
        for tier in simd::detected_tiers() {
            let mut got = c0.clone();
            prop_assert!(sgemm_packed_tier(tier, &a, &b, &mut got, n));
            prop_assert_eq!(&scalar, &got, "tier {:?} diverged bitwise at n={}", tier, n);
        }
        let mut dispatched = c0.clone();
        sgemm_packed(&a, &b, &mut dispatched, n);
        prop_assert_eq!(&scalar, &dispatched);
    }

    // Lane banding never changes a bit, at any lane count — including
    // lane counts that exceed the row count. The reference is the
    // serial single-core dispatch (`dgemm_blocked`), which the parallel
    // entry must match at *every* size: below the banding threshold it
    // takes the identical serial path, above it the bands must
    // reproduce the serial accumulation order exactly.
    #[test]
    fn parallel_is_bitwise_identical_at_any_lane_count(
        n in prop_oneof![Just(17usize), Just(129usize), Just(200usize), (1usize..64).prop_map(|v| v)],
        lanes in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let a = random_matrix_f64(n, seed);
        let b = random_matrix_f64(n, seed.wrapping_add(1));
        let c0 = random_matrix_f64(n, seed.wrapping_add(2));
        let mut serial = c0.clone();
        dgemm_blocked(&a, &b, &mut serial, n);
        let mut par = c0.clone();
        dgemm_parallel(&a, &b, &mut par, n, lanes);
        prop_assert_eq!(&serial, &par, "banding over {} lanes diverged at n={}", lanes, n);
    }
}

/// An unavailable tier must refuse cleanly and leave `C` untouched.
#[test]
fn unavailable_tier_is_refused_without_touching_c() {
    let detected = simd::detected_tiers();
    for tier in [Tier::Scalar, Tier::Avx2, Tier::Avx512] {
        if detected.contains(&tier) {
            continue;
        }
        let n = 24;
        let a = random_matrix_f64(n, 1);
        let b = random_matrix_f64(n, 2);
        let c0 = random_matrix_f64(n, 3);
        let mut c = c0.clone();
        assert!(!dgemm_packed_tier(tier, &a, &b, &mut c, n));
        assert_eq!(c0, c, "refused tier {tier:?} must not modify C");
    }
}
