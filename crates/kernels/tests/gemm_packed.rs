//! Property tests for the packed register-blocked GEMM core.
//!
//! Sizes are drawn adversarially around every blocking boundary the
//! packed path has: the micro-tile (8×4 f64 / 8×8 f32), the small-tile
//! dispatch threshold (64), the `MC = 128` row block and the `KC = 256`
//! panel depth — plus a uniform range of small sizes. Case counts are
//! kept modest because the naive reference is O(n³) in debug builds.

use proptest::prelude::*;
use versa_kernels::gemm::{
    dgemm_naive, dgemm_nt_sub_packed, dgemm_packed, sgemm_naive, sgemm_nt_sub_packed, sgemm_packed,
};
use versa_kernels::verify::{random_matrix_f32, random_matrix_f64};

/// Sizes straddling each blocking boundary: micro-tile (8), dispatch
/// threshold (64), MC (128) and KC (256), each ±1.
fn adversarial_n() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(7usize),
        Just(8usize),
        Just(9usize),
        Just(63usize),
        Just(64usize),
        Just(65usize),
        Just(127usize),
        Just(128usize),
        Just(129usize),
        Just(255usize),
        Just(256usize),
        Just(257usize),
        (1usize..48).prop_map(|v| v),
    ]
}

/// `C0 − A·Bᵀ` by explicit dot products (f64 reference).
fn nt_sub_reference(a: &[f64], b: &[f64], c0: &[f64], n: usize) -> Vec<f64> {
    let mut out = c0.to_vec();
    for i in 0..n {
        for j in 0..n {
            let mut dot = 0.0;
            for k in 0..n {
                dot += a[i * n + k] * b[j * n + k];
            }
            out[i * n + j] -= dot;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    #[test]
    fn packed_matches_naive_f64(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f64(n, seed);
        let b = random_matrix_f64(n, seed.wrapping_add(1));
        let mut want = random_matrix_f64(n, seed.wrapping_add(2));
        let mut got = want.clone();
        dgemm_naive(&a, &b, &mut want, n);
        dgemm_packed(&a, &b, &mut got, n);
        for i in 0..n * n {
            let tol = 1e-11 * want[i].abs().max(1.0);
            prop_assert!(
                (want[i] - got[i]).abs() <= tol,
                "n={} elem {}: naive {} vs packed {}", n, i, want[i], got[i]
            );
        }
    }

    #[test]
    fn packed_matches_naive_f32(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f32(n, seed);
        let b = random_matrix_f32(n, seed.wrapping_add(1));
        let mut want = vec![0.5f32; n * n];
        let mut got = want.clone();
        sgemm_naive(&a, &b, &mut want, n);
        sgemm_packed(&a, &b, &mut got, n);
        for i in 0..n * n {
            // f32 sums of up to KC+ terms: allow a looser relative slack.
            let tol = 5e-3 * want[i].abs().max(1.0);
            prop_assert!(
                (want[i] - got[i]).abs() <= tol,
                "n={} elem {}: naive {} vs packed {}", n, i, want[i], got[i]
            );
        }
    }

    #[test]
    fn nt_sub_packed_matches_reference_f64(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f64(n, seed);
        let b = random_matrix_f64(n, seed.wrapping_add(3));
        let c0 = random_matrix_f64(n, seed.wrapping_add(4));
        let want = nt_sub_reference(&a, &b, &c0, n);
        let mut got = c0;
        dgemm_nt_sub_packed(&a, &b, &mut got, n);
        for i in 0..n * n {
            let tol = 1e-11 * want[i].abs().max(1.0);
            prop_assert!(
                (want[i] - got[i]).abs() <= tol,
                "n={} elem {}: reference {} vs packed {}", n, i, want[i], got[i]
            );
        }
    }

    #[test]
    fn nt_sub_packed_matches_reference_f32(n in adversarial_n(), seed in 0u64..1_000_000) {
        let a = random_matrix_f32(n, seed);
        let b = random_matrix_f32(n, seed.wrapping_add(3));
        let c0 = random_matrix_f32(n, seed.wrapping_add(4));
        let a64: Vec<f64> = a.iter().map(|&v| v as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
        let c064: Vec<f64> = c0.iter().map(|&v| v as f64).collect();
        let want = nt_sub_reference(&a64, &b64, &c064, n);
        let mut got = c0;
        sgemm_nt_sub_packed(&a, &b, &mut got, n);
        for i in 0..n * n {
            let tol = 5e-3 * want[i].abs().max(1.0);
            prop_assert!(
                (f64::from(got[i]) - want[i]).abs() <= tol,
                "n={} elem {}: reference {} vs packed {}", n, i, want[i], got[i]
            );
        }
    }
}
