//! Deterministic fault injection for the simulated platform.
//!
//! A [`FaultPlan`] describes *when simulated task executions fail*:
//! each [`FaultRule`] matches a subset of executions (by template,
//! version, and/or worker) and fires with a configured probability,
//! drawn from a dedicated seeded RNG stream so an empty plan leaves
//! every other random stream — and therefore every existing report —
//! byte-identical. Rules can be transient (probabilistic) or persistent
//! (`probability = 1.0`), and optionally stop firing after a bounded
//! number of failures (a device that "recovers").
//!
//! The injector only *decides*; the execution engine in `versa-runtime`
//! turns a fired rule into a `TaskFailed` event and routes the task
//! through the same reschedule path native kernel panics take.

use versa_core::{TemplateId, VersionId, WorkerId};

/// One fault-matching rule. `None` fields match anything, so a rule can
/// target a device ("GPU 1 is flaky"), a template, a specific version
/// ("the hand-CUDA kernel is broken"), or any combination.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Match only this template (any when `None`).
    pub template: Option<TemplateId>,
    /// Match only this version (any when `None`).
    pub version: Option<VersionId>,
    /// Match only executions on this worker (any when `None`).
    pub worker: Option<WorkerId>,
    /// Probability in `[0, 1]` that a matched execution fails
    /// (`1.0` = persistent failure).
    pub probability: f64,
    /// Stop firing after this many failures (`None` = unbounded) —
    /// models transient conditions that clear up.
    pub max_failures: Option<u64>,
}

impl FaultRule {
    /// A rule that always fails every execution of `version` (on any
    /// worker, any template) — the "broken implementation" scenario.
    pub fn broken_version(version: VersionId) -> FaultRule {
        FaultRule {
            template: None,
            version: Some(version),
            worker: None,
            probability: 1.0,
            max_failures: None,
        }
    }

    /// A rule that fails executions on `worker` with `probability` —
    /// the "flaky device" scenario.
    pub fn flaky_worker(worker: WorkerId, probability: f64) -> FaultRule {
        FaultRule {
            template: None,
            version: None,
            worker: Some(worker),
            probability,
            max_failures: None,
        }
    }

    fn matches(&self, template: TemplateId, version: VersionId, worker: WorkerId) -> bool {
        self.template.is_none_or(|t| t == template)
            && self.version.is_none_or(|v| v == version)
            && self.worker.is_none_or(|w| w == worker)
    }
}

/// What a node-level fault does to a simulated remote node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// The node vanishes abruptly (TCP reset / power loss): every
    /// queued task silently re-enters the pending pool, every running
    /// task is reported lost mid-flight.
    Drop,
    /// The node stops answering heartbeats (network partition / wedged
    /// process) and the coordinator declares it dead after its timeout.
    /// Identical consequences to [`NodeFaultKind::Drop`], but the loss
    /// is *detected* one heartbeat-timeout later than it happened.
    HeartbeatTimeout,
}

/// One scheduled node-level fault: at virtual time `at`, node `node`
/// (1-based, matching `TraceEvent` node ids; node 0 is the coordinator
/// and cannot fail) is lost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeFaultRule {
    /// The 1-based remote-node id to kill.
    pub node: u16,
    /// Virtual time at which the fault fires.
    pub at: std::time::Duration,
    /// How the node fails.
    pub kind: NodeFaultKind,
}

impl NodeFaultRule {
    /// Abrupt loss of `node` at virtual time `at`.
    pub fn drop_node(node: u16, at: std::time::Duration) -> NodeFaultRule {
        NodeFaultRule { node, at, kind: NodeFaultKind::Drop }
    }

    /// Heartbeat silence from `node` starting at virtual time `at`.
    pub fn heartbeat_timeout(node: u16, at: std::time::Duration) -> NodeFaultRule {
        NodeFaultRule { node, at, kind: NodeFaultKind::HeartbeatTimeout }
    }
}

/// A set of fault rules evaluated against every simulated task start.
/// The default plan is empty (no faults), which is guaranteed not to
/// perturb any other random stream of the simulation.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// The rules, evaluated in order; the first match that fires wins.
    pub rules: Vec<FaultRule>,
    /// Scheduled node-level faults (whole remote nodes lost at a given
    /// virtual time). Empty by default.
    pub node_rules: Vec<NodeFaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with a single rule.
    pub fn single(rule: FaultRule) -> FaultPlan {
        FaultPlan { rules: vec![rule], ..FaultPlan::default() }
    }

    /// Whether the plan can never fire.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.node_rules.is_empty()
    }

    /// Validate rule probabilities and that node rules target one of
    /// the platform's `node_count` remote nodes (ids are 1-based).
    pub fn validate(&self, node_count: usize) -> Result<(), String> {
        for (i, r) in self.rules.iter().enumerate() {
            if !(0.0..=1.0).contains(&r.probability) || !r.probability.is_finite() {
                return Err(format!(
                    "fault rule {i}: probability {} outside [0, 1]",
                    r.probability
                ));
            }
        }
        for (i, r) in self.node_rules.iter().enumerate() {
            if r.node == 0 || r.node as usize > node_count {
                return Err(format!(
                    "node fault rule {i}: node {} outside 1..={node_count}",
                    r.node
                ));
            }
        }
        Ok(())
    }
}

/// Stateful evaluator of a [`FaultPlan`]: owns the dedicated RNG stream
/// and the per-rule fired counters.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<u64>,
    rng: u64,
}

impl FaultInjector {
    /// Injector for `plan`, seeded independently of every other stream.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        let fired = vec![0; plan.rules.len()];
        // Decorrelate from the NoiseModel, which is seeded from the
        // same platform seed.
        let rng = seed ^ 0x9e37_79b9_7f4a_7c15;
        FaultInjector { plan, fired, rng }
    }

    /// Whether any rule could still fire.
    pub fn armed(&self) -> bool {
        self.plan
            .rules
            .iter()
            .zip(&self.fired)
            .any(|(r, &n)| r.probability > 0.0 && r.max_failures.is_none_or(|m| n < m))
    }

    /// Total failures injected so far.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// Decide whether this execution fails. Deterministic: the RNG
    /// stream advances once per *matched probabilistic* rule
    /// evaluation, so identical schedules yield identical decisions.
    pub fn should_fail(
        &mut self,
        template: TemplateId,
        version: VersionId,
        worker: WorkerId,
    ) -> bool {
        for i in 0..self.plan.rules.len() {
            let rule = &self.plan.rules[i];
            if !rule.matches(template, version, worker) {
                continue;
            }
            if rule.max_failures.is_some_and(|m| self.fired[i] >= m) {
                continue;
            }
            let fires = if rule.probability >= 1.0 {
                true
            } else if rule.probability <= 0.0 {
                false
            } else {
                let p = rule.probability;
                self.next_f64() < p
            };
            if fires {
                self.fired[i] += 1;
                return true;
            }
        }
        false
    }

    /// splitmix64 step → uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TPL: TemplateId = TemplateId(0);
    const V0: VersionId = VersionId(0);
    const V1: VersionId = VersionId(1);
    const W0: WorkerId = WorkerId(0);
    const W1: WorkerId = WorkerId(1);

    #[test]
    fn empty_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 42);
        assert!(!inj.armed());
        for _ in 0..100 {
            assert!(!inj.should_fail(TPL, V0, W0));
        }
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn broken_version_always_fails_only_that_version() {
        let mut inj = FaultInjector::new(FaultPlan::single(FaultRule::broken_version(V0)), 1);
        assert!(inj.should_fail(TPL, V0, W0));
        assert!(inj.should_fail(TPL, V0, W1));
        assert!(!inj.should_fail(TPL, V1, W0));
        assert_eq!(inj.total_fired(), 2);
    }

    #[test]
    fn max_failures_bounds_firing() {
        let mut rule = FaultRule::broken_version(V0);
        rule.max_failures = Some(2);
        let mut inj = FaultInjector::new(FaultPlan::single(rule), 1);
        assert!(inj.should_fail(TPL, V0, W0));
        assert!(inj.should_fail(TPL, V0, W0));
        assert!(!inj.should_fail(TPL, V0, W0), "rule exhausted");
        assert!(!inj.armed());
    }

    #[test]
    fn probabilistic_rule_is_deterministic_per_seed() {
        let rule = FaultRule::flaky_worker(W0, 0.5);
        let decide = |seed: u64| -> Vec<bool> {
            let mut inj = FaultInjector::new(FaultPlan::single(rule.clone()), seed);
            (0..64).map(|_| inj.should_fail(TPL, V0, W0)).collect()
        };
        assert_eq!(decide(7), decide(7), "same seed, same decisions");
        assert_ne!(decide(7), decide(8), "different seed, different stream");
        let fired = decide(7).iter().filter(|&&b| b).count();
        assert!((16..=48).contains(&fired), "p=0.5 fired {fired}/64 times");
    }

    #[test]
    fn validation_rejects_bad_probability() {
        let mut rule = FaultRule::broken_version(V0);
        rule.probability = 1.5;
        assert!(FaultPlan::single(rule.clone()).validate(0).is_err());
        rule.probability = f64::NAN;
        assert!(FaultPlan::single(rule).validate(0).is_err());
        assert!(FaultPlan::none().validate(0).is_ok());
    }

    #[test]
    fn validation_checks_node_rule_targets() {
        use std::time::Duration;
        let mut plan = FaultPlan::none();
        plan.node_rules.push(NodeFaultRule::drop_node(1, Duration::from_millis(5)));
        assert!(!plan.is_empty());
        assert!(plan.validate(0).is_err(), "no remote nodes configured");
        assert!(plan.validate(1).is_ok());
        plan.node_rules.push(NodeFaultRule::heartbeat_timeout(0, Duration::ZERO));
        assert!(plan.validate(1).is_err(), "node 0 is the coordinator");
    }
}
