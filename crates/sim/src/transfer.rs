//! Virtual-time DMA engine.
//!
//! OmpSs overlaps data transfers with task execution and prefetches task
//! data (paper §V-A2: "we configured OmpSs to overlap data transfers with
//! task execution. We also combined this feature with prefetching task
//! data"). The [`TransferEngine`] models this: each GPU owns a link with
//! finite bandwidth (and, like the M2090's dual copy engines, optionally
//! independent upload/download DMA engines); a transfer occupies its
//! engine(s) for a bandwidth-proportional window, cannot start before its
//! source bytes exist, and completes independently of what the
//! destination worker is computing — so transfers for queued tasks
//! proceed while earlier tasks run.

use crate::{PlatformConfig, SimTime};
use std::collections::HashMap;
use versa_mem::{DataId, MemSpace, Transfer, TransferKind, TransferStats};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Host → device (upload engine).
    Up,
    /// Device → host (download engine).
    Down,
}

/// Virtual-time transfer scheduler + accountant.
///
/// Device index space: `0..gpus` are GPU PCIe links, `gpus..gpus+nodes`
/// are remote-node NIC links. Each device index owns its own
/// [`crate::LinkConfig`], so a slow 10 GbE NIC and a fast PCIe lane
/// coexist and the scheduler observes their different latencies.
#[derive(Debug)]
pub struct TransferEngine {
    /// When each device's upload engine is next free.
    up_free: Vec<SimTime>,
    /// When each device's download engine is next free.
    down_free: Vec<SimTime>,
    /// When each (allocation, space) copy's bytes physically exist.
    /// Absent entries mean "since simulation start" (initial host data).
    ready: HashMap<(DataId, MemSpace), SimTime>,
    stats: TransferStats,
    /// Per-device link, indexed by `MemSpace::device_index`.
    links: Vec<crate::LinkConfig>,
    p2p: bool,
}

impl TransferEngine {
    /// Engine for a platform description.
    pub fn new(platform: &PlatformConfig) -> TransferEngine {
        let mut links = vec![platform.link; platform.gpus];
        links.extend(platform.nodes.iter().map(|n| n.nic));
        let engines = links.len();
        TransferEngine {
            up_free: vec![SimTime::ZERO; engines],
            down_free: vec![SimTime::ZERO; engines],
            ready: HashMap::new(),
            stats: TransferStats::default(),
            links,
            p2p: platform.gpu_p2p,
        }
    }

    /// Accumulated transfer statistics (paper Figs. 7/10/13).
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// When the copy of `data` in `space` is physically usable.
    pub fn ready_at(&self, data: DataId, space: MemSpace) -> SimTime {
        self.ready.get(&(data, space)).copied().unwrap_or(SimTime::ZERO)
    }

    /// Declare that a task (or the user) produced `data` in `space` at
    /// `time` — e.g. a kernel finishing on a GPU, or an SMP task writing
    /// host memory.
    pub fn mark_produced(&mut self, data: DataId, space: MemSpace, time: SimTime) {
        self.ready.insert((data, space), time);
    }

    /// The DMA engines a transfer occupies: `(device index, direction)`.
    fn engines_of(&self, t: &Transfer) -> Vec<(usize, Dir)> {
        match (t.from.device_index(), t.to.device_index()) {
            (None, Some(d)) => vec![(usize::from(d), Dir::Up)],
            (Some(d), None) => vec![(usize::from(d), Dir::Down)],
            (Some(a), Some(b)) => vec![(usize::from(a), Dir::Down), (usize::from(b), Dir::Up)],
            (None, None) => unreachable!("host-to-host transfer"),
        }
    }

    fn engine_free(&self, dev: usize, dir: Dir) -> SimTime {
        if self.links[dev].duplex {
            match dir {
                Dir::Up => self.up_free[dev],
                Dir::Down => self.down_free[dev],
            }
        } else {
            // One engine serves both directions.
            self.up_free[dev].max(self.down_free[dev])
        }
    }

    fn occupy(&mut self, dev: usize, dir: Dir, until: SimTime) {
        if self.links[dev].duplex {
            match dir {
                Dir::Up => self.up_free[dev] = until,
                Dir::Down => self.down_free[dev] = until,
            }
        } else {
            self.up_free[dev] = until;
            self.down_free[dev] = until;
        }
    }

    /// Schedule one transfer requested at `now`; returns its completion
    /// time and records it in the statistics.
    ///
    /// Start time respects: the request time, the availability of the
    /// source bytes, and the occupancy of every involved DMA engine. A
    /// GPU↔GPU copy occupies the source's download engine and the
    /// destination's upload engine; without peer-to-peer support it
    /// additionally pays a double (staged-through-host) transfer time,
    /// while still being accounted once as *Device Tx*.
    pub fn schedule(&mut self, t: &Transfer, now: SimTime) -> SimTime {
        let kind = t.kind();
        let engines = self.engines_of(t);
        let src_ready = self.ready_at(t.data, t.from);
        let mut start = now.max(src_ready);
        for &(dev, dir) in &engines {
            start = start.max(self.engine_free(dev, dir));
        }
        let hops = if kind == TransferKind::Device && !self.p2p { 2 } else { 1 };
        // A transfer is limited by its slowest involved link (a GPU→node
        // copy cannot beat the NIC no matter how fast PCIe is).
        let link_time = engines
            .iter()
            .map(|&(dev, _)| self.links[dev].transfer_time(t.bytes))
            .max()
            .expect("a transfer involves at least one link");
        let duration = link_time * hops;
        let end = start + duration;
        for &(dev, dir) in &engines {
            self.occupy(dev, dir, end);
        }
        self.ready.insert((t.data, t.to), end);
        self.stats.record(kind, t.bytes);
        end
    }

    /// Schedule a batch of transfers for one task, returning the time by
    /// which all of them have completed (`now` if the batch is empty).
    pub fn schedule_all(&mut self, transfers: &[Transfer], now: SimTime) -> SimTime {
        transfers.iter().fold(now, |deadline, t| deadline.max(self.schedule(t, now)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn engine_with(duplex: bool) -> TransferEngine {
        let mut p = PlatformConfig::minotauro(2, 2);
        // Round numbers: 1 GB/s, zero latency.
        p.link = crate::LinkConfig { bandwidth: 1e9, latency: Duration::ZERO, duplex };
        TransferEngine::new(&p)
    }

    fn engine() -> TransferEngine {
        engine_with(true)
    }

    fn tx(data: u32, from: MemSpace, to: MemSpace, bytes: u64) -> Transfer {
        Transfer { data: DataId(data), from, to, bytes }
    }

    const HOST: MemSpace = MemSpace::HOST;

    #[test]
    fn input_transfer_takes_bandwidth_time() {
        let mut e = engine();
        let end = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        assert_eq!(end, SimTime(1_000_000)); // 1 MB at 1 GB/s = 1 ms
        assert_eq!(e.stats().input_bytes, 1_000_000);
        assert_eq!(e.ready_at(DataId(0), MemSpace::device(0)), end);
    }

    #[test]
    fn same_engine_serializes_different_links_overlap() {
        let mut e = engine();
        let a = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        let b = e.schedule(&tx(1, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        assert_eq!(b, a + Duration::from_millis(1), "same upload engine: serialized");
        let c = e.schedule(&tx(2, HOST, MemSpace::device(1), 1_000_000), SimTime::ZERO);
        assert_eq!(c, SimTime(1_000_000), "other GPU's link: concurrent");
    }

    #[test]
    fn duplex_overlaps_upload_and_download() {
        let mut e = engine();
        e.mark_produced(DataId(1), MemSpace::device(0), SimTime::ZERO);
        let up = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        let down = e.schedule(&tx(1, MemSpace::device(0), HOST, 1_000_000), SimTime::ZERO);
        assert_eq!(up, SimTime(1_000_000));
        assert_eq!(down, SimTime(1_000_000), "dual copy engines run both directions at once");
    }

    #[test]
    fn simplex_serializes_upload_and_download() {
        let mut e = engine_with(false);
        e.mark_produced(DataId(1), MemSpace::device(0), SimTime::ZERO);
        let up = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        let down = e.schedule(&tx(1, MemSpace::device(0), HOST, 1_000_000), SimTime::ZERO);
        assert_eq!(up, SimTime(1_000_000));
        assert_eq!(down, SimTime(2_000_000), "one engine serves both directions");
    }

    #[test]
    fn transfer_waits_for_source_production() {
        let mut e = engine();
        e.mark_produced(DataId(0), MemSpace::device(0), SimTime(5_000_000));
        let end = e.schedule(&tx(0, MemSpace::device(0), HOST, 1_000_000), SimTime::ZERO);
        assert_eq!(end, SimTime(6_000_000), "starts only after the kernel wrote it");
        assert_eq!(e.stats().output_bytes, 1_000_000);
    }

    #[test]
    fn device_to_device_without_p2p_pays_double() {
        let mut e = engine(); // p2p = false by default
        e.mark_produced(DataId(0), MemSpace::device(0), SimTime::ZERO);
        let end =
            e.schedule(&tx(0, MemSpace::device(0), MemSpace::device(1), 1_000_000), SimTime::ZERO);
        assert_eq!(end, SimTime(2_000_000));
        assert_eq!(e.stats().device_bytes, 1_000_000, "accounted once");
        // Source's download engine and destination's upload engine are
        // busy until `end`; the destination's *download* engine is free.
        let up1 = e.schedule(&tx(1, HOST, MemSpace::device(1), 1_000_000), SimTime::ZERO);
        assert_eq!(up1, SimTime(3_000_000), "dev1 upload engine was occupied");
        e.mark_produced(DataId(2), MemSpace::device(1), SimTime::ZERO);
        let down1 = e.schedule(&tx(2, MemSpace::device(1), HOST, 1_000_000), SimTime::ZERO);
        assert_eq!(down1, SimTime(1_000_000), "dev1 download engine was free");
    }

    #[test]
    fn device_to_device_with_p2p_is_single_hop() {
        let mut p = PlatformConfig::minotauro(0, 2);
        p.link = crate::LinkConfig { bandwidth: 1e9, latency: Duration::ZERO, duplex: true };
        p.gpu_p2p = true;
        let mut e = TransferEngine::new(&p);
        e.mark_produced(DataId(0), MemSpace::device(0), SimTime::ZERO);
        let end =
            e.schedule(&tx(0, MemSpace::device(0), MemSpace::device(1), 1_000_000), SimTime::ZERO);
        assert_eq!(end, SimTime(1_000_000));
    }

    #[test]
    fn schedule_all_returns_batch_deadline() {
        let mut e = engine();
        let transfers = [
            tx(0, HOST, MemSpace::device(0), 1_000_000),
            tx(1, HOST, MemSpace::device(0), 2_000_000),
        ];
        let done = e.schedule_all(&transfers, SimTime::ZERO);
        assert_eq!(done, SimTime(3_000_000), "serialized on one upload engine");
        assert_eq!(e.schedule_all(&[], SimTime(42)), SimTime(42));
    }

    #[test]
    fn latency_is_charged_per_transfer() {
        let mut p = PlatformConfig::minotauro(1, 1);
        p.link = crate::LinkConfig {
            bandwidth: 1e9,
            latency: Duration::from_micros(10),
            duplex: true,
        };
        let mut e = TransferEngine::new(&p);
        let end = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        assert_eq!(end, SimTime(1_010_000));
    }

    #[test]
    fn initial_host_data_is_ready_at_zero() {
        let e = engine();
        assert_eq!(e.ready_at(DataId(7), HOST), SimTime::ZERO);
    }

    /// 2 GPUs on a 1 GB/s PCIe link + 1 remote node on a 10× slower NIC.
    fn cluster_engine() -> TransferEngine {
        let mut p = PlatformConfig::minotauro(2, 2);
        p.link = crate::LinkConfig { bandwidth: 1e9, latency: Duration::ZERO, duplex: true };
        let mut node = crate::SimNode::new(2);
        node.nic =
            crate::LinkConfig { bandwidth: 1e8, latency: Duration::ZERO, duplex: true };
        p.nodes = vec![node];
        TransferEngine::new(&p)
    }

    #[test]
    fn nic_link_is_priced_separately_from_pcie() {
        let mut e = cluster_engine();
        let pcie = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        assert_eq!(pcie, SimTime(1_000_000), "1 MB over PCIe at 1 GB/s");
        // Device index 2 = remote node 1's mirror space, behind the NIC.
        let nic = e.schedule(&tx(1, HOST, MemSpace::device(2), 1_000_000), SimTime::ZERO);
        assert_eq!(nic, SimTime(10_000_000), "same bytes over a 10× slower NIC");
        assert_eq!(e.stats().input_bytes, 2_000_000);
    }

    #[test]
    fn nic_and_pcie_links_are_independent_engines() {
        let mut e = cluster_engine();
        let a = e.schedule(&tx(0, HOST, MemSpace::device(0), 1_000_000), SimTime::ZERO);
        let b = e.schedule(&tx(1, HOST, MemSpace::device(2), 1_000_000), SimTime::ZERO);
        assert_eq!(a, SimTime(1_000_000));
        assert_eq!(b, SimTime(10_000_000), "NIC shipment does not queue behind PCIe");
        // But two shipments to the same node share its NIC.
        let c = e.schedule(&tx(2, HOST, MemSpace::device(2), 1_000_000), SimTime::ZERO);
        assert_eq!(c, SimTime(20_000_000), "same NIC upload engine: serialized");
    }

    #[test]
    fn gpu_to_node_is_limited_by_the_slower_link() {
        let mut e = cluster_engine(); // p2p = false: staged through host
        e.mark_produced(DataId(0), MemSpace::device(0), SimTime::ZERO);
        let end =
            e.schedule(&tx(0, MemSpace::device(0), MemSpace::device(2), 1_000_000), SimTime::ZERO);
        // Two hops, each priced at the slower (NIC) link time.
        assert_eq!(end, SimTime(20_000_000));
        assert_eq!(e.stats().device_bytes, 1_000_000, "accounted once as Device Tx");
    }
}
