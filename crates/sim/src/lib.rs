//! # versa-sim — deterministic heterogeneous-node simulation substrate
//!
//! The paper evaluates on a MinoTauro node (2× Intel Xeon E5649 6-core +
//! 2× NVIDIA M2090, 24 GB host / 6 GB per GPU). This crate provides the
//! building blocks to *simulate* such a node deterministically, so the
//! scheduler experiments reproduce without the hardware:
//!
//! * [`SimTime`] — a virtual clock (nanosecond resolution).
//! * [`EventQueue`] — a deterministic discrete-event queue (FIFO among
//!   simultaneous events).
//! * [`PlatformConfig`] — node description: SMP worker count, GPU count,
//!   per-GPU PCIe link bandwidth/latency, peer-to-peer capability, and
//!   per-device peak GFLOP/s (for report normalization).
//! * [`CostTable`] + [`NoiseModel`] — per-(template, version) execution
//!   time models with seeded multiplicative noise. The *scheduler never
//!   sees this table*; it only observes completed-task durations, exactly
//!   as on real hardware.
//! * [`TransferEngine`] — virtual-time DMA: transfers occupy links,
//!   respect data production times, may overlap with compute (prefetch),
//!   and are accounted in the paper's Input/Output/Device Tx categories.
//! * [`Trace`] — re-export of the unified `versa-trace` event model (the
//!   recorder, exporters and analysis live there, shared with the native
//!   engine).
//!
//! The actual task-execution event loop lives in `versa-runtime`
//! (`SimEngine`), which combines these pieces with the task graph and a
//! scheduler.

#![warn(missing_docs)]

mod cost;
mod event;
mod fault;
mod platform;
mod time;
mod trace;
mod transfer;

pub use cost::{CostTable, NoiseModel};
pub use event::EventQueue;
pub use fault::{FaultInjector, FaultPlan, FaultRule, NodeFaultKind, NodeFaultRule};
pub use platform::{LinkConfig, PlatformConfig, SimNode};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, Ts};
pub use transfer::TransferEngine;
pub use versa_trace::analysis;
pub use versa_trace::{TaskInterval, TraceAnalysis};
