//! Execution-time cost models.
//!
//! Each (template, version) pair gets a duration model as a function of
//! the task's data set size. Applications calibrate these to the ratios
//! the paper reports (e.g. "SMP task duration is about 60 times the GPU
//! task duration" for the matmul tile, §V-B1). A seeded multiplicative
//! [`NoiseModel`] adds run-to-run variation so the scheduler's running
//! means actually have something to average.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use versa_core::{TemplateId, VersionId};

/// Duration model of one task version: data set size (bytes) → base
/// execution time.
pub type CostFn = Arc<dyn Fn(u64) -> Duration + Send + Sync>;

/// Per-(template, version) execution-time models for the simulated
/// platform. The scheduler never reads this table; it is the simulator's
/// ground truth.
#[derive(Default, Clone)]
pub struct CostTable {
    entries: HashMap<(TemplateId, VersionId), CostFn>,
}

impl CostTable {
    /// Empty table.
    pub fn new() -> CostTable {
        CostTable::default()
    }

    /// Register a size-dependent duration model.
    pub fn set_fn(
        &mut self,
        template: TemplateId,
        version: VersionId,
        f: impl Fn(u64) -> Duration + Send + Sync + 'static,
    ) {
        self.entries.insert((template, version), Arc::new(f));
    }

    /// Register a size-independent duration.
    pub fn set_fixed(&mut self, template: TemplateId, version: VersionId, d: Duration) {
        self.set_fn(template, version, move |_| d);
    }

    /// Base (noise-free) duration of one execution.
    ///
    /// # Panics
    /// Panics if no model is registered for the pair — every version that
    /// can be scheduled in a simulation must have a cost model.
    pub fn duration(&self, template: TemplateId, version: VersionId, size: u64) -> Duration {
        let f = self
            .entries
            .get(&(template, version))
            .unwrap_or_else(|| panic!("no cost model for ({template:?}, {version:?})"));
        f(size)
    }

    /// Whether a model is registered for the pair.
    pub fn has(&self, template: TemplateId, version: VersionId) -> bool {
        self.entries.contains_key(&(template, version))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for CostTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CostTable({} models)", self.entries.len())
    }
}

/// Seeded multiplicative execution-time noise: each sampled duration is
/// `base × U(1 − sigma, 1 + sigma)`.
#[derive(Debug)]
pub struct NoiseModel {
    sigma: f64,
    state: u64,
}

impl NoiseModel {
    /// Noise with relative half-width `sigma` (e.g. `0.05` for ±5%).
    ///
    /// # Panics
    /// Panics unless `0 ≤ sigma < 1`.
    pub fn new(sigma: f64, seed: u64) -> NoiseModel {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        NoiseModel { sigma, state: seed }
    }

    /// Noise-free model (useful for exact-value tests).
    pub fn none() -> NoiseModel {
        NoiseModel::new(0.0, 0)
    }

    /// Sample a concrete duration for one execution.
    pub fn sample(&mut self, base: Duration) -> Duration {
        if self.sigma == 0.0 {
            return base;
        }
        // splitmix64 step: deterministic per seed, dependency-free.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.sigma + unit * 2.0 * self.sigma;
        Duration::from_secs_f64(base.as_secs_f64() * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TPL: TemplateId = TemplateId(0);
    const V0: VersionId = VersionId(0);
    const V1: VersionId = VersionId(1);

    #[test]
    fn fixed_and_fn_models() {
        let mut t = CostTable::new();
        t.set_fixed(TPL, V0, Duration::from_millis(7));
        t.set_fn(TPL, V1, |size| Duration::from_nanos(size * 2));
        assert_eq!(t.duration(TPL, V0, 123), Duration::from_millis(7));
        assert_eq!(t.duration(TPL, V1, 500), Duration::from_micros(1));
        assert!(t.has(TPL, V0));
        assert!(!t.has(TemplateId(9), V0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no cost model")]
    fn missing_model_panics() {
        let t = CostTable::new();
        let _ = t.duration(TPL, V0, 1);
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let base = Duration::from_millis(100);
        let mut a = NoiseModel::new(0.1, 42);
        let mut b = NoiseModel::new(0.1, 42);
        for _ in 0..1000 {
            let sa = a.sample(base);
            let sb = b.sample(base);
            assert_eq!(sa, sb, "same seed must reproduce exactly");
            let secs = sa.as_secs_f64();
            assert!(secs > 0.09 && secs < 0.11, "sample {secs} out of ±10%");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let base = Duration::from_millis(100);
        let mut a = NoiseModel::new(0.1, 1);
        let mut b = NoiseModel::new(0.1, 2);
        let same = (0..100).filter(|_| a.sample(base) == b.sample(base)).count();
        assert!(same < 5, "independent seeds should rarely collide");
    }

    #[test]
    fn zero_sigma_is_exact() {
        let mut n = NoiseModel::none();
        assert_eq!(n.sample(Duration::from_millis(3)), Duration::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn sigma_one_rejected() {
        let _ = NoiseModel::new(1.0, 0);
    }
}
