//! Thin adapter onto the unified `versa-trace` event model.
//!
//! Early revisions of this crate carried their own trace recorder and
//! analysis; both now live in `versa-trace`, shared with the native
//! engine so one toolchain (`versa-analyze`, the Chrome exporter, the
//! invariant checker) serves every trace. This module keeps the old
//! import paths (`versa_sim::{Trace, TraceEvent}`) working and provides
//! the [`SimTime`] ↔ [`Ts`] bridge: both are nanoseconds from run start,
//! so the conversion is the identity on the raw counter.

use crate::SimTime;
pub use versa_trace::{Trace, TraceEvent, Ts};

impl From<SimTime> for Ts {
    fn from(t: SimTime) -> Ts {
        Ts(t.0)
    }
}

impl From<Ts> for SimTime {
    fn from(t: Ts) -> SimTime {
        SimTime(t.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_ts_bridge_is_identity_on_nanos() {
        let t = SimTime(1_234_567);
        let ts: Ts = t.into();
        assert_eq!(ts, Ts(1_234_567));
        assert_eq!(SimTime::from(ts), t);
    }
}
