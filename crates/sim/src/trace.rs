//! Structured execution traces (for tests, debugging and Fig. 5-style
//! narratives).

use crate::SimTime;
use versa_core::{TaskId, VersionId, WorkerId};
use versa_mem::{DataId, MemSpace};

/// One traced simulation event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task began executing on a worker.
    TaskStart {
        /// When.
        time: SimTime,
        /// Which task.
        task: TaskId,
        /// On which worker.
        worker: WorkerId,
        /// As which implementation.
        version: VersionId,
    },
    /// A task finished executing.
    TaskEnd {
        /// When.
        time: SimTime,
        /// Which task.
        task: TaskId,
        /// On which worker.
        worker: WorkerId,
    },
    /// A task execution failed (injected fault) — the task will be
    /// rescheduled or, if retries are exhausted, abort the run.
    TaskFailed {
        /// When.
        time: SimTime,
        /// Which task.
        task: TaskId,
        /// On which worker.
        worker: WorkerId,
        /// As which implementation.
        version: VersionId,
        /// How many times this task has failed so far (this one
        /// included).
        attempt: u32,
    },
    /// A data transfer occupied a link from `start` to `end`.
    Transfer {
        /// Transfer start (after source/link availability).
        start: SimTime,
        /// Transfer completion.
        end: SimTime,
        /// The allocation moved.
        data: DataId,
        /// Source space.
        from: MemSpace,
        /// Destination space.
        to: MemSpace,
        /// Bytes moved.
        bytes: u64,
    },
}

impl TraceEvent {
    /// The event's (primary) timestamp, for ordering checks.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::TaskStart { time, .. }
            | TraceEvent::TaskEnd { time, .. }
            | TraceEvent::TaskFailed { time, .. } => *time,
            TraceEvent::Transfer { start, .. } => *start,
        }
    }
}

/// An append-only event trace. Disabled by default: recording is a no-op
/// until [`Trace::enable`] is called, so hot paths can trace
/// unconditionally.
#[derive(Default, Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A disabled trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events concerning one task.
    pub fn task_events(&self, task: TaskId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| match e {
            TraceEvent::TaskStart { task: t, .. }
            | TraceEvent::TaskEnd { task: t, .. }
            | TraceEvent::TaskFailed { task: t, .. } => *t == task,
            TraceEvent::Transfer { .. } => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(t: u64, task: u64, w: u16) -> TraceEvent {
        TraceEvent::TaskStart {
            time: SimTime(t),
            task: TaskId(task),
            worker: WorkerId(w),
            version: VersionId(0),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        assert!(!tr.is_enabled());
        tr.record(start(0, 1, 0));
        assert!(tr.is_empty());
    }

    #[test]
    fn enabled_trace_accumulates() {
        let mut tr = Trace::new();
        tr.enable();
        tr.record(start(0, 1, 0));
        tr.record(TraceEvent::TaskEnd { time: SimTime(10), task: TaskId(1), worker: WorkerId(0) });
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.task_events(TaskId(1)).count(), 2);
        assert_eq!(tr.task_events(TaskId(2)).count(), 0);
    }

    #[test]
    fn event_time_accessor() {
        let e = TraceEvent::Transfer {
            start: SimTime(5),
            end: SimTime(9),
            data: DataId(0),
            from: MemSpace::HOST,
            to: MemSpace::device(0),
            bytes: 64,
        };
        assert_eq!(e.time(), SimTime(5));
        assert_eq!(start(3, 0, 0).time(), SimTime(3));
    }
}
